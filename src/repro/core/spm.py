"""SPM — the single point method (Section 3.2 of the paper).

SPM performs a single traversal of the R-tree of ``P`` guided by the
(approximate) centroid ``q`` of the query group.  Lemma 1 gives the
pruning bound: for any point ``p``,

    ``dist(p, Q) >= n * |p q| - dist(q, Q)``

so a node or point whose distance from ``q`` reaches
``(best_dist + dist(q, Q)) / n`` cannot contain/cannot be a better
neighbor (Heuristic 1).  Both the best-first implementation (used by the
paper's experiments) and the depth-first one (the paper's pseudo-code,
Figure 3.4) are provided.
"""

from __future__ import annotations

import numpy as np

from repro.core.centroid import compute_centroid
from repro.core.heuristics import heuristic1_prunes_node, heuristic1_prunes_point
from repro.core.instrumentation import CostTracker
from repro.core.types import BestList, GNNResult, GroupQuery
from repro.geometry import kernels
from repro.geometry.distance import euclidean, group_distance
from repro.rtree.flat import FlatRTree
from repro.rtree.traversal import (
    flat_incremental_nearest_generic,
    incremental_nearest_generic,
)
from repro.rtree.tree import RTree


def spm(
    tree: RTree | FlatRTree,
    query: GroupQuery,
    traversal: str = "best_first",
    centroid_method: str = "gradient",
    exclude: frozenset | set | None = None,
) -> GNNResult:
    """Run the single point method.

    Parameters
    ----------
    tree:
        R-tree over the dataset ``P``; a flat snapshot
        (:class:`~repro.rtree.flat.FlatRTree`) is accepted for the
        best-first traversal and returns bit-identical results with
        identical node-access and distance-computation counts.
    query:
        The query group (sum aggregate, unweighted — as defined in the paper).
    traversal:
        ``"best_first"`` (default, what the paper's experiments use) or
        ``"depth_first"`` (the pseudo-code of Figure 3.4).
    centroid_method:
        Passed to :func:`repro.core.centroid.compute_centroid`; the paper
        uses gradient descent.
    exclude:
        Optional record ids barred from the result (delta-overlay
        tombstones).  Excluded points are skipped before any aggregate
        distance is charged; Heuristic 1's bound is unaffected because
        it only depends on the centroid stream's emission order.
    """
    if query.aggregate != "sum":
        raise ValueError("SPM is only defined for the sum aggregate")
    if query.weights is not None:
        raise ValueError("SPM does not support weighted queries; use MBM instead")
    if traversal not in ("best_first", "depth_first"):
        raise ValueError(f"unknown traversal {traversal!r}")
    is_flat = isinstance(tree, FlatRTree)
    if is_flat and traversal != "best_first":
        raise ValueError(
            "flat snapshots only support the best-first traversal; "
            "run depth-first SPM against the object R-tree"
        )

    tracker = CostTracker(f"SPM-{traversal}", trees=[tree])
    best = BestList(query.k)
    if len(tree) == 0:
        return GNNResult(neighbors=[], cost=tracker.finish())

    centroid = compute_centroid(query.points, method=centroid_method)
    centroid_distance = group_distance(centroid, query.points)

    if is_flat:
        _spm_best_first_flat(tree, query, centroid, centroid_distance, best, exclude)
    elif traversal == "best_first":
        _spm_best_first(tree, query, centroid, centroid_distance, best, exclude)
    else:
        _spm_depth_first(tree, tree.root, query, centroid, centroid_distance, best, exclude)

    return GNNResult(neighbors=best.neighbors(), cost=tracker.finish())


def _spm_best_first(tree, query, centroid, centroid_distance, best, exclude=None) -> None:
    """Consume an incremental NN stream around the centroid until Heuristic 1 fires."""
    n = query.cardinality

    def node_key(mbr):
        return mbr.mindist_point(centroid)

    def point_key(point):
        return euclidean(point, centroid)

    def points_key(points):
        return kernels.point_distances(points, centroid)

    def mbrs_key(lows, highs):
        return kernels.boxes_mindist_point(lows, highs, centroid)

    stream = incremental_nearest_generic(
        tree, node_key, point_key, points_key=points_key, mbrs_key=mbrs_key
    )
    for neighbor in stream:
        # neighbor.distance is |p q|; the stream is ascending in it, so the
        # first point failing Heuristic 1 terminates the whole search.
        if heuristic1_prunes_point(neighbor.distance, best.best_dist, centroid_distance, n):
            break
        if exclude is not None and neighbor.record_id in exclude:
            continue
        distance = query.distance_to_canonical(neighbor.point)
        tree.stats.record_distance_computations(n)
        best.offer(neighbor.record_id, neighbor.point, distance)


def _spm_best_first_flat(
    flat, query, centroid, centroid_distance, best, exclude=None
) -> None:
    """Flat-snapshot SPM: batched keys *and* batched aggregate distances.

    The stream scores whole leaf slices per pop and carries the exact
    ``dist(p, Q)`` of every emitted point (computed per leaf in one
    kernel call, bit-identical to the scalar evaluation — the kernel
    conformance suite pins this), so the consumer below is a pure-float
    loop: Heuristic 1 is inlined with the same arithmetic as
    :func:`~repro.core.heuristics.heuristic1_prunes_point`, offers are
    skipped only when they provably cannot enter the top-k (``offer``
    would return False), and the distance-computation charge — ``n`` per
    consumed neighbor, exactly as the object-tree loop charges — is
    accumulated and recorded once.
    """
    n = query.cardinality
    scorer = kernels.scorer_for(query.points, query.weights, query.aggregate, flat.capacity)

    if scorer is not None:
        # The stream tolist()s every key/aux batch before the next pop,
        # so the scorer's reused buffers are safe to hand out here.
        def points_key(points):
            return scorer.point_distances(points, centroid)

        def mbrs_key(lows, highs):
            return scorer.boxes_mindist_point(lows, highs, centroid)

        def points_aux(points):
            return scorer.group_sum_distances(points)

    else:

        def points_key(points):
            return kernels.point_distances(points, centroid)

        def mbrs_key(lows, highs):
            return kernels.boxes_mindist_point(lows, highs, centroid)

        def points_aux(points):
            return query.distances_to(points)

    stream = flat_incremental_nearest_generic(
        flat, points_key, mbrs_key, points_aux=points_aux
    )
    offer = best.offer
    consumed = 0
    best_dist = best.best_dist
    full = best.is_full()
    for neighbor in stream:
        if neighbor.distance >= (best_dist + centroid_distance) / n:
            break
        if exclude is not None and neighbor.record_id in exclude:
            continue
        consumed += 1
        distance = neighbor.aux
        if not full or distance < best_dist:
            offer(neighbor.record_id, neighbor.point, distance)
            best_dist = best.best_dist
            full = best.is_full()
    flat.stats.record_distance_computations(n * consumed)


def _spm_depth_first(
    tree, node, query, centroid, centroid_distance, best, exclude=None
) -> None:
    """Recursive depth-first SPM following Figure 3.4 of the paper."""
    n = query.cardinality
    node = tree.read_node(node)
    if node.is_leaf:
        centroid_dists = kernels.point_distances(node.points_array(), centroid)
        tree.stats.record_distance_computations(len(node.entries))
        for index in np.argsort(centroid_dists, kind="stable"):
            if heuristic1_prunes_point(
                float(centroid_dists[index]), best.best_dist, centroid_distance, n
            ):
                break
            entry = node.entries[index]
            if exclude is not None and entry.record_id in exclude:
                continue
            distance = query.distance_to_canonical(entry.point)
            tree.stats.record_distance_computations(n)
            best.offer(entry.record_id, entry.point, distance)
        return
    lows, highs = node.child_bounds()
    mindists = kernels.boxes_mindist_point(lows, highs, centroid)
    for index in np.argsort(mindists, kind="stable"):
        if heuristic1_prunes_node(
            float(mindists[index]), best.best_dist, centroid_distance, n
        ):
            break
        _spm_depth_first(
            tree, node.entries[index].child, query, centroid, centroid_distance, best, exclude
        )
