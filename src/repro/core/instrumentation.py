"""Cost tracking shared by every GNN algorithm.

Each algorithm wraps its work in a :class:`CostTracker`, which snapshots
the counters of the involved R-trees and I/O counters before the query
and reports the delta afterwards.  Using deltas (instead of resetting
the counters) lets callers run many queries against the same tree and
still aggregate workload-level statistics however they want.
"""

from __future__ import annotations

import time

from repro.core.types import QueryCost


class CostTracker:
    """Measures the cost of a single query across trees and I/O counters."""

    def __init__(self, algorithm: str, trees=(), io_counters=()):
        self.algorithm = algorithm
        self._trees = list(trees)
        self._io_counters = list(io_counters)
        self._tree_baselines = [tree.stats.snapshot() for tree in self._trees]
        self._io_baselines = [io.snapshot() for io in self._io_counters]
        self._started = time.perf_counter()
        self._extra_distance_computations = 0

    def charge_distance_computations(self, count: int) -> None:
        """Charge distance evaluations not attributable to a tree traversal."""
        self._extra_distance_computations += int(count)

    def finish(self) -> QueryCost:
        """Return the cost accumulated since the tracker was created."""
        cost = QueryCost(algorithm=self.algorithm)
        cost.cpu_time = time.perf_counter() - self._started
        for tree, baseline in zip(self._trees, self._tree_baselines):
            current = tree.stats.snapshot()
            cost.node_accesses += current["node_accesses"] - baseline["node_accesses"]
            cost.leaf_accesses += current["leaf_accesses"] - baseline["leaf_accesses"]
            cost.page_faults += current["page_faults"] - baseline["page_faults"]
            cost.distance_computations += (
                current["distance_computations"] - baseline["distance_computations"]
            )
        for io, baseline in zip(self._io_counters, self._io_baselines):
            current = io.snapshot()
            cost.page_reads += current["page_reads"] - baseline["page_reads"]
            cost.block_reads += current["block_reads"] - baseline["block_reads"]
        cost.distance_computations += self._extra_distance_computations
        return cost
