"""F-MBM — the file minimum bounding method (Section 4.3 of the paper).

F-MBM handles a disk-resident, non-indexed query set without performing
one query per block.  After the Hilbert sort, only the *summary* of each
block — its MBR ``M_i`` and cardinality ``n_i`` — is kept in memory.
The R-tree of ``P`` is traversed once:

* **Heuristic 5** prunes a node ``N`` when its *weighted mindist*
  ``sum_i n_i * mindist(N, M_i)`` reaches ``best_dist``.
* At a leaf, the surviving points accumulate their exact distances block
  by block; blocks are read in **descending** ``mindist(N, M_i)`` order
  so that far-away blocks get the chance to discard points early.
* **Heuristic 6** drops a point as soon as its accumulated distance plus
  the weighted mindist to the not-yet-read blocks reaches ``best_dist``.

Both best-first (used in the paper's experiments) and depth-first
traversals are provided.
"""

from __future__ import annotations

import heapq
import itertools

import numpy as np

from repro.core.heuristics import (
    heuristic5_prunes,
    heuristic5_prunes_batch,
    heuristic6_prunes,
    stack_summaries,
    weighted_mindist_batch,
)
from repro.core.instrumentation import CostTracker
from repro.core.types import BestList, GNNResult
from repro.geometry import kernels
from repro.rtree.tree import RTree
from repro.storage.pointfile import PointFile


def fmbm(
    tree: RTree,
    query_file: PointFile,
    k: int = 1,
    traversal: str = "best_first",
    charge_summary_scan: bool = False,
) -> GNNResult:
    """Run F-MBM over a disk-resident query file.

    Parameters
    ----------
    tree:
        R-tree over the dataset ``P``.
    query_file:
        The (Hilbert-sorted) query file.
    k:
        Number of group nearest neighbors to return.
    traversal:
        ``"best_first"`` (default, as in the paper's experiments) or
        ``"depth_first"`` (the pseudo-code of Figure 4.7).
    charge_summary_scan:
        The per-block summaries can be produced during the external sort
        the paper excludes from the measured cost; set this to True to
        charge the extra sequential scan anyway.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    if traversal not in ("best_first", "depth_first"):
        raise ValueError(f"unknown traversal {traversal!r}")
    tracker = CostTracker("F-MBM", trees=[tree], io_counters=[query_file.counters])
    best = BestList(k)
    if len(tree) == 0 or len(query_file) == 0:
        return GNNResult(neighbors=[], cost=tracker.finish())

    summaries = _collect_summaries(query_file, charge_summary_scan)
    stacked = stack_summaries(summaries)

    if traversal == "best_first":
        _fmbm_best_first(tree, query_file, summaries, stacked, best)
    else:
        _fmbm_depth_first(tree, tree.root, query_file, summaries, stacked, best)
    return GNNResult(neighbors=best.neighbors(), cost=tracker.finish())


def _collect_summaries(query_file: PointFile, charge_summary_scan: bool):
    """Build the in-memory (MBR, cardinality) summary of every block."""
    if charge_summary_scan:
        return query_file.block_summaries()
    # Build summaries without charging I/O: the scan piggybacks on the
    # external sort, whose cost the paper excludes.
    from repro.storage.pointfile import BlockSummary

    summaries = []
    charged = query_file.counters.snapshot()
    for block in query_file.iter_blocks():
        summaries.append(BlockSummary(block.index, block.mbr, block.cardinality))
    # Roll back the charges made by iter_blocks.
    query_file.counters.page_reads = charged["page_reads"]
    query_file.counters.block_reads = charged["block_reads"]
    return summaries


def _fmbm_best_first(tree, query_file, summaries, stacked, best) -> None:
    """Best-first traversal ordered by the weighted mindist of Heuristic 5.

    ``stacked`` holds the summaries' (lows, highs, cardinalities) arrays
    so each popped node scores its whole child list in one kernel call.
    """
    summary_lows, summary_highs, cardinalities = stacked
    counter = itertools.count()
    heap = [(0.0, next(counter), tree.root)]
    while heap:
        bound, _, node = heapq.heappop(heap)
        if best.is_full() and heuristic5_prunes(bound, best.best_dist):
            break
        node = tree.read_node(node)
        if node.is_leaf:
            _process_leaf(tree, node, query_file, summaries, stacked, best)
            continue
        lows, highs = node.child_bounds()
        child_bounds = weighted_mindist_batch(
            lows, highs, summary_lows, summary_highs, cardinalities
        )
        tree.stats.record_distance_computations(len(summaries) * len(node.entries))
        if best.is_full():
            survives = ~heuristic5_prunes_batch(child_bounds, best.best_dist)
        else:
            survives = np.ones(len(node.entries), dtype=bool)
        for index in np.flatnonzero(survives):
            heapq.heappush(
                heap, (float(child_bounds[index]), next(counter), node.entries[index].child)
            )


def _fmbm_depth_first(tree, node, query_file, summaries, stacked, best) -> None:
    """Depth-first traversal following Figure 4.7 of the paper."""
    summary_lows, summary_highs, cardinalities = stacked
    node = tree.read_node(node)
    if node.is_leaf:
        _process_leaf(tree, node, query_file, summaries, stacked, best)
        return
    lows, highs = node.child_bounds()
    bounds = weighted_mindist_batch(lows, highs, summary_lows, summary_highs, cardinalities)
    tree.stats.record_distance_computations(len(summaries) * len(node.entries))
    for index in np.argsort(bounds, kind="stable"):
        if best.is_full() and heuristic5_prunes(float(bounds[index]), best.best_dist):
            break
        _fmbm_depth_first(
            tree, node.entries[index].child, query_file, summaries, stacked, best
        )


def _process_leaf(tree, node, query_file, summaries, stacked, best) -> None:
    """Accumulate exact block distances for the points of one leaf node.

    Implements the leaf-level loop of Figure 4.7: points are ordered by
    weighted mindist (one kernel call for the whole leaf), blocks are
    read in descending ``mindist(N, M_i)`` order, Heuristic 6 drops
    points as soon as their optimistic completion can no longer beat
    ``best_dist``, and each block's exact distances are accumulated for
    all still-alive points in one kernel call.
    """
    summary_lows, summary_highs, cardinalities = stacked
    node_mbr = node.compute_mbr()
    coords = node.points_array()
    bounds = kernels.points_weighted_group_mindist(
        coords, summary_lows, summary_highs, cardinalities
    )
    tree.stats.record_distance_computations(len(summaries) * len(node.entries))
    # Survivors: list of [entry, accumulated_distance].
    survivors = []
    for index, entry in enumerate(node.entries):
        if best.is_full() and heuristic5_prunes(float(bounds[index]), best.best_dist):
            continue
        survivors.append([entry, 0.0])
    if not survivors:
        return

    # Blocks far from the leaf are processed first: they contribute large
    # distances and therefore prune points before the expensive
    # computations against the remaining blocks.
    ordered_blocks = sorted(
        summaries, key=lambda summary: node_mbr.mindist_mbr(summary.mbr), reverse=True
    )

    for position, summary in enumerate(ordered_blocks):
        if not survivors:
            return
        remaining = ordered_blocks[position + 1 :]
        block = query_file.read_block(summary.index)
        still_alive = [
            item
            for item in survivors
            if not (
                best.is_full()
                and heuristic6_prunes(
                    item[0].point, item[1], [summary] + remaining, best.best_dist
                )
            )
        ]
        if still_alive:
            stacked_points = np.array([item[0].point for item in still_alive])
            contributions = kernels.aggregate_distances(stacked_points, block.points)
            tree.stats.record_distance_computations(block.cardinality * len(still_alive))
            for item, contribution in zip(still_alive, contributions):
                item[1] += float(contribution)
        survivors = still_alive

    for entry, accumulated in survivors:
        best.offer(entry.record_id, entry.point, accumulated)
