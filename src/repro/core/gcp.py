"""GCP — the group closest pairs method (Section 4.1 of the paper).

GCP handles a disk-resident query set that is *indexed* by its own
R-tree.  It consumes an incremental closest-pair stream between the data
tree and the query tree; every emitted pair ``(p_i, q_j)`` contributes
``|p_i q_j|`` to the accumulated distance of ``p_i``.  When a data point
has appeared in ``n`` pairs its aggregate distance is complete and it is
a candidate result.

Two mechanisms bound the work:

* **Heuristic 4** — a partially-seen point ``p`` is discarded when even
  the optimistic completion ``(n - counter(p)) * dist(p_i, q_j) +
  curr_dist(p)`` reaches ``best_dist`` (the stream is non-decreasing, so
  every unseen distance of ``p`` is at least the current pair distance).
* **Global threshold T** — the maximum per-candidate threshold
  ``t = (best_dist - curr_dist) / (n - counter)``; once the emitted pair
  distance reaches ``T`` no candidate can improve, so GCP stops.
"""

from __future__ import annotations

from repro.core.heuristics import gcp_candidate_threshold, heuristic4_prunes
from repro.core.instrumentation import CostTracker
from repro.core.types import BestList, GNNResult, QueryCost
from repro.rtree.closest_pairs import incremental_closest_pairs
from repro.rtree.tree import RTree


class _Candidate:
    """Book-keeping for a data point that is still accumulating distances."""

    __slots__ = ("point", "pair_count", "accumulated")

    def __init__(self, point):
        self.point = point
        self.pair_count = 0
        self.accumulated = 0.0


def gcp(data_tree: RTree, query_tree: RTree, k: int = 1, max_pairs: int | None = None) -> GNNResult:
    """Run the group closest pairs method.

    Parameters
    ----------
    data_tree:
        R-tree over the dataset ``P``.
    query_tree:
        R-tree over the query set ``Q`` (both disk-resident in the
        paper's setting).
    k:
        Number of group nearest neighbors to return.
    max_pairs:
        Optional safety valve: abort after this many emitted pairs.  The
        paper observes that GCP may effectively not terminate when the
        query workspace is large relative to the data workspace; the
        experiment harness uses this cap to reproduce that observation
        without hanging.  ``None`` (default) means no cap.

    Notes
    -----
    ``best_dist`` only becomes finite after ``k`` points have complete
    distances, so candidate pruning (Heuristic 4) starts at that moment,
    exactly as stated in the paper for the kNN extension.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    tracker = CostTracker("GCP", trees=[data_tree, query_tree])
    best = BestList(k)
    n = len(query_tree)
    if len(data_tree) == 0 or n == 0:
        return GNNResult(neighbors=[], cost=tracker.finish())

    candidates: dict[int, _Candidate] = {}
    completed: set[int] = set()
    threshold = 0.0
    pairs_emitted = 0
    terminated_by_cap = False

    for pair in incremental_closest_pairs(data_tree, query_tree):
        pairs_emitted += 1
        if max_pairs is not None and pairs_emitted > max_pairs:
            terminated_by_cap = True
            break
        record_id = pair.data_id
        pair_distance = pair.distance

        if record_id in completed:
            # Global distance already known; nothing further to learn.
            pass
        elif record_id not in candidates:
            # First encounter: only qualifies while fewer than k complete
            # neighbors exist (afterwards it cannot beat them — every one
            # of its n distances is at least the current pair distance).
            if not best.is_full():
                candidate = _Candidate(pair.data_point)
                candidate.pair_count = 1
                candidate.accumulated = pair_distance
                candidates[record_id] = candidate
        else:
            candidate = candidates[record_id]
            candidate.pair_count += 1
            candidate.accumulated += pair_distance
            if candidate.pair_count == n:
                completed.add(record_id)
                del candidates[record_id]
                improved = best.offer(record_id, candidate.point, candidate.accumulated)
                if improved and best.is_full():
                    threshold = _reprune(candidates, completed, n, pair_distance, best)
            elif best.is_full():
                if heuristic4_prunes(
                    n, candidate.pair_count, pair_distance, candidate.accumulated, best.best_dist
                ):
                    del candidates[record_id]
                else:
                    candidate_threshold = gcp_candidate_threshold(
                        n, candidate.pair_count, candidate.accumulated, best.best_dist
                    )
                    threshold = max(threshold, candidate_threshold)

        # Termination condition of Figure 4.2: a complete NN exists and
        # either no candidate can still improve or the pair distance
        # passed the global threshold.
        if best.is_full() and (pair_distance >= threshold or not candidates):
            break

    cost = tracker.finish()
    if terminated_by_cap:
        cost.algorithm = "GCP (aborted at pair cap)"
    return GNNResult(neighbors=best.neighbors(), cost=cost)


def _reprune(candidates, completed, n, pair_distance, best) -> float:
    """Re-apply Heuristic 4 to every candidate after ``best_dist`` improved.

    Returns the recomputed global threshold T (the maximum candidate
    threshold).  Points that fail the heuristic leave the qualifying list
    — if the stream meets them again they are treated as new (and
    discarded, since a complete result already exists).
    """
    threshold = 0.0
    best_dist = best.best_dist
    for record_id in list(candidates):
        candidate = candidates[record_id]
        if heuristic4_prunes(
            n, candidate.pair_count, pair_distance, candidate.accumulated, best_dist
        ):
            del candidates[record_id]
            continue
        threshold = max(
            threshold,
            gcp_candidate_threshold(n, candidate.pair_count, candidate.accumulated, best_dist),
        )
    return threshold
