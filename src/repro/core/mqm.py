"""MQM — the multiple query method (Section 3.1 of the paper).

MQM adapts the threshold algorithm of [FLN01] to GNN search: it runs an
*incremental* conventional NN query for every point ``q_i`` of ``Q`` and
combines the per-query streams.  Each stream ``i`` maintains a threshold
``t_i`` equal to the distance of its last retrieved neighbor; the global
threshold ``T = sum_i t_i`` lower-bounds the aggregate distance of every
point not yet encountered, so the algorithm can stop as soon as
``T >= best_dist``.

Query points are visited round-robin after being sorted by Hilbert value
so that consecutive NN searches touch nearby R-tree nodes (improving
buffer locality, as discussed in the paper's experiments).

Two implementations share that driver logic:

* the **object path** runs ``n`` independent
  :func:`~repro.rtree.traversal.incremental_nearest` generators — the
  reference implementation, kept verbatim;
* the **flat path** (:class:`~repro.rtree.flat.FlatRTree`) drives all
  ``n`` frontiers through one
  :class:`~repro.rtree.traversal.MultiStreamFrontier`: per-query-point
  state lives in struct-of-arrays form, each visited node is scored for
  *all* streams in a single ``(n, fanout)`` kernel call, and the exact
  aggregate distance of every emitted neighbor falls out of the same
  shared matrix.  Results, node-access and distance-computation
  counters, and any attached LRU buffer's hit/miss sequence are
  bit-identical to the object path; only the Python overhead per
  retrieval changes.
"""

from __future__ import annotations

from repro.geometry.hilbert import hilbert_sort
from repro.core.instrumentation import CostTracker
from repro.core.types import BestList, GNNResult, GroupQuery
from repro.rtree.flat import FlatRTree
from repro.rtree.traversal import MultiStreamFrontier, incremental_nearest
from repro.rtree.tree import RTree

#: One unit in the last place of a float64 near 1.0, doubled for slack.
#: Used by the flat driver's threshold-sum screen (see ``_mqm_flat``).
_TWO_ULP = 4.5e-16


def mqm(
    tree: RTree | FlatRTree, query: GroupQuery, exclude: frozenset | set | None = None
) -> GNNResult:
    """Run the multiple query method and return the k group nearest neighbors.

    Parameters
    ----------
    tree:
        R-tree over the dataset ``P``; a flat snapshot
        (:class:`~repro.rtree.flat.FlatRTree`) is accepted and the
        per-query-point streams then run as one vectorized multi-stream
        frontier over its arrays, with identical results and accounting.
    query:
        The query group; ``query.aggregate`` must be ``"sum"`` — the
        threshold argument relies on the additivity of the aggregate
        (the paper only defines MQM for the sum).
    exclude:
        Optional set of record ids that must never enter the result —
        the delta overlay's tombstones.  Excluded records still advance
        the per-stream thresholds (they are real points of the index),
        they are only barred from the best list, so the threshold
        termination argument is unchanged.
    """
    if query.aggregate != "sum":
        raise ValueError("MQM is only defined for the sum aggregate")
    if query.weights is not None:
        raise ValueError("MQM does not support weighted queries; use MBM instead")
    tracker = CostTracker("MQM", trees=[tree])
    best = BestList(query.k)

    if len(tree) == 0:
        return GNNResult(neighbors=[], cost=tracker.finish())

    if isinstance(tree, FlatRTree):
        _mqm_flat(tree, query, best, exclude)
    else:
        _mqm_object(tree, query, best, exclude)
    return GNNResult(neighbors=best.neighbors(), cost=tracker.finish())


def _mqm_object(
    tree: RTree, query: GroupQuery, best: BestList, exclude=None
) -> None:
    """The generator-per-stream reference implementation (object tree)."""
    # Sort query points by Hilbert value for locality of node accesses.
    order = hilbert_sort(query.points)
    query_points = query.points[order]
    n = query.cardinality

    streams = [incremental_nearest(tree, q) for q in query_points]
    thresholds = [0.0] * n
    exhausted = [False] * n
    seen_distances: dict[int, float] = {}

    while True:
        threshold_total = sum(thresholds)
        if best.is_full() and threshold_total >= best.best_dist:
            break
        if all(exhausted):
            break
        progressed = False
        for i in range(n):
            if exhausted[i]:
                continue
            neighbor = next(streams[i], None)
            if neighbor is None:
                exhausted[i] = True
                continue
            progressed = True
            thresholds[i] = neighbor.distance
            record_id = neighbor.record_id
            # Tombstoned records advance the stream's threshold but are
            # barred from the best list (and not charged a distance).
            if exclude is None or record_id not in exclude:
                if record_id in seen_distances:
                    distance = seen_distances[record_id]
                else:
                    distance = query.distance_to_canonical(neighbor.point)
                    tree.stats.record_distance_computations(n)
                    seen_distances[record_id] = distance
                best.offer(record_id, neighbor.point, distance)
            # Re-check the termination condition after every retrieval,
            # exactly as in the paper's pseudo-code (Figure 3.2).
            if best.is_full() and sum(thresholds) >= best.best_dist:
                break
        if not progressed:
            break


def _mqm_flat(
    flat: FlatRTree, query: GroupQuery, best: BestList, exclude=None
) -> None:
    """Multi-stream MQM over a flat snapshot.

    One :class:`MultiStreamFrontier` replaces the ``n`` generators; the
    round-robin driver below otherwise replays :func:`_mqm_object`
    decision for decision.  Two reference-path operations are elided
    because they are provably without effect and their cost is exactly
    what this path removes:

    * re-``offer``\\ ing an already-seen record id never changes the
      best list (``BestList.offer`` rejects members, and an evicted
      member's distance can never beat the shrunken ``best_dist``), so
      only first-seen records are offered;
    * the per-record ``distance_to_canonical`` call is replaced by the
      frontier's shared per-leaf aggregate (bit-identical floats), and
      the ``n``-per-new-record distance-computation charges are summed
      into one batched charge with the same total.

    The termination decision is bit-identical to the reference path's
    ``sum(thresholds) >= best_dist`` after every retrieval, but the
    left-to-right sum itself is usually *screened away*: the driver
    maintains an incremental total whose distance from the exact sum is
    provably below ``slack * (total + best_dist + 1)`` (the incremental
    float drifts at most two ulp per update and the exact sum at most
    one ulp per element, so ``slack`` grows by ``2 ulp`` per retrieval
    from an initial ``(n + 4) ulp``).  While the screened total plus
    that error bound stays below ``best_dist``, the exact sum cannot
    reach it either and is skipped; inside the guard band the exact sum
    is computed and compared, so the break happens at the identical
    retrieval.
    """
    order = hilbert_sort(query.points)
    n = query.cardinality
    frontier = MultiStreamFrontier(flat, query.points)
    # Stream s of the round-robin is the frontier of original query
    # point order[s]; the frontier indexes by original position so the
    # shared aggregate sums query points in canonical order.
    stream_of = order.tolist()
    advance = frontier.advance
    segs = frontier.segs
    agg_by_row = frontier.agg_by_row
    points = flat.points
    offer = best.offer

    thresholds = [0.0] * n
    exhausted = [False] * n
    seen: set[int] = set()
    new_records = 0
    best_dist = best.best_dist
    full = best.is_full()
    total = 0.0                       # incremental sum(thresholds)
    slack = (n + 4.0) * _TWO_ULP      # relative error budget of the screen

    while True:
        threshold_total = sum(thresholds)
        if full and threshold_total >= best_dist:
            break
        if all(exhausted):
            break
        progressed = False
        for i in range(n):
            if exhausted[i]:
                continue
            stream = stream_of[i]
            seg = segs[stream]
            pos = seg[0]
            if pos < seg[1]:
                # Inline emission: the active segment strictly precedes
                # every node bound left in the stream's frontier.
                seg[0] = pos + 1
                key = seg[2][pos]
                row = seg[3][pos]
                record_id = seg[4][pos]
            else:
                emitted = advance(stream)
                if emitted is None:
                    exhausted[i] = True
                    continue
                key, row, record_id = emitted
            progressed = True
            total += key - thresholds[i]
            thresholds[i] = key
            slack += _TWO_ULP
            if record_id not in seen:
                seen.add(record_id)
                if exclude is None or record_id not in exclude:
                    new_records += 1
                    offer(record_id, points[row], float(agg_by_row[row]))
                    best_dist = best.best_dist
                    full = best.is_full()
            if (
                full
                and total + slack * (total + best_dist + 1.0) >= best_dist
                and sum(thresholds) >= best_dist
            ):
                break
        if not progressed:
            break
    flat.stats.record_distance_computations(n * new_records)
