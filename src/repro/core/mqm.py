"""MQM — the multiple query method (Section 3.1 of the paper).

MQM adapts the threshold algorithm of [FLN01] to GNN search: it runs an
*incremental* conventional NN query for every point ``q_i`` of ``Q`` and
combines the per-query streams.  Each stream ``i`` maintains a threshold
``t_i`` equal to the distance of its last retrieved neighbor; the global
threshold ``T = sum_i t_i`` lower-bounds the aggregate distance of every
point not yet encountered, so the algorithm can stop as soon as
``T >= best_dist``.

Query points are visited round-robin after being sorted by Hilbert value
so that consecutive NN searches touch nearby R-tree nodes (improving
buffer locality, as discussed in the paper's experiments).
"""

from __future__ import annotations

from repro.geometry.hilbert import hilbert_sort
from repro.core.instrumentation import CostTracker
from repro.core.types import BestList, GNNResult, GroupQuery
from repro.rtree.flat import FlatRTree
from repro.rtree.traversal import incremental_nearest
from repro.rtree.tree import RTree


def mqm(tree: RTree | FlatRTree, query: GroupQuery) -> GNNResult:
    """Run the multiple query method and return the k group nearest neighbors.

    Parameters
    ----------
    tree:
        R-tree over the dataset ``P``; a flat snapshot
        (:class:`~repro.rtree.flat.FlatRTree`) is accepted and the
        per-query-point incremental streams then run entirely over its
        arrays, with identical results and accounting.
    query:
        The query group; ``query.aggregate`` must be ``"sum"`` — the
        threshold argument relies on the additivity of the aggregate
        (the paper only defines MQM for the sum).
    """
    if query.aggregate != "sum":
        raise ValueError("MQM is only defined for the sum aggregate")
    if query.weights is not None:
        raise ValueError("MQM does not support weighted queries; use MBM instead")
    tracker = CostTracker("MQM", trees=[tree])
    best = BestList(query.k)

    if len(tree) == 0:
        return GNNResult(neighbors=[], cost=tracker.finish())

    # Sort query points by Hilbert value for locality of node accesses.
    order = hilbert_sort(query.points)
    query_points = query.points[order]
    n = query.cardinality

    streams = [incremental_nearest(tree, q) for q in query_points]
    thresholds = [0.0] * n
    exhausted = [False] * n
    seen_distances: dict[int, float] = {}

    while True:
        threshold_total = sum(thresholds)
        if best.is_full() and threshold_total >= best.best_dist:
            break
        if all(exhausted):
            break
        progressed = False
        for i in range(n):
            if exhausted[i]:
                continue
            neighbor = next(streams[i], None)
            if neighbor is None:
                exhausted[i] = True
                continue
            progressed = True
            thresholds[i] = neighbor.distance
            record_id = neighbor.record_id
            if record_id in seen_distances:
                distance = seen_distances[record_id]
            else:
                distance = query.distance_to_canonical(neighbor.point)
                tree.stats.record_distance_computations(n)
                seen_distances[record_id] = distance
            best.offer(record_id, neighbor.point, distance)
            # Re-check the termination condition after every retrieval,
            # exactly as in the paper's pseudo-code (Figure 3.2).
            if best.is_full() and sum(thresholds) >= best.best_dist:
                break
        if not progressed:
            break

    return GNNResult(neighbors=best.neighbors(), cost=tracker.finish())
