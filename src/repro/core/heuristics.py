"""The paper's pruning heuristics as standalone, unit-testable predicates.

Each function returns ``True`` when the candidate (node or point) can be
*pruned*, i.e. it provably cannot improve on the current ``best_dist``.
The algorithms in this package call these predicates rather than
inlining the inequalities, so the exact conditions of the paper are
visible in one place and covered by dedicated tests (including the
property-based ones that check they never prune the true answer).

Two deliberate exceptions: the flat-snapshot consumption loops —
``repro.core.mbm._process_leaf_flat`` (Heuristic 2) and
``repro.core.spm._spm_best_first_flat`` (Heuristic 1) — replicate the
inequality inline because a predicate call per candidate is exactly the
per-item overhead those loops exist to remove.  **Any change to the
comparisons in** :func:`heuristic1_prunes_point` **or**
:func:`heuristic2_prunes` **must be mirrored there**; the
``flat-conformance`` CI job (bit-identical answers and pinned counters,
object vs flat) is the backstop that catches a divergence.

Numbering follows the paper:

* Heuristic 1 — SPM, centroid-based node pruning (Section 3.2)
* Heuristic 2 — MBM, query-MBR node pruning (Section 3.3)
* Heuristic 3 — MBM, per-query-point mindist pruning (Section 3.3)
* Heuristic 4 — GCP, partial-distance pruning (Section 4.1)
* Heuristic 5 — F-MBM, weighted-mindist node pruning (Section 4.3)
* Heuristic 6 — F-MBM, per-point remaining-group pruning (Section 4.3)

Lemma 1 (the triangle-inequality bound behind Heuristic 1) is also
exposed for direct testing.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.geometry import kernels
from repro.geometry.distance import euclidean, group_distance
from repro.geometry.mbr import MBR


def lemma1_lower_bound(point, reference, group, reference_distance: float | None = None) -> float:
    """Lower bound on ``dist(p, Q)`` from Lemma 1: ``n*|pq| - dist(q, Q)``.

    ``reference`` is the arbitrary point ``q`` (SPM uses the approximate
    centroid); ``reference_distance`` caches ``dist(q, Q)`` when the
    caller already knows it.
    """
    group = np.asarray(group, dtype=np.float64)
    n = group.shape[0]
    if reference_distance is None:
        reference_distance = group_distance(reference, group)
    return n * euclidean(point, reference) - reference_distance


def heuristic1_prunes_node(
    mindist_node_centroid: float,
    best_dist: float,
    centroid_group_distance: float,
    group_cardinality: int,
) -> bool:
    """Heuristic 1: prune node N when ``mindist(N, q) >= (best_dist + dist(q, Q)) / n``."""
    if group_cardinality < 1:
        raise ValueError("the query group must contain at least one point")
    bound = (best_dist + centroid_group_distance) / group_cardinality
    return mindist_node_centroid >= bound


def heuristic1_prunes_point(
    distance_point_centroid: float,
    best_dist: float,
    centroid_group_distance: float,
    group_cardinality: int,
) -> bool:
    """Heuristic 1 applied at the leaf level: prune point p when ``|pq| >= (best_dist + dist(q, Q)) / n``."""
    return heuristic1_prunes_node(
        distance_point_centroid, best_dist, centroid_group_distance, group_cardinality
    )


def heuristic2_prunes(mindist_to_query_mbr: float, best_dist: float, group_cardinality: float) -> bool:
    """Heuristic 2: prune node (or point) when ``mindist(N, M) >= best_dist / n``.

    ``group_cardinality`` generalises to the total weight for weighted
    queries, so any positive value is accepted.
    """
    if group_cardinality <= 0:
        raise ValueError("the query group must have positive cardinality/weight")
    return mindist_to_query_mbr >= best_dist / group_cardinality


def heuristic2_prunes_batch(
    mindists_to_query_mbr: np.ndarray, best_dist: float, group_cardinality: float
) -> np.ndarray:
    """Vectorised :func:`heuristic2_prunes` for an array of mindists."""
    if group_cardinality <= 0:
        raise ValueError("the query group must have positive cardinality/weight")
    return mindists_to_query_mbr >= best_dist / group_cardinality


def heuristic3_prunes(mbr: MBR, query_points: np.ndarray, best_dist: float) -> bool:
    """Heuristic 3: prune node N when ``sum_i mindist(N, q_i) >= best_dist``."""
    total = float(mbr.mindist_points(query_points).sum())
    return total >= best_dist


def heuristic3_prunes_precomputed(summed_mindist: float, best_dist: float) -> bool:
    """Heuristic 3 when the caller already summed the per-query mindists."""
    return summed_mindist >= best_dist


def heuristic3_prunes_batch(summed_mindists: np.ndarray, best_dist: float) -> np.ndarray:
    """Vectorised :func:`heuristic3_prunes_precomputed` for an array of bounds."""
    return summed_mindists >= best_dist


def heuristic4_prunes(
    group_cardinality: int,
    pair_count: int,
    current_pair_distance: float,
    accumulated_distance: float,
    best_dist: float,
) -> bool:
    """Heuristic 4 (GCP): prune candidate p when

    ``(n - counter(p)) * dist(p_i, q_j) + curr_dist(p) >= best_dist``.

    ``current_pair_distance`` is the distance of the closest pair just
    emitted; every not-yet-seen distance of ``p`` is at least that large
    because the stream is non-decreasing.
    """
    remaining = group_cardinality - pair_count
    if remaining < 0:
        raise ValueError("pair_count cannot exceed the group cardinality")
    return remaining * current_pair_distance + accumulated_distance >= best_dist


def gcp_candidate_threshold(
    group_cardinality: int,
    pair_count: int,
    accumulated_distance: float,
    best_dist: float,
) -> float:
    """Per-candidate threshold ``t_i = (best_dist - curr_dist) / (n - counter)`` of GCP.

    The global threshold T is the maximum of these values over the
    qualifying list; GCP stops once the emitted pair distance reaches T.
    """
    remaining = group_cardinality - pair_count
    if remaining <= 0:
        raise ValueError("the candidate already has a complete distance")
    return (best_dist - accumulated_distance) / remaining


def stack_summaries(block_summaries) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Stack block summaries into (lows, highs, cardinalities) kernel inputs."""
    lows = np.array([summary.mbr.low for summary in block_summaries], dtype=np.float64)
    highs = np.array([summary.mbr.high for summary in block_summaries], dtype=np.float64)
    cards = np.array([summary.cardinality for summary in block_summaries], dtype=np.float64)
    return lows, highs, cards


def weighted_mindist(mbr_or_point, block_summaries) -> float:
    """The weighted mindist of Heuristic 5: ``sum_i n_i * mindist(N, M_i)``.

    Accepts either an :class:`~repro.geometry.mbr.MBR` (node pruning) or
    a point (leaf-level ordering in F-MBM).  The batched form used on the
    hot path is :func:`weighted_mindist_batch`.
    """
    lows, highs, cards = stack_summaries(block_summaries)
    if isinstance(mbr_or_point, MBR):
        values = kernels.boxes_weighted_group_mindist(
            mbr_or_point.low[None, :], mbr_or_point.high[None, :], lows, highs, cards
        )
    else:
        point = np.asarray(mbr_or_point, dtype=np.float64)
        values = kernels.points_weighted_group_mindist(point[None, :], lows, highs, cards)
    return float(values[0])


def weighted_mindist_batch(
    lows: np.ndarray,
    highs: np.ndarray,
    summary_lows: np.ndarray,
    summary_highs: np.ndarray,
    cardinalities: np.ndarray,
) -> np.ndarray:
    """Heuristic-5 weighted mindist for a whole child list in one kernel call."""
    return kernels.boxes_weighted_group_mindist(
        lows, highs, summary_lows, summary_highs, cardinalities
    )


def heuristic5_prunes(weighted_mindist_value: float, best_dist: float) -> bool:
    """Heuristic 5 (F-MBM): prune node N when its weighted mindist reaches ``best_dist``."""
    return weighted_mindist_value >= best_dist


def heuristic5_prunes_batch(weighted_mindists: np.ndarray, best_dist: float) -> np.ndarray:
    """Vectorised :func:`heuristic5_prunes` for an array of weighted mindists."""
    return weighted_mindists >= best_dist


def heuristic6_prunes(
    point,
    accumulated_distance: float,
    remaining_summaries: Sequence,
    best_dist: float,
) -> bool:
    """Heuristic 6 (F-MBM): prune point p when

    ``curr_dist(p) + sum_{remaining i} n_i * mindist(p, M_i) >= best_dist``.

    ``remaining_summaries`` are the blocks whose exact distances have not
    been accumulated into ``accumulated_distance`` yet.
    """
    bound = accumulated_distance
    for summary in remaining_summaries:
        bound += summary.cardinality * summary.mbr.mindist_point(point)
        if bound >= best_dist:
            return True
    return bound >= best_dist
