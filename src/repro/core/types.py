"""Shared result and query types for the GNN algorithms.

The symbols mirror Table 3.1 of the paper:

=====================  =====================================================
``Q``                  set of query points (:class:`GroupQuery`)
``n``                  number of query points (``GroupQuery.cardinality``)
``M``                  MBR of Q (``GroupQuery.mbr``)
``q``                  centroid of Q (``GroupQuery.centroid``)
``dist(p, Q)``         aggregate distance (``GroupQuery.distance_to``)
``best_dist``          k-th best distance found so far (``BestList.best_dist``)
=====================  =====================================================
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from repro.geometry import kernels
from repro.geometry.distance import SUM, _check_weights, _fast_point
from repro.geometry.mbr import MBR
from repro.geometry.point import as_points


class GroupQuery:
    """A group nearest neighbor query.

    Parameters
    ----------
    points:
        The query group ``Q`` as an ``(n, dims)`` array.
    k:
        Number of group nearest neighbors to retrieve.
    aggregate:
        ``"sum"`` (the paper's definition), ``"max"`` or ``"min"``.
    weights:
        Optional per-query-point weights (extension feature).
    """

    def __init__(self, points, k: int = 1, aggregate: str = SUM, weights=None):
        self.points = as_points(points)
        if k < 1:
            raise ValueError("k must be at least 1")
        self.k = int(k)
        self.aggregate = aggregate
        # Validate once here so the per-candidate kernel calls can skip it.
        self.weights = None if weights is None else _check_weights(weights, self.points.shape[0])
        self._mbr: MBR | None = None
        self._centroid: np.ndarray | None = None

    @property
    def cardinality(self) -> int:
        """Number of query points ``n``."""
        return self.points.shape[0]

    @property
    def dims(self) -> int:
        """Dimensionality of the query points."""
        return self.points.shape[1]

    @property
    def mbr(self) -> MBR:
        """Minimum bounding rectangle ``M`` of the query group (cached)."""
        if self._mbr is None:
            self._mbr = MBR.from_points(self.points)
        return self._mbr

    def distance_to(self, point) -> float:
        """Aggregate distance ``dist(p, Q)`` from a data point to the group."""
        point = _fast_point(point, dims=self.dims)
        return self.distance_to_canonical(point)

    def distance_to_canonical(self, point: np.ndarray) -> float:
        """:meth:`distance_to` for a point that is already canonical.

        The caller vouches that ``point`` is a finite float64 ``(dims,)``
        array — e.g. one stored in an R-tree leaf, which was validated on
        insertion.  The algorithms use this on their per-candidate hot
        path; user-facing code should call :meth:`distance_to`.
        """
        dists = kernels.point_distances(self.points, point)
        return float(kernels.reduce_aggregate(dists, self.aggregate, self.weights))

    def distances_to(self, points: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`distance_to` for a ``(count, dims)`` candidate array."""
        return kernels.aggregate_distances(
            points, self.points, weights=self.weights, aggregate=self.aggregate
        )

    def mindist_lower_bound(self, mbr: MBR) -> float:
        """Lower bound of ``dist(p, Q)`` over all points ``p`` inside ``mbr``."""
        dists = kernels.points_mindist_box(self.points, mbr.low, mbr.high)
        return float(kernels.reduce_aggregate(dists, self.aggregate, self.weights))

    def mindist_lower_bounds(self, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`mindist_lower_bound` for arrays of node rectangles."""
        return kernels.boxes_group_mindist(
            lows, highs, self.points, weights=self.weights, aggregate=self.aggregate
        )

    def total_weight(self) -> float:
        """Sum of weights (``n`` when the query is unweighted)."""
        if self.weights is None:
            return float(self.cardinality)
        return float(self.weights.sum())

    def __len__(self) -> int:
        return self.cardinality

    def __repr__(self) -> str:
        return (
            f"GroupQuery(n={self.cardinality}, k={self.k}, dims={self.dims}, "
            f"aggregate={self.aggregate!r})"
        )


class GroupNeighbor:
    """One GNN result: a data point and its aggregate distance to ``Q``."""

    __slots__ = ("record_id", "point", "distance")

    def __init__(self, record_id: int, point: np.ndarray, distance: float):
        self.record_id = int(record_id)
        self.point = point
        self.distance = float(distance)

    def as_tuple(self) -> tuple[int, float]:
        """Return ``(record_id, distance)``; convenient for comparisons in tests."""
        return (self.record_id, self.distance)

    def __repr__(self) -> str:
        return f"GroupNeighbor(id={self.record_id}, distance={self.distance:.6g})"


class BestList:
    """Running list of the ``k`` best group neighbors found so far.

    ``best_dist`` is the distance of the k-th best neighbor, or infinity
    while fewer than ``k`` neighbors have been seen — exactly the pruning
    bound every heuristic of the paper compares against.
    """

    def __init__(self, k: int):
        if k < 1:
            raise ValueError("k must be at least 1")
        self.k = int(k)
        # max-heap on distance, emulated by negating distances
        self._heap: list[tuple[float, int, GroupNeighbor]] = []
        self._members: set[int] = set()

    @property
    def best_dist(self) -> float:
        """Distance of the k-th best neighbor (infinity until k have been found)."""
        if len(self._heap) < self.k:
            return float("inf")
        return -self._heap[0][0]

    def offer(self, record_id: int, point: np.ndarray, distance: float) -> bool:
        """Consider a candidate; return True when it enters the current top-k.

        Duplicate record ids are ignored (a point encountered through two
        different search paths must not occupy two result slots).
        """
        if record_id in self._members:
            return False
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, (-distance, record_id, GroupNeighbor(record_id, point, distance)))
            self._members.add(record_id)
            return True
        if distance >= self.best_dist:
            return False
        _, evicted_id, _ = heapq.heapreplace(
            self._heap, (-distance, record_id, GroupNeighbor(record_id, point, distance))
        )
        self._members.discard(evicted_id)
        self._members.add(record_id)
        return True

    def __len__(self) -> int:
        return len(self._heap)

    def __contains__(self, record_id: int) -> bool:
        return record_id in self._members

    def is_full(self) -> bool:
        """True once ``k`` neighbors have been collected."""
        return len(self._heap) >= self.k

    def neighbors(self) -> list[GroupNeighbor]:
        """Return the collected neighbors sorted by ascending distance."""
        ordered = sorted(self._heap, key=lambda item: (-item[0], item[1]))
        return [item[2] for item in ordered]


@dataclass
class QueryCost:
    """Cost metrics of one executed query, matching the paper's reporting.

    ``node_accesses`` and ``cpu_time`` are the two series plotted in every
    figure of Section 5; the remaining counters add detail that helps
    explain them (and are used by the ablation benches).
    """

    algorithm: str = ""
    node_accesses: int = 0
    leaf_accesses: int = 0
    page_faults: int = 0
    distance_computations: int = 0
    page_reads: int = 0
    block_reads: int = 0
    cpu_time: float = 0.0

    def as_dict(self) -> dict[str, float]:
        """Return the metrics as a plain dictionary (used by the report writer)."""
        return {
            "algorithm": self.algorithm,
            "node_accesses": self.node_accesses,
            "leaf_accesses": self.leaf_accesses,
            "page_faults": self.page_faults,
            "distance_computations": self.distance_computations,
            "page_reads": self.page_reads,
            "block_reads": self.block_reads,
            "cpu_time": self.cpu_time,
        }


@dataclass
class GNNResult:
    """The outcome of a GNN query: the neighbors plus the cost of finding them.

    ``plan`` is attached by the executor when the spec asked for tracing
    (``QuerySpec(trace=True)``); it carries the planner's algorithm
    choice, rationale and cost estimate alongside the measured cost.
    ``trace_id`` is set by the executor and the shard coordinator when
    distributed tracing (:mod:`repro.obs.trace`) is enabled, linking the
    result to its span tree.
    """

    neighbors: list[GroupNeighbor] = field(default_factory=list)
    cost: QueryCost = field(default_factory=QueryCost)
    plan: object | None = None
    trace_id: str | None = None

    @property
    def best(self) -> GroupNeighbor | None:
        """The single best group nearest neighbor (None for an empty dataset)."""
        return self.neighbors[0] if self.neighbors else None

    def distances(self) -> list[float]:
        """Distances of the returned neighbors in ascending order."""
        return [neighbor.distance for neighbor in self.neighbors]

    def record_ids(self) -> list[int]:
        """Record ids of the returned neighbors in ascending distance order."""
        return [neighbor.record_id for neighbor in self.neighbors]

    def __repr__(self) -> str:
        return (
            f"GNNResult(k={len(self.neighbors)}, best={self.best}, "
            f"algorithm={self.cost.algorithm!r})"
        )
