"""Append-only point storage backing the engine's mutable write path.

The engine used to keep the dataset as a bare ``(N, dims)`` array and
``np.vstack`` a fresh copy on every insert — O(n²) ingest — while record
ids were assigned as ``len(points)``, which collides with a live record
after any deletion.  :class:`PointStore` fixes both: points land in an
amortised capacity-doubling buffer (appends are O(1) amortised), record
ids are allocated from a monotonic counter and never reused, and deletes
only flip a liveness bit so every historical id keeps meaning the same
point forever.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.point import as_points

#: Smallest buffer allocation; doubling starts from here for empty stores.
_INITIAL_ROWS = 16


class PointStore:
    """Amortised append-only ``(rows, dims)`` storage with a deletion mask.

    Rows are immutable once appended.  ``live_points()`` is the read
    surface: it returns the live dataset and (when they differ from the
    row positions) the matching record ids, cached until the next
    mutation, so query paths pay the compaction cost once per write
    burst instead of once per query.
    """

    def __init__(self, points=None, record_ids=None, dims: int | None = None):
        if points is not None:
            pts = as_points(points)
            count, dims = pts.shape
        else:
            if dims is None:
                raise ValueError("PointStore needs initial points or an explicit dims")
            count = 0
            pts = np.empty((0, int(dims)), dtype=np.float64)
        self.dims = int(dims)
        rows = max(_INITIAL_ROWS, count)
        self._data = np.empty((rows, self.dims), dtype=np.float64)
        self._data[:count] = pts
        self._ids = np.empty(rows, dtype=np.int64)
        self._live = np.ones(rows, dtype=bool)
        self._count = count
        self._deleted = 0
        self._row_by_id: dict[int, int] | None = None
        if record_ids is None:
            self._ids[:count] = np.arange(count, dtype=np.int64)
            self._identity = True
            self._max_id = count - 1
        else:
            ids = np.asarray(record_ids, dtype=np.int64)
            if ids.shape != (count,):
                raise ValueError(
                    f"record_ids must be a vector of length {count}, got shape {ids.shape}"
                )
            self._ids[:count] = ids
            self._identity = count == 0 or bool(
                np.array_equal(ids, np.arange(count, dtype=np.int64))
            )
            self._max_id = int(ids.max()) if count else -1
        self._cache: tuple[np.ndarray, np.ndarray | None] | None = None

    # ------------------------------------------------------------------
    # shape
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of *live* points."""
        return self._count - self._deleted

    @property
    def appended(self) -> int:
        """Total rows ever appended (live + deleted)."""
        return self._count

    @property
    def next_record_id(self) -> int:
        """The next id a monotonic allocator may hand out (never reused)."""
        return self._max_id + 1

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def append(self, point, record_id: int | None = None) -> int:
        """Append one point; returns its record id (amortised O(1))."""
        if record_id is None:
            record_id = self.next_record_id
        record_id = int(record_id)
        row = self._count
        if row == self._data.shape[0]:
            grown = max(_INITIAL_ROWS, 2 * self._data.shape[0])
            data = np.empty((grown, self.dims), dtype=np.float64)
            data[:row] = self._data[:row]
            self._data = data
            ids = np.empty(grown, dtype=np.int64)
            ids[:row] = self._ids[:row]
            self._ids = ids
            live = np.ones(grown, dtype=bool)
            live[:row] = self._live[:row]
            self._live = live
        self._data[row] = np.asarray(point, dtype=np.float64)
        self._ids[row] = record_id
        self._live[row] = True
        self._count = row + 1
        self._identity = self._identity and record_id == row
        self._max_id = max(self._max_id, record_id)
        if self._row_by_id is not None:
            self._row_by_id[record_id] = row
        self._cache = None
        return record_id

    def delete(self, record_id: int) -> bool:
        """Mark a record dead; returns False when unknown or already dead."""
        row = self._row_of(int(record_id))
        if row is None or not self._live[row]:
            return False
        self._live[row] = False
        self._deleted += 1
        self._cache = None
        return True

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def _row_of(self, record_id: int) -> int | None:
        if self._identity:
            return record_id if 0 <= record_id < self._count else None
        if self._row_by_id is None:
            ids = self._ids[: self._count]
            self._row_by_id = {int(rid): row for row, rid in enumerate(ids)}
        return self._row_by_id.get(record_id)

    def is_live(self, record_id: int) -> bool:
        row = self._row_of(int(record_id))
        return row is not None and bool(self._live[row])

    def get_point(self, record_id: int) -> np.ndarray | None:
        """The coordinates stored under ``record_id`` (live or dead)."""
        row = self._row_of(int(record_id))
        if row is None:
            return None
        return np.array(self._data[row], dtype=np.float64)

    def live_points(self) -> tuple[np.ndarray, np.ndarray | None]:
        """``(points, record_ids)`` of the live rows, in append order.

        ``record_ids`` is ``None`` on the fast path — no deletions and
        row-index ids — meaning "row index *is* the record id", which is
        what the brute-force scan and batch executor assume by default.
        """
        if self._cache is None:
            if self._deleted == 0:
                points = self._data[: self._count]
                ids = None if self._identity else self._ids[: self._count]
            else:
                mask = self._live[: self._count]
                points = self._data[: self._count][mask]
                ids = self._ids[: self._count][mask]
            self._cache = (points, ids)
        return self._cache
