"""High-level facade over the GNN algorithms.

:class:`GNNEngine` owns the R-tree for a dataset ``P`` and answers
declarative :class:`~repro.api.spec.QuerySpec` queries through the
planner-based API:

* :meth:`GNNEngine.execute` — plan and run one spec;
* :meth:`GNNEngine.explain` — return the :class:`~repro.api.planner.QueryPlan`
  (algorithm, rationale, cost estimate) without running anything;
* :meth:`GNNEngine.execute_many` — the batch path: plans are cached,
  memory-resident queries are scheduled in Hilbert order for buffer
  locality, and brute-force specs share vectorised distance tensors.

The ``"auto"`` policy lives in :class:`~repro.api.planner.QueryPlanner`
and encodes the recommendations of the paper's experimental study
(Section 5): MBM for memory-resident groups, F-MQM for disk-resident
files in few blocks, F-MBM otherwise.

The pre-planner entry points :meth:`GNNEngine.query` and
:meth:`GNNEngine.query_disk` remain as thin deprecated shims over
:meth:`GNNEngine.execute`.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.api.executor import ExecutionContext, execute_batch, execute_spec
from repro.api.planner import AUTO_FMQM_MAX_BLOCKS, QueryPlan, QueryPlanner
from repro.api.registry import available_algorithms
from repro.api.spec import DISK, MEMORY, QuerySpec
from repro.core.types import GNNResult
from repro.geometry.point import as_points
from repro.rtree.flat import FlatRTree
from repro.rtree.tree import DEFAULT_CAPACITY, RTree
from repro.storage.buffer import LRUBuffer
from repro.storage.pointfile import PointFile

MEMORY_ALGORITHMS = ("mqm", "spm", "mbm", "best-first", "brute-force")
DISK_ALGORITHMS = ("fmqm", "fmbm", "gcp")

__all__ = [
    "AUTO_FMQM_MAX_BLOCKS",
    "DISK_ALGORITHMS",
    "GNNEngine",
    "MEMORY_ALGORITHMS",
]


class GNNEngine:
    """Query engine for group nearest neighbor search over a static dataset.

    Parameters
    ----------
    data_points:
        The dataset ``P`` as an ``(N, dims)`` array-like; row indices
        become record ids.
    capacity:
        R-tree node capacity (the paper's 1 KByte pages hold 50 entries).
    buffer_pages:
        Optional LRU buffer size in pages; when set, the engine reports
        buffer-aware page faults in addition to logical node accesses,
        and the buffer stays reachable as :attr:`buffer`.
    bulk_method:
        Packing strategy used to build the tree (``"str"`` or ``"hilbert"``).
    snapshot:
        When True (default), the engine lazily materialises a flat
        array-backed snapshot (:class:`~repro.rtree.flat.FlatRTree`) of
        the tree on first execution and routes memory-resident queries
        through it — bit-identical results and counters, markedly less
        Python overhead per traversal.  ``engine.insert`` invalidates
        the snapshot; it is rebuilt on the next query.  Pass False to
        always traverse the object tree (a per-spec ``index="flat"`` /
        ``index="object"`` preference overrides either default).
    """

    def __init__(
        self,
        data_points,
        capacity: int = DEFAULT_CAPACITY,
        buffer_pages: int | None = None,
        bulk_method: str = "str",
        snapshot: bool = True,
    ):
        self.points = as_points(data_points)
        self.buffer = LRUBuffer(buffer_pages) if buffer_pages else None
        self.tree = RTree.bulk_load(
            self.points, capacity=capacity, method=bulk_method, buffer=self.buffer
        )
        self._auto_snapshot = bool(snapshot)
        self._flat: FlatRTree | None = None
        self.planner = QueryPlanner(self)

    @classmethod
    def from_index(cls, index: FlatRTree, points=None) -> "GNNEngine":
        """Build a read-only engine around an existing flat snapshot.

        This is the deserialisation path: save a snapshot once, then
        ``GNNEngine.from_index(FlatRTree.load(path, mmap_mode="r"))``
        serves memory-resident queries without ever rebuilding the
        object tree.  Nothing is copied up front — a memory-mapped
        snapshot stays memory-mapped; brute-force specs reconstruct the
        raw dataset from the snapshot lazily on first use (or use the
        ``points`` argument when supplied).  Disk-resident specs and
        :meth:`insert` require the object tree and raise.
        """
        if not isinstance(index, FlatRTree):
            raise TypeError(f"from_index expects a FlatRTree, got {type(index).__name__}")
        engine = cls.__new__(cls)
        engine.points = as_points(points) if points is not None else None
        engine.buffer = index.buffer
        engine.tree = None
        engine._auto_snapshot = True
        engine._flat = index
        engine.planner = QueryPlanner(engine)
        return engine

    # ------------------------------------------------------------------
    # flat snapshot management
    # ------------------------------------------------------------------
    @property
    def flat(self) -> FlatRTree | None:
        """The current flat snapshot, or None when not materialised yet."""
        return self._flat

    def snapshot(self) -> FlatRTree:
        """Materialise (and cache) the flat snapshot of the current tree.

        The snapshot shares the engine's LRU buffer, so page-access
        accounting is identical whichever index answers a query.  Call
        ``snapshot().save(path)`` to persist it.
        """
        if self._flat is None:
            if self.tree is None:
                raise ValueError("this engine holds no object tree to snapshot")
            self._flat = FlatRTree.from_tree(self.tree)
        return self._flat

    # ------------------------------------------------------------------
    # planner-based API
    # ------------------------------------------------------------------
    def execute(self, spec: QuerySpec) -> GNNResult:
        """Plan and execute one declarative query spec."""
        return execute_spec(self._context(), spec, planner=self.planner)

    def explain(self, spec: QuerySpec) -> QueryPlan:
        """Return the plan for ``spec`` (algorithm, rationale, cost estimate).

        Nothing is executed; ``plan.describe()`` renders the decision as
        human-readable text.
        """
        return self.planner.plan(spec)

    def execute_many(self, specs) -> list[GNNResult]:
        """Execute a batch of specs; results come back in input order.

        The batch path amortises work across queries — plans are cached
        by spec signature, memory-resident groups run in Hilbert order of
        their centroids (so an LRU buffer keeps the touched subtrees
        hot), and brute-force specs share chunked distance tensors — while
        returning exactly the results of per-spec :meth:`execute` calls.
        """
        return execute_batch(self._context(), specs, planner=self.planner)

    def algorithms(self, residency: str | None = None):
        """Registered algorithm metadata (optionally filtered by residency)."""
        return available_algorithms(residency)

    def _context(self) -> ExecutionContext:
        # The snapshot is handed out as a lazy provider: it is built on
        # the first plan that actually routes through it, so disk-only
        # or index="object" workloads never pay for the materialisation.
        provider = None
        if self._auto_snapshot and self.tree is not None:
            provider = self.snapshot
        return ExecutionContext(
            tree=self.tree,
            points=self.points,
            buffer=self.buffer,
            flat=self._flat,
            flat_provider=provider,
        )

    # ------------------------------------------------------------------
    # deprecated pre-planner entry points
    # ------------------------------------------------------------------
    def query(
        self,
        query_points,
        k: int = 1,
        algorithm: str = "auto",
        aggregate: str = "sum",
        weights=None,
        **options,
    ) -> GNNResult:
        """Deprecated: build a :class:`QuerySpec` and call :meth:`execute`.

        Kept as a thin shim for pre-planner callers; ``algorithm`` is one
        of ``"auto"``, ``"mqm"``, ``"spm"``, ``"mbm"``, ``"best-first"``
        or ``"brute-force"`` and extra keyword options are forwarded to
        the selected algorithm.
        """
        warnings.warn(
            "GNNEngine.query is deprecated; build a QuerySpec and use "
            "GNNEngine.execute instead",
            DeprecationWarning,
            stacklevel=2,
        )
        spec = QuerySpec(
            group=query_points,
            k=k,
            aggregate=aggregate,
            weights=weights,
            residency=MEMORY,
            algorithm=algorithm,
            options=options,
        )
        return self.execute(spec)

    def query_disk(
        self,
        query_points=None,
        k: int = 1,
        algorithm: str = "auto",
        query_file: PointFile | None = None,
        points_per_page: int = 50,
        block_pages: int = 200,
        query_tree_capacity: int = DEFAULT_CAPACITY,
        **options,
    ) -> GNNResult:
        """Deprecated: build a disk-resident :class:`QuerySpec` and execute it.

        Kept as a thin shim for pre-planner callers; ``algorithm`` is
        ``"auto"``, ``"fmqm"``, ``"fmbm"`` or ``"gcp"``.
        """
        warnings.warn(
            "GNNEngine.query_disk is deprecated; build a QuerySpec with "
            "residency='disk' and use GNNEngine.execute instead",
            DeprecationWarning,
            stacklevel=2,
        )
        spec_options = {
            "points_per_page": points_per_page,
            "block_pages": block_pages,
            **options,
        }
        if str(algorithm).lower() == "gcp":
            spec_options["query_tree_capacity"] = query_tree_capacity
        spec = QuerySpec(
            group=query_points,
            group_file=query_file,
            k=k,
            residency=DISK,
            algorithm=algorithm,
            options=spec_options,
        )
        return self.execute(spec)

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def insert(self, point) -> int:
        """Insert a new data point into the index; returns its record id.

        Inserting invalidates the flat snapshot (it is a static view);
        the next executed query rebuilds it when auto-snapshotting is
        on.  Snapshot-only engines (:meth:`from_index`) are read-only.
        """
        if self.tree is None:
            raise ValueError(
                "this engine was built from a flat snapshot and is read-only; "
                "rebuild a GNNEngine from the raw points to insert"
            )
        point = np.asarray(point, dtype=np.float64)
        if point.ndim != 1 or point.shape[0] != self.points.shape[1]:
            raise ValueError(
                f"inserted point must be a flat vector of dimension "
                f"{self.points.shape[1]}, got shape {point.shape}"
            )
        if not np.all(np.isfinite(point)):
            raise ValueError("inserted point must have finite coordinates")
        record_id = self.tree.insert(point, record_id=len(self.points))
        self.points = np.vstack([self.points, point.reshape(1, -1)])
        self._flat = None
        return record_id

    def __len__(self) -> int:
        if self.tree is not None:
            return len(self.tree)
        return len(self._flat)

    def __repr__(self) -> str:
        count = len(self.points) if self.points is not None else len(self)
        index = self.tree if self.tree is not None else self._flat
        return f"GNNEngine(points={count}, tree={index!r})"
