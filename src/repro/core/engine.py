"""High-level facade over the GNN algorithms.

:class:`GNNEngine` owns the R-tree for a dataset ``P`` and dispatches
queries to the appropriate algorithm.  The ``"auto"`` policy encodes the
recommendations of the paper's experimental study (Section 5):

* memory-resident query groups → **MBM** (the clear winner in Figures
  5.1-5.3);
* disk-resident query files partitioned into a small number of blocks →
  **F-MQM**, otherwise **F-MBM** (Figures 5.4-5.7 and the summary at the
  end of Section 5.2).
"""

from __future__ import annotations

import numpy as np

from repro.core.aggregates import aggregate_gnn
from repro.core.bruteforce import brute_force_gnn
from repro.core.fmbm import fmbm
from repro.core.fmqm import fmqm
from repro.core.gcp import gcp
from repro.core.mbm import mbm
from repro.core.mqm import mqm
from repro.core.spm import spm
from repro.core.types import GNNResult, GroupQuery
from repro.geometry.point import as_points
from repro.rtree.tree import DEFAULT_CAPACITY, RTree
from repro.storage.buffer import LRUBuffer
from repro.storage.pointfile import PointFile

#: Block-count threshold below which the auto policy prefers F-MQM; the
#: paper's PP-as-query experiments (3 blocks) favour F-MQM while the
#: TS-as-query experiments (20 blocks) favour F-MBM.
AUTO_FMQM_MAX_BLOCKS = 6

MEMORY_ALGORITHMS = ("mqm", "spm", "mbm", "best-first", "brute-force")
DISK_ALGORITHMS = ("fmqm", "fmbm", "gcp")


class GNNEngine:
    """Query engine for group nearest neighbor search over a static dataset.

    Parameters
    ----------
    data_points:
        The dataset ``P`` as an ``(N, dims)`` array-like; row indices
        become record ids.
    capacity:
        R-tree node capacity (the paper's 1 KByte pages hold 50 entries).
    buffer_pages:
        Optional LRU buffer size in pages; when set, the engine reports
        buffer-aware page faults in addition to logical node accesses.
    bulk_method:
        Packing strategy used to build the tree (``"str"`` or ``"hilbert"``).
    """

    def __init__(
        self,
        data_points,
        capacity: int = DEFAULT_CAPACITY,
        buffer_pages: int | None = None,
        bulk_method: str = "str",
    ):
        self.points = as_points(data_points)
        buffer = LRUBuffer(buffer_pages) if buffer_pages else None
        self.tree = RTree.bulk_load(
            self.points, capacity=capacity, method=bulk_method, buffer=buffer
        )

    # ------------------------------------------------------------------
    # memory-resident queries (Section 3)
    # ------------------------------------------------------------------
    def query(
        self,
        query_points,
        k: int = 1,
        algorithm: str = "auto",
        aggregate: str = "sum",
        weights=None,
        **options,
    ) -> GNNResult:
        """Answer a GNN query whose group fits in memory.

        ``algorithm`` is one of ``"auto"``, ``"mqm"``, ``"spm"``,
        ``"mbm"``, ``"best-first"`` (the aggregate-generalised optimal
        traversal) or ``"brute-force"``.  Additional keyword options are
        forwarded to the selected algorithm (for example
        ``traversal="depth_first"`` for SPM/MBM or
        ``use_heuristic3=False`` for the MBM ablation).
        """
        query = GroupQuery(query_points, k=k, aggregate=aggregate, weights=weights)
        name = algorithm.lower()
        if name == "auto":
            # MBM is the paper's overall winner for memory-resident groups,
            # but it is only defined for the sum aggregate; other
            # aggregates use the generalised best-first traversal.
            name = "mbm" if aggregate == "sum" and weights is None else "best-first"
        if name == "mqm":
            return mqm(self.tree, query)
        if name == "spm":
            return spm(self.tree, query, **options)
        if name == "mbm":
            return mbm(self.tree, query, **options)
        if name == "best-first":
            return aggregate_gnn(self.tree, query)
        if name == "brute-force":
            return brute_force_gnn(self.points, query)
        raise ValueError(
            f"unknown algorithm {algorithm!r}; expected 'auto' or one of {MEMORY_ALGORITHMS}"
        )

    # ------------------------------------------------------------------
    # disk-resident queries (Section 4)
    # ------------------------------------------------------------------
    def query_disk(
        self,
        query_points=None,
        k: int = 1,
        algorithm: str = "auto",
        query_file: PointFile | None = None,
        points_per_page: int = 50,
        block_pages: int = 200,
        query_tree_capacity: int = DEFAULT_CAPACITY,
        **options,
    ) -> GNNResult:
        """Answer a GNN query whose group does not fit in memory.

        Either pass the raw ``query_points`` (a :class:`PointFile` is
        built with the given page/block geometry) or an existing
        ``query_file``.  ``algorithm`` is ``"auto"``, ``"fmqm"``,
        ``"fmbm"`` or ``"gcp"`` (the latter builds an R-tree over the
        query set, matching the paper's indexed-query setting).
        """
        name = algorithm.lower()
        if name == "gcp":
            if query_points is None:
                raise ValueError("GCP needs the raw query points to build the query R-tree")
            query_tree = RTree.bulk_load(as_points(query_points), capacity=query_tree_capacity)
            return gcp(self.tree, query_tree, k=k, **options)

        if query_file is None:
            if query_points is None:
                raise ValueError("either query_points or query_file must be provided")
            query_file = PointFile(
                as_points(query_points),
                points_per_page=points_per_page,
                block_pages=block_pages,
            )
        if name == "auto":
            name = "fmqm" if query_file.block_count <= AUTO_FMQM_MAX_BLOCKS else "fmbm"
        if name == "fmqm":
            return fmqm(self.tree, query_file, k=k, **options)
        if name == "fmbm":
            return fmbm(self.tree, query_file, k=k, **options)
        raise ValueError(
            f"unknown algorithm {algorithm!r}; expected 'auto' or one of {DISK_ALGORITHMS}"
        )

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def insert(self, point) -> int:
        """Insert a new data point into the index; returns its record id."""
        point = np.asarray(point, dtype=np.float64)
        record_id = self.tree.insert(point, record_id=len(self.points))
        self.points = np.vstack([self.points, point.reshape(1, -1)])
        return record_id

    def __len__(self) -> int:
        return len(self.tree)

    def __repr__(self) -> str:
        return f"GNNEngine(points={len(self.points)}, tree={self.tree!r})"
