"""High-level facade over the GNN algorithms.

:class:`GNNEngine` owns the R-tree for a dataset ``P`` and answers
declarative :class:`~repro.api.spec.QuerySpec` queries through the
planner-based API:

* :meth:`GNNEngine.execute` — plan and run one spec;
* :meth:`GNNEngine.explain` — return the :class:`~repro.api.planner.QueryPlan`
  (algorithm, rationale, cost estimate) without running anything;
* :meth:`GNNEngine.execute_many` — the batch path: plans are cached,
  memory-resident queries are scheduled in Hilbert order for buffer
  locality, and brute-force specs share vectorised distance tensors.

The ``"auto"`` policy lives in :class:`~repro.api.planner.QueryPlanner`
and encodes the recommendations of the paper's experimental study
(Section 5): MBM for memory-resident groups, F-MQM for disk-resident
files in few blocks, F-MBM otherwise.

The pre-planner entry points :meth:`GNNEngine.query` and
:meth:`GNNEngine.query_disk` remain as thin deprecated shims over
:meth:`GNNEngine.execute`.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.api.executor import ExecutionContext, execute_batch, execute_spec
from repro.api.planner import AUTO_FMQM_MAX_BLOCKS, QueryPlan, QueryPlanner
from repro.api.registry import available_algorithms
from repro.api.spec import DISK, MEMORY, QuerySpec
from repro.core.store import PointStore
from repro.core.types import GNNResult
from repro.rtree.flat import FlatRTree
from repro.rtree.overlay import DeltaOverlay
from repro.rtree.tree import DEFAULT_CAPACITY, RTree
from repro.storage.buffer import LRUBuffer
from repro.storage.pointfile import PointFile

MEMORY_ALGORITHMS = ("mqm", "spm", "mbm", "best-first", "brute-force")
DISK_ALGORITHMS = ("fmqm", "fmbm", "gcp")

__all__ = [
    "AUTO_FMQM_MAX_BLOCKS",
    "DISK_ALGORITHMS",
    "GNNEngine",
    "MEMORY_ALGORITHMS",
]


class GNNEngine:
    """Query engine for group nearest neighbor search over a static dataset.

    Parameters
    ----------
    data_points:
        The dataset ``P`` as an ``(N, dims)`` array-like; row indices
        become record ids.
    capacity:
        R-tree node capacity (the paper's 1 KByte pages hold 50 entries).
    buffer_pages:
        Optional LRU buffer size in pages; when set, the engine reports
        buffer-aware page faults in addition to logical node accesses,
        and the buffer stays reachable as :attr:`buffer`.
    bulk_method:
        Packing strategy used to build the tree (``"str"`` or ``"hilbert"``).
    snapshot:
        When True (default), the engine lazily materialises a flat
        array-backed snapshot (:class:`~repro.rtree.flat.FlatRTree`) of
        the tree on first execution and routes memory-resident queries
        through it — bit-identical results and counters, markedly less
        Python overhead per traversal.  Once a snapshot exists, writes
        no longer invalidate it: :meth:`insert` / :meth:`delete` land in
        a :class:`~repro.rtree.overlay.DeltaOverlay` (delta tree plus
        tombstones) and queries answer from the merged view;
        :meth:`compact` folds the overlay into a generation-``N+1``
        snapshot.  Pass False to always traverse the object tree (a
        per-spec ``index="flat"`` / ``index="object"`` preference
        overrides either default).
    """

    def __init__(
        self,
        data_points,
        capacity: int = DEFAULT_CAPACITY,
        buffer_pages: int | None = None,
        bulk_method: str = "str",
        snapshot: bool = True,
    ):
        self._store = PointStore(data_points)
        self.buffer = LRUBuffer(buffer_pages) if buffer_pages else None
        self.tree = RTree.bulk_load(
            self._store.live_points()[0],
            capacity=capacity,
            method=bulk_method,
            buffer=self.buffer,
        )
        self._auto_snapshot = bool(snapshot)
        self._flat: FlatRTree | None = None
        self._overlay: DeltaOverlay | None = None
        self._next_id: int | None = None
        self._wal = None
        self.planner = QueryPlanner(self)

    @classmethod
    def from_index(cls, index: FlatRTree, points=None) -> "GNNEngine":
        """Build an engine around an existing flat snapshot.

        This is the deserialisation path: save a snapshot once, then
        ``GNNEngine.from_index(FlatRTree.load(path, mmap_mode="r"))``
        serves memory-resident queries without ever rebuilding the
        object tree.  Nothing is copied up front — a memory-mapped
        snapshot stays memory-mapped; brute-force specs reconstruct the
        raw dataset from the snapshot lazily on first use (or use the
        ``points`` argument when supplied).  Disk-resident specs require
        the object tree and raise.  :meth:`insert` / :meth:`delete`
        work: writes land in a delta overlay on top of the (untouched,
        possibly read-only) snapshot — the per-shard write path uses
        exactly this.
        """
        if not isinstance(index, FlatRTree):
            raise TypeError(f"from_index expects a FlatRTree, got {type(index).__name__}")
        engine = cls.__new__(cls)
        engine._store = PointStore(points) if points is not None else None
        engine.buffer = index.buffer
        engine.tree = None
        engine._auto_snapshot = True
        engine._flat = index
        engine._overlay = None
        engine._next_id = None
        engine._wal = None
        engine.planner = QueryPlanner(engine)
        return engine

    @classmethod
    def recover(
        cls,
        directory,
        *,
        mmap_mode: str | None = "r",
        fsync: str = "interval",
        interval_s: float = 0.05,
    ) -> "GNNEngine":
        """Rebuild an engine from a generation directory after a crash.

        Loads the newest *complete* snapshot generation (see
        :class:`~repro.storage.generations.GenerationStore`), replays the
        write-ahead log tail on top of it, and re-attaches the log so new
        writes keep appending to the same file.  The merged view is
        bit-identical to the pre-crash engine: overlay state was pure
        process memory, so the snapshot plus a full WAL replay *is* the
        pre-crash state up to the last durable record.

        A WAL whose ``base_generation`` is older than the recovered
        snapshot is a truncation that never landed — every record in it
        was already folded into the snapshot, so it is discarded rather
        than replayed twice.
        """
        from repro.obs.logging import get_logger
        from repro.storage.generations import GenerationStore
        from repro.storage.wal import WriteAheadLog

        log = get_logger("core.engine")
        store = GenerationStore(directory)
        flat = store.latest(mmap_mode=mmap_mode)
        if flat is None:
            raise FileNotFoundError(
                f"no complete snapshot generation under {store.directory}"
            )
        engine = cls.from_index(flat)
        replayed = 0
        wal_path = store.wal_path
        if wal_path.exists():
            scan = WriteAheadLog.scan(wal_path)
            if scan.base_generation > flat.generation:
                raise RuntimeError(
                    f"WAL base generation {scan.base_generation} is newer than "
                    f"any complete snapshot ({flat.generation}); the generation "
                    "directory lost files outside this store's control"
                )
            if scan.base_generation == flat.generation:
                for record in scan.records:
                    if record.op == "insert":
                        engine.insert(record.point, record_id=record.record_id)
                    else:
                        engine.delete(record.point, record.record_id)
                    replayed += 1
        wal = WriteAheadLog(
            wal_path, fsync=fsync, interval_s=interval_s,
            base_generation=flat.generation,
        )
        if wal.base_generation != flat.generation:
            wal.reset(flat.generation)  # stale, fully-folded log: discard
        engine.attach_wal(wal)
        log.info(
            "engine.recovered",
            directory=str(store.directory),
            generation=flat.generation,
            size=flat.size,
            wal_records_replayed=replayed,
        )
        return engine

    # ------------------------------------------------------------------
    # dataset views
    # ------------------------------------------------------------------
    @property
    def points(self) -> np.ndarray | None:
        """The *live* dataset as an ``(N, dims)`` array (or None).

        Backed by the engine's append-only :class:`PointStore`: inserts
        append in amortised O(1) and deletes drop out of this view, so
        it always matches what queries can return.
        """
        if self._store is None:
            return None
        return self._store.live_points()[0]

    # ------------------------------------------------------------------
    # flat snapshot and overlay management
    # ------------------------------------------------------------------
    @property
    def flat(self) -> FlatRTree | None:
        """The current flat base snapshot, or None when not materialised yet."""
        return self._flat

    @property
    def overlay(self) -> DeltaOverlay | None:
        """The delta overlay holding post-snapshot writes, or None when clean."""
        return self._overlay

    @property
    def dirty(self) -> bool:
        """True when the overlay holds writes the base snapshot has not absorbed."""
        return self._overlay is not None and self._overlay.dirty

    @property
    def dirty_ratio(self) -> float:
        """Pending overlay writes relative to the base snapshot size."""
        if not self.dirty:
            return 0.0
        return self._overlay.dirty_ratio

    def snapshot(self) -> FlatRTree:
        """The flat snapshot of the *current* data — compacting when dirty.

        On a clean engine this materialises (and caches) the flat
        snapshot of the tree; on a dirty one it folds the overlay via
        :meth:`compact` first, so the returned snapshot always reflects
        every applied write.  The snapshot shares the engine's LRU
        buffer, so page-access accounting is identical whichever index
        answers a query.  Call ``snapshot().save(path)`` to persist it.
        """
        if self.dirty:
            return self.compact()
        if self._flat is None:
            if self.tree is None:
                raise ValueError("this engine holds no object tree to snapshot")
            self._flat = FlatRTree.from_tree(self.tree)
        return self._flat

    def compact(self, *, capacity: int | None = None, method: str = "str") -> FlatRTree:
        """Fold the overlay into a generation-``N+1`` base snapshot.

        The live dataset (base minus tombstones plus delta inserts) is
        bulk-loaded into a fresh :class:`FlatRTree` with record ids
        preserved and ``generation = base.generation + 1``; the overlay
        is then discarded.  This is the LSM compaction step — a
        :class:`repro.serve.compaction.CompactingWriter` runs it in the
        background and publishes the result to a live server.
        """
        overlay = self._overlay
        if overlay is None or not overlay.dirty:
            self._overlay = None
            return self.snapshot()
        flat = overlay.compact(capacity=capacity, method=method, buffer=self.buffer)
        self._flat = flat
        self._overlay = None
        return flat

    def _base_snapshot(self) -> FlatRTree | None:
        """The frozen base the executor traverses (never compacts)."""
        if self._flat is None and self.tree is not None:
            self._flat = FlatRTree.from_tree(self.tree)
        return self._flat

    def _ensure_overlay(self) -> DeltaOverlay:
        if self._overlay is None:
            if self._flat is None:
                raise ValueError("an overlay needs a base snapshot")
            self._overlay = DeltaOverlay(self._flat)
        return self._overlay

    # ------------------------------------------------------------------
    # planner-based API
    # ------------------------------------------------------------------
    def execute(self, spec: QuerySpec) -> GNNResult:
        """Plan and execute one declarative query spec."""
        return execute_spec(self._context(), spec, planner=self.planner)

    def explain(self, spec: QuerySpec) -> QueryPlan:
        """Return the plan for ``spec`` (algorithm, rationale, cost estimate).

        Nothing is executed; ``plan.describe()`` renders the decision as
        human-readable text.
        """
        return self.planner.plan(spec)

    def execute_many(self, specs) -> list[GNNResult]:
        """Execute a batch of specs; results come back in input order.

        The batch path amortises work across queries — plans are cached
        by spec signature, memory-resident groups run in Hilbert order of
        their centroids (so an LRU buffer keeps the touched subtrees
        hot), and brute-force specs share chunked distance tensors — while
        returning exactly the results of per-spec :meth:`execute` calls.
        """
        return execute_batch(self._context(), specs, planner=self.planner)

    def algorithms(self, residency: str | None = None):
        """Registered algorithm metadata (optionally filtered by residency)."""
        return available_algorithms(residency)

    def _context(self) -> ExecutionContext:
        # The snapshot is handed out as a lazy provider: it is built on
        # the first plan that actually routes through it, so disk-only
        # or index="object" workloads never pay for the materialisation.
        provider = None
        if self._auto_snapshot and self.tree is not None:
            provider = self._base_snapshot
        points = ids = None
        if self._store is not None:
            points, ids = self._store.live_points()
        return ExecutionContext(
            tree=self.tree,
            points=points,
            buffer=self.buffer,
            flat=self._flat,
            flat_provider=provider,
            point_ids=ids,
            overlay=self._overlay if self.dirty else None,
        )

    # ------------------------------------------------------------------
    # deprecated pre-planner entry points
    # ------------------------------------------------------------------
    def query(
        self,
        query_points,
        k: int = 1,
        algorithm: str = "auto",
        aggregate: str = "sum",
        weights=None,
        **options,
    ) -> GNNResult:
        """Deprecated: build a :class:`QuerySpec` and call :meth:`execute`.

        Kept as a thin shim for pre-planner callers; ``algorithm`` is one
        of ``"auto"``, ``"mqm"``, ``"spm"``, ``"mbm"``, ``"best-first"``
        or ``"brute-force"`` and extra keyword options are forwarded to
        the selected algorithm.
        """
        warnings.warn(
            "GNNEngine.query is deprecated; build a QuerySpec and use "
            "GNNEngine.execute instead",
            DeprecationWarning,
            stacklevel=2,
        )
        spec = QuerySpec(
            group=query_points,
            k=k,
            aggregate=aggregate,
            weights=weights,
            residency=MEMORY,
            algorithm=algorithm,
            options=options,
        )
        return self.execute(spec)

    def query_disk(
        self,
        query_points=None,
        k: int = 1,
        algorithm: str = "auto",
        query_file: PointFile | None = None,
        points_per_page: int = 50,
        block_pages: int = 200,
        query_tree_capacity: int = DEFAULT_CAPACITY,
        **options,
    ) -> GNNResult:
        """Deprecated: build a disk-resident :class:`QuerySpec` and execute it.

        Kept as a thin shim for pre-planner callers; ``algorithm`` is
        ``"auto"``, ``"fmqm"``, ``"fmbm"`` or ``"gcp"``.
        """
        warnings.warn(
            "GNNEngine.query_disk is deprecated; build a QuerySpec with "
            "residency='disk' and use GNNEngine.execute instead",
            DeprecationWarning,
            stacklevel=2,
        )
        spec_options = {
            "points_per_page": points_per_page,
            "block_pages": block_pages,
            **options,
        }
        if str(algorithm).lower() == "gcp":
            spec_options["query_tree_capacity"] = query_tree_capacity
        spec = QuerySpec(
            group=query_points,
            group_file=query_file,
            k=k,
            residency=DISK,
            algorithm=algorithm,
            options=spec_options,
        )
        return self.execute(spec)

    # ------------------------------------------------------------------
    # maintenance (the mutable write path)
    # ------------------------------------------------------------------
    @property
    def wal(self):
        """The attached write-ahead log, or None when writes are volatile."""
        return self._wal

    def attach_wal(self, wal) -> None:
        """Log every subsequent :meth:`insert`/:meth:`delete` to ``wal``.

        The record is appended (durably, per the log's fsync policy)
        *before* any in-memory structure mutates — the write-ahead
        invariant :meth:`recover` depends on.  Pass ``None`` to detach.
        """
        self._wal = wal

    @property
    def dims(self) -> int:
        if self.tree is not None:
            return self.tree.dims
        return self._flat.dims

    def _validated_point(self, point) -> np.ndarray:
        point = np.asarray(point, dtype=np.float64)
        dims = self.dims
        if point.ndim != 1 or point.shape[0] != dims:
            raise ValueError(
                f"point must be a flat vector of dimension {dims}, "
                f"got shape {point.shape}"
            )
        if not np.all(np.isfinite(point)):
            raise ValueError("point must have finite coordinates")
        return point

    def _allocate_record_id(self) -> int:
        # Monotonic allocation: ids are never reused, so a record id
        # deleted yesterday can never collide with one inserted today
        # (``len(self.points)`` — the old rule — collides after any
        # deletion).
        self._init_id_counter()
        record_id = self._next_id
        self._next_id += 1
        return record_id

    def _init_id_counter(self) -> None:
        if self._next_id is None:
            bound = 0
            if self._store is not None:
                bound = self._store.next_record_id
            if self.tree is None and self._flat is not None and self._flat.size:
                base_ids = np.asarray(self._flat.record_ids)
                bound = max(bound, int(base_ids.max()) + 1)
            self._next_id = bound

    def insert(self, point, record_id: int | None = None) -> int:
        """Insert a new data point into the index; returns its record id.

        Record ids come from a monotonic counter and are never reused.
        Writes never invalidate an existing flat snapshot: once one is
        materialised, the insert also lands in the delta overlay and
        snapshot-routed queries answer from the merged (base + delta −
        tombstones) view, bit-identical to a from-scratch rebuild.
        Snapshot-only engines (:meth:`from_index`) accept inserts the
        same way — the overlay *is* their write path; the mmap'd base
        stays untouched.  Point storage appends into an amortised growth
        buffer (O(1) amortised, not the old O(n) vstack copy).

        An explicit ``record_id`` overrides the allocator — the shard
        write path assigns federation-global ids this way.  The counter
        advances past it, so later automatic ids never collide; the
        caller owns uniqueness against records this engine cannot see.
        """
        point = self._validated_point(point)
        if record_id is None:
            record_id = self._allocate_record_id()
        else:
            record_id = int(record_id)
            self._init_id_counter()
            self._next_id = max(self._next_id, record_id + 1)
        if self._wal is not None:
            # Write-ahead: the record must be on disk before any
            # in-memory structure reflects it, or a crash in between
            # loses an applied write.
            self._wal.append("insert", record_id, point)
        if self.tree is not None:
            self.tree.insert(point, record_id=record_id)
            if self._flat is not None:
                self._ensure_overlay().insert(point, record_id)
        else:
            self._ensure_overlay().insert(point, record_id)
        if self._store is not None:
            self._store.append(point, record_id)
        return record_id

    def delete(self, point, record_id: int) -> bool:
        """Delete the record with the given point and id; True when removed.

        This is the safe counterpart of calling ``tree.delete`` directly
        — which used to leave ``engine.points`` and the cached snapshot
        stale, silently returning deleted records from snapshot-routed
        queries.  Here every view updates together: the object tree (when
        present), the live point store, and the overlay — a delete of a
        base-snapshot record becomes a tombstone; a delete of a
        not-yet-compacted insert is removed from the delta tree
        physically.
        """
        point = self._validated_point(point)
        record_id = int(record_id)
        if self._wal is not None:
            # Logged before the mutation (write-ahead); a logged delete
            # that turns out to be a miss replays as the same no-op.
            self._wal.append("delete", record_id, point)
        if self.tree is not None:
            removed = self.tree.delete(point, record_id)
            if not removed:
                return False
            if self._flat is not None:
                self._ensure_overlay().delete(point, record_id)
        else:
            if not self._ensure_overlay().delete(point, record_id):
                return False
        if self._store is not None:
            self._store.delete(record_id)
        return True

    def __len__(self) -> int:
        if self.tree is not None:
            return len(self.tree)
        if self.dirty:
            return len(self._overlay)
        return len(self._flat)

    def __repr__(self) -> str:
        count = len(self.points) if self.points is not None else len(self)
        index = self.tree if self.tree is not None else self._flat
        return f"GNNEngine(points={count}, tree={index!r})"
