"""Aggregate-generalised group nearest neighbor search (extension feature).

Section 6 of the paper lists "other distance metrics" and aggregate
variations of GNN search as future work; this module provides the
natural generalisation: an optimal best-first traversal whose priority
is the aggregate lower bound of the group distance.  Because the per
point key is the *exact* aggregate distance and the node key is a lower
bound of it, the stream yields data points in ascending aggregate
distance — taking the first ``k`` items is therefore an exact algorithm
for sum, max and min aggregates (including weighted variants).

For the sum aggregate the traversal degenerates into an MBM-like search
with Heuristic 3 as the priority, which is also handy in tests as an
independent exact method to cross-check the paper's algorithms.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.core.instrumentation import CostTracker
from repro.core.types import GNNResult, GroupNeighbor, GroupQuery
from repro.rtree.flat import FlatRTree
from repro.rtree.traversal import Neighbor, incremental_nearest_generic
from repro.rtree.tree import RTree


def group_nn_stream(tree: RTree | FlatRTree, query: GroupQuery) -> Iterator[Neighbor]:
    """Yield data points in ascending aggregate distance to the query group.

    The stream is incremental: consuming it lazily retrieves additional
    group neighbors without restarting the search, which is exactly the
    capability F-MQM needs from its per-block searches.  Over a flat
    snapshot the same vectorised keys drive the array traversal, with
    identical emission order and charges.
    """

    def node_key(mbr):
        tree.stats.record_distance_computations(query.cardinality)
        return query.mindist_lower_bound(mbr)

    def point_key(point):
        tree.stats.record_distance_computations(query.cardinality)
        return query.distance_to(point)

    def points_key(points):
        tree.stats.record_distance_computations(query.cardinality * points.shape[0])
        return query.distances_to(points)

    def mbrs_key(lows, highs):
        tree.stats.record_distance_computations(query.cardinality * lows.shape[0])
        return query.mindist_lower_bounds(lows, highs)

    return incremental_nearest_generic(
        tree, node_key, point_key, points_key=points_key, mbrs_key=mbrs_key
    )


def aggregate_gnn(
    tree: RTree | FlatRTree,
    query: GroupQuery,
    exclude: frozenset | set | None = None,
) -> GNNResult:
    """Exact k-GNN retrieval for any supported aggregate via best-first search.

    ``exclude`` bars a set of record ids (delta-overlay tombstones) from
    the result: the stream still emits them in order — they are real
    index entries — but the consumer skips past to the next live record,
    which the ascending emission order keeps exact.
    """
    tracker = CostTracker(f"best-first-{query.aggregate}", trees=[tree])
    neighbors: list[GroupNeighbor] = []
    for neighbor in group_nn_stream(tree, query):
        if exclude is not None and neighbor.record_id in exclude:
            continue
        neighbors.append(GroupNeighbor(neighbor.record_id, neighbor.point, neighbor.distance))
        if len(neighbors) == query.k:
            break
    return GNNResult(neighbors=neighbors, cost=tracker.finish())
