"""The paper's contribution: group nearest neighbor query algorithms.

Memory-resident query groups (Section 3 of the paper):

* :func:`~repro.core.mqm.mqm` — multiple query method,
* :func:`~repro.core.spm.spm` — single point method,
* :func:`~repro.core.mbm.mbm` — minimum bounding method.

Disk-resident query sets (Section 4):

* :func:`~repro.core.gcp.gcp` — group closest pairs (indexed ``Q``),
* :func:`~repro.core.fmqm.fmqm` — file multiple query method,
* :func:`~repro.core.fmbm.fmbm` — file minimum bounding method.

Extensions: the brute-force baseline, the aggregate-generalised
best-first search and the :class:`~repro.core.engine.GNNEngine` facade.
"""

from repro.core.aggregates import aggregate_gnn, group_nn_stream
from repro.core.bruteforce import brute_force_gnn, brute_force_over_tree
from repro.core.centroid import compute_centroid
from repro.core.engine import GNNEngine
from repro.core.fmbm import fmbm
from repro.core.fmqm import fmqm
from repro.core.gcp import gcp
from repro.core.mbm import mbm
from repro.core.mqm import mqm
from repro.core.spm import spm
from repro.core.types import BestList, GNNResult, GroupNeighbor, GroupQuery, QueryCost

__all__ = [
    "BestList",
    "GNNEngine",
    "GNNResult",
    "GroupNeighbor",
    "GroupQuery",
    "QueryCost",
    "aggregate_gnn",
    "brute_force_gnn",
    "brute_force_over_tree",
    "compute_centroid",
    "fmbm",
    "fmqm",
    "gcp",
    "group_nn_stream",
    "mbm",
    "mqm",
    "spm",
]
