"""MBM — the minimum bounding method (Section 3.3 of the paper).

MBM performs a single traversal of the R-tree of ``P`` pruned by the MBR
``M`` of the query group:

* **Heuristic 2** — a node (or point) whose ``mindist`` to ``M`` reaches
  ``best_dist / n`` cannot qualify.  One distance computation per node.
* **Heuristic 3** — a node whose summed per-query-point ``mindist``
  reaches ``best_dist`` cannot qualify.  Tighter, but needs ``n``
  distance computations, so it is only evaluated for nodes that survive
  Heuristic 2 (the paper's footnote 3 reports the same trade-off and the
  ablation benchmark reproduces it).

Both the best-first implementation (used in the paper's experiments) and
the depth-first variant (the walk-through of Figure 3.7) are provided.
The weighted and max/min-aggregate extensions reuse the same traversal
with generalised bounds (see :mod:`repro.core.aggregates`).
"""

from __future__ import annotations

import heapq
import itertools

import numpy as np

from repro.core.heuristics import (
    heuristic2_prunes,
    heuristic2_prunes_batch,
    heuristic3_prunes_batch,
    heuristic3_prunes_precomputed,
)
from repro.core.instrumentation import CostTracker
from repro.core.types import BestList, GNNResult, GroupNeighbor, GroupQuery, QueryCost
from repro.geometry import kernels
from repro.rtree.flat import FlatRTree
from repro.rtree.tree import RTree


def mbm(
    tree: RTree | FlatRTree,
    query: GroupQuery,
    traversal: str = "best_first",
    use_heuristic3: bool = True,
    exclude: frozenset | set | None = None,
) -> GNNResult:
    """Run the minimum bounding method.

    Parameters
    ----------
    tree:
        R-tree over the dataset ``P``; a flat snapshot
        (:class:`~repro.rtree.flat.FlatRTree`) is accepted for the
        best-first traversal and returns bit-identical results with
        identical node-access and distance-computation counts.
    query:
        The query group; the sum aggregate matches the paper, and the
        weighted / max / min generalisations are accepted as well (the
        bounds degrade gracefully: Heuristic 2 uses the total weight,
        Heuristic 3 uses the aggregate lower bound).
    traversal:
        ``"best_first"`` (default) or ``"depth_first"``.
    use_heuristic3:
        Disable to reproduce the paper's ablation ("MBM with only
        heuristic 2 ... inferior to SPM").
    exclude:
        Optional record ids barred from the result (delta-overlay
        tombstones).  Excluded points are skipped at the leaves before
        any per-point aggregate distance is charged; node-level pruning
        is untouched (Heuristics 2/3 stay safe bounds for the live
        records the traversal is actually after).
    """
    if traversal not in ("best_first", "depth_first"):
        raise ValueError(f"unknown traversal {traversal!r}")
    is_flat = isinstance(tree, FlatRTree)
    if is_flat and traversal != "best_first":
        raise ValueError(
            "flat snapshots only support the best-first traversal; "
            "run depth-first MBM against the object R-tree"
        )
    tracker = CostTracker(f"MBM-{traversal}", trees=[tree])
    best = BestList(query.k)
    if len(tree) == 0:
        return GNNResult(neighbors=[], cost=tracker.finish())

    if is_flat:
        _mbm_best_first_flat(tree, query, best, use_heuristic3, exclude)
    elif traversal == "best_first":
        _mbm_best_first(tree, query, best, use_heuristic3, exclude)
    else:
        _mbm_depth_first(tree, tree.root, query, best, use_heuristic3, exclude)
    return GNNResult(neighbors=best.neighbors(), cost=tracker.finish())


def _divisor(query: GroupQuery) -> float:
    """The denominator of Heuristic 2, generalised to weights and aggregates.

    Pruning is safe whenever ``divisor * mindist(N, M) <= dist(p, Q)`` for
    every point ``p`` inside ``N``.  Because each ``|p q_i|`` is at least
    ``mindist(p, M)``:

    * sum aggregate: ``dist(p, Q) >= (sum_i w_i) * mindist`` — divisor is
      ``n`` for unweighted queries (the paper's Heuristic 2);
    * max aggregate: ``dist(p, Q) >= (max_i w_i) * mindist``;
    * min aggregate: ``dist(p, Q) >= (min_i w_i) * mindist``.
    """
    if query.aggregate == "sum":
        return query.total_weight()
    weights = query.weights
    if weights is None:
        return 1.0
    if query.aggregate == "max":
        return float(weights.max())
    return float(weights.min())


def _mbm_best_first(tree, query, best, use_heuristic3, exclude=None) -> None:
    """Best-first MBM: the heap is ordered by mindist to the query MBR.

    Each popped node is scored with batched kernels: one call computes
    the mindist of the whole child list to the query MBR (Heuristic 2)
    and one more computes the aggregate lower bounds of the survivors
    (Heuristic 3).  ``best`` cannot change while a child list is being
    scored (offers only happen at leaves), so the batched checks decide
    exactly what the entry-at-a-time loop decided.
    """
    query_mbr = query.mbr
    divisor = _divisor(query)
    counter = itertools.count()
    heap = [(0.0, next(counter), tree.root)]

    while heap:
        mindist_to_m, _, node = heapq.heappop(heap)
        # The heap is ordered by mindist(N, M): once the head fails
        # Heuristic 2 every remaining entry fails it too.
        if best.is_full() and heuristic2_prunes(mindist_to_m, best.best_dist, divisor):
            break
        node = tree.read_node(node)
        if node.is_leaf:
            _process_leaf(tree, node, query, best, divisor, exclude)
            continue
        lows, highs = node.child_bounds()
        child_mindists = kernels.boxes_mindist_box(lows, highs, query_mbr.low, query_mbr.high)
        tree.stats.record_distance_computations(len(node.entries))
        if best.is_full():
            survives = ~heuristic2_prunes_batch(child_mindists, best.best_dist, divisor)
        else:
            survives = np.ones(len(node.entries), dtype=bool)
        if use_heuristic3 and best.is_full() and survives.any():
            indices = np.flatnonzero(survives)
            lower_bounds = query.mindist_lower_bounds(lows[indices], highs[indices])
            tree.stats.record_distance_computations(query.cardinality * indices.size)
            survives[indices[heuristic3_prunes_batch(lower_bounds, best.best_dist)]] = False
        for index in np.flatnonzero(survives):
            heapq.heappush(
                heap, (float(child_mindists[index]), next(counter), node.entries[index].child)
            )


def _mbm_best_first_flat(flat, query, best, use_heuristic3, exclude=None) -> None:
    """Best-first MBM over a flat snapshot: arrays in, integer heap items out.

    Mirrors :func:`_mbm_best_first` decision for decision — the same
    kernels score the same child slices, Heuristics 2/3 see the same
    floats, children are pushed in the same order — so the node-access
    and distance-computation counts (and the answers) are identical.
    The only differences are mechanical: child bounds come from array
    slices instead of per-node caches and heap entries carry node ids.
    """
    query_mbr = query.mbr
    divisor = _divisor(query)
    counter = itertools.count()
    heap: list[tuple[float, int, int]] = [(0.0, next(counter), 0)]
    stats = flat.stats
    child_start = flat.child_start
    child_count = flat.child_count
    levels = flat.levels
    all_lows = flat.lows
    all_highs = flat.highs
    scorer = kernels.scorer_for(query.points, query.weights, query.aggregate, flat.capacity)

    while heap:
        mindist_to_m, _, node_id = heapq.heappop(heap)
        if best.is_full() and heuristic2_prunes(mindist_to_m, best.best_dist, divisor):
            break
        index = flat.read_node(node_id)
        start = int(child_start[index])
        stop = start + int(child_count[index])
        if levels[index] == 0:
            _process_leaf_flat(flat, start, stop, query, best, divisor, scorer, exclude)
            continue
        lows = all_lows[start:stop]
        highs = all_highs[start:stop]
        if scorer is not None:
            child_mindists = scorer.boxes_mindist_box(lows, highs, query_mbr.low, query_mbr.high)
        else:
            child_mindists = kernels.boxes_mindist_box(lows, highs, query_mbr.low, query_mbr.high)
        stats.record_distance_computations(stop - start)
        if best.is_full():
            survives = ~heuristic2_prunes_batch(child_mindists, best.best_dist, divisor)
        else:
            survives = np.ones(stop - start, dtype=bool)
        if use_heuristic3 and best.is_full() and survives.any():
            indices = np.flatnonzero(survives)
            if scorer is not None:
                # boxes_group_sum_mindist shares no state with the box
                # buffer holding child_mindists, so the bounds can be
                # computed before the surviving children are pushed.
                lower_bounds = scorer.boxes_group_sum_mindist(lows[indices], highs[indices])
            else:
                lower_bounds = query.mindist_lower_bounds(lows[indices], highs[indices])
            stats.record_distance_computations(query.cardinality * indices.size)
            survives[indices[heuristic3_prunes_batch(lower_bounds, best.best_dist)]] = False
        for offset in np.flatnonzero(survives):
            heapq.heappush(
                heap, (float(child_mindists[offset]), next(counter), start + int(offset))
            )


def _process_leaf_flat(
    flat, start, stop, query, best, divisor, scorer=None, exclude=None
) -> None:
    """Leaf consumption over the flat point matrix with a pure-float loop.

    The candidate selection (Heuristic-2 mask over the mindist ordering)
    and the batched aggregate distances are exactly those of
    :func:`_process_leaf`.  The sequential replay below inlines the
    Heuristic-2 inequality, skips ``offer`` calls that provably return
    False (a full best-list and ``distance >= best_dist``), and records
    the per-candidate distance charges — ``n`` for every candidate
    consumed before the break — as one batched charge with the same
    total.
    """
    query_mbr = query.mbr
    coords = flat.points[start:stop]
    if scorer is not None:
        mindists = scorer.points_mindist_box(coords, query_mbr.low, query_mbr.high)
    else:
        mindists = kernels.points_mindist_box(coords, query_mbr.low, query_mbr.high)
    flat.stats.record_distance_computations(stop - start)
    order = np.argsort(mindists, kind="stable")
    if best.is_full():
        candidates = order[~heuristic2_prunes_batch(mindists[order], best.best_dist, divisor)]
    else:
        candidates = order
    if candidates.size == 0:
        return
    if scorer is not None:
        # mindists lives in the scorer's box buffer, which the group
        # kernel below does not touch; both are consumed via tolist()
        # before any further scorer call.
        distances = scorer.group_sum_distances(coords[candidates])
    else:
        distances = query.distances_to(coords[candidates])

    candidate_mindists = mindists[candidates].tolist()
    candidate_distances = distances.tolist()
    record_ids = flat.record_ids
    points = flat.points
    offer = best.offer
    best_dist = best.best_dist
    full = best.is_full()
    consumed = 0
    for position, offset in enumerate(candidates.tolist()):
        if full and candidate_mindists[position] >= best_dist / divisor:
            break
        row = start + offset
        if exclude is not None and int(record_ids[row]) in exclude:
            continue
        consumed += 1
        distance = candidate_distances[position]
        if not full or distance < best_dist:
            offer(int(record_ids[row]), points[row], distance)
            best_dist = best.best_dist
            full = best.is_full()
    flat.stats.record_distance_computations(query.cardinality * consumed)


def _mbm_depth_first(tree, node, query, best, use_heuristic3, exclude=None) -> None:
    """Depth-first MBM following the walk-through of Figure 3.7."""
    query_mbr = query.mbr
    divisor = _divisor(query)
    node = tree.read_node(node)
    if node.is_leaf:
        _process_leaf(tree, node, query, best, divisor, exclude)
        return
    lows, highs = node.child_bounds()
    mindists = kernels.boxes_mindist_box(lows, highs, query_mbr.low, query_mbr.high)
    tree.stats.record_distance_computations(len(node.entries))
    for index in np.argsort(mindists, kind="stable"):
        mindist_to_m = float(mindists[index])
        if best.is_full() and heuristic2_prunes(mindist_to_m, best.best_dist, divisor):
            break
        entry = node.entries[index]
        if use_heuristic3 and best.is_full():
            lower_bound = query.mindist_lower_bound(entry.mbr)
            tree.stats.record_distance_computations(query.cardinality)
            if heuristic3_prunes_precomputed(lower_bound, best.best_dist):
                continue
        _mbm_depth_first(tree, entry.child, query, best, use_heuristic3, exclude)


def _process_leaf(tree, node, query, best, divisor, exclude=None) -> None:
    """Apply Heuristic 2 to leaf points before paying the full distance computation.

    The leaf's points are scored in two kernel calls: mindists to the
    query MBR for the Heuristic-2 ordering, then aggregate distances for
    the candidates that can possibly survive.  ``best_dist`` only shrinks
    while the ordered candidates are consumed, so the sequential pruning
    loop visits a prefix of that candidate set — the per-candidate checks
    and charges below replay the entry-at-a-time loop exactly.
    """
    query_mbr = query.mbr
    coords = node.points_array()
    mindists = kernels.points_mindist_box(coords, query_mbr.low, query_mbr.high)
    tree.stats.record_distance_computations(len(node.entries))
    order = np.argsort(mindists, kind="stable")
    if best.is_full():
        candidates = order[~heuristic2_prunes_batch(mindists[order], best.best_dist, divisor)]
    else:
        candidates = order
    if candidates.size == 0:
        return
    distances = query.distances_to(coords[candidates])
    for position, index in enumerate(candidates):
        if best.is_full() and heuristic2_prunes(float(mindists[index]), best.best_dist, divisor):
            break
        entry = node.entries[index]
        if exclude is not None and entry.record_id in exclude:
            continue
        tree.stats.record_distance_computations(query.cardinality)
        best.offer(entry.record_id, entry.point, float(distances[position]))


# ----------------------------------------------------------------------
# shared-traversal batches
# ----------------------------------------------------------------------
def mbm_batch(
    flat: FlatRTree, groups: np.ndarray, k: int, use_heuristic3: bool = True
) -> list[GNNResult]:
    """Answer ``B`` unweighted sum-MBM queries with one shared traversal.

    ``groups`` is a ``(B, n, dims)`` stack of query groups (equal
    cardinality is the stacking requirement; the batch executor buckets
    specs accordingly).  The snapshot is traversed *once* for the whole
    batch: every node is read at most one time, its child slice (or leaf
    slice) is scored against all still-active queries in a single
    ``(B, m)`` / ``(B, fanout)`` kernel call, and per-query top-``k``
    state is maintained as ``(B, k)`` arrays.  Heuristics 2 and 3 prune
    per query exactly as in :func:`mbm` — a node is expanded while *any*
    query still needs it — so every returned answer is exact.

    Aggregate distances come from the same bit-identical kernels the
    per-query path uses, so returned distances equal per-query
    :func:`mbm` distances float for float.  Exact *ties* in the k-th
    distance at the selection boundary are resolved canonically — the
    tied slots go to the smallest record ids — whereas the per-query
    path keeps the first record its traversal encountered; on such ties
    (and only there, as with the executor's batched brute-force scan)
    the two paths may return different, equally distant records.
    Record ids are assumed unique (engine snapshots index by row).

    Cost reporting follows the shared execution: every result carries
    the *bucket-level* node-access and distance-computation counters of
    the one traversal (``algorithm="MBM-batch"``), with the wall-clock
    split evenly — per-query counters would be fiction here, since the
    whole point is that the batch does not pay per-query traversal
    costs.
    """
    groups = np.ascontiguousarray(np.asarray(groups, dtype=np.float64))
    if groups.ndim != 3:
        raise ValueError(f"expected stacked (B, n, dims) groups, got shape {groups.shape}")
    batch, cardinality, dims = groups.shape
    if dims != flat.dims:
        raise ValueError(f"groups have dimensionality {dims}, the snapshot {flat.dims}")
    if k < 1:
        raise ValueError("k must be at least 1")
    tracker = CostTracker("MBM-batch", trees=[flat])
    if len(flat) == 0:
        cost = tracker.finish()
        # One QueryCost per result — results must never share a
        # mutable cost object.
        return [
            GNNResult(neighbors=[], cost=QueryCost(**cost.as_dict())) for _ in range(batch)
        ]

    # Bit-identical to MBR.from_points on each group (same min/max).
    query_lows = groups.min(axis=1)
    query_highs = groups.max(axis=1)
    divisor = float(cardinality)
    use_2d = dims == 2
    stats = flat.stats
    points = flat.points
    record_ids = flat.record_ids

    top_dists = np.full((batch, k), np.inf)
    top_rows = np.full((batch, k), -1, dtype=np.int64)
    best_dist = np.full(batch, np.inf)

    counter = itertools.count()
    root_vec = kernels.boxes_mindist_boxes(
        flat.lows[0:1], flat.highs[0:1], query_lows, query_highs
    )[:, 0]
    heap: list[tuple] = [(float(root_vec.min()), next(counter), 0, root_vec)]

    while heap:
        _, _, node_id, mindist_vec = heapq.heappop(heap)
        # Heuristic 2 per query; thresholds only shrink, so a query
        # pruned at push time stays pruned here.
        active = mindist_vec < best_dist / divisor
        if not active.any():
            continue
        index = flat.read_node(node_id)
        start = int(flat.child_start[index])
        count = int(flat.child_count[index])
        stop = start + count
        if flat.levels[index] == 0:
            members = np.flatnonzero(active)
            coords = points[start:stop]
            subset = groups[members]
            if use_2d:
                distances = kernels.groups_aggregate_distances_2d(coords, subset)
            else:
                distances = kernels.batched_aggregate_distances(coords, subset)
            stats.record_distance_computations(cardinality * count * members.size)
            rows = np.arange(start, stop, dtype=np.int64)
            merged_dists = np.concatenate((top_dists[members], distances), axis=1)
            merged_rows = np.concatenate(
                (top_rows[members], np.broadcast_to(rows, (members.size, count))), axis=1
            )
            keep = np.argpartition(merged_dists, k - 1, axis=1)[:, :k]
            gather = np.arange(members.size)[:, None]
            kept_dists = merged_dists[gather, keep]
            kept_rows = merged_rows[gather, keep]
            kth = kept_dists.max(axis=1)
            # Boundary-tie canonicalisation: argpartition picks an
            # arbitrary subset of candidates tied at the k-th distance;
            # re-resolve those (rare) members so the tied slots go to
            # the smallest record ids — a deterministic, canonical rule.
            finite = np.isfinite(kth)
            tied_members = np.flatnonzero(
                finite
                & (
                    (merged_dists == kth[:, None]).sum(axis=1)
                    > (kept_dists == kth[:, None]).sum(axis=1)
                )
            )
            for member in tied_members.tolist():
                threshold = kth[member]
                below = merged_dists[member] < threshold
                tied = np.flatnonzero(merged_dists[member] == threshold)
                needed = k - int(below.sum())
                order = np.argsort(record_ids[merged_rows[member][tied]], kind="stable")
                chosen = tied[order[:needed]]
                kept_dists[member] = np.concatenate(
                    (merged_dists[member][below], merged_dists[member][chosen])
                )
                kept_rows[member] = np.concatenate(
                    (merged_rows[member][below], merged_rows[member][chosen])
                )
            top_dists[members] = kept_dists
            top_rows[members] = kept_rows
            best_dist[members] = kth
            continue
        lows = flat.lows[start:stop]
        highs = flat.highs[start:stop]
        child_mindists = kernels.boxes_mindist_boxes(lows, highs, query_lows, query_highs)
        stats.record_distance_computations(count * batch)
        # A query only continues below this node if it reached it
        # (``active``) and the child survives its Heuristics 2/3 — the
        # same per-query pruning the solo traversal applies.
        survives = child_mindists < (best_dist / divisor)[:, None]
        survives &= active[:, None]
        if use_heuristic3:
            members = np.flatnonzero(survives.any(axis=1))
            if members.size:
                if use_2d:
                    bounds = kernels.boxes_groups_mindist_2d(lows, highs, groups[members])
                else:
                    bounds = kernels.boxes_groups_mindist(lows, highs, groups[members])
                stats.record_distance_computations(cardinality * count * members.size)
                survives[members] &= bounds < best_dist[members][:, None]
        # Children are pushed with per-query mindists masked to +inf for
        # the queries pruned here, so every later ``active`` check
        # inherits the upstream Heuristic-2/3 decisions per query.
        for offset in np.flatnonzero(survives.any(axis=0)).tolist():
            child_vec = np.where(survives[:, offset], child_mindists[:, offset], np.inf)
            heapq.heappush(
                heap, (float(child_vec.min()), next(counter), start + offset, child_vec)
            )

    cost = tracker.finish()
    cost.cpu_time /= batch
    results = []
    for member in range(batch):
        valid = np.flatnonzero(top_rows[member] >= 0)
        rows = top_rows[member][valid]
        dists = top_dists[member][valid]
        # Ascending (distance, record id) — BestList.neighbors() order.
        order = np.lexsort((record_ids[rows], dists))
        neighbors = [
            GroupNeighbor(int(record_ids[row]), points[row], float(dist))
            for row, dist in zip(rows[order].tolist(), dists[order].tolist())
        ]
        member_cost = QueryCost(**cost.as_dict())
        results.append(GNNResult(neighbors=neighbors, cost=member_cost))
    return results
