"""MBM — the minimum bounding method (Section 3.3 of the paper).

MBM performs a single traversal of the R-tree of ``P`` pruned by the MBR
``M`` of the query group:

* **Heuristic 2** — a node (or point) whose ``mindist`` to ``M`` reaches
  ``best_dist / n`` cannot qualify.  One distance computation per node.
* **Heuristic 3** — a node whose summed per-query-point ``mindist``
  reaches ``best_dist`` cannot qualify.  Tighter, but needs ``n``
  distance computations, so it is only evaluated for nodes that survive
  Heuristic 2 (the paper's footnote 3 reports the same trade-off and the
  ablation benchmark reproduces it).

Both the best-first implementation (used in the paper's experiments) and
the depth-first variant (the walk-through of Figure 3.7) are provided.
The weighted and max/min-aggregate extensions reuse the same traversal
with generalised bounds (see :mod:`repro.core.aggregates`).
"""

from __future__ import annotations

import heapq
import itertools

from repro.core.heuristics import heuristic2_prunes, heuristic3_prunes_precomputed
from repro.core.instrumentation import CostTracker
from repro.core.types import BestList, GNNResult, GroupQuery
from repro.rtree.tree import RTree


def mbm(
    tree: RTree,
    query: GroupQuery,
    traversal: str = "best_first",
    use_heuristic3: bool = True,
) -> GNNResult:
    """Run the minimum bounding method.

    Parameters
    ----------
    tree:
        R-tree over the dataset ``P``.
    query:
        The query group; the sum aggregate matches the paper, and the
        weighted / max / min generalisations are accepted as well (the
        bounds degrade gracefully: Heuristic 2 uses the total weight,
        Heuristic 3 uses the aggregate lower bound).
    traversal:
        ``"best_first"`` (default) or ``"depth_first"``.
    use_heuristic3:
        Disable to reproduce the paper's ablation ("MBM with only
        heuristic 2 ... inferior to SPM").
    """
    if traversal not in ("best_first", "depth_first"):
        raise ValueError(f"unknown traversal {traversal!r}")
    tracker = CostTracker(f"MBM-{traversal}", trees=[tree])
    best = BestList(query.k)
    if len(tree) == 0:
        return GNNResult(neighbors=[], cost=tracker.finish())

    if traversal == "best_first":
        _mbm_best_first(tree, query, best, use_heuristic3)
    else:
        _mbm_depth_first(tree, tree.root, query, best, use_heuristic3)
    return GNNResult(neighbors=best.neighbors(), cost=tracker.finish())


def _divisor(query: GroupQuery) -> float:
    """The denominator of Heuristic 2, generalised to weights and aggregates.

    Pruning is safe whenever ``divisor * mindist(N, M) <= dist(p, Q)`` for
    every point ``p`` inside ``N``.  Because each ``|p q_i|`` is at least
    ``mindist(p, M)``:

    * sum aggregate: ``dist(p, Q) >= (sum_i w_i) * mindist`` — divisor is
      ``n`` for unweighted queries (the paper's Heuristic 2);
    * max aggregate: ``dist(p, Q) >= (max_i w_i) * mindist``;
    * min aggregate: ``dist(p, Q) >= (min_i w_i) * mindist``.
    """
    if query.aggregate == "sum":
        return query.total_weight()
    weights = query.weights
    if weights is None:
        return 1.0
    if query.aggregate == "max":
        return float(weights.max())
    return float(weights.min())


def _mbm_best_first(tree, query, best, use_heuristic3) -> None:
    """Best-first MBM: the heap is ordered by mindist to the query MBR."""
    query_mbr = query.mbr
    divisor = _divisor(query)
    counter = itertools.count()
    heap = [(0.0, next(counter), tree.root)]

    while heap:
        mindist_to_m, _, node = heapq.heappop(heap)
        # The heap is ordered by mindist(N, M): once the head fails
        # Heuristic 2 every remaining entry fails it too.
        if best.is_full() and heuristic2_prunes(mindist_to_m, best.best_dist, divisor):
            break
        node = tree.read_node(node)
        if node.is_leaf:
            _process_leaf(tree, node, query, best, divisor)
            continue
        for entry in node.entries:
            child_mindist = entry.mbr.mindist_mbr(query_mbr)
            tree.stats.record_distance_computations(1)
            if best.is_full() and heuristic2_prunes(child_mindist, best.best_dist, divisor):
                continue
            if use_heuristic3 and best.is_full():
                lower_bound = query.mindist_lower_bound(entry.mbr)
                tree.stats.record_distance_computations(query.cardinality)
                if heuristic3_prunes_precomputed(lower_bound, best.best_dist):
                    continue
            heapq.heappush(heap, (child_mindist, next(counter), entry.child))


def _mbm_depth_first(tree, node, query, best, use_heuristic3) -> None:
    """Depth-first MBM following the walk-through of Figure 3.7."""
    query_mbr = query.mbr
    divisor = _divisor(query)
    node = tree.read_node(node)
    if node.is_leaf:
        _process_leaf(tree, node, query, best, divisor)
        return
    ranked = sorted(node.entries, key=lambda e: e.mbr.mindist_mbr(query_mbr))
    tree.stats.record_distance_computations(len(node.entries))
    for entry in ranked:
        mindist_to_m = entry.mbr.mindist_mbr(query_mbr)
        if best.is_full() and heuristic2_prunes(mindist_to_m, best.best_dist, divisor):
            break
        if use_heuristic3 and best.is_full():
            lower_bound = query.mindist_lower_bound(entry.mbr)
            tree.stats.record_distance_computations(query.cardinality)
            if heuristic3_prunes_precomputed(lower_bound, best.best_dist):
                continue
        _mbm_depth_first(tree, entry.child, query, best, use_heuristic3)


def _process_leaf(tree, node, query, best, divisor) -> None:
    """Apply Heuristic 2 to leaf points before paying the full distance computation."""
    query_mbr = query.mbr
    ranked = sorted(node.entries, key=lambda e: query_mbr.mindist_point(e.point))
    tree.stats.record_distance_computations(len(node.entries))
    for entry in ranked:
        mindist_to_m = query_mbr.mindist_point(entry.point)
        if best.is_full() and heuristic2_prunes(mindist_to_m, best.best_dist, divisor):
            break
        distance = query.distance_to(entry.point)
        tree.stats.record_distance_computations(query.cardinality)
        best.offer(entry.record_id, entry.point, distance)
