"""MBM — the minimum bounding method (Section 3.3 of the paper).

MBM performs a single traversal of the R-tree of ``P`` pruned by the MBR
``M`` of the query group:

* **Heuristic 2** — a node (or point) whose ``mindist`` to ``M`` reaches
  ``best_dist / n`` cannot qualify.  One distance computation per node.
* **Heuristic 3** — a node whose summed per-query-point ``mindist``
  reaches ``best_dist`` cannot qualify.  Tighter, but needs ``n``
  distance computations, so it is only evaluated for nodes that survive
  Heuristic 2 (the paper's footnote 3 reports the same trade-off and the
  ablation benchmark reproduces it).

Both the best-first implementation (used in the paper's experiments) and
the depth-first variant (the walk-through of Figure 3.7) are provided.
The weighted and max/min-aggregate extensions reuse the same traversal
with generalised bounds (see :mod:`repro.core.aggregates`).
"""

from __future__ import annotations

import heapq
import itertools

import numpy as np

from repro.core.heuristics import (
    heuristic2_prunes,
    heuristic2_prunes_batch,
    heuristic3_prunes_batch,
    heuristic3_prunes_precomputed,
)
from repro.core.instrumentation import CostTracker
from repro.core.types import BestList, GNNResult, GroupQuery
from repro.geometry import kernels
from repro.rtree.tree import RTree


def mbm(
    tree: RTree,
    query: GroupQuery,
    traversal: str = "best_first",
    use_heuristic3: bool = True,
) -> GNNResult:
    """Run the minimum bounding method.

    Parameters
    ----------
    tree:
        R-tree over the dataset ``P``.
    query:
        The query group; the sum aggregate matches the paper, and the
        weighted / max / min generalisations are accepted as well (the
        bounds degrade gracefully: Heuristic 2 uses the total weight,
        Heuristic 3 uses the aggregate lower bound).
    traversal:
        ``"best_first"`` (default) or ``"depth_first"``.
    use_heuristic3:
        Disable to reproduce the paper's ablation ("MBM with only
        heuristic 2 ... inferior to SPM").
    """
    if traversal not in ("best_first", "depth_first"):
        raise ValueError(f"unknown traversal {traversal!r}")
    tracker = CostTracker(f"MBM-{traversal}", trees=[tree])
    best = BestList(query.k)
    if len(tree) == 0:
        return GNNResult(neighbors=[], cost=tracker.finish())

    if traversal == "best_first":
        _mbm_best_first(tree, query, best, use_heuristic3)
    else:
        _mbm_depth_first(tree, tree.root, query, best, use_heuristic3)
    return GNNResult(neighbors=best.neighbors(), cost=tracker.finish())


def _divisor(query: GroupQuery) -> float:
    """The denominator of Heuristic 2, generalised to weights and aggregates.

    Pruning is safe whenever ``divisor * mindist(N, M) <= dist(p, Q)`` for
    every point ``p`` inside ``N``.  Because each ``|p q_i|`` is at least
    ``mindist(p, M)``:

    * sum aggregate: ``dist(p, Q) >= (sum_i w_i) * mindist`` — divisor is
      ``n`` for unweighted queries (the paper's Heuristic 2);
    * max aggregate: ``dist(p, Q) >= (max_i w_i) * mindist``;
    * min aggregate: ``dist(p, Q) >= (min_i w_i) * mindist``.
    """
    if query.aggregate == "sum":
        return query.total_weight()
    weights = query.weights
    if weights is None:
        return 1.0
    if query.aggregate == "max":
        return float(weights.max())
    return float(weights.min())


def _mbm_best_first(tree, query, best, use_heuristic3) -> None:
    """Best-first MBM: the heap is ordered by mindist to the query MBR.

    Each popped node is scored with batched kernels: one call computes
    the mindist of the whole child list to the query MBR (Heuristic 2)
    and one more computes the aggregate lower bounds of the survivors
    (Heuristic 3).  ``best`` cannot change while a child list is being
    scored (offers only happen at leaves), so the batched checks decide
    exactly what the entry-at-a-time loop decided.
    """
    query_mbr = query.mbr
    divisor = _divisor(query)
    counter = itertools.count()
    heap = [(0.0, next(counter), tree.root)]

    while heap:
        mindist_to_m, _, node = heapq.heappop(heap)
        # The heap is ordered by mindist(N, M): once the head fails
        # Heuristic 2 every remaining entry fails it too.
        if best.is_full() and heuristic2_prunes(mindist_to_m, best.best_dist, divisor):
            break
        node = tree.read_node(node)
        if node.is_leaf:
            _process_leaf(tree, node, query, best, divisor)
            continue
        lows, highs = node.child_bounds()
        child_mindists = kernels.boxes_mindist_box(lows, highs, query_mbr.low, query_mbr.high)
        tree.stats.record_distance_computations(len(node.entries))
        if best.is_full():
            survives = ~heuristic2_prunes_batch(child_mindists, best.best_dist, divisor)
        else:
            survives = np.ones(len(node.entries), dtype=bool)
        if use_heuristic3 and best.is_full() and survives.any():
            indices = np.flatnonzero(survives)
            lower_bounds = query.mindist_lower_bounds(lows[indices], highs[indices])
            tree.stats.record_distance_computations(query.cardinality * indices.size)
            survives[indices[heuristic3_prunes_batch(lower_bounds, best.best_dist)]] = False
        for index in np.flatnonzero(survives):
            heapq.heappush(
                heap, (float(child_mindists[index]), next(counter), node.entries[index].child)
            )


def _mbm_depth_first(tree, node, query, best, use_heuristic3) -> None:
    """Depth-first MBM following the walk-through of Figure 3.7."""
    query_mbr = query.mbr
    divisor = _divisor(query)
    node = tree.read_node(node)
    if node.is_leaf:
        _process_leaf(tree, node, query, best, divisor)
        return
    lows, highs = node.child_bounds()
    mindists = kernels.boxes_mindist_box(lows, highs, query_mbr.low, query_mbr.high)
    tree.stats.record_distance_computations(len(node.entries))
    for index in np.argsort(mindists, kind="stable"):
        mindist_to_m = float(mindists[index])
        if best.is_full() and heuristic2_prunes(mindist_to_m, best.best_dist, divisor):
            break
        entry = node.entries[index]
        if use_heuristic3 and best.is_full():
            lower_bound = query.mindist_lower_bound(entry.mbr)
            tree.stats.record_distance_computations(query.cardinality)
            if heuristic3_prunes_precomputed(lower_bound, best.best_dist):
                continue
        _mbm_depth_first(tree, entry.child, query, best, use_heuristic3)


def _process_leaf(tree, node, query, best, divisor) -> None:
    """Apply Heuristic 2 to leaf points before paying the full distance computation.

    The leaf's points are scored in two kernel calls: mindists to the
    query MBR for the Heuristic-2 ordering, then aggregate distances for
    the candidates that can possibly survive.  ``best_dist`` only shrinks
    while the ordered candidates are consumed, so the sequential pruning
    loop visits a prefix of that candidate set — the per-candidate checks
    and charges below replay the entry-at-a-time loop exactly.
    """
    query_mbr = query.mbr
    coords = node.points_array()
    mindists = kernels.points_mindist_box(coords, query_mbr.low, query_mbr.high)
    tree.stats.record_distance_computations(len(node.entries))
    order = np.argsort(mindists, kind="stable")
    if best.is_full():
        candidates = order[~heuristic2_prunes_batch(mindists[order], best.best_dist, divisor)]
    else:
        candidates = order
    if candidates.size == 0:
        return
    distances = query.distances_to(coords[candidates])
    for position, index in enumerate(candidates):
        if best.is_full() and heuristic2_prunes(float(mindists[index]), best.best_dist, divisor):
            break
        entry = node.entries[index]
        tree.stats.record_distance_computations(query.cardinality)
        best.offer(entry.record_id, entry.point, float(distances[position]))
