"""Brute-force GNN baseline.

Scans the entire dataset and evaluates the aggregate distance of every
point.  It is used (i) as the ground truth that every algorithm is
checked against in the test suite, and (ii) as a sanity baseline in the
benchmark harness (the paper does not plot it, but it makes the wins of
the indexed algorithms tangible).
"""

from __future__ import annotations

import time

import numpy as np

from repro.geometry import kernels
from repro.geometry.point import as_points
from repro.core.types import GNNResult, GroupNeighbor, GroupQuery, QueryCost


def brute_force_gnn(points, query: GroupQuery, record_ids=None) -> GNNResult:
    """Return the exact top-k group neighbors by exhaustive scan.

    ``points`` is the full dataset ``P`` as an ``(N, dims)`` array whose
    row indices serve as record ids — unless ``record_ids`` supplies the
    id of each row explicitly (the write path hands live views whose
    rows no longer coincide with record ids after deletions).  The whole
    scan is a single call of the aggregate-distance kernel (weights were
    validated by the query).
    """
    started = time.perf_counter()
    pts = as_points(points)
    distances = kernels.aggregate_distances(
        pts, query.points, weights=query.weights, aggregate=query.aggregate
    )
    k = min(query.k, pts.shape[0])
    # argpartition gives the k smallest in O(N); sort just those k.
    candidate_ids = np.argpartition(distances, k - 1)[:k]
    order = candidate_ids[np.argsort(distances[candidate_ids], kind="stable")]
    if record_ids is None:
        neighbors = [GroupNeighbor(int(i), pts[i], float(distances[i])) for i in order]
    else:
        ids = np.asarray(record_ids, dtype=np.int64)
        neighbors = [
            GroupNeighbor(int(ids[i]), pts[i], float(distances[i])) for i in order
        ]
    cost = QueryCost(
        algorithm="brute-force",
        distance_computations=int(pts.shape[0] * query.cardinality),
        cpu_time=time.perf_counter() - started,
    )
    return GNNResult(neighbors=neighbors, cost=cost)


def brute_force_over_tree(tree, query: GroupQuery) -> GNNResult:
    """Brute force over the points stored in an R-tree (ignores the index).

    Convenient in tests where only the tree is at hand; node accesses are
    *not* charged because the scan bypasses the index structure.
    """
    items = list(tree.all_points())
    if not items:
        return GNNResult(neighbors=[], cost=QueryCost(algorithm="brute-force"))
    record_ids = np.array([record_id for record_id, _ in items], dtype=np.int64)
    pts = np.vstack([point for _, point in items])
    result = brute_force_gnn(pts, query)
    for neighbor in result.neighbors:
        neighbor.record_id = int(record_ids[neighbor.record_id])
    return result
