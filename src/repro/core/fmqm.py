"""F-MQM — the file multiple query method (Section 4.2 of the paper).

F-MQM handles a disk-resident, non-indexed query set.  The query file is
Hilbert-sorted and split into memory-sized blocks ``Q_1 .. Q_m``.  Each
block behaves like a "super query point": an incremental *group* NN
stream (best-first over the R-tree of ``P``, ordered by the aggregate
distance to the block) retrieves its neighbors one at a time, and the
per-block thresholds ``t_j = dist(p_j, Q_j)`` are combined exactly as in
MQM — the global threshold ``T = sum_j t_j`` lower-bounds the aggregate
distance of every point not yet retrieved by *some* block.

The paper follows a lazy round-robin schedule to complete the global
distances of retrieved points; the implementation below performs the
same work per block visit (when block ``Q_j`` is resident, the distances
of all pending candidates to ``Q_j`` are accumulated), which completes
each candidate after one full round, and charges one block read per
visit.
"""

from __future__ import annotations

import numpy as np

from repro.core.instrumentation import CostTracker
from repro.core.types import BestList, GNNResult
from repro.geometry import kernels
from repro.geometry.distance import group_distance, group_mindist
from repro.rtree.traversal import incremental_nearest_generic
from repro.rtree.tree import RTree
from repro.storage.pointfile import PointFile


class _PendingCandidate:
    """A retrieved point whose global (all-blocks) distance is still partial."""

    __slots__ = ("point", "accumulated", "blocks_seen")

    def __init__(self, point):
        self.point = point
        self.accumulated = 0.0
        self.blocks_seen: set[int] = set()


def fmqm(tree: RTree, query_file: PointFile, k: int = 1) -> GNNResult:
    """Run F-MQM over a disk-resident query file.

    Parameters
    ----------
    tree:
        R-tree over the dataset ``P``.
    query_file:
        The (Hilbert-sorted) query file; its block structure defines the
        groups ``Q_1 .. Q_m``.
    k:
        Number of group nearest neighbors to return.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    tracker = CostTracker("F-MQM", trees=[tree], io_counters=[query_file.counters])
    best = BestList(k)
    if len(tree) == 0 or len(query_file) == 0:
        return GNNResult(neighbors=[], cost=tracker.finish())

    block_count = query_file.block_count
    blocks = {}
    streams = {}
    thresholds = [0.0] * block_count
    stream_exhausted = [False] * block_count
    pending: dict[int, _PendingCandidate] = {}
    finished: set[int] = set()

    def load_block(index: int):
        """Bring block ``Q_index`` into memory, charging one block read."""
        block = query_file.read_block(index)
        blocks[index] = block
        return block

    def stream_for(index: int):
        """Create (lazily) the incremental group-NN stream of block ``Q_index``."""
        if index not in streams:
            block = blocks[index]

            def node_key(mbr, _points=block.points):
                return group_mindist(mbr, _points)

            def point_key(point, _points=block.points):
                return group_distance(point, _points)

            def points_key(points, _points=block.points):
                return kernels.aggregate_distances(points, _points)

            def mbrs_key(lows, highs, _points=block.points):
                return kernels.boxes_group_mindist(lows, highs, _points)

            streams[index] = incremental_nearest_generic(
                tree, node_key, point_key, points_key=points_key, mbrs_key=mbrs_key
            )
        return streams[index]

    while True:
        if best.is_full() and sum(thresholds) >= best.best_dist:
            break
        if all(stream_exhausted):
            break
        progressed = False
        for j in range(block_count):
            # Load Q_j (one block read per visit, as in the paper's
            # round-robin schedule) and advance its stream by one neighbor.
            block = load_block(j)
            if not stream_exhausted[j]:
                neighbor = next(stream_for(j), None)
                if neighbor is None:
                    stream_exhausted[j] = True
                else:
                    progressed = True
                    thresholds[j] = neighbor.distance
                    tree.stats.record_distance_computations(block.cardinality)
                    record_id = neighbor.record_id
                    if record_id not in finished and record_id not in pending:
                        candidate = _PendingCandidate(neighbor.point)
                        pending[record_id] = candidate

            # While Q_j is resident, accumulate its contribution to every
            # pending candidate that has not seen it yet — one kernel call
            # for the whole waiting set.
            waiting = [
                (record_id, candidate)
                for record_id, candidate in pending.items()
                if j not in candidate.blocks_seen
            ]
            completed_now = []
            if waiting:
                stacked = np.array([candidate.point for _, candidate in waiting])
                contributions = kernels.aggregate_distances(stacked, block.points)
                tree.stats.record_distance_computations(block.cardinality * len(waiting))
                for (record_id, candidate), contribution in zip(waiting, contributions):
                    candidate.accumulated += float(contribution)
                    candidate.blocks_seen.add(j)
                    if len(candidate.blocks_seen) == block_count:
                        completed_now.append(record_id)
            for record_id in completed_now:
                candidate = pending.pop(record_id)
                finished.add(record_id)
                best.offer(record_id, candidate.point, candidate.accumulated)

            if best.is_full() and sum(thresholds) >= best.best_dist:
                break
        if not progressed and not pending:
            break

    # Candidates retrieved shortly before the threshold fired may still
    # have partial global distances.  The paper's description glosses over
    # them; completing them costs at most one extra round of block reads
    # (the pending list never exceeds the number of blocks) and guarantees
    # the result is exact.
    if pending:
        for j in range(block_count):
            waiting = [c for c in pending.values() if j not in c.blocks_seen]
            if not waiting:
                continue
            block = query_file.read_block(j)
            stacked = np.array([candidate.point for candidate in waiting])
            contributions = kernels.aggregate_distances(stacked, block.points)
            tree.stats.record_distance_computations(block.cardinality * len(waiting))
            for candidate, contribution in zip(waiting, contributions):
                candidate.accumulated += float(contribution)
                candidate.blocks_seen.add(j)
        for record_id, candidate in pending.items():
            best.offer(record_id, candidate.point, candidate.accumulated)

    return GNNResult(neighbors=best.neighbors(), cost=tracker.finish())
