"""Query-group centroid computation (Section 3.2 of the paper).

SPM needs a point ``q`` with small ``dist(q, Q)``; the ideal choice is
the geometric median, which has no closed form for ``n > 2`` and must be
approximated numerically.  The paper uses gradient descent; this module
provides that method plus Weiszfeld's algorithm (the standard fixed-point
iteration for the geometric median) and the arithmetic mean, so the
ablation benchmark can compare how the choice affects SPM.

Any approximation keeps SPM correct — Lemma 1 holds for an *arbitrary*
point ``q`` — a better centroid merely tightens the pruning bound.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.distance import distances_to_group
from repro.geometry.point import as_points

#: Convergence tolerance on the movement of the iterate between steps.
DEFAULT_TOLERANCE = 1e-9
DEFAULT_MAX_ITERATIONS = 200


def arithmetic_mean(points) -> np.ndarray:
    """The coordinate-wise mean of the query points.

    This is the starting point the paper uses for gradient descent; it
    already minimises the sum of *squared* distances.
    """
    pts = as_points(points)
    return pts.mean(axis=0)


def gradient_descent_centroid(
    points,
    step_size: float | None = None,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    tolerance: float = DEFAULT_TOLERANCE,
) -> np.ndarray:
    """Approximate the geometric median by gradient descent, as in the paper.

    The objective is ``dist(q, Q) = sum_i |q - q_i|`` whose gradient is
    ``sum_i (q - q_i) / |q - q_i|``.  Starting from the arithmetic mean,
    the iterate moves against the gradient with a step size proportional
    to the data spread; the step is halved whenever it fails to decrease
    the objective, which makes the iteration robust without tuning.
    """
    pts = as_points(points)
    q = arithmetic_mean(pts)
    if pts.shape[0] == 1:
        return pts[0].copy()
    spread = float(np.max(pts.max(axis=0) - pts.min(axis=0)))
    if spread == 0.0:
        return q
    eta = step_size if step_size is not None else spread / max(4, pts.shape[0])

    # The loop below runs a few hundred small numpy calls per query, so
    # it evaluates through preallocated buffers and np.add.reduce — the
    # reduction np.sum dispatches to — instead of the validating helper
    # functions.  The arithmetic is identical op for op (subtract,
    # square, reduce, sqrt on the same operands in the same order), so
    # the returned centroid is bit-for-bit the one the helpers produce;
    # SPM's pruning bounds and pinned counters depend on that.
    delta = np.empty_like(pts)
    squared = np.empty(pts.shape[0], dtype=np.float64)

    def distances_from(reference: np.ndarray) -> np.ndarray:
        np.subtract(pts, reference, out=delta)
        np.multiply(delta, delta, out=delta)
        np.add.reduce(delta, axis=1, out=squared)
        return np.sqrt(squared, out=squared)

    value = float(distances_from(q).sum(axis=-1))

    for _ in range(max_iterations):
        dists = distances_from(q)
        # Guard against a zero distance (q coincides with a query point):
        # that point contributes no well-defined gradient direction.
        safe = np.where(dists > 0.0, dists, np.inf)
        np.subtract(q, pts, out=delta)
        np.divide(delta, safe[:, None], out=delta)
        gradient = np.add.reduce(delta, axis=0)
        grad_norm = float(np.sqrt(np.dot(gradient, gradient)))
        if grad_norm <= tolerance:
            break
        candidate = q - eta * gradient
        candidate_value = float(distances_from(candidate).sum(axis=-1))
        if candidate_value < value:
            if np.all(np.abs(candidate - q) <= tolerance * max(1.0, spread)):
                q = candidate
                break
            q = candidate
            value = candidate_value
        else:
            eta /= 2.0
            if eta * grad_norm <= tolerance:
                break
    return q


def weiszfeld_centroid(
    points,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    tolerance: float = DEFAULT_TOLERANCE,
) -> np.ndarray:
    """Approximate the geometric median with Weiszfeld's fixed-point iteration.

    Converges faster than plain gradient descent on most inputs and is
    provided as an alternative centroid backend for SPM.
    """
    pts = as_points(points)
    if pts.shape[0] == 1:
        return pts[0].copy()
    q = arithmetic_mean(pts)
    for _ in range(max_iterations):
        dists = distances_to_group(q, pts)
        at_point = dists <= tolerance
        if np.any(at_point):
            # The iterate sits on a query point; that point is either the
            # median itself or the standard perturbation applies.  Moving
            # on from the unperturbed average of the rest is sufficient
            # for SPM's purposes.
            others = pts[~at_point]
            if others.shape[0] == 0:
                return q
            dists = np.where(at_point, np.inf, dists)
        weights = 1.0 / dists
        candidate = (pts * weights[:, None]).sum(axis=0) / weights.sum()
        if np.all(np.abs(candidate - q) <= tolerance):
            return candidate
        q = candidate
    return q


_METHODS = {
    "gradient": gradient_descent_centroid,
    "weiszfeld": weiszfeld_centroid,
    "mean": lambda points: arithmetic_mean(points),
}


def compute_centroid(points, method: str = "gradient") -> np.ndarray:
    """Compute the SPM centroid with the chosen backend.

    ``method`` is ``"gradient"`` (the paper's choice, default),
    ``"weiszfeld"`` or ``"mean"``.
    """
    if method not in _METHODS:
        raise ValueError(f"unknown centroid method {method!r}; expected one of {sorted(_METHODS)}")
    return _METHODS[method](points)
