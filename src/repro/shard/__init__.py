"""Horizontal sharding: networked scatter-gather GNN serving.

One dataset, ``K`` machines.  :func:`partition_dataset` cuts the data
into Hilbert-contiguous chunks and bulk-loads each into its own flat
R-tree snapshot described by a :class:`ShardManifest`; a
:class:`ShardNode` serves one such snapshot over TCP (wrapping the
process-pool :class:`~repro.serve.server.GNNServer`); and a
:class:`ShardCoordinator` — or its engine facade :class:`ShardedEngine`
— answers queries by best-first scatter-gather over the federation,
pruning shards with the paper's Heuristic-2 bound applied to shard
root MBRs.  :class:`ShardWriter` is the federation's write path: it
Hilbert-routes inserts and deletes into per-shard delta overlays
(federation-global record ids) and compacts dirty shards into
generation-``N+1`` snapshots plus an updated manifest, which live
nodes absorb via :meth:`ShardNode.swap_snapshot`.

The minimal end-to-end recipe::

    manifest = partition_dataset(points, shards=4, directory=tmp)
    nodes = [ShardNode(s.shard_id, tmp / s.path).__enter__()
             for s in manifest.shards]
    engine = ShardedEngine.connect(manifest, [n.address for n in nodes])
    result = engine.execute(QuerySpec(group=group, k=8, index="sharded"))
"""

from repro.shard.coordinator import (
    CoordinatorStats,
    ShardCoordinator,
    ShardQueryError,
    ShardUnavailableError,
)
from repro.shard.engine import ShardedEngine
from repro.shard.health import CircuitBreaker, HealthMonitor
from repro.shard.launch import ShardNodeProcess
from repro.shard.manifest import MANIFEST_FILENAME, ShardInfo, ShardManifest
from repro.shard.node import ShardNode
from repro.shard.partition import partition_dataset, partition_points, shard_snapshot_name
from repro.shard.writes import ShardWriter

__all__ = [
    "CircuitBreaker",
    "CoordinatorStats",
    "HealthMonitor",
    "MANIFEST_FILENAME",
    "ShardCoordinator",
    "ShardInfo",
    "ShardManifest",
    "ShardNode",
    "ShardNodeProcess",
    "ShardQueryError",
    "ShardUnavailableError",
    "ShardWriter",
    "ShardedEngine",
    "partition_dataset",
    "partition_points",
    "shard_snapshot_name",
]
