"""Hilbert-range partitioning of a dataset into per-shard snapshots.

:func:`partition_dataset` is the offline half of the sharded serving
story: it splits one dataset into ``K`` spatially-coherent chunks and
bulk-loads each chunk into its own :class:`~repro.rtree.flat.FlatRTree`
snapshot, ready for ``K`` shard nodes to mmap and serve.

The split is by Hilbert rank: points are sorted by their Hilbert-curve
index (the same curve the bulk loader and MQM use) and cut into ``K``
contiguous, equal-count runs.  Contiguity on the curve is what makes
the shards *prunable* — each shard owns a compact blob of space, so its
root MBR is tight and the coordinator's federation-level ``amindist``
bound actually separates shards.  Random assignment would give every
shard a root MBR covering the whole workspace and reduce scatter-gather
to always-broadcast.

Crucially, every shard snapshot keeps the *global* record ids of its
points (the row numbers of the original dataset), so a federated top-k
and a single-index top-k over the same data speak the same identifier
space and can be compared entry for entry.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.geometry.hilbert import DEFAULT_ORDER, hilbert_indices
from repro.geometry.point import as_points
from repro.rtree.flat import FlatRTree
from repro.shard.manifest import ShardInfo, ShardManifest


#: Records sampled into the manifest per shard (evenly spaced along the
#: shard's Hilbert run, so the sample tracks the shard's spatial spread).
#: The coordinator seeds its k-th-distance bound from these — see
#: :meth:`~repro.shard.manifest.ShardManifest.sample_kth_distance`.
SAMPLE_SIZE = 32


def shard_snapshot_name(shard_id: int, generation: int) -> str:
    """Canonical snapshot filename of one shard at one generation."""
    return f"shard-{shard_id:03d}-gen{generation:06d}.npz"


def sample_rows(rows: np.ndarray, size: int = SAMPLE_SIZE) -> np.ndarray:
    """Up to ``size`` of ``rows``, evenly spaced (deterministic)."""
    if rows.shape[0] <= size:
        return rows
    picks = np.linspace(0, rows.shape[0] - 1, size).round().astype(np.intp)
    return rows[np.unique(picks)]


def partition_points(points: np.ndarray, shards: int, order: int = DEFAULT_ORDER):
    """Split ``points`` into ``shards`` contiguous Hilbert-rank runs.

    Returns ``(assignments, keys)`` where ``assignments`` is a list of
    ``shards`` index vectors into ``points`` (each sorted by Hilbert
    rank, sizes differing by at most one) and ``keys`` the per-point
    Hilbert indices.  The stable argsort makes the split a pure function
    of the input, so re-partitioning the same dataset reproduces the
    same shards.
    """
    pts = as_points(points)
    if shards < 1:
        raise ValueError("shards must be positive")
    if shards > pts.shape[0]:
        raise ValueError(
            f"cannot cut {pts.shape[0]} points into {shards} non-empty shards"
        )
    keys = hilbert_indices(pts, order)
    ranked = np.argsort(keys, kind="stable")
    assignments = [chunk for chunk in np.array_split(ranked, shards)]
    return assignments, keys


def partition_dataset(
    points: np.ndarray,
    shards: int,
    directory,
    *,
    capacity: int = 50,
    method: str = "str",
    generation: int = 0,
    order: int = DEFAULT_ORDER,
) -> ShardManifest:
    """Partition ``points`` into ``shards`` snapshot files under ``directory``.

    Each shard's chunk is bulk-loaded (``method`` is the usual
    ``"str"``/``"hilbert"`` choice) into a :class:`FlatRTree` carrying
    the chunk's *original row numbers* as record ids, and saved as
    ``shard-<id>-gen<generation>.npz``.  A ``manifest.json`` describing
    the federation (root MBRs, counts, Hilbert ranges, and a small
    evenly-spaced record sample per shard) is written last, so a
    manifest never names snapshots that are still being built.

    Returns the in-memory :class:`ShardManifest`.
    """
    pts = as_points(points)
    base = Path(directory)
    base.mkdir(parents=True, exist_ok=True)
    assignments, keys = partition_points(pts, shards, order)

    infos = []
    for shard_id, rows in enumerate(assignments):
        tree = FlatRTree.bulk_load(
            pts[rows], capacity=capacity, method=method, record_ids=rows
        )
        name = shard_snapshot_name(shard_id, generation)
        tree.save(base / name, generation=generation)
        low, high = tree.root_mbr()
        shard_keys = keys[rows]
        infos.append(
            ShardInfo(
                shard_id=shard_id,
                path=name,
                count=int(rows.shape[0]),
                root_low=tuple(float(v) for v in low),
                root_high=tuple(float(v) for v in high),
                hilbert_low=int(shard_keys.min()),
                hilbert_high=int(shard_keys.max()),
                sample=tuple(
                    tuple(float(v) for v in pts[row]) for row in sample_rows(rows)
                ),
            )
        )

    manifest = ShardManifest(
        dims=int(pts.shape[1]),
        size=int(pts.shape[0]),
        capacity=capacity,
        generation=generation,
        shards=tuple(infos),
    )
    manifest.save(base)
    return manifest
