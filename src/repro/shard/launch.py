"""Host a :class:`ShardNode` in its own operating-system process.

:class:`ShardNode` is in-process: its asyncio loop and the wrapped
server's scheduler/reply threads all share the creating interpreter's
GIL.  That is the right shape for tests, but a federation run that way
puts every node's network layer *and* the coordinator in one Python
process, so loopback "distribution" serialises on a single lock — the
opposite of what sharding is for.

:class:`ShardNodeProcess` forks one child per node.  The child builds
the :class:`ShardNode` (which then forks its own worker pool), reports
the bound address back over a pipe, and blocks until the parent signals
shutdown or exits (the pipe's EOF doubles as a dead-parent detector, so
orphaned nodes shut themselves down).  The parent object exposes the
same ``start() -> (host, port)`` / ``close()`` / context-manager
surface as the in-process node, minus ``stats()`` — per-node counters
live in the child; scrape them from the coordinator side instead.
"""

from __future__ import annotations

import multiprocessing

from repro.serve.server import _default_start_method


def _node_process_main(conn, shard_id, snapshot_path, options) -> None:
    """Child entry point: serve until the parent signals or vanishes."""
    from repro.shard.node import ShardNode

    try:
        node = ShardNode(shard_id, snapshot_path, **options)
    except Exception as error:
        conn.send(("error", f"{type(error).__name__}: {error}"))
        conn.close()
        return
    try:
        address = node.start()
        conn.send(("ok", address))
        try:
            conn.recv()  # blocks until shutdown is signalled or the parent dies
        except EOFError:
            pass
    except Exception as error:
        try:
            conn.send(("error", f"{type(error).__name__}: {error}"))
        except (BrokenPipeError, OSError):
            pass
    finally:
        node.close()
        conn.close()


class ShardNodeProcess:
    """A :class:`ShardNode` running in a dedicated child process.

    Parameters mirror :class:`ShardNode`; ``start_method`` picks the
    ``multiprocessing`` start method (default: fork when available,
    matching :class:`~repro.serve.server.GNNServer`).
    """

    def __init__(
        self,
        shard_id: int,
        snapshot_path,
        *,
        start_method: str | None = None,
        **node_options,
    ):
        self.shard_id = int(shard_id)
        self.snapshot_path = str(snapshot_path)
        self._context = multiprocessing.get_context(
            start_method or _default_start_method()
        )
        self._options = dict(node_options)
        self._process = None
        self._conn = None
        self.address: tuple[str, int] | None = None

    def start(self, timeout: float = 30.0) -> tuple[str, int]:
        """Fork the node process; returns its bound ``(host, port)``."""
        if self._process is not None:
            raise RuntimeError("this ShardNodeProcess was already started")
        parent_conn, child_conn = self._context.Pipe()
        self._process = self._context.Process(
            target=_node_process_main,
            args=(child_conn, self.shard_id, self.snapshot_path, self._options),
            name=f"shard-node-{self.shard_id}",
            # Not a daemon: the node must be able to fork its own worker
            # pool.  Orphan protection comes from the pipe instead — the
            # child blocks on recv() and shuts down on EOF when the
            # parent exits.
            daemon=False,
        )
        self._process.start()
        child_conn.close()
        self._conn = parent_conn
        if not parent_conn.poll(timeout):
            self.close()
            raise RuntimeError(
                f"shard node {self.shard_id} did not report an address "
                f"within {timeout:.0f}s"
            )
        status, value = parent_conn.recv()
        if status != "ok":
            self.close()
            raise RuntimeError(f"shard node {self.shard_id} failed to start: {value}")
        self.address = (value[0], value[1])
        return self.address

    def close(self, timeout: float = 30.0) -> None:
        """Signal shutdown and reap the child.  Idempotent."""
        process, self._process = self._process, None
        conn, self._conn = self._conn, None
        if conn is not None:
            try:
                conn.send("stop")
            except (BrokenPipeError, OSError):
                pass
            conn.close()
        if process is not None:
            process.join(timeout)
            if process.is_alive():
                process.terminate()
                process.join(5.0)

    def __enter__(self) -> "ShardNodeProcess":
        if self._process is None:
            self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "running" if self._process is not None else "closed"
        return (
            f"ShardNodeProcess(shard_id={self.shard_id}, "
            f"address={self.address}, {state})"
        )
