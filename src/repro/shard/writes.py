"""The federation's write path: per-shard overlays and compaction.

:class:`ShardWriter` extends the LSM-style write path of a single
engine (:class:`~repro.rtree.overlay.DeltaOverlay` plus
:meth:`~repro.core.engine.GNNEngine.compact`) across a partitioned
dataset.  It opens one snapshot-only engine per shard (memory-mapped,
nothing copied), routes every insert to the shard owning the point's
Hilbert key — the same curve the partitioner cut on, so writes land in
the shard whose root MBR already covers them and the federation-level
pruning stays tight — and allocates *federation-global* record ids, so
a sharded top-k and a single-index top-k keep speaking the same
identifier space after any number of writes.

Compaction is per shard: each dirty overlay folds into a
generation-``N+1`` ``shard-XXX-genNNNNNN.npz`` and the manifest row is
rebuilt (count, root MBR, Hilbert range, record sample) from the live
points.  The new ``manifest.json`` is written *last*, mirroring the
partitioner's discipline — a manifest on disk never names snapshot
files that do not exist yet, so a coordinator (re)connecting mid-write
always finds a consistent federation.  Live :class:`ShardNode`\\ s pick
the new files up through :meth:`ShardNode.swap_snapshot`.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.core.engine import GNNEngine
from repro.geometry.hilbert import DEFAULT_ORDER, hilbert_indices
from repro.rtree.flat import FlatRTree
from repro.shard.manifest import ShardInfo, ShardManifest
from repro.shard.partition import sample_rows, shard_snapshot_name


class ShardWriter:
    """Route inserts/deletes into per-shard overlays; compact per shard.

    Parameters
    ----------
    directory:
        A partition directory written by
        :func:`~repro.shard.partition.partition_dataset` (holds the
        shard ``.npz`` files and ``manifest.json``).
    manifest:
        Optional already-loaded :class:`ShardManifest`; loaded from
        ``directory`` when omitted.
    order:
        Hilbert curve order used for routing; must match the order the
        dataset was partitioned with (the default matches the
        partitioner's default).
    fsync:
        When True, compaction fsyncs every published shard snapshot and
        the manifest — crash-durable publication at the cost of a disk
        flush per file.  Publication is *atomic* either way.
    """

    def __init__(self, directory, manifest: ShardManifest | None = None, *,
                 order: int = DEFAULT_ORDER, fsync: bool = False):
        self.directory = Path(directory)
        self.manifest = manifest or ShardManifest.load(self.directory)
        self.fsync = bool(fsync)
        self._order = int(order)
        self._engines: dict[int, GNNEngine] = {}
        self._next_id: int | None = None

    # ------------------------------------------------------------------
    # per-shard engines
    # ------------------------------------------------------------------
    def engine(self, shard_id: int) -> GNNEngine:
        """The shard's snapshot-only engine (opened lazily, mmap'd)."""
        engine = self._engines.get(shard_id)
        if engine is None:
            path = self.directory / self.manifest.shards[shard_id].path
            flat = FlatRTree.load(path, mmap_mode="r")
            engine = self._engines[shard_id] = GNNEngine.from_index(flat)
        return engine

    def dirty_shards(self) -> list[int]:
        """Shard ids with uncompacted overlay writes."""
        return [
            shard_id
            for shard_id, engine in sorted(self._engines.items())
            if engine.dirty
        ]

    # ------------------------------------------------------------------
    # routing and id allocation
    # ------------------------------------------------------------------
    def route(self, point) -> int:
        """The shard owning ``point``'s Hilbert key.

        Keys inside a shard's ``[hilbert_low, hilbert_high]`` range route
        there; keys falling between ranges (space vacated by the cuts)
        go to the shard whose range starts closest above the key — the
        same side :func:`numpy.array_split` gave that gap's points at
        partition time.
        """
        point = np.asarray(point, dtype=np.float64).reshape(1, -1)
        if point.shape[1] != self.manifest.dims:
            raise ValueError(
                f"point is {point.shape[1]}-d; the federation is "
                f"{self.manifest.dims}-d"
            )
        key = int(hilbert_indices(point, self._order)[0])
        for shard in self.manifest.shards:
            if shard.hilbert_low <= key <= shard.hilbert_high:
                return shard.shard_id
        for shard in self.manifest.shards:
            if key < shard.hilbert_low:
                return shard.shard_id
        return self.manifest.shards[-1].shard_id

    @property
    def next_record_id(self) -> int:
        """The next federation-global record id (monotonic, never reused)."""
        if self._next_id is None:
            top = -1
            for shard in self.manifest.shards:
                flat = FlatRTree.load(
                    self.directory / shard.path, mmap_mode="r"
                )
                if flat.size:
                    top = max(top, int(np.asarray(flat.record_ids).max()))
            self._next_id = top + 1
        return self._next_id

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def insert(self, point) -> tuple[int, int]:
        """Insert one point; returns ``(shard_id, record_id)``.

        The id comes from the federation-global allocator, the point
        lands in its Hilbert-routed shard's overlay.
        """
        shard_id = self.route(point)
        record_id = self.next_record_id
        self.engine(shard_id).insert(point, record_id=record_id)
        self._next_id = record_id + 1
        return shard_id, record_id

    def delete(self, point, record_id: int) -> int | None:
        """Delete one record; returns its shard id, or ``None`` if absent.

        The Hilbert-routed shard is tried first; ties at partition cut
        boundaries (equal keys split across adjacent shards) fall back
        to probing the remaining shards — deletion verifies coordinates
        *and* id, so a probe can never remove the wrong record.
        """
        first = self.route(point)
        order = [first] + [
            shard.shard_id
            for shard in self.manifest.shards
            if shard.shard_id != first
        ]
        for shard_id in order:
            if self.engine(shard_id).delete(point, record_id):
                return shard_id
        return None

    # ------------------------------------------------------------------
    # compaction
    # ------------------------------------------------------------------
    def compact(self, shard_ids=None) -> ShardManifest:
        """Fold dirty overlays into generation-``N+1`` shard snapshots.

        ``shard_ids`` restricts compaction (default: every dirty
        shard).  Untouched shards keep their existing files; the new
        manifest mixes generations by design — each row's ``path`` is
        authoritative.  Returns (and installs) the new manifest, written
        to disk after every named snapshot exists.
        """
        targets = self.dirty_shards() if shard_ids is None else sorted(shard_ids)
        if not targets:
            return self.manifest
        generation = self.manifest.generation + 1
        rows = list(self.manifest.shards)
        for shard_id in targets:
            engine = self.engine(shard_id)
            if not engine.dirty:
                continue
            if len(engine) == 0:
                raise ValueError(
                    f"compacting shard {shard_id} would leave it empty; "
                    "re-partition the dataset instead"
                )
            flat = engine.compact(capacity=self.manifest.capacity)
            flat.generation = generation
            name = shard_snapshot_name(shard_id, generation)
            flat.save(self.directory / name, generation=generation, fsync=self.fsync)
            rows[shard_id] = self._describe(shard_id, name, flat)
        manifest = ShardManifest(
            dims=self.manifest.dims,
            size=sum(row.count for row in rows),
            capacity=self.manifest.capacity,
            generation=generation,
            shards=tuple(rows),
        )
        manifest.save(self.directory, fsync=self.fsync)
        self.manifest = manifest
        return manifest

    def _describe(self, shard_id: int, name: str, flat: FlatRTree) -> ShardInfo:
        """Rebuild one manifest row from a compacted shard snapshot."""
        points = np.asarray(flat.points, dtype=np.float64)
        keys = hilbert_indices(points, self._order)
        ranked = np.argsort(keys, kind="stable")
        low, high = flat.root_mbr()
        return ShardInfo(
            shard_id=shard_id,
            path=name,
            count=int(flat.size),
            root_low=tuple(float(v) for v in low),
            root_high=tuple(float(v) for v in high),
            hilbert_low=int(keys.min()),
            hilbert_high=int(keys.max()),
            sample=tuple(
                tuple(float(v) for v in points[row])
                for row in sample_rows(ranked)
            ),
        )

    def __repr__(self) -> str:
        return (
            f"ShardWriter(shards={self.manifest.shard_count}, "
            f"generation={self.manifest.generation}, "
            f"dirty={self.dirty_shards()})"
        )
