"""The federation manifest: what the coordinator knows about each shard.

A :class:`ShardManifest` is the shared, persisted description of one
partitioned dataset: per shard its snapshot filename, point count, root
MBR and Hilbert-key range, plus the federation-wide dimensionality,
total size, node capacity and publication generation.  It is exactly
the metadata the scatter-gather coordinator needs to play the paper's
pruning game one level up — the shard root MBRs take the role of R-tree
node MBRs, so ``amindist(root_j, Q)`` (Definition 3 / Heuristic 2 of
the paper) lower-bounds every record shard ``j`` could contribute and a
shard whose bound cannot beat the global k-th distance is never
contacted.

The manifest round-trips as plain JSON (``manifest.json`` next to the
shard ``.npz`` files) so any process — a coordinator on another
machine, an operator's shell — can read it without numpy or pickle.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.geometry import kernels
from repro.geometry.mbr import MBR
from repro.storage.atomicio import write_json_atomic

#: Filename of the persisted manifest inside a partition directory.
MANIFEST_FILENAME = "manifest.json"

#: Manifest format version (bump on layout changes).
MANIFEST_VERSION = 1


@dataclass(frozen=True)
class ShardInfo:
    """One shard's row of the manifest.

    ``path`` is the snapshot filename *relative to the manifest's
    directory*, so a partition directory can be copied or mounted
    elsewhere wholesale.  ``hilbert_low``/``hilbert_high`` record the
    (inclusive) Hilbert-key range of the shard's points — adjacent
    shards own adjacent ranges, which is what keeps their root MBRs
    spatially tight and the federation-level pruning effective.

    ``sample`` holds a few of the shard's *actual* records (coordinate
    tuples, picked evenly along the shard's Hilbert order by the
    partitioner).  Because every sample is a real record, its aggregate
    distance to any query group is a true *upper* bound on an answer
    the federation can produce — the coordinator turns the union of
    samples into a starting k-th distance and dispatches one concurrent
    wave instead of a serial pilot round-trip (see
    :meth:`ShardManifest.sample_kth_distance`).  Empty samples are
    legal (hand-built manifests); the coordinator then falls back to
    the pilot.
    """

    shard_id: int
    path: str
    count: int
    root_low: tuple[float, ...]
    root_high: tuple[float, ...]
    hilbert_low: int
    hilbert_high: int
    sample: tuple[tuple[float, ...], ...] = ()

    def root_mbr(self) -> MBR:
        """The shard's root MBR as a geometry object."""
        return MBR(np.asarray(self.root_low), np.asarray(self.root_high))

    def as_dict(self) -> dict:
        return {
            "shard_id": self.shard_id,
            "path": self.path,
            "count": self.count,
            "root_low": list(self.root_low),
            "root_high": list(self.root_high),
            "hilbert_low": self.hilbert_low,
            "hilbert_high": self.hilbert_high,
            "sample": [list(point) for point in self.sample],
        }

    @classmethod
    def from_dict(cls, row: dict) -> "ShardInfo":
        return cls(
            shard_id=int(row["shard_id"]),
            path=str(row["path"]),
            count=int(row["count"]),
            root_low=tuple(float(v) for v in row["root_low"]),
            root_high=tuple(float(v) for v in row["root_high"]),
            hilbert_low=int(row["hilbert_low"]),
            hilbert_high=int(row["hilbert_high"]),
            sample=tuple(
                tuple(float(v) for v in point) for point in row.get("sample", ())
            ),
        )


@dataclass(frozen=True)
class ShardManifest:
    """The persisted description of one partitioned dataset."""

    dims: int
    size: int
    capacity: int
    generation: int
    shards: tuple[ShardInfo, ...]

    def __post_init__(self):
        if not self.shards:
            raise ValueError("a manifest needs at least one shard")
        ids = [shard.shard_id for shard in self.shards]
        if ids != list(range(len(ids))):
            raise ValueError(f"shard ids must be 0..{len(ids) - 1} in order, got {ids}")
        if sum(shard.count for shard in self.shards) != self.size:
            raise ValueError("shard counts do not sum to the manifest size")

    @property
    def shard_count(self) -> int:
        return len(self.shards)

    # ------------------------------------------------------------------
    # the federation-level pruning bound
    # ------------------------------------------------------------------
    def root_bounds(self) -> tuple[np.ndarray, np.ndarray]:
        """All shard root MBRs stacked as ``(K, dims)`` low/high matrices."""
        lows = np.array([shard.root_low for shard in self.shards], dtype=np.float64)
        highs = np.array([shard.root_high for shard in self.shards], dtype=np.float64)
        return lows, highs

    def group_mindist_bounds(
        self, group: np.ndarray, weights=None, aggregate: str = "sum"
    ) -> np.ndarray:
        """``amindist(root_j, Q)`` for every shard in one kernel call.

        This is the same aggregate lower bound the in-tree traversals
        prune on (:meth:`repro.core.types.GroupQuery.mindist_lower_bounds`),
        evaluated over shard roots instead of node MBRs: any record of
        shard ``j`` has aggregate distance ``>= bounds[j]``, so a shard
        with ``bounds[j] >= best_dist`` can be skipped outright
        (Heuristic 2, one level up).
        """
        lows, highs = self.root_bounds()
        return kernels.boxes_group_mindist(
            lows, highs, np.asarray(group, dtype=np.float64),
            weights=weights, aggregate=aggregate,
        )

    def sample_points(self, shard_id: int | None = None) -> np.ndarray:
        """Sample records stacked as one ``(S, dims)`` array.

        ``shard_id=None`` stacks every shard's samples; an id restricts
        to that shard's.  Arrays are built once and cached.
        """
        cache = getattr(self, "_sample_cache", None)
        if cache is None:
            cache = {}
            object.__setattr__(self, "_sample_cache", cache)
        cached = cache.get(shard_id)
        if cached is None:
            if shard_id is None:
                rows = [point for shard in self.shards for point in shard.sample]
            else:
                rows = list(self.shards[shard_id].sample)
            cached = (
                np.array(rows, dtype=np.float64)
                if rows
                else np.empty((0, self.dims), dtype=np.float64)
            )
            cache[shard_id] = cached
        return cached

    def sample_kth_distance(
        self,
        group: np.ndarray,
        k: int,
        weights=None,
        aggregate: str = "sum",
        shard_id: int | None = None,
    ) -> float:
        """The k-th best aggregate distance among sampled records.

        Samples are real records, so this is a true *upper* bound on the
        federation's k-th answer distance: at least ``k`` records exist
        at or under it.  The coordinator may therefore contact every
        shard whose root bound is ``<= sample_kth_distance`` in a single
        concurrent wave and still be guaranteed the exact top-k (the
        ``<=`` matters: the record achieving the bound lives in a shard
        whose root bound can equal it).

        ``shard_id`` restricts the sample to one shard — the bound stays
        valid (fewer real records considered can only loosen it) and the
        kernel call shrinks accordingly; the coordinator scores only the
        best-bound shard's sample on the hot path.  Returns ``inf`` when
        fewer than ``k`` samples are available — the caller must then
        fall back to candidate-derived bounds.
        """
        samples = self.sample_points(shard_id)
        if len(samples) < k:
            return float("inf")
        distances = kernels.aggregate_distances(
            samples,
            np.asarray(group, dtype=np.float64),
            weights=None if weights is None else np.asarray(weights, dtype=np.float64),
            aggregate=aggregate,
        )
        return float(np.partition(distances, k - 1)[k - 1])

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def as_dict(self) -> dict:
        return {
            "version": MANIFEST_VERSION,
            "dims": self.dims,
            "size": self.size,
            "capacity": self.capacity,
            "generation": self.generation,
            "shards": [shard.as_dict() for shard in self.shards],
        }

    def save(self, directory, *, fsync: bool = False) -> Path:
        """Write ``manifest.json`` into ``directory``; returns its path.

        Published atomically (temp file + rename, ``manifest.write``
        fault point), so concurrent readers and post-crash recovery only
        ever see a complete manifest — the previous one or this one.
        ``fsync=True`` makes the publication durable as well as atomic.
        """
        path = Path(directory) / MANIFEST_FILENAME
        write_json_atomic(
            path, self.as_dict(), fsync=fsync, fault_point="manifest.write"
        )
        return path

    @classmethod
    def load(cls, source) -> "ShardManifest":
        """Reopen a manifest from a directory, a ``manifest.json`` path, or a dict."""
        if isinstance(source, dict):
            document = source
        else:
            path = Path(source)
            if path.is_dir():
                path = path / MANIFEST_FILENAME
            document = json.loads(path.read_text())
        version = int(document.get("version", 0))
        if version != MANIFEST_VERSION:
            raise ValueError(
                f"unsupported manifest version {version} (this build reads "
                f"version {MANIFEST_VERSION})"
            )
        return cls(
            dims=int(document["dims"]),
            size=int(document["size"]),
            capacity=int(document["capacity"]),
            generation=int(document["generation"]),
            shards=tuple(ShardInfo.from_dict(row) for row in document["shards"]),
        )

    def shard_paths(self, directory) -> list[Path]:
        """Absolute snapshot paths of every shard under ``directory``."""
        base = Path(directory)
        return [base / shard.path for shard in self.shards]

    def __repr__(self) -> str:
        return (
            f"ShardManifest(shards={self.shard_count}, size={self.size}, "
            f"dims={self.dims}, generation={self.generation})"
        )
