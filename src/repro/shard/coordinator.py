"""Scatter-gather coordination over a federation of shard nodes.

:class:`ShardCoordinator` is the query-side half of the sharding
subsystem: it holds the federation's :class:`ShardManifest`, one
pipelined TCP link per shard node, and answers GNN queries by the
paper's best-first discipline *lifted one level up* — shard root MBRs
play the role of R-tree node MBRs.

The execution of one query is a **sample-seeded wave**:

1. compute ``amindist(root_j, Q)`` for every shard from the manifest
   (one vectorised kernel call) and order shards by that bound;
2. seed the global pruning bound ``tau0`` from the manifest's per-shard
   record samples (:meth:`ShardManifest.sample_kth_distance`) — samples
   are real records, so their k-th best aggregate distance is a true
   upper bound on the federation's k-th answer;
3. **wave** — dispatch, *concurrently*, every shard whose root bound is
   ``<= tau0``; shards beyond it are never contacted (Heuristic 2 at
   federation level).  The ``<=`` is what makes one wave sufficient:
   the record achieving ``tau0`` lives in a shard whose root bound can
   equal it, so the inclusive wave provably covers the exact top-k;
4. merge all per-shard top-k lists by ``(distance, record_id)`` and
   keep the best ``k``.

The loop re-checks with the merged candidates' own k-th distance, but
with a healthy federation a second wave can never admit new shards:
the merged k-th distance is at most ``tau0``, and every uncontacted
shard already failed the larger bound.  So a query costs exactly
``|shards with bound <= tau0|`` sub-queries, in one concurrent round
trip — deterministic, which is what lets the tests pin exact
shards-contacted counts.  A manifest without samples (or with fewer
than ``k``) degenerates to the serial **pilot-then-wave** fallback:
contact the best-bound shard alone, take its k-th answer as ``tau``,
then wave the shards that beat it.

Failure handling: a sub-query gets ``timeout_s`` per attempt and
``retries`` reconnect-and-resend attempts (overload sheds retry after
a short backoff).  A shard that stays unreachable raises
:class:`ShardUnavailableError` — unless the coordinator was built with
``allow_degraded=True``, in which case the query completes from the
reachable shards and the result is stamped ``degraded=True`` with the
dead shards listed (a documented under-approximation, never a wrong
answer presented as complete).
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import Future
from dataclasses import dataclass, field
from random import Random

import numpy as np

from repro.api.spec import AUTO, SHARDED, QuerySpec
from repro.core.types import GNNResult, QueryCost
from repro.obs import slowlog as obs_slowlog
from repro.obs import trace as obs_trace
from repro.obs.logging import get_logger
from repro.serve.protocol import encode_spec, pack_frame, read_frame
from repro.shard.health import CircuitBreaker, HealthMonitor
from repro.shard.manifest import ShardManifest
from repro.shard.wire import ShardPing, ShardPong, ShardQuery, ShardReply

#: Seconds slept before retrying a sub-query an overloaded node shed.
OVERLOAD_BACKOFF_S = 0.05

_log = get_logger("shard.coordinator")


class ShardUnavailableError(RuntimeError):
    """A shard node could not be reached (after all retries)."""


class ShardQueryError(RuntimeError):
    """A shard node rejected or failed a sub-query (not a liveness issue)."""


@dataclass
class CoordinatorStats:
    """Mergeable counters of one coordinator's lifetime.

    ``shards_contacted``/``shards_pruned`` partition every query's
    shard set (minus failed ones); their ratio is the federation-level
    pruning rate, the headline number of the scatter-gather design.
    """

    queries: int = 0
    subqueries: int = 0
    shards_contacted: int = 0
    shards_pruned: int = 0
    retries: int = 0
    degraded_queries: int = 0
    failed_subqueries: int = 0
    breaker_trips: int = 0
    breaker_fast_fails: int = 0
    cost: QueryCost = field(default_factory=QueryCost)

    #: The integer fields :meth:`merge` sums (everything but ``cost``).
    COUNTER_FIELDS = (
        "queries",
        "subqueries",
        "shards_contacted",
        "shards_pruned",
        "retries",
        "degraded_queries",
        "failed_subqueries",
        "breaker_trips",
        "breaker_fast_fails",
    )

    def snapshot(self) -> dict:
        data = {key: getattr(self, key) for key in self.COUNTER_FIELDS}
        data["cost"] = self.cost.as_dict()
        return data

    def merge(self, other) -> "CoordinatorStats":
        """Fold another :class:`CoordinatorStats` (or snapshot dict) in.

        The same contract as :meth:`ServingCounters.merge`: every
        counter sums key-wise and the nested ``cost`` folds with
        :func:`merge_costs`, so multi-coordinator deployments can roll
        their stats up exactly like worker counters.
        """
        snapshot = other if isinstance(other, dict) else other.snapshot()
        for key in self.COUNTER_FIELDS:
            setattr(self, key, getattr(self, key) + int(snapshot.get(key, 0)))
        cost = snapshot.get("cost", {})
        part = QueryCost(
            **{key: value for key, value in cost.items() if key != "algorithm"}
        )
        merge_costs(self.cost, part)
        return self


def merge_costs(total: QueryCost, part: QueryCost) -> None:
    """Fold one shard's measured cost into a federation total, in place."""
    total.node_accesses += part.node_accesses
    total.leaf_accesses += part.leaf_accesses
    total.page_faults += part.page_faults
    total.distance_computations += part.distance_computations
    total.page_reads += part.page_reads
    total.block_reads += part.block_reads
    total.cpu_time += part.cpu_time


def _replica_addresses(entry) -> list:
    """Normalise one shard's address entry to a list of replica addresses.

    Accepts a single ``(host, port)`` pair or a sequence of them; a pair
    is recognised by its string host, so ``[("h", 1), ("h", 2)]`` is two
    replicas while ``("h", 1)`` is one.
    """
    entry = list(entry)
    if len(entry) == 2 and isinstance(entry[0], str):
        return [tuple(entry)]
    if not entry:
        raise ValueError("a shard needs at least one replica address")
    return [tuple(address) for address in entry]


class _ShardLink:
    """One pipelined connection to one shard node (lazy, self-healing).

    All methods run on the coordinator's event loop.  Replies are
    correlated to requests by id, so any number of sub-queries share
    the connection; a broken stream fails every in-flight future and
    the next request reconnects (after re-verifying the node's identity
    against the manifest via the ping handshake).
    """

    def __init__(self, shard_id: int, expected_generation: int, address):
        self.shard_id = shard_id
        self.expected_generation = expected_generation
        self.address = tuple(address)
        self._reader = None
        self._writer = None
        self._read_task = None
        self._pending: dict[int, asyncio.Future] = {}
        self._next_id = 0
        self._connect_lock = asyncio.Lock()
        self._write_lock = asyncio.Lock()

    async def _ensure_connected(self) -> None:
        async with self._connect_lock:
            if self._writer is not None:
                return
            reader, writer = await asyncio.open_connection(*self.address)
            ping_id = self._next_id
            self._next_id += 1
            writer.write(pack_frame(ShardPing(request_id=ping_id)))
            await writer.drain()
            pong = await read_frame(reader)
            if not isinstance(pong, ShardPong) or pong.request_id != ping_id:
                writer.close()
                raise ConnectionError(
                    f"node at {self.address} did not answer the handshake ping"
                )
            if pong.shard_id != self.shard_id:
                writer.close()
                raise ConnectionError(
                    f"node at {self.address} serves shard {pong.shard_id}, "
                    f"expected shard {self.shard_id}: the address map is miswired"
                )
            self._reader, self._writer = reader, writer
            self._read_task = asyncio.get_running_loop().create_task(
                self._read_loop(), name=f"shard-link-{self.shard_id}"
            )

    #: Outgoing-buffer size past which senders pause on ``drain`` (a
    #: frame is one atomic ``write``, so the hot path needs no lock and
    #: no per-frame drain; this bound keeps a slow node from buffering
    #: unboundedly on the coordinator side).
    WRITE_HIGH_WATER_BYTES = 1024 * 1024

    async def request(self, payload: dict, trace: tuple | None = None) -> ShardReply:
        """Send one sub-query; await its (id-correlated) reply.

        ``trace`` is the optional ``(trace_id, parent_span_id)`` context
        stamped onto the :class:`ShardQuery` frame when tracing is on.
        """
        await self._ensure_connected()
        request_id = self._next_id
        self._next_id += 1
        future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        try:
            writer = self._writer
            writer.write(
                pack_frame(
                    ShardQuery(request_id=request_id, payload=payload, trace=trace)
                )
            )
            if (
                writer.transport.get_write_buffer_size()
                > self.WRITE_HIGH_WATER_BYTES
            ):
                async with self._write_lock:
                    await writer.drain()
            return await future
        finally:
            self._pending.pop(request_id, None)

    async def _read_loop(self) -> None:
        try:
            while True:
                message = await read_frame(self._reader)
                if message is None:
                    raise ConnectionError(
                        f"shard {self.shard_id} closed the connection"
                    )
                if isinstance(message, ShardReply):
                    future = self._pending.get(message.request_id)
                    if future is not None and not future.done():
                        future.set_result(message)
        except (ConnectionError, OSError, ValueError, EOFError) as error:
            self._teardown(error)
        except asyncio.CancelledError:
            self._teardown(ConnectionError(f"link to shard {self.shard_id} closed"))
            raise

    def _teardown(self, error: Exception) -> None:
        if self._writer is not None:
            self._writer.close()
        self._reader = self._writer = None
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(
                    ConnectionError(f"shard {self.shard_id}: {error}")
                )

    async def reset(self) -> None:
        """Drop the connection (if any); the next request reconnects."""
        task, self._read_task = self._read_task, None
        if task is not None:
            task.cancel()
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._teardown(ConnectionError(f"link to shard {self.shard_id} reset"))


class ShardCoordinator:
    """Scatter-gather GNN execution over a federation of shard nodes.

    Parameters
    ----------
    manifest:
        The federation's :class:`ShardManifest` (or a directory / path
        it loads from).
    addresses:
        Per shard (indexed by shard id) either one ``(host, port)``
        address — typically the value returned by
        :meth:`ShardNode.start` — or a *list* of replica addresses all
        serving the same shard snapshot.  With replicas, dispatch fails
        over to the first replica whose circuit breaker admits traffic;
        τ0 logic is unchanged because replicas answer identically.
    timeout_s:
        Per-attempt deadline of one sub-query.
    retries:
        Reconnect-and-resend attempts after the first failure.
    allow_degraded:
        When True, queries survive unreachable shards and mark their
        results ``degraded=True``; when False (default) they raise
        :class:`ShardUnavailableError`.
    deadline_s:
        Total per-query budget for any one shard's sub-query *including*
        retries and backoff sleeps (default ``timeout_s * (retries + 1)``
        — the old worst case).  Per-attempt timeouts shrink to whatever
        budget remains, so retries can never exceed the caller's budget.
    failure_threshold / breaker_reset_s:
        Circuit-breaker tuning, per replica: consecutive failures that
        trip it open, and seconds before a half-open probe (see
        :class:`~repro.shard.health.CircuitBreaker`).  A shard all of
        whose replica breakers are open fails fast at dispatch — zero
        timeouts spent on a known-dead node.
    backoff_base_s / jitter_seed:
        Retry backoff: attempt ``n`` sleeps
        ``backoff_base_s * 2**(n-1)`` scaled by a seeded jitter factor
        in ``[0.5, 1.0)`` — the jitter de-synchronises retry storms
        across concurrent queries, the seed keeps tests deterministic.
    health_interval_s:
        When set, a :class:`~repro.shard.health.HealthMonitor` heartbeats
        every replica at this period, feeding the same breakers — the
        re-admission path for recovered nodes (queries never probe an
        open breaker themselves).
    """

    def __init__(
        self,
        manifest,
        addresses,
        *,
        timeout_s: float = 5.0,
        retries: int = 1,
        allow_degraded: bool = False,
        deadline_s: float | None = None,
        failure_threshold: int = 3,
        breaker_reset_s: float = 1.0,
        backoff_base_s: float = OVERLOAD_BACKOFF_S,
        jitter_seed: int = 0,
        health_interval_s: float | None = None,
        health_timeout_s: float = 1.0,
    ):
        if not isinstance(manifest, ShardManifest):
            manifest = ShardManifest.load(manifest)
        addresses = list(addresses)
        if len(addresses) != manifest.shard_count:
            raise ValueError(
                f"the manifest describes {manifest.shard_count} shards but "
                f"{len(addresses)} addresses were given"
            )
        if timeout_s <= 0.0:
            raise ValueError("timeout_s must be positive")
        if retries < 0:
            raise ValueError("retries must be non-negative")
        if deadline_s is not None and deadline_s <= 0.0:
            raise ValueError("deadline_s must be positive")
        self.manifest = manifest
        self.timeout_s = float(timeout_s)
        self.retries = int(retries)
        self.allow_degraded = bool(allow_degraded)
        self.deadline_s = (
            float(deadline_s)
            if deadline_s is not None
            else self.timeout_s * (self.retries + 1)
        )
        self.backoff_base_s = float(backoff_base_s)
        self._jitter = Random(jitter_seed)
        self._stats = CoordinatorStats()
        self._closed = threading.Event()
        self._loop = asyncio.new_event_loop()
        self._links = [
            [
                _ShardLink(shard.shard_id, manifest.generation, address)
                for address in _replica_addresses(entry)
            ]
            for shard, entry in zip(manifest.shards, addresses)
        ]
        self._breakers = [
            [
                CircuitBreaker(
                    failure_threshold=failure_threshold,
                    reset_timeout_s=breaker_reset_s,
                    name=f"shard-{link.shard_id} @ "
                    f"{link.address[0]}:{link.address[1]}",
                )
                for link in replicas
            ]
            for replicas in self._links
        ]
        self._monitor: HealthMonitor | None = None
        if health_interval_s is not None:
            targets = [
                (link.shard_id, link.address, breaker)
                for replicas, breakers in zip(self._links, self._breakers)
                for link, breaker in zip(replicas, breakers)
            ]
            self._monitor = HealthMonitor(
                targets, interval_s=health_interval_s, timeout_s=health_timeout_s
            )
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="shard-coordinator", daemon=True
        )
        self._thread.start()
        if self._monitor is not None:

            async def _start_monitor() -> None:
                self._monitor.start()

            asyncio.run_coroutine_threadsafe(_start_monitor(), self._loop).result(
                timeout=10.0
            )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drop every link and stop the event loop (idempotent)."""
        if self._closed.is_set():
            return
        self._closed.set()

        async def _drop_all() -> None:
            if self._monitor is not None:
                await self._monitor.stop()
            for replicas in self._links:
                for link in replicas:
                    await link.reset()
            # Yield once so transport connection_lost callbacks run
            # before the loop is stopped (quiet garbage collection).
            await asyncio.sleep(0)

        try:
            asyncio.run_coroutine_threadsafe(_drop_all(), self._loop).result(
                timeout=10.0
            )
        except Exception:
            pass
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10.0)
        self._loop.close()

    def __enter__(self) -> "ShardCoordinator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def stats(self) -> dict:
        """Lifetime counters (:meth:`CoordinatorStats.snapshot`)."""
        return self._stats.snapshot()

    def breaker_states(self) -> dict:
        """Live breaker state per replica: ``{(shard_id, "host:port"): state}``.

        The source of the ``repro_shard_breaker_state`` gauge.
        """
        states = {}
        for replicas, breakers in zip(self._links, self._breakers):
            for link, breaker in zip(replicas, breakers):
                address = f"{link.address[0]}:{link.address[1]}"
                states[(link.shard_id, address)] = breaker.state
        return states

    def __repr__(self) -> str:
        return (
            f"ShardCoordinator(shards={self.manifest.shard_count}, "
            f"timeout_s={self.timeout_s}, retries={self.retries}, "
            f"allow_degraded={self.allow_degraded})"
        )

    # ------------------------------------------------------------------
    # query execution
    # ------------------------------------------------------------------
    def submit(self, spec: QuerySpec) -> Future:
        """Scatter-gather one spec; returns a future for its merged result."""
        if self._closed.is_set():
            raise RuntimeError("this ShardCoordinator is closed")
        if spec.dims != self.manifest.dims:
            raise ValueError(
                f"spec dimensionality {spec.dims} does not match the "
                f"federation ({self.manifest.dims}-d)"
            )
        return asyncio.run_coroutine_threadsafe(self._execute(spec), self._loop)

    def execute(self, spec: QuerySpec) -> GNNResult:
        """Blocking convenience over :meth:`submit`."""
        return self.submit(spec).result()

    async def _execute(self, spec: QuerySpec) -> GNNResult:
        # One shared budget for the whole query: every sub-query attempt
        # (and its backoff sleep) draws from it, so a retried shard can
        # never stretch the query past the caller's deadline.
        loop = asyncio.get_running_loop()
        started = loop.time()
        deadline = started + self.deadline_s
        tracer = obs_trace.get()
        slow = obs_slowlog.get()
        # Per-shard timing records, collected for the trace *and* the
        # slow-query log; ``None`` (the common case) keeps the wave loop
        # at one extra ``is None`` check per shard.
        obs_records: list | None = (
            [] if tracer is not None or slow is not None else None
        )
        root_span = (
            tracer.start(
                "shard.query",
                k=spec.k,
                group_size=len(spec.group),
                shard_count=self.manifest.shard_count,
            )
            if tracer is not None
            else None
        )
        try:
            group = np.asarray(spec.group, dtype=np.float64)
            route_span = (
                tracer.start("shard.route", parent=root_span)
                if tracer is not None
                else None
            )
            bounds = self.manifest.group_mindist_bounds(
                group, spec.weights, spec.aggregate
            )
            payload = encode_spec(spec)
            if payload["index"] == SHARDED:
                # Shard nodes plan locally over their own flat snapshot; the
                # federation-level index choice has no meaning there.
                payload["index"] = AUTO

            # The sampled upper bound that lets the first wave go out
            # concurrently.  Pointless for a single shard (it is always
            # contacted), and it must be dropped as soon as any shard fails:
            # the records that justify it may live on the dead shard, so a
            # degraded answer can only prune on distances actually merged.
            remaining = [int(sid) for sid in np.argsort(bounds, kind="stable")]
            tau0 = float("inf")
            if self.manifest.shard_count > 1:
                # The best-bound shard's sample alone usually suffices (its
                # records are the near ones) and keeps the kernel call small;
                # the full union is the fallback for tiny shards.
                tau0 = self.manifest.sample_kth_distance(
                    group, spec.k, spec.weights, spec.aggregate, shard_id=remaining[0]
                )
                if tau0 == float("inf"):
                    tau0 = self.manifest.sample_kth_distance(
                        group, spec.k, spec.weights, spec.aggregate
                    )
            if route_span is not None:
                tracer.finish(route_span, tau0=tau0)

            candidates = []
            contacted: list[int] = []
            failed: list[int] = []
            cost = QueryCost(algorithm="scatter-gather")
            piloted = False

            while remaining:
                if len(candidates) >= spec.k:
                    tau = self._kth_distance(candidates, spec.k)
                    targets = [sid for sid in remaining if bounds[sid] < tau]
                elif tau0 != float("inf"):
                    targets = [sid for sid in remaining if bounds[sid] <= tau0]
                else:
                    # No sampled bound and fewer than k candidates: serial
                    # pilot — the best-bound shard establishes a real tau.
                    targets = remaining[:1] if not piloted else list(remaining)
                if not targets:
                    break
                piloted = True
                remaining = [sid for sid in remaining if sid not in targets]
                replies = await asyncio.gather(
                    *(
                        self._query_shard(
                            sid,
                            payload,
                            deadline,
                            parent_span=root_span,
                            obs_records=obs_records,
                        )
                        for sid in targets
                    ),
                    return_exceptions=True,
                )
                unreachable = None
                for shard_id, outcome in zip(targets, replies):
                    if isinstance(outcome, ShardUnavailableError):
                        failed.append(shard_id)
                        unreachable = outcome
                        tau0 = float("inf")
                        continue
                    if isinstance(outcome, BaseException):
                        raise outcome
                    contacted.append(shard_id)
                    candidates.extend(outcome.neighbors)
                    merge_costs(cost, outcome.cost)
                if unreachable is not None and not self.allow_degraded:
                    raise unreachable

            merge_span = (
                tracer.start("shard.merge", parent=root_span)
                if tracer is not None
                else None
            )
            candidates.sort(
                key=lambda neighbor: (neighbor.distance, neighbor.record_id)
            )
            result = GNNResult(neighbors=candidates[: spec.k], cost=cost)
            if merge_span is not None:
                tracer.finish(merge_span, candidates=len(candidates))
            result.shards_contacted = sorted(contacted)
            result.shards_pruned = sorted(remaining)
            result.failed_shards = sorted(failed)
            result.degraded = bool(failed)
        except BaseException as error:
            if root_span is not None:
                tracer.finish(root_span, outcome="error", error=str(error))
            raise

        self._stats.queries += 1
        self._stats.shards_contacted += len(contacted)
        self._stats.shards_pruned += len(remaining)
        self._stats.degraded_queries += bool(failed)
        merge_costs(self._stats.cost, cost)

        if root_span is not None:
            tracer.finish(
                root_span,
                outcome="degraded" if failed else "ok",
                shards_contacted=len(contacted),
                shards_pruned=len(remaining),
                failed_shards=len(failed),
                node_accesses=cost.node_accesses,
                distance_computations=cost.distance_computations,
            )
            result.trace_id = root_span["trace_id"]
        if slow is not None:
            slow.observe(
                loop.time() - started,
                kind="coordinator",
                spec=spec,
                cost=cost,
                trace_id=None if root_span is None else root_span["trace_id"],
                shards=obs_records,
                degraded=bool(failed),
            )
        return result

    @staticmethod
    def _kth_distance(candidates: list, k: int) -> float:
        """Current global pruning bound: distance of the k-th best candidate."""
        if len(candidates) < k:
            return float("inf")
        distances = sorted(neighbor.distance for neighbor in candidates)
        return distances[k - 1]

    def _pick_replica(self, shard_id: int):
        """The first replica whose breaker admits traffic, or ``None``."""
        for link, breaker in zip(self._links[shard_id], self._breakers[shard_id]):
            if breaker.allow():
                return link, breaker
        return None

    async def _query_shard(
        self,
        shard_id: int,
        payload: dict,
        deadline: float,
        parent_span: dict | None = None,
        obs_records: list | None = None,
    ) -> GNNResult:
        """One sub-query: breaker-gated failover, budgeted timeout, retries.

        Each attempt dispatches to the first replica whose circuit
        breaker admits traffic; a shard with every breaker open fails
        fast — no connection, no timeout.  Retries back off
        exponentially with seeded jitter, and both the backoff and the
        per-attempt timeout are clipped to whatever remains of the
        query's deadline budget.

        When ``parent_span`` is given (tracing on), one ``shard.dispatch``
        span covers the whole sub-query and every attempt gets its own
        ``shard.attempt`` child annotated with the attempt number, the
        replica it hit, the breaker state at dispatch and the outcome;
        spans the node shipped back ride into the local tracer.
        ``obs_records`` (when given) collects a per-shard timing record
        for the slow-query log.
        """
        loop = asyncio.get_running_loop()
        tracer = obs_trace.get() if parent_span is not None else None
        dispatch_span = (
            tracer.start("shard.dispatch", parent=parent_span, shard=shard_id)
            if tracer is not None
            else None
        )
        observing = dispatch_span is not None or obs_records is not None
        query_started = loop.time() if observing else 0.0
        attempts_made = 0

        def _conclude(outcome: str) -> None:
            if dispatch_span is not None:
                tracer.finish(dispatch_span, outcome=outcome, attempts=attempts_made)
            if obs_records is not None:
                obs_records.append(
                    {
                        "shard": shard_id,
                        "elapsed_s": loop.time() - query_started,
                        "attempts": attempts_made,
                        "outcome": outcome,
                    }
                )

        attempts = self.retries + 1
        last_error: Exception | None = None
        for attempt in range(attempts):
            if attempt:
                self._stats.retries += 1
                backoff = (
                    self.backoff_base_s
                    * (2 ** (attempt - 1))
                    * (0.5 + 0.5 * self._jitter.random())
                )
                backoff = min(backoff, max(0.0, deadline - loop.time()))
                if backoff > 0.0:
                    await asyncio.sleep(backoff)
            remaining = deadline - loop.time()
            if remaining <= 0.0:
                last_error = last_error or asyncio.TimeoutError(
                    "per-query deadline budget exhausted"
                )
                break
            attempts_made = attempt + 1
            attempt_span = (
                tracer.start(
                    "shard.attempt",
                    parent=dispatch_span,
                    shard=shard_id,
                    attempt=attempts_made,
                )
                if dispatch_span is not None
                else None
            )
            picked = self._pick_replica(shard_id)
            if picked is None:
                # Every replica's breaker is open: the shard is known
                # dead, so fail in microseconds instead of burning a
                # timeout re-proving it.  Re-admission comes from the
                # health monitor (or a breaker's own half-open window).
                self._stats.breaker_fast_fails += 1
                if attempt_span is not None:
                    tracer.finish(
                        attempt_span, breaker_state="open", outcome="fast-fail"
                    )
                _conclude("fast-fail")
                raise ShardUnavailableError(
                    f"shard {shard_id}: all "
                    f"{len(self._links[shard_id])} replica breaker(s) open"
                )
            link, breaker = picked
            replica = f"{link.address[0]}:{link.address[1]}"
            breaker_state = breaker.state
            self._stats.subqueries += 1
            trace = (
                (attempt_span["trace_id"], attempt_span["span_id"])
                if attempt_span is not None
                else None
            )
            try:
                reply = await asyncio.wait_for(
                    link.request(payload, trace=trace),
                    timeout=min(self.timeout_s, remaining),
                )
            except (ConnectionError, OSError, asyncio.TimeoutError) as error:
                last_error = error
                self._stats.failed_subqueries += 1
                if breaker.record_failure():
                    self._stats.breaker_trips += 1
                    _log.warning("breaker.tripped", shard=shard_id, replica=replica)
                if attempt_span is not None:
                    outcome = (
                        "timeout"
                        if isinstance(error, asyncio.TimeoutError)
                        else "connection"
                    )
                    tracer.finish(
                        attempt_span,
                        replica=replica,
                        breaker_state=breaker_state,
                        outcome=outcome,
                    )
                await link.reset()
                continue
            if reply.error is None:
                breaker.record_success()
                if attempt_span is not None:
                    tracer.finish(
                        attempt_span,
                        replica=replica,
                        breaker_state=breaker_state,
                        outcome="ok",
                    )
                    if reply.spans:
                        tracer.export(*reply.spans)
                _conclude("ok")
                return reply.result
            if reply.overloaded:
                # Overload is backpressure from a live node, not death:
                # it feeds the retry backoff but never the breaker.
                last_error = ShardUnavailableError(
                    f"shard {shard_id} shed the sub-query: {reply.error}"
                )
                self._stats.failed_subqueries += 1
                if attempt_span is not None:
                    tracer.finish(
                        attempt_span,
                        replica=replica,
                        breaker_state=breaker_state,
                        outcome="overloaded",
                    )
                continue
            # A semantic rejection (bad spec, unservable route): the
            # node is alive and retrying cannot change the outcome.
            breaker.record_success()
            if attempt_span is not None:
                tracer.finish(
                    attempt_span,
                    replica=replica,
                    breaker_state=breaker_state,
                    outcome="rejected",
                )
            _conclude("rejected")
            raise ShardQueryError(f"shard {shard_id}: {reply.error}")
        _conclude("unavailable")
        raise ShardUnavailableError(
            f"shard {shard_id} unreachable after {attempts} attempt(s) "
            f"within the {self.deadline_s:.3f}s budget: {last_error}"
        )
