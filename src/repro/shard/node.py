"""A shard node: one networked GNN server over one shard snapshot.

:class:`ShardNode` puts a TCP front on the existing
:class:`~repro.serve.server.GNNServer`: it mmaps one shard's snapshot,
forks the usual worker pool over it, and accepts coordinator
connections speaking the length-prefixed pickle framing of
:mod:`repro.serve.protocol` with the :mod:`repro.shard.wire` messages.

The network layer is a single asyncio event loop running in a daemon
thread; queries never execute on it.  Each :class:`ShardQuery` frame is
decoded and handed to ``GNNServer.submit`` (non-blocking — admission
control and planning happen synchronously, execution in the worker
pool), and the future's completion is bounced back onto the loop to
write the :class:`ShardReply` frame.  Because submission does not wait
for execution, one connection carries any number of in-flight
sub-queries and replies stream back in completion order — the
pipelining the coordinator's scatter phase relies on.

Admission-control rejections (:class:`ServerOverloadedError`) are
reported with ``overloaded=True`` so the coordinator can retry after
backoff; planning or execution failures are terminal for that query.
"""

from __future__ import annotations

import asyncio
import threading

from repro.obs.logging import get_logger
from repro.rtree.flat import FlatRTree
from repro.serve.protocol import decode_spec, encode_result, pack_frame, read_frame
from repro.serve.server import DEFAULT_MAX_PENDING, GNNServer, ServerOverloadedError
from repro.shard.wire import (
    ShardPing,
    ShardPong,
    ShardQuery,
    ShardReply,
    ShardStatsQuery,
    ShardStatsReply,
)
from repro.testing import faults

_log = get_logger("shard.node")


class ShardNode:
    """Serve one shard snapshot to coordinators over TCP.

    Parameters
    ----------
    shard_id:
        This node's id in the federation's manifest (echoed in pongs so
        a coordinator detects miswired addresses).
    snapshot_path:
        The shard's :class:`FlatRTree` snapshot (``.npz``).
    host / port:
        Listen address; ``port=0`` (the default) lets the OS pick a free
        port — :meth:`start` returns the bound address.
    server_options:
        Forwarded to :class:`GNNServer` (``workers``, ``window_s``,
        ``max_batch``, ``max_pending``, ``io_stall_s_per_access``...).
        The default window is 0 — shard nodes answer sub-queries
        individually, which keeps per-request cost accounting exact;
        raise it to micro-batch under heavy fan-in.
    """

    def __init__(
        self,
        shard_id: int,
        snapshot_path,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_pending: int = DEFAULT_MAX_PENDING,
        window_s: float = 0.0,
        **server_options,
    ):
        self.shard_id = int(shard_id)
        self.snapshot_path = str(snapshot_path)
        self._host = host
        self._port = port
        probe = FlatRTree.load(snapshot_path, mmap_mode="r")
        self.generation = probe.generation
        self.size = probe.size
        self.dims = probe.dims
        self._server = GNNServer(
            snapshot_path,
            max_pending=max_pending,
            window_s=window_s,
            **server_options,
        )
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._tcp_server: asyncio.base_events.Server | None = None
        self._connections: set = set()
        self._closed = threading.Event()
        self.address: tuple[str, int] | None = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> tuple[str, int]:
        """Start listening; returns the bound ``(host, port)``."""
        if self._loop is not None:
            raise RuntimeError("this ShardNode was already started")
        loop = asyncio.new_event_loop()
        self._loop = loop
        self._thread = threading.Thread(
            target=loop.run_forever, name=f"shard-node-{self.shard_id}", daemon=True
        )
        self._thread.start()
        future = asyncio.run_coroutine_threadsafe(self._listen(), loop)
        self.address = future.result(timeout=10.0)
        _log.info(
            "node.started",
            shard=self.shard_id,
            address=list(self.address),
            generation=self.generation,
        )
        return self.address

    async def _listen(self) -> tuple[str, int]:
        self._tcp_server = await asyncio.start_server(
            self._serve_connection, self._host, self._port
        )
        sockname = self._tcp_server.sockets[0].getsockname()
        return (sockname[0], sockname[1])

    def close(self) -> None:
        """Stop accepting, drop connections, shut the worker pool down.

        Idempotent: later calls (or a concurrent second closer) return
        without re-running the teardown.
        """
        if self._closed.is_set():
            return
        self._closed.set()
        loop, self._loop = self._loop, None
        if loop is not None:
            try:
                asyncio.run_coroutine_threadsafe(self._shutdown(), loop).result(
                    timeout=10.0
                )
            except Exception:
                pass
            loop.call_soon_threadsafe(loop.stop)
            if self._thread is not None:
                self._thread.join(timeout=10.0)
            loop.close()
        self._server.close()
        _log.info("node.closed", shard=self.shard_id)

    async def _shutdown(self) -> None:
        if self._tcp_server is not None:
            self._tcp_server.close()
            await self._tcp_server.wait_closed()
        for writer in list(self._connections):
            writer.close()
        # Yield once so the transports' connection_lost callbacks run
        # while the loop is still alive (quiet garbage collection).
        await asyncio.sleep(0)

    def __enter__(self) -> "ShardNode":
        if self._loop is None:
            self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def stats(self) -> dict:
        """The unified stats shape, plus this node's ``shard`` identity."""
        snapshot = self._server.stats()
        snapshot["shard"] = {
            "shard_id": self.shard_id,
            "generation": self.generation,
            "size": self.size,
            "address": list(self.address) if self.address else None,
        }
        return snapshot

    def latency_seconds(self) -> list[float]:
        """The wrapped server's latency reservoir (metrics adapters)."""
        return self._server.latency_seconds()

    def stats_payload(self) -> dict:
        """The :class:`ShardStatsReply` payload (also what HTTP serves).

        Includes rendered Prometheus text when a metrics registry is
        attached via :meth:`start_exposition` or assigned to
        :attr:`registry`.
        """
        payload = {
            "shard_id": self.shard_id,
            "generation": self.generation,
            "stats": self.stats(),
        }
        registry = getattr(self, "registry", None)
        if registry is not None:
            from repro.obs.exposition import render

            payload["metrics"] = render(registry)
        return payload

    #: Optional metrics registry answering STATS scrapes; set by
    #: :meth:`start_exposition` (or directly by embedding code).
    registry = None

    def start_exposition(self, host: str = "127.0.0.1", port: int = 0):
        """Attach a metrics registry and start the admin HTTP listener.

        The registry mounts this node's server collector; the same
        registry also starts answering the STATS wire op with rendered
        Prometheus text.  Returns the HTTP ``(host, port)``.
        """
        from repro.obs.metrics import MetricsRegistry, server_collector

        if self.registry is None:
            registry = MetricsRegistry()
            registry.register(server_collector(self))
            self.registry = registry
        return self._server.start_exposition(
            host, port, registry=self.registry, stats_fn=self.stats_payload
        )

    def swap_snapshot(self, path) -> int:
        """Hot-swap this node onto a compacted successor snapshot.

        Passthrough to :meth:`GNNServer.swap_snapshot`: in-flight
        batches finish on the old mapping, later ones answer from the
        new file.  Coordinators see the new generation in the next pong.
        Returns the new epoch.
        """
        epoch = self._server.swap_snapshot(path)
        probe = FlatRTree.load(path, mmap_mode="r")
        self.snapshot_path = str(path)
        self.generation = probe.generation
        self.size = probe.size
        return epoch

    def __repr__(self) -> str:
        return (
            f"ShardNode(shard_id={self.shard_id}, address={self.address}, "
            f"size={self.size}, generation={self.generation})"
        )

    # ------------------------------------------------------------------
    # the per-connection protocol loop
    # ------------------------------------------------------------------
    async def _serve_connection(self, reader, writer) -> None:
        """Read frames until EOF; every frame is answered exactly once."""
        self._connections.add(writer)
        try:
            while True:
                try:
                    message = await read_frame(reader)
                except (ConnectionError, ValueError):
                    break
                if message is None:
                    break
                # ``node.recv`` covers one received frame: a ``drop`` arm
                # swallows it (the peer's request times out), ``delay``
                # holds it, and ``kill`` dies mid-conversation — the
                # chaos suite's dead-shard scenarios.
                action = faults.frame_action("node.recv")
                if action is not None:
                    if action[0] == "drop":
                        continue
                    if action[0] == "delay":
                        await asyncio.sleep(action[1])
                if isinstance(message, ShardPing):
                    self._write_frame(
                        writer,
                        pack_frame(
                            ShardPong(
                                request_id=message.request_id,
                                shard_id=self.shard_id,
                                generation=self._server.epoch,
                                size=self.size,
                                dims=self.dims,
                            )
                        ),
                    )
                elif isinstance(message, ShardQuery):
                    self._admit(message, writer)
                elif isinstance(message, ShardStatsQuery):
                    self._write_frame(
                        writer,
                        pack_frame(
                            ShardStatsReply(
                                request_id=message.request_id,
                                payload=self.stats_payload(),
                            )
                        ),
                    )
                else:
                    break  # unknown frame: drop the connection
        finally:
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _admit(self, query: ShardQuery, writer) -> None:
        """Hand one sub-query to the worker pool; reply when it resolves."""
        try:
            spec = decode_spec(query.payload)
            future = self._server.submit(spec, trace_parent=query.trace)
        except ServerOverloadedError as error:
            self._write_frame(
                writer,
                pack_frame(
                    ShardReply(
                        request_id=query.request_id, error=str(error), overloaded=True
                    )
                ),
            )
            return
        except Exception as error:  # planning / validation failures
            self._write_frame(
                writer,
                pack_frame(ShardReply(request_id=query.request_id, error=str(error))),
            )
            return

        loop = asyncio.get_running_loop()

        def _resolved(done) -> None:
            # Runs on the server's reply thread; frame there, write on
            # the loop.  A plain callback hop (not a coroutine) keeps the
            # per-reply cost down on the scatter-gather hot path.
            error = done.exception()
            if error is None:
                result = done.result()
                # Spans the server attached for this traced request ride
                # the wire as a reply field, not on the pickled result.
                spans = result.__dict__.pop("spans", ())
                reply = ShardReply(
                    request_id=query.request_id,
                    result=encode_result(result),
                    spans=tuple(spans),
                )
            else:
                reply = ShardReply(request_id=query.request_id, error=str(error))
            try:
                loop.call_soon_threadsafe(self._write_frame, writer, pack_frame(reply))
            except RuntimeError:
                pass  # loop already stopped: the node is closing

        future.add_done_callback(_resolved)

    #: A connection whose coordinator stops reading may buffer replies;
    #: past this bound the node drops it to protect its memory (the
    #: coordinator's retry logic reconnects and resends).
    MAX_BUFFERED_REPLY_BYTES = 8 * 1024 * 1024

    def _write_frame(self, writer, frame: bytes) -> None:
        """Write one frame (runs on the loop; a frame is one atomic write).

        Frames never interleave because each is a single ``write`` call
        on the transport, so no per-connection lock or ``drain`` is
        needed on the reply path — the transport and kernel buffers
        absorb bursts, bounded by :data:`MAX_BUFFERED_REPLY_BYTES`.
        """
        if writer.is_closing():
            return
        try:
            writer.write(frame)
            if writer.transport.get_write_buffer_size() > self.MAX_BUFFERED_REPLY_BYTES:
                writer.close()
        except (ConnectionError, OSError, RuntimeError):
            pass  # peer vanished mid-reply; its retry logic owns recovery
