"""Shard health: circuit breakers and the heartbeat monitor.

Without a health model, a dead shard costs every query a full timeout
(times retries) before the degraded path kicks in — the failure ladder
works, but at seconds per query.  The ICN spatial-federation exemplar
treats resolver-side liveness as first-class; this module is that idea
for the scatter-gather coordinator:

* :class:`CircuitBreaker` — the standard three-state machine, one per
  shard replica.  ``closed`` passes traffic; ``failure_threshold``
  *consecutive* failures trip it ``open`` (dispatch skips the replica at
  zero cost); after ``reset_timeout_s`` one probe is let through
  (``half-open``) and its outcome decides between re-closing and
  re-opening.  The clock is injectable so tests drive the state machine
  deterministically.

* :class:`HealthMonitor` — an asyncio heartbeat loop over the existing
  :class:`~repro.shard.wire.ShardPing` handshake.  Each round pings
  every replica over a fresh connection and records the outcome into its
  breaker.  This is the *re-admission* path: queries never probe an open
  breaker themselves (that would re-pay the timeout), so without the
  monitor a recovered node would wait for the breaker's own half-open
  probe; with it, recovery is noticed within one heartbeat interval.
"""

from __future__ import annotations

import asyncio
import time

from repro.obs.logging import get_logger
from repro.serve.protocol import pack_frame, read_frame
from repro.shard.wire import ShardPing, ShardPong

#: Breaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

_log = get_logger("shard.health")


class CircuitBreaker:
    """Per-replica failure gate: closed → open → half-open → closed.

    Parameters
    ----------
    failure_threshold:
        Consecutive failures that trip the breaker open.
    reset_timeout_s:
        Seconds an open breaker waits before granting one half-open
        probe.
    clock:
        Monotonic time source (injectable for deterministic tests).
    name:
        Optional identity (e.g. ``"shard-2 @ host:port"``) stamped onto
        structured log records of state transitions; unnamed breakers
        stay silent in the log.
    """

    def __init__(
        self,
        *,
        failure_threshold: int = 3,
        reset_timeout_s: float = 1.0,
        clock=time.monotonic,
        name: str | None = None,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        if reset_timeout_s < 0:
            raise ValueError("reset_timeout_s must be non-negative")
        self.failure_threshold = int(failure_threshold)
        self.reset_timeout_s = float(reset_timeout_s)
        self._clock = clock
        self.name = name
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self.trips = 0  # lifetime closed/half-open -> open transitions

    def _transition(self, state: str) -> None:
        previous, self._state = self._state, state
        if self.name is not None and previous != state:
            _log.info(
                "breaker.transition", breaker=self.name, state=state, was=previous
            )

    @property
    def state(self) -> str:
        return self._state

    def allow(self) -> bool:
        """Whether a request may be dispatched through this replica now.

        An open breaker whose reset timeout has elapsed grants exactly
        one probe (transitioning to half-open); further calls return
        False until the probe's outcome is recorded.
        """
        if self._state == CLOSED:
            return True
        if self._state == OPEN:
            if self._clock() - self._opened_at >= self.reset_timeout_s:
                self._transition(HALF_OPEN)
                return True
            return False
        return False  # half-open: the single probe is already out

    def record_success(self) -> None:
        """A request (or heartbeat) through this replica succeeded."""
        self._transition(CLOSED)
        self._consecutive_failures = 0

    def record_failure(self) -> bool:
        """A request (or heartbeat) failed; returns True when this trips.

        A half-open probe failure re-opens immediately (the node is
        still down — no reason to spend ``failure_threshold`` more
        probes re-learning that).
        """
        self._consecutive_failures += 1
        should_trip = (
            self._state == HALF_OPEN
            or self._consecutive_failures >= self.failure_threshold
        )
        if should_trip and self._state != OPEN:
            self._transition(OPEN)
            self._opened_at = self._clock()
            self.trips += 1
            return True
        if self._state == OPEN:
            self._opened_at = self._clock()  # still down: restart the timer
        return False

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker(state={self._state!r}, "
            f"failures={self._consecutive_failures}, trips={self.trips})"
        )


class HealthMonitor:
    """Heartbeat every replica of a federation into its circuit breaker.

    ``targets`` is a list of ``(shard_id, address, breaker)`` triples;
    :meth:`start` launches the loop as a task on the running event loop
    (the coordinator's), :meth:`stop` cancels it.  One round pings all
    targets concurrently; a replica that answers a well-formed
    :class:`ShardPong` for the right shard records a success, anything
    else (refused, timeout, wrong shard) a failure.
    """

    def __init__(self, targets, *, interval_s: float = 0.2, timeout_s: float = 1.0):
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        self.targets = list(targets)
        self.interval_s = float(interval_s)
        self.timeout_s = float(timeout_s)
        self.rounds = 0
        self._task: asyncio.Task | None = None

    async def probe(self, shard_id: int, address) -> bool:
        """One heartbeat: fresh connection, ping, verified pong."""
        writer = None
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(*address), timeout=self.timeout_s
            )
            writer.write(pack_frame(ShardPing(request_id=0)))
            await writer.drain()
            pong = await asyncio.wait_for(read_frame(reader), timeout=self.timeout_s)
            return isinstance(pong, ShardPong) and pong.shard_id == shard_id
        except (OSError, ValueError, EOFError, asyncio.TimeoutError):
            return False
        finally:
            if writer is not None:
                writer.close()

    async def probe_all(self) -> None:
        """Run one heartbeat round over every target (concurrently)."""
        outcomes = await asyncio.gather(
            *(self.probe(shard_id, address) for shard_id, address, _ in self.targets)
        )
        for (_, _, breaker), alive in zip(self.targets, outcomes):
            if alive:
                breaker.record_success()
            else:
                breaker.record_failure()
        self.rounds += 1

    async def _run(self) -> None:
        while True:
            await asyncio.sleep(self.interval_s)
            await self.probe_all()

    def start(self) -> "HealthMonitor":
        """Start the heartbeat task on the running loop (idempotent)."""
        if self._task is None or self._task.done():
            self._task = asyncio.get_running_loop().create_task(
                self._run(), name="shard-health-monitor"
            )
        return self

    async def stop(self) -> None:
        """Cancel the heartbeat task and wait for it to unwind."""
        task, self._task = self._task, None
        if task is not None:
            task.cancel()
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
