"""Messages of the coordinator <-> shard-node wire protocol.

One TCP connection carries a stream of length-prefixed pickle frames
(:func:`repro.serve.protocol.pack_frame`); each frame is one of the
dataclasses below.  Requests and replies are correlated by a
client-chosen ``request_id``, so a connection is fully pipelined — the
coordinator keeps many sub-queries in flight per shard and replies
return in completion order, not submission order.

The protocol is deliberately tiny:

* :class:`ShardPing` / :class:`ShardPong` — connection handshake and
  liveness probe; the pong describes the snapshot the node serves so
  the coordinator can verify shard identity and generation against its
  manifest before trusting the link.
* :class:`ShardQuery` / :class:`ShardReply` — one GNN sub-query (an
  :func:`~repro.serve.protocol.encode_spec` payload) and its outcome:
  exactly one of ``result`` / ``error`` is set, with ``overloaded``
  distinguishing admission-control rejections (retryable after backoff)
  from semantic failures (not retryable).
* :class:`ShardStatsQuery` / :class:`ShardStatsReply` — the STATS admin
  op: the node answers with its unified ``stats()`` snapshot (and the
  rendered Prometheus text when it carries a metrics registry), which
  is what ``python -m repro.obs`` scrapes.

Frames added after the protocol first shipped extend dataclasses with
*defaulted* fields only (``ShardQuery.trace``, ``ShardReply.spans``), so
old and new peers interoperate: a node that predates tracing simply
never sees or sends the new fields.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.types import GNNResult
from repro.serve.protocol import pack_frame  # noqa: F401  (re-export for scrapers)


@dataclass(frozen=True)
class ShardPing:
    """Liveness/identity probe; every connection starts with one."""

    request_id: int


@dataclass(frozen=True)
class ShardPong:
    """The node's self-description, checked against the manifest."""

    request_id: int
    shard_id: int
    generation: int
    size: int
    dims: int


@dataclass(frozen=True)
class ShardQuery:
    """One sub-query: an encoded spec payload plus its correlation id.

    ``trace`` carries the caller's trace context — a ``(trace_id,
    parent_span_id)`` pair — when end-to-end tracing is on; the node
    threads it into its server so the batch-execution spans it produces
    parent correctly under the coordinator's per-attempt span.
    """

    request_id: int
    payload: dict[str, Any]
    trace: tuple[str, str] | None = None


@dataclass(frozen=True)
class ShardReply:
    """Outcome of one :class:`ShardQuery`.

    ``result`` is the plan-stripped :class:`GNNResult` on success;
    otherwise ``error`` holds the failure text and ``overloaded`` tells
    the coordinator whether the node's admission control rejected the
    query (worth retrying after the queue drains) or execution itself
    failed (retrying is pointless).
    """

    request_id: int
    result: GNNResult | None = None
    error: str | None = None
    overloaded: bool = False
    #: Span dicts produced node-side for a traced query (empty otherwise).
    spans: tuple = ()


@dataclass(frozen=True)
class ShardStatsQuery:
    """The STATS admin op: ask a node for its stats/metrics snapshot."""

    request_id: int


@dataclass(frozen=True)
class ShardStatsReply:
    """Answer to :class:`ShardStatsQuery`.

    ``payload`` holds ``{"shard_id", "generation", "stats"}`` plus a
    ``"metrics"`` key with rendered Prometheus text when the node has a
    metrics registry attached.
    """

    request_id: int
    payload: dict[str, Any]
