"""Messages of the coordinator <-> shard-node wire protocol.

One TCP connection carries a stream of length-prefixed pickle frames
(:func:`repro.serve.protocol.pack_frame`); each frame is one of the
dataclasses below.  Requests and replies are correlated by a
client-chosen ``request_id``, so a connection is fully pipelined — the
coordinator keeps many sub-queries in flight per shard and replies
return in completion order, not submission order.

The protocol is deliberately tiny:

* :class:`ShardPing` / :class:`ShardPong` — connection handshake and
  liveness probe; the pong describes the snapshot the node serves so
  the coordinator can verify shard identity and generation against its
  manifest before trusting the link.
* :class:`ShardQuery` / :class:`ShardReply` — one GNN sub-query (an
  :func:`~repro.serve.protocol.encode_spec` payload) and its outcome:
  exactly one of ``result`` / ``error`` is set, with ``overloaded``
  distinguishing admission-control rejections (retryable after backoff)
  from semantic failures (not retryable).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.types import GNNResult


@dataclass(frozen=True)
class ShardPing:
    """Liveness/identity probe; every connection starts with one."""

    request_id: int


@dataclass(frozen=True)
class ShardPong:
    """The node's self-description, checked against the manifest."""

    request_id: int
    shard_id: int
    generation: int
    size: int
    dims: int


@dataclass(frozen=True)
class ShardQuery:
    """One sub-query: an encoded spec payload plus its correlation id."""

    request_id: int
    payload: dict[str, Any]


@dataclass(frozen=True)
class ShardReply:
    """Outcome of one :class:`ShardQuery`.

    ``result`` is the plan-stripped :class:`GNNResult` on success;
    otherwise ``error`` holds the failure text and ``overloaded`` tells
    the coordinator whether the node's admission control rejected the
    query (worth retrying after the queue drains) or execution itself
    failed (retrying is pointless).
    """

    request_id: int
    result: GNNResult | None = None
    error: str | None = None
    overloaded: bool = False
