"""A drop-in engine facade over a shard federation.

:class:`ShardedEngine` gives scatter-gather execution the same surface
application code already programs against —
``execute`` / ``execute_many`` / ``explain`` over declarative
:class:`~repro.api.spec.QuerySpec`\\ s — so swapping a single-process
:class:`~repro.core.engine.GNNEngine` for a federation is a one-line
change.  Planning still happens client-side (with the usual plan cache
and the serving admission filter), so malformed or unservable specs
fail here, immediately and with the planner's message, instead of as a
remote error from some shard.

The engine exposes its coordinator as ``.coordinator`` — that is the
attribute the planner checks before accepting ``index="sharded"``
specs, and the handle to the federation's stats and lifecycle.
"""

from __future__ import annotations

from concurrent.futures import Future

from repro.api.planner import QueryPlan, QueryPlanner
from repro.api.spec import QuerySpec
from repro.core.types import GNNResult
from repro.serve.protocol import check_servable
from repro.shard.coordinator import ShardCoordinator

#: Bound on the signature->plan cache (same policy as the serving stack).
_PLAN_CACHE_LIMIT = 4096


class ShardedEngine:
    """Execute query specs by scatter-gather over a shard federation.

    Parameters
    ----------
    coordinator:
        The :class:`ShardCoordinator` holding the manifest and the links
        to the shard nodes.  The engine does not take ownership unless
        it created the coordinator itself (:meth:`connect`); call
        :meth:`close` to shut whichever you hold down.
    """

    def __init__(self, coordinator: ShardCoordinator):
        self.coordinator = coordinator
        self.planner = QueryPlanner(self)
        self._plan_cache: dict[tuple, QueryPlan] = {}

    @classmethod
    def connect(cls, manifest, addresses, **coordinator_options) -> "ShardedEngine":
        """Build a coordinator for ``manifest``/``addresses`` and wrap it."""
        return cls(ShardCoordinator(manifest, addresses, **coordinator_options))

    # ------------------------------------------------------------------
    # the engine surface
    # ------------------------------------------------------------------
    def execute(self, spec: QuerySpec) -> GNNResult:
        """Plan, validate, and scatter-gather one spec."""
        plan = self._plan(spec)
        result = self.coordinator.execute(spec)
        if spec.trace:
            result.plan = plan
        return result

    def execute_many(self, specs) -> list[GNNResult]:
        """Execute a batch of specs; results come back in input order.

        All specs are validated first, then submitted together — the
        coordinator keeps every sub-query of the whole batch in flight
        over its pipelined per-shard connections.
        """
        specs = list(specs)
        plans = [self._plan(spec) for spec in specs]
        futures = [self.coordinator.submit(spec) for spec in specs]
        results = [future.result() for future in futures]
        for spec, plan, result in zip(specs, plans, results):
            if spec.trace:
                result.plan = plan
        return results

    def submit(self, spec: QuerySpec) -> Future:
        """Validate one spec and scatter-gather it asynchronously."""
        self._plan(spec)
        return self.coordinator.submit(spec)

    def explain(self, spec: QuerySpec) -> QueryPlan:
        """The client-side plan for ``spec`` (nothing is executed)."""
        return self._plan(spec)

    def _plan(self, spec: QuerySpec) -> QueryPlan:
        signature = spec.plan_signature()
        plan = self._plan_cache.get(signature)
        if plan is None:
            plan = self.planner.plan(spec)
            check_servable(spec, plan)
            if len(self._plan_cache) >= _PLAN_CACHE_LIMIT:
                self._plan_cache.clear()
            self._plan_cache[signature] = plan
        return plan.for_spec(spec)

    # ------------------------------------------------------------------
    # federation introspection / lifecycle
    # ------------------------------------------------------------------
    @property
    def manifest(self):
        """The federation's :class:`~repro.shard.manifest.ShardManifest`."""
        return self.coordinator.manifest

    def stats(self) -> dict:
        """The unified stats shape: counters nested under ``coordinator``."""
        return {"coordinator": self.coordinator.stats()}

    def close(self) -> None:
        """Close the underlying coordinator (idempotent)."""
        self.coordinator.close()

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __len__(self) -> int:
        return self.coordinator.manifest.size

    def __repr__(self) -> str:
        manifest = self.coordinator.manifest
        return (
            f"ShardedEngine(shards={manifest.shard_count}, "
            f"size={manifest.size}, dims={manifest.dims})"
        )
