"""Observability: tracing, metrics, exposition, slow-query log, logging.

The repo's cost accounting (node accesses, distance computations, CPU
time — the paper's reported metrics) historically lived in four
disconnected counter surfaces.  This package is the cross-cutting layer
that unifies them:

* :mod:`repro.obs.trace` — per-query span trees that follow a request
  through planner → micro-batcher → worker → shard fan-out;
* :mod:`repro.obs.metrics` — one process-wide registry mounting every
  counter surface under the ``repro_*`` namespace;
* :mod:`repro.obs.exposition` — Prometheus text rendering, the admin
  HTTP endpoint, and the ``python -m repro.obs`` federation scraper;
* :mod:`repro.obs.slowlog` — threshold-triggered structured records of
  slow queries (spec, plan rationale, counter deltas, shard timings);
* :mod:`repro.obs.logging` — structured JSON event logging for
  lifecycle transitions (swaps, worker deaths, compactions, recovery,
  breaker trips).

Everything is **off by default** and gated by the module-global
``is None`` pattern borrowed from :mod:`repro.testing.faults`, so the
disabled cost on a query hot path is one global read per subsystem.
"""

from __future__ import annotations

from repro.obs import logging, metrics, slowlog, trace
from repro.obs.trace import Tracer, orphan_spans
from repro.obs.metrics import MetricsRegistry
from repro.obs.slowlog import SlowQueryLog

__all__ = [
    "MetricsRegistry",
    "SlowQueryLog",
    "Tracer",
    "disable_all",
    "enable_all",
    "logging",
    "metrics",
    "orphan_spans",
    "slowlog",
    "trace",
]


def enable_all(
    *,
    ring: int = trace.DEFAULT_RING,
    trace_jsonl=None,
    slow_threshold_s: float = slowlog.DEFAULT_THRESHOLD_S,
    slow_jsonl=None,
    log_stream=None,
) -> tuple[Tracer, MetricsRegistry, SlowQueryLog]:
    """Switch every observability subsystem on (tests and examples)."""
    tracer = trace.enable(ring=ring, jsonl_path=trace_jsonl)
    registry = metrics.enable()
    slow = slowlog.enable(threshold_s=slow_threshold_s, jsonl_path=slow_jsonl)
    logging.enable(stream=log_stream)
    return tracer, registry, slow


def disable_all() -> None:
    """Back to the production default: everything off."""
    trace.disable()
    metrics.disable()
    slowlog.disable()
    logging.disable()
