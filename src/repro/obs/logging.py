"""Structured JSON logging for lifecycle events.

One line per event, one JSON object per line::

    {"ts": 1717.25, "level": "info", "component": "serve.server",
     "event": "worker.respawned", "worker": 1, "deaths": 2}

The call sites live on *rare* paths — server start/stop, snapshot
swaps, worker deaths and respawns, compactions, WAL recovery, breaker
transitions — so the cost model is looser than tracing's, but the same
``is None``-style gate applies: :func:`get_logger` returns a cached
:class:`ComponentLogger` whose emit methods are one ``if not _enabled``
test when logging is off.  Events go to a stream (stderr by default) or
any file-like object handed to :func:`enable`, which tests use to
capture and assert on event sequences.
"""

from __future__ import annotations

import json
import sys
import threading
import time

_enabled = False
_stream = None
_lock = threading.Lock()
_loggers: dict[str, "ComponentLogger"] = {}

LEVELS = ("debug", "info", "warning", "error")


def enable(stream=None) -> None:
    """Turn structured logging on, writing to ``stream`` (default stderr)."""
    global _enabled, _stream
    with _lock:
        _stream = stream
        _enabled = True


def disable() -> None:
    global _enabled, _stream
    with _lock:
        _enabled = False
        _stream = None


def is_enabled() -> bool:
    return _enabled


class ComponentLogger:
    """A named emitter; instances are cached, one per component string."""

    __slots__ = ("component",)

    def __init__(self, component: str):
        self.component = component

    def _emit(self, level: str, event: str, fields: dict) -> None:
        if not _enabled:
            return
        record = {
            "ts": round(time.time(), 6),
            "level": level,
            "component": self.component,
            "event": event,
        }
        record.update(fields)
        line = json.dumps(record, sort_keys=True, default=str)
        with _lock:
            stream = _stream if _stream is not None else sys.stderr
            try:
                stream.write(line + "\n")
            except ValueError:
                # The capture stream was closed (test teardown); drop.
                pass

    def debug(self, event: str, **fields) -> None:
        self._emit("debug", event, fields)

    def info(self, event: str, **fields) -> None:
        self._emit("info", event, fields)

    def warning(self, event: str, **fields) -> None:
        self._emit("warning", event, fields)

    def error(self, event: str, **fields) -> None:
        self._emit("error", event, fields)


def get_logger(component: str) -> ComponentLogger:
    """The (cached) logger for ``component``."""
    logger = _loggers.get(component)
    if logger is None:
        logger = _loggers.setdefault(component, ComponentLogger(component))
    return logger
