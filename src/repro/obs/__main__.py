"""Scrape a running federation and print a one-screen dashboard.

Examples::

    # one node
    python -m repro.obs 127.0.0.1:45123

    # a federation; print raw Prometheus text instead of the dashboard
    python -m repro.obs 127.0.0.1:45123 127.0.0.1:45124 --metrics

    # poll every 2 seconds until interrupted
    python -m repro.obs 127.0.0.1:45123 --watch 2
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.obs.exposition import render_dashboard, scrape_node


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Scrape running GNN shard nodes (the STATS wire op) "
        "and print a dashboard.",
    )
    parser.add_argument(
        "addresses",
        nargs="+",
        metavar="HOST:PORT",
        help="shard-node wire addresses to scrape",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="print each node's rendered Prometheus text instead of the dashboard",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=5.0,
        help="per-node scrape timeout in seconds (default 5)",
    )
    parser.add_argument(
        "--watch",
        type=float,
        metavar="SECONDS",
        default=None,
        help="re-scrape and re-print every SECONDS until interrupted",
    )
    return parser


def _scrape_all(addresses, timeout):
    scrapes = []
    for address in addresses:
        try:
            scrapes.append((address, scrape_node(address, timeout=timeout)))
        except Exception as exc:  # noqa: BLE001 - an unreachable node is data
            scrapes.append((address, exc))
    return scrapes


def main(argv=None) -> int:
    args = _parser().parse_args(argv)
    while True:
        scrapes = _scrape_all(args.addresses, args.timeout)
        if args.metrics:
            for address, payload in scrapes:
                print(f"# --- {address} ---")
                if isinstance(payload, Exception):
                    print(f"# unreachable: {payload}")
                else:
                    sys.stdout.write(payload.get("metrics") or "# (no registry)\n")
        else:
            print(render_dashboard(scrapes))
        reachable = sum(
            1 for _, payload in scrapes if not isinstance(payload, Exception)
        )
        if args.watch is None:
            return 0 if reachable == len(scrapes) else 1
        time.sleep(args.watch)


if __name__ == "__main__":
    raise SystemExit(main())
