"""Prometheus text-format exposition and the tiny admin endpoints.

Three consumers, one renderer:

* :func:`render` turns a :class:`~repro.obs.metrics.MetricsRegistry`
  into Prometheus text exposition format 0.0.4 (hand-rolled — the repo
  takes no new dependencies);
* :class:`HttpExposition` is an optional stdlib HTTP listener
  (``GET /metrics``, ``GET /stats``, ``GET /healthz``) that
  :class:`~repro.serve.server.GNNServer` and
  :class:`~repro.shard.node.ShardNode` can start on demand;
* :func:`scrape_node` speaks the ``ShardStatsQuery`` wire op over a
  plain blocking socket so ``python -m repro.obs`` can scrape a running
  federation without joining its event loop.
"""

from __future__ import annotations

import http.server
import json
import socket
import threading

from repro.obs.metrics import MetricsRegistry

_ESCAPES = {"\\": "\\\\", '"': '\\"', "\n": "\\n"}


def _escape_label(value: str) -> str:
    return "".join(_ESCAPES.get(ch, ch) for ch in str(value))


def _format_value(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    value = float(value)
    if value != value:
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def render(registry: MetricsRegistry) -> str:
    """Render every family of ``registry`` as Prometheus text format."""
    lines = []
    for family in registry.collect():
        if family.help:
            lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for sample in family.samples:
            if sample.labels:
                labels = ",".join(
                    f'{key}="{_escape_label(value)}"'
                    for key, value in sample.labels.items()
                )
                lines.append(f"{sample.name}{{{labels}}} {_format_value(sample.value)}")
            else:
                lines.append(f"{sample.name} {_format_value(sample.value)}")
    return "\n".join(lines) + "\n"


class HttpExposition:
    """A daemon-threaded stdlib HTTP server exposing metrics and stats.

    Routes::

        GET /metrics   Prometheus text format (from ``registry``)
        GET /stats     the owner's ``stats()`` dict as JSON
        GET /healthz   200 "ok"
    """

    def __init__(self, registry: MetricsRegistry, stats_fn=None,
                 host: str = "127.0.0.1", port: int = 0):
        exposition = self

        class Handler(http.server.BaseHTTPRequestHandler):
            def do_GET(self):  # noqa: N802 - stdlib naming
                if self.path.split("?", 1)[0] == "/metrics":
                    body = render(exposition.registry).encode("utf-8")
                    ctype = "text/plain; version=0.0.4; charset=utf-8"
                elif self.path.split("?", 1)[0] == "/stats":
                    stats = exposition.stats_fn() if exposition.stats_fn else {}
                    body = json.dumps(stats, sort_keys=True, default=str).encode("utf-8")
                    ctype = "application/json"
                elif self.path.split("?", 1)[0] == "/healthz":
                    body = b"ok\n"
                    ctype = "text/plain"
                else:
                    self.send_error(404)
                    return
                self.send_response(200)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args):  # silence per-request stderr lines
                pass

        self.registry = registry
        self.stats_fn = stats_fn
        self._httpd = http.server.ThreadingHTTPServer((host, port), Handler)
        self._httpd.daemon_threads = True
        self.address = self._httpd.server_address[:2]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-obs-http", daemon=True
        )
        self._thread.start()

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5)


# ----------------------------------------------------------------------
# scraping shard nodes over the wire protocol
# ----------------------------------------------------------------------
def scrape_node(address, timeout: float = 5.0) -> dict:
    """Fetch a :class:`ShardNode`'s stats payload over its TCP front.

    ``address`` is ``(host, port)`` or ``"host:port"``.  Returns the
    ``ShardStatsReply`` payload: ``{"shard_id", "generation", "stats",
    "metrics"}`` (``metrics`` is rendered Prometheus text, present when
    the node carries a registry).
    """
    # Imported here so the obs package stays importable without the
    # serving extras loaded first.
    from repro.shard.wire import ShardStatsQuery, ShardStatsReply, pack_frame

    if isinstance(address, str):
        host, _, port = address.rpartition(":")
        address = (host or "127.0.0.1", int(port))
    with socket.create_connection(tuple(address), timeout=timeout) as conn:
        conn.settimeout(timeout)
        conn.sendall(pack_frame(ShardStatsQuery(request_id=0)))
        header = _read_exact(conn, 4)
        length = int.from_bytes(header, "big")
        frame = _read_exact(conn, length)
    import pickle

    reply = pickle.loads(frame)
    if not isinstance(reply, ShardStatsReply):
        raise ValueError(f"unexpected reply to stats query: {type(reply).__name__}")
    return reply.payload


def _read_exact(conn: socket.socket, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        chunk = conn.recv(remaining)
        if not chunk:
            raise ConnectionError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def render_dashboard(scrapes: list) -> str:
    """One-screen text dashboard from ``[(address, payload), ...]``."""
    lines = ["repro federation dashboard", "=" * 64]
    for address, payload in scrapes:
        if isinstance(payload, Exception):
            lines.append(f"{address}  UNREACHABLE ({payload})")
            continue
        stats = payload.get("stats", {})
        server = stats.get("server", {})
        latency = stats.get("latency_ms", {})
        total = stats.get("total", {})
        lines.append(
            f"shard {payload.get('shard_id', '?')} @ {address}  "
            f"gen {payload.get('generation', '?')}"
        )
        lines.append(
            "  requests: "
            f"{server.get('completed', 0)} ok / {server.get('failed', 0)} failed / "
            f"{server.get('shed', 0)} shed   pending {server.get('pending', 0)}   "
            f"workers {server.get('workers_alive', '?')} "
            f"(deaths {server.get('worker_deaths', 0)})"
        )
        lines.append(
            "  latency ms: "
            + "  ".join(f"{key} {value}" for key, value in sorted(latency.items()))
        )
        lines.append(
            "  work: "
            f"NA {total.get('node_accesses', 0)}  "
            f"dist {total.get('distance_computations', 0)}  "
            f"cpu {round(total.get('cpu_time', 0.0), 3)}s  "
            f"swaps {server.get('swaps', 0)}"
        )
    lines.append("=" * 64)
    return "\n".join(lines)
