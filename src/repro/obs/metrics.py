"""Process-wide metrics registry unifying the repo's counter surfaces.

The paper's cost accounting lives in four counter families that grew up
independently — :class:`~repro.rtree.stats.TreeStats`,
:class:`~repro.storage.counters.IOCounters` /
:class:`~repro.storage.counters.MappedPageCounters`,
:class:`~repro.serve.stats.ServingCounters` (plus ``ServerStats``) and
:class:`~repro.shard.coordinator.CoordinatorStats`.  This module mounts
them all under one ``repro_*`` namespace:

==============================================  =========================
``repro_tree_node_accesses_total`` (+ leaf,     TreeStats
``page_faults``, ``distance_computations``)
``repro_storage_page_reads_total`` (+ block,    IOCounters /
sort passes, mapped arrays/bytes/pages)         MappedPageCounters
``repro_serve_requests_total{outcome=...}``,    ServerStats +
``repro_serve_latency_seconds`` (histogram),    ServingCounters
``repro_serve_*_total``, worker gauges
``repro_shard_queries_total``, retries,         CoordinatorStats +
degraded, ``repro_shard_breaker_state``         per-replica breakers
==============================================  =========================

Two mechanisms coexist:

* **direct metrics** — :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` objects created via the registry, updated by
  callers, snapshottable and *mergeable* exactly like the existing
  snapshot dicts (:func:`MetricsRegistry.merge` is key-wise addition,
  the same contract as :func:`repro.storage.counters.merge_snapshots`);
* **collectors** — zero-hot-path-cost adapters registered with
  :meth:`MetricsRegistry.register`, sampled only at scrape time from
  the live ``stats()`` snapshots the subsystems already maintain.

Rendering to the Prometheus text format lives in
:mod:`repro.obs.exposition`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

#: Default histogram buckets (seconds) — tuned for query latencies that
#: range from tens of microseconds (memory) to whole seconds (degraded
#: shard fan-outs).
DEFAULT_BUCKETS = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
)


@dataclass
class Sample:
    """One exposition sample: a metric name, its labels and a value."""

    name: str
    labels: dict
    value: float


@dataclass
class MetricFamily:
    """A named metric with its type, help string and current samples."""

    name: str
    kind: str  # "counter" | "gauge" | "histogram"
    help: str = ""
    samples: list = field(default_factory=list)


class Counter:
    """A monotonically increasing value."""

    kind = "counter"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def family(self) -> MetricFamily:
        return MetricFamily(
            self.name, self.kind, self.help, [Sample(self.name, {}, self._value)]
        )

    def state(self):
        return self._value

    def merge_state(self, state) -> None:
        with self._lock:
            self._value += float(state)


class Gauge:
    """A value that can go up and down."""

    kind = "gauge"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value

    def family(self) -> MetricFamily:
        return MetricFamily(
            self.name, self.kind, self.help, [Sample(self.name, {}, self._value)]
        )

    def state(self):
        return self._value

    def merge_state(self, state) -> None:
        # Merging gauges across workers sums them (pending depths add).
        with self._lock:
            self._value += float(state)


class Histogram:
    """Fixed-bucket histogram (cumulative counts, Prometheus-style)."""

    kind = "histogram"

    def __init__(self, name: str, help: str = "", buckets=DEFAULT_BUCKETS):
        self.name = name
        self.help = help
        self.buckets = tuple(sorted(float(b) for b in buckets))
        if not self.buckets:
            raise ValueError("a histogram needs at least one bucket bound")
        self._counts = [0] * (len(self.buckets) + 1)  # + overflow (+Inf)
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._sum += value
            self._count += 1
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    self._counts[index] += 1
                    return
            self._counts[-1] += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def family(self) -> MetricFamily:
        with self._lock:
            counts = list(self._counts)
            total, summed = self._count, self._sum
        return histogram_family(
            self.name, self.buckets, counts, summed, total, self.help
        )

    def state(self):
        with self._lock:
            return {
                "buckets": list(self._counts),
                "sum": self._sum,
                "count": self._count,
            }

    def merge_state(self, state) -> None:
        counts = state["buckets"]
        if len(counts) != len(self._counts):
            raise ValueError(f"bucket mismatch merging histogram {self.name!r}")
        with self._lock:
            for index, count in enumerate(counts):
                self._counts[index] += int(count)
            self._sum += float(state["sum"])
            self._count += int(state["count"])


def histogram_family(
    name: str, buckets, counts, summed: float, total: int, help: str = "", labels=None
) -> MetricFamily:
    """Build a histogram family from per-bucket (non-cumulative) counts.

    Shared by :class:`Histogram` and collectors that derive histograms
    from raw samples at scrape time (e.g. the server latency reservoir).
    """
    labels = dict(labels or {})
    samples = []
    cumulative = 0
    for bound, count in zip(buckets, counts):
        cumulative += count
        samples.append(
            Sample(name + "_bucket", dict(labels, le=format_float(bound)), cumulative)
        )
    cumulative += counts[len(buckets)] if len(counts) > len(buckets) else 0
    samples.append(Sample(name + "_bucket", dict(labels, le="+Inf"), cumulative))
    samples.append(Sample(name + "_sum", labels, summed))
    samples.append(Sample(name + "_count", labels, total))
    return MetricFamily(name, "histogram", help, samples)


def format_float(value: float) -> str:
    """Prometheus-friendly float formatting (no trailing zeros)."""
    as_int = int(value)
    if value == as_int:
        return str(as_int) + ".0"
    return repr(value)


class MetricsRegistry:
    """Owns direct metrics and scrape-time collectors.

    Direct metrics are created with :meth:`counter` / :meth:`gauge` /
    :meth:`histogram` (get-or-create by name).  Collectors are callables
    returning an iterable of :class:`MetricFamily`; they are invoked
    only by :meth:`collect`, so registering one adds nothing to any
    query hot path.
    """

    def __init__(self):
        self._metrics: dict = {}
        self._collectors: list = []
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # direct metrics
    # ------------------------------------------------------------------
    def _get_or_create(self, cls, name: str, help: str, **kwargs):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as {existing.kind}"
                    )
                return existing
            metric = cls(name, help, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(self, name: str, help: str = "", buckets=DEFAULT_BUCKETS) -> Histogram:
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    # ------------------------------------------------------------------
    # collectors
    # ------------------------------------------------------------------
    def register(self, collector) -> None:
        """Add a scrape-time collector (``() -> iterable[MetricFamily]``)."""
        with self._lock:
            self._collectors.append(collector)

    def unregister(self, collector) -> None:
        with self._lock:
            self._collectors.remove(collector)

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def collect(self) -> list[MetricFamily]:
        """Every family: direct metrics first, then collector output."""
        with self._lock:
            metrics = list(self._metrics.values())
            collectors = list(self._collectors)
        families = [metric.family() for metric in metrics]
        for collector in collectors:
            families.extend(collector())
        return families

    # ------------------------------------------------------------------
    # snapshot / merge — the existing counter-dict contract
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Direct metrics as a plain dict (counters/gauges: numbers;
        histograms: ``{"buckets": [...], "sum": s, "count": n}``).

        Collector-backed families are intentionally excluded — their
        sources (worker counters, coordinator stats) already have their
        own mergeable snapshots.
        """
        with self._lock:
            metrics = dict(self._metrics)
        return {name: metric.state() for name, metric in metrics.items()}

    def merge(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` dict in by key-wise addition.

        Unknown names are created as counters (numeric state) or
        histograms with default buckets (dict state) so merging across
        heterogeneous workers carries the union of keys, mirroring
        :func:`repro.storage.counters.merge_snapshots`.
        """
        for name, state in snapshot.items():
            with self._lock:
                metric = self._metrics.get(name)
            if metric is None:
                if isinstance(state, dict):
                    buckets = DEFAULT_BUCKETS
                    if len(state["buckets"]) != len(buckets) + 1:
                        raise ValueError(
                            f"cannot infer buckets for unknown histogram {name!r}"
                        )
                    metric = self.histogram(name)
                else:
                    metric = self.counter(name)
            metric.merge_state(state)


# ----------------------------------------------------------------------
# adapters: the four existing counter surfaces
# ----------------------------------------------------------------------
def _counter_families(prefix: str, snapshot: dict, help_prefix: str):
    for key, value in sorted(snapshot.items()):
        name = f"{prefix}_{key}_total"
        yield MetricFamily(
            name, "counter", f"{help_prefix} {key}", [Sample(name, {}, value)]
        )


def tree_collector(stats):
    """Adapter for :class:`~repro.rtree.stats.TreeStats` (or a provider).

    ``stats`` may be the TreeStats object itself or a zero-argument
    callable returning one (engines swap their flat index on compaction,
    so a provider keeps the collector pointed at the live object).
    """

    def collect():
        source = stats() if callable(stats) else stats
        return list(
            _counter_families("repro_tree", source.snapshot(), "R-tree traversal")
        )

    return collect


def storage_collector(io_counters=None, mapped_counters=None):
    """Adapter for IOCounters / MappedPageCounters."""

    def collect():
        families = []
        if io_counters is not None:
            families.extend(
                _counter_families(
                    "repro_storage", io_counters.snapshot(), "Simulated disk"
                )
            )
        if mapped_counters is not None:
            families.extend(
                _counter_families(
                    "repro_storage", mapped_counters.snapshot(), "Mapped snapshot"
                )
            )
        return families

    return collect


#: Fixed buckets for ``repro_serve_latency_seconds``.
SERVE_LATENCY_BUCKETS = DEFAULT_BUCKETS


def server_collector(server):
    """Adapter for a :class:`~repro.serve.server.GNNServer`.

    Samples ``server.stats()`` (the unified nested shape) and, when the
    server exposes its raw latency reservoir (``latency_seconds()``),
    derives a fixed-bucket ``repro_serve_latency_seconds`` histogram at
    scrape time.
    """

    def collect():
        stats = server.stats()
        families = []
        served = stats.get("server", {})
        requests = MetricFamily(
            "repro_serve_requests_total",
            "counter",
            "Requests by outcome",
        )
        for outcome in ("completed", "failed", "shed"):
            requests.samples.append(
                Sample(
                    "repro_serve_requests_total",
                    {"outcome": outcome},
                    served.get(outcome, 0),
                )
            )
        families.append(requests)
        for key in ("submitted", "swaps", "worker_deaths"):
            name = f"repro_serve_{key}_total"
            families.append(
                MetricFamily(
                    name, "counter", f"Server {key}", [Sample(name, {}, served.get(key, 0))]
                )
            )
        for key in ("pending", "workers_alive"):
            name = f"repro_serve_{key}"
            families.append(
                MetricFamily(
                    name, "gauge", f"Server {key}", [Sample(name, {}, served.get(key, 0))]
                )
            )
        scheduler = stats.get("scheduler", {})
        for key in ("queued", "in_flight", "epoch"):
            name = f"repro_serve_scheduler_{key}"
            families.append(
                MetricFamily(
                    name,
                    "gauge",
                    f"Scheduler {key}",
                    [Sample(name, {}, scheduler.get(key, 0))],
                )
            )
        # The cross-worker execution totals get their own "worker"
        # segment so e.g. ``requests`` cannot collide with the labelled
        # ``repro_serve_requests_total`` family above.
        for key, value in sorted(stats.get("total", {}).items()):
            if key == "largest_batch":
                families.append(
                    MetricFamily(
                        "repro_serve_worker_largest_batch",
                        "gauge",
                        "Largest batch executed",
                        [Sample("repro_serve_worker_largest_batch", {}, value)],
                    )
                )
                continue
            name = f"repro_serve_worker_{key}_total"
            families.append(
                MetricFamily(
                    name, "counter", f"Across workers: {key}", [Sample(name, {}, value)]
                )
            )
        latency_seconds = getattr(server, "latency_seconds", None)
        if latency_seconds is not None:
            samples = latency_seconds()
            buckets = SERVE_LATENCY_BUCKETS
            counts = [0] * (len(buckets) + 1)
            total_s = 0.0
            for value in samples:
                total_s += value
                for index, bound in enumerate(buckets):
                    if value <= bound:
                        counts[index] += 1
                        break
                else:
                    counts[-1] += 1
            families.append(
                histogram_family(
                    "repro_serve_latency_seconds",
                    buckets,
                    counts,
                    total_s,
                    len(samples),
                    "Request latency (reservoir)",
                )
            )
        return families

    return collect


_BREAKER_STATE_VALUES = {"closed": 0, "half-open": 1, "open": 2}


def coordinator_collector(coordinator):
    """Adapter for a :class:`~repro.shard.coordinator.ShardCoordinator`."""

    def collect():
        stats = coordinator.stats()
        families = []
        counter_keys = (
            "queries",
            "subqueries",
            "shards_contacted",
            "shards_pruned",
            "retries",
            "degraded_queries",
            "failed_subqueries",
            "breaker_trips",
            "breaker_fast_fails",
        )
        for key in counter_keys:
            name = f"repro_shard_{key}_total"
            families.append(
                MetricFamily(
                    name, "counter", f"Coordinator {key}", [Sample(name, {}, stats.get(key, 0))]
                )
            )
        for key, value in sorted(stats.get("cost", {}).items()):
            if not isinstance(value, (int, float)):
                continue  # e.g. the "algorithm" label of a QueryCost dict
            name = f"repro_shard_cost_{key}_total"
            families.append(
                MetricFamily(
                    name, "counter", f"Merged query cost {key}", [Sample(name, {}, value)]
                )
            )
        breaker_states = getattr(coordinator, "breaker_states", None)
        if breaker_states is not None:
            family = MetricFamily(
                "repro_shard_breaker_state",
                "gauge",
                "Replica breaker state (0=closed, 1=half-open, 2=open)",
            )
            for (shard_id, address), state in sorted(breaker_states().items()):
                family.samples.append(
                    Sample(
                        "repro_shard_breaker_state",
                        {"shard": str(shard_id), "replica": address},
                        _BREAKER_STATE_VALUES.get(state, -1),
                    )
                )
            families.append(family)
        return families

    return collect


# ----------------------------------------------------------------------
# the process-default registry (faults.py-style gate)
# ----------------------------------------------------------------------
_active: MetricsRegistry | None = None


def get() -> MetricsRegistry | None:
    """The installed process-default registry, or ``None``."""
    return _active


def enable() -> MetricsRegistry:
    """Install (or return the existing) process-default registry."""
    global _active
    if _active is None:
        _active = MetricsRegistry()
    return _active


def disable() -> None:
    global _active
    _active = None
