"""Per-query trace contexts: span trees across process and shard hops.

A *span* here is deliberately a plain ``dict`` — it must cross
multiprocessing queues (server → worker → server) and TCP frames
(coordinator → shard node → coordinator) with nothing but pickle, and
it must be buildable in a forked worker process that has no
:class:`Tracer` installed at all.  The shape::

    {"trace_id": str, "span_id": str, "parent_id": str | None,
     "name": str, "start_s": float, "end_s": float | None,
     "attrs": {...}}

Timestamps are ``time.monotonic()`` — on Linux that is CLOCK_MONOTONIC,
which is shared across processes on one host, so worker- and node-side
spans order correctly against the parent span that spawned them.

The enable/disable protocol copies the fault-injection template from
:mod:`repro.testing.faults`: the module-global tracer is ``None`` in
production and every instrumentation site guards with a single
``is None`` test, so disabled tracing costs one global read per query.
Spans are exported into a bounded in-memory ring (newest win) and,
optionally, appended as JSON lines to a sink file.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from collections import deque

#: Default capacity of the in-memory span ring.
DEFAULT_RING = 4096

_ids = itertools.count(1)
_ids_lock = threading.Lock()


def new_id() -> str:
    """A process-unique hex id (pid-prefixed so forked workers never collide)."""
    with _ids_lock:
        serial = next(_ids)
    return f"{os.getpid():x}-{serial:x}"


def start_span(
    name: str,
    *,
    trace_id: str | None = None,
    parent_id: str | None = None,
    **attrs,
) -> dict:
    """Create a started span dict (usable with no tracer installed).

    With no ``trace_id`` the span starts a new trace and becomes its
    root.  ``attrs`` seed the span's attribute dict.
    """
    return {
        "trace_id": trace_id if trace_id is not None else new_id(),
        "span_id": new_id(),
        "parent_id": parent_id,
        "name": name,
        "start_s": time.monotonic(),
        "end_s": None,
        "attrs": dict(attrs),
    }


def child_span(parent: dict, name: str, **attrs) -> dict:
    """A span parented under ``parent`` (same trace)."""
    return start_span(
        name, trace_id=parent["trace_id"], parent_id=parent["span_id"], **attrs
    )


def finish_span(span: dict, **attrs) -> dict:
    """Stamp ``end_s`` and merge ``attrs``; returns the span for chaining."""
    span["end_s"] = time.monotonic()
    if attrs:
        span["attrs"].update(attrs)
    return span


def span_duration_s(span: dict) -> float:
    """Elapsed seconds of a finished span (0.0 while still open)."""
    end = span.get("end_s")
    return 0.0 if end is None else end - span["start_s"]


class Tracer:
    """Bounded in-memory span ring with an optional JSONL sink.

    Spans are *exported* (not merely created) into the tracer — a span
    built remotely (in a worker or on a shard node) is exported by
    whichever process owns the tracer once it arrives back over the
    wire.  Export order is arbitrary; :meth:`tree` reassembles by
    parent links.
    """

    def __init__(self, ring: int = DEFAULT_RING, jsonl_path=None):
        self._ring: deque = deque(maxlen=int(ring))
        self._lock = threading.Lock()
        self._sink = None
        self._sink_path = None
        if jsonl_path is not None:
            self._sink_path = os.fspath(jsonl_path)
            self._sink = open(self._sink_path, "a", encoding="utf-8")

    # ------------------------------------------------------------------
    # creating and exporting
    # ------------------------------------------------------------------
    def start(self, name: str, parent: dict | None = None, **attrs) -> dict:
        """Create a started span, optionally under ``parent``."""
        if parent is None:
            return start_span(name, **attrs)
        return child_span(parent, name, **attrs)

    def finish(self, span: dict, **attrs) -> dict:
        """Finish ``span`` and export it."""
        finish_span(span, **attrs)
        self.export(span)
        return span

    def export(self, *spans) -> None:
        """Record finished spans (local or arrived from another process)."""
        with self._lock:
            for span in spans:
                self._ring.append(span)
                if self._sink is not None:
                    self._sink.write(json.dumps(span, sort_keys=True) + "\n")
            if self._sink is not None and spans:
                self._sink.flush()

    # ------------------------------------------------------------------
    # reading back
    # ------------------------------------------------------------------
    def spans(self, trace_id: str | None = None) -> list[dict]:
        """All buffered spans, optionally filtered to one trace."""
        with self._lock:
            buffered = list(self._ring)
        if trace_id is None:
            return buffered
        return [span for span in buffered if span["trace_id"] == trace_id]

    def trace_ids(self) -> list[str]:
        """Distinct trace ids currently buffered, oldest first."""
        seen: dict[str, None] = {}
        for span in self.spans():
            seen.setdefault(span["trace_id"], None)
        return list(seen)

    def tree(self, trace_id: str) -> dict | None:
        """Reassemble one trace's span tree; ``None`` if unknown.

        Returns the root span dict with a ``"children"`` list added
        recursively (children ordered by start time).  A trace with no
        root or more than one root has no well-formed tree — callers
        wanting to *validate* trees should use :func:`orphan_spans`.
        """
        spans = self.spans(trace_id)
        if not spans:
            return None
        by_id = {span["span_id"]: dict(span, children=[]) for span in spans}
        roots = []
        for node in by_id.values():
            parent = by_id.get(node["parent_id"])
            if parent is None:
                roots.append(node)
            else:
                parent["children"].append(node)
        for node in by_id.values():
            node["children"].sort(key=lambda child: child["start_s"])
        true_roots = [node for node in roots if node["parent_id"] is None]
        if len(true_roots) != 1:
            return None
        return true_roots[0]

    def close(self) -> None:
        with self._lock:
            if self._sink is not None:
                self._sink.close()
                self._sink = None


def orphan_spans(spans) -> list[dict]:
    """Spans whose ``parent_id`` names no span in ``spans`` (roots excluded).

    An empty return is the "complete span tree" property the chaos suite
    asserts: every non-root span's parent made it into the trace.
    """
    known = {span["span_id"] for span in spans}
    return [
        span
        for span in spans
        if span["parent_id"] is not None and span["parent_id"] not in known
    ]


# ----------------------------------------------------------------------
# the active tracer (process-global; the faults.py `is None` template)
# ----------------------------------------------------------------------
_active: Tracer | None = None


def get() -> Tracer | None:
    """The installed tracer, or ``None`` (production default)."""
    return _active


def enable(ring: int = DEFAULT_RING, jsonl_path=None) -> Tracer:
    """Install and return a fresh process-global tracer."""
    global _active
    _active = Tracer(ring=ring, jsonl_path=jsonl_path)
    return _active


def disable() -> None:
    """Uninstall the tracer (back to the zero-cost path)."""
    global _active
    if _active is not None:
        _active.close()
    _active = None


class active:
    """Context manager: ``with trace.active() as tracer: ...``."""

    def __init__(self, ring: int = DEFAULT_RING, jsonl_path=None):
        self._ring = ring
        self._jsonl_path = jsonl_path

    def __enter__(self) -> Tracer:
        return enable(ring=self._ring, jsonl_path=self._jsonl_path)

    def __exit__(self, *exc) -> None:
        disable()
