"""Threshold-triggered slow-query log.

When installed, the executor and the shard coordinator time every query
and, for those at or above the threshold, record a structured entry:
the spec summary, the planner's rationale, the counter deltas the query
charged, and — for federated queries — per-shard timings, attempts and
outcomes.  Entries land in a bounded in-memory ring and, optionally, a
JSONL file.

Disabled (the default) the hot-path cost is the usual single ``is
None`` check, following :mod:`repro.testing.faults`.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque

#: Default slow threshold: 50 ms, far above any healthy memory query.
DEFAULT_THRESHOLD_S = 0.050

#: Default ring capacity.
DEFAULT_CAPACITY = 256


def spec_summary(spec) -> dict:
    """A compact, JSON-able description of a query spec."""
    summary = {
        "group_size": len(spec.group) if spec.group is not None else spec.cardinality,
        "k": spec.k,
        "aggregate": getattr(spec.aggregate, "value", str(spec.aggregate)),
        "algorithm": getattr(spec.algorithm, "value", str(spec.algorithm)),
        "residency": getattr(spec.residency, "value", str(spec.residency)),
        "index": getattr(spec.index, "value", str(spec.index)),
    }
    if spec.label is not None:
        summary["label"] = spec.label
    return summary


class SlowQueryLog:
    """Bounded ring of slow-query records with an optional JSONL sink."""

    def __init__(
        self,
        threshold_s: float = DEFAULT_THRESHOLD_S,
        capacity: int = DEFAULT_CAPACITY,
        jsonl_path=None,
    ):
        self.threshold_s = float(threshold_s)
        self._ring: deque = deque(maxlen=int(capacity))
        self._lock = threading.Lock()
        self._sink = None
        if jsonl_path is not None:
            self._sink = open(os.fspath(jsonl_path), "a", encoding="utf-8")
        self.observed = 0
        self.recorded = 0

    def observe(
        self,
        latency_s: float,
        *,
        kind: str,
        spec=None,
        plan=None,
        cost=None,
        trace_id: str | None = None,
        shards: list | None = None,
        **extra,
    ) -> dict | None:
        """Record the query if it crossed the threshold.

        ``kind`` names the execution surface (``"engine"``,
        ``"coordinator"``); ``cost`` is the query's counter delta
        (a :class:`~repro.core.types.QueryCost` or a plain dict);
        ``shards`` carries per-shard ``{"shard", "elapsed_s",
        "attempts", "outcome"}`` records for federated queries.
        """
        self.observed += 1
        if latency_s < self.threshold_s:
            return None
        record = {
            "ts": round(time.time(), 6),
            "kind": kind,
            "latency_s": round(float(latency_s), 6),
        }
        if spec is not None:
            record["spec"] = spec_summary(spec)
        if plan is not None:
            record["plan"] = {
                "algorithm": getattr(plan.algorithm, "value", str(plan.algorithm)),
                "rationale": getattr(plan, "rationale", None),
            }
        if cost is not None:
            record["cost"] = cost if isinstance(cost, dict) else cost.as_dict()
        if trace_id is not None:
            record["trace_id"] = trace_id
        if shards is not None:
            record["shards"] = shards
        record.update(extra)
        with self._lock:
            self._ring.append(record)
            self.recorded += 1
            if self._sink is not None:
                self._sink.write(json.dumps(record, sort_keys=True, default=str) + "\n")
                self._sink.flush()
        return record

    def entries(self) -> list[dict]:
        with self._lock:
            return list(self._ring)

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()

    def close(self) -> None:
        with self._lock:
            if self._sink is not None:
                self._sink.close()
                self._sink = None


# ----------------------------------------------------------------------
# the active log (process-global; faults.py `is None` template)
# ----------------------------------------------------------------------
_active: SlowQueryLog | None = None


def get() -> SlowQueryLog | None:
    """The installed slow-query log, or ``None`` (production default)."""
    return _active


def enable(
    threshold_s: float = DEFAULT_THRESHOLD_S,
    capacity: int = DEFAULT_CAPACITY,
    jsonl_path=None,
) -> SlowQueryLog:
    global _active
    _active = SlowQueryLog(threshold_s, capacity, jsonl_path)
    return _active


def disable() -> None:
    global _active
    if _active is not None:
        _active.close()
    _active = None
