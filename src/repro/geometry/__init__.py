"""Geometric primitives used by every other subsystem.

The module exposes the small vocabulary that the paper's algorithms are
written in:

* :class:`~repro.geometry.mbr.MBR` — axis-aligned minimum bounding
  rectangles with ``mindist`` / ``maxdist`` metrics,
* distance helpers in :mod:`repro.geometry.distance` — point-to-point,
  point-to-group aggregate distances (validating wrappers),
* the vectorised kernel layer in :mod:`repro.geometry.kernels` — the
  array-at-a-time engine the wrappers and every hot path delegate to,
* the Hilbert space-filling curve in :mod:`repro.geometry.hilbert`, used
  to sort query points for locality (Sections 3.1, 4.2 and 4.3 of the
  paper).
"""

from repro.geometry import kernels
from repro.geometry.distance import (
    aggregate_distance,
    euclidean,
    group_distance,
    group_mindist,
    minkowski,
    squared_euclidean,
)
from repro.geometry.hilbert import hilbert_index, hilbert_sort
from repro.geometry.mbr import MBR
from repro.geometry.point import as_point, as_points, point_equal

__all__ = [
    "MBR",
    "aggregate_distance",
    "as_point",
    "as_points",
    "euclidean",
    "group_distance",
    "group_mindist",
    "hilbert_index",
    "hilbert_sort",
    "kernels",
    "minkowski",
    "point_equal",
    "squared_euclidean",
]
