"""Distance functions.

The paper defines the group distance of a data point ``p`` to a query
group ``Q`` as the *sum* of Euclidean distances (Section 1).  The
functions here implement that definition plus the ``max``/``min``
aggregate generalisations flagged as future work in Section 6 (and
pursued by the authors' follow-up TODS paper on aggregate nearest
neighbors).  Every GNN algorithm in :mod:`repro.core` is written against
these helpers so the aggregate can be swapped without touching the
traversal logic.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.geometry.mbr import MBR
from repro.geometry.point import as_point, as_points

#: Aggregate identifiers accepted throughout the library.
SUM = "sum"
MAX = "max"
MIN = "min"
AGGREGATES = (SUM, MAX, MIN)


def euclidean(a: Sequence[float], b: Sequence[float]) -> float:
    """Euclidean distance between two points."""
    pa = as_point(a)
    pb = as_point(b)
    delta = pa - pb
    return float(np.sqrt(np.dot(delta, delta)))


def squared_euclidean(a: Sequence[float], b: Sequence[float]) -> float:
    """Squared Euclidean distance (avoids the square root when only ordering matters)."""
    pa = as_point(a)
    pb = as_point(b)
    delta = pa - pb
    return float(np.dot(delta, delta))


def distances_to_group(point: Sequence[float], group: np.ndarray) -> np.ndarray:
    """Vector of Euclidean distances from ``point`` to every point of ``group``."""
    p = as_point(point)
    pts = as_points(group, dims=p.size)
    delta = pts - p
    return np.sqrt(np.sum(delta * delta, axis=1))


def group_distance(
    point: Sequence[float],
    group: np.ndarray,
    weights: np.ndarray | None = None,
    aggregate: str = SUM,
) -> float:
    """Aggregate distance ``dist(p, Q)`` between a point and a query group.

    With the default ``sum`` aggregate and no weights this is exactly the
    paper's ``dist(p, Q) = sum_i |p q_i|``.

    Parameters
    ----------
    point:
        The data point ``p``.
    group:
        The query group ``Q`` as a ``(n, dims)`` array.
    weights:
        Optional positive per-query-point weights (extension feature).
    aggregate:
        One of ``"sum"`` (paper), ``"max"`` or ``"min"``.
    """
    dists = distances_to_group(point, group)
    if weights is not None:
        weights = _check_weights(weights, dists.size)
        dists = dists * weights
    return _aggregate(dists, aggregate)


def group_distances_bulk(
    points: np.ndarray,
    group: np.ndarray,
    weights: np.ndarray | None = None,
    aggregate: str = SUM,
) -> np.ndarray:
    """Aggregate distance from each of ``points`` to the group ``Q``.

    Vectorised over the data points; used by the brute-force baseline and
    by leaf-level processing when many candidate points are evaluated at
    once.
    """
    pts = as_points(points)
    grp = as_points(group, dims=pts.shape[1])
    # pairwise (len(points), len(group)) distance matrix
    delta = pts[:, None, :] - grp[None, :, :]
    matrix = np.sqrt(np.sum(delta * delta, axis=2))
    if weights is not None:
        weights = _check_weights(weights, grp.shape[0])
        matrix = matrix * weights[None, :]
    if aggregate == SUM:
        return matrix.sum(axis=1)
    if aggregate == MAX:
        return matrix.max(axis=1)
    if aggregate == MIN:
        return matrix.min(axis=1)
    raise ValueError(f"unknown aggregate {aggregate!r}; expected one of {AGGREGATES}")


def group_mindist(
    mbr: MBR,
    group: np.ndarray,
    weights: np.ndarray | None = None,
    aggregate: str = SUM,
) -> float:
    """Lower bound of the aggregate distance between any point in ``mbr`` and ``Q``.

    For the ``sum`` aggregate this is Heuristic 3 of the paper:
    ``sum_i mindist(N, q_i)``.  For ``max``/``min`` the corresponding
    aggregate of the per-query mindists is still a valid lower bound,
    because each ``mindist(N, q_i)`` lower-bounds ``|p q_i|`` for every
    ``p`` in ``N``.
    """
    pts = as_points(group, dims=mbr.dims)
    dists = mbr.mindist_points(pts)
    if weights is not None:
        weights = _check_weights(weights, dists.size)
        dists = dists * weights
    return _aggregate(dists, aggregate)


def aggregate_distance(values: Sequence[float], aggregate: str = SUM) -> float:
    """Combine already-computed per-query distances with the chosen aggregate."""
    return _aggregate(np.asarray(values, dtype=np.float64), aggregate)


def _aggregate(values: np.ndarray, aggregate: str) -> float:
    if aggregate == SUM:
        return float(values.sum())
    if aggregate == MAX:
        return float(values.max())
    if aggregate == MIN:
        return float(values.min())
    raise ValueError(f"unknown aggregate {aggregate!r}; expected one of {AGGREGATES}")


def _check_weights(weights: np.ndarray, expected: int) -> np.ndarray:
    w = np.asarray(weights, dtype=np.float64)
    if w.ndim != 1 or w.size != expected:
        raise ValueError(f"weights must be a vector of length {expected}, got shape {w.shape}")
    if np.any(w < 0) or not np.all(np.isfinite(w)):
        raise ValueError("weights must be finite and non-negative")
    return w
