"""Distance functions.

The paper defines the group distance of a data point ``p`` to a query
group ``Q`` as the *sum* of Euclidean distances (Section 1).  The
functions here implement that definition plus the ``max``/``min``
aggregate generalisations flagged as future work in Section 6 (and
pursued by the authors' follow-up TODS paper on aggregate nearest
neighbors).  Every GNN algorithm in :mod:`repro.core` is written against
these helpers so the aggregate can be swapped without touching the
traversal logic.

Since the kernel layer landed, these helpers are thin *validating*
wrappers over the one-candidate case of :mod:`repro.geometry.kernels`:
they normalise arbitrary user input once, then delegate to the same
vectorised arithmetic the hot paths use, so scalar and batched
evaluation agree bit for bit.  Inputs that are already canonical
``float64`` arrays skip re-validation entirely (the fast path).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.geometry import kernels
from repro.geometry.kernels import AGGREGATES, MAX, MIN, SUM  # noqa: F401  (re-exported API)
from repro.geometry.mbr import MBR
from repro.geometry.point import as_point, as_points

_check_weights = kernels.check_weights  # backwards-compatible alias


def _fast_point(value, dims: int | None = None) -> np.ndarray:
    """Return ``value`` as a canonical point, skipping re-normalisation when possible.

    The fast path accepts only what the library itself produces — a 1-D
    non-empty *finite* ``float64`` array (of the expected dimensionality,
    when given) — and skips the ``asarray`` conversion and shape
    branching; anything else, including non-finite arrays, flows through
    :func:`repro.geometry.point.as_point` and raises the same errors as
    before.
    """
    if (
        type(value) is np.ndarray
        and value.dtype == np.float64
        and value.ndim == 1
        and value.size
        and (dims is None or value.size == dims)
        and np.isfinite(value).all()
    ):
        return value
    return as_point(value, dims=dims)


def _fast_points(values, dims: int | None = None) -> np.ndarray:
    """Collection counterpart of :func:`_fast_point`."""
    if (
        type(values) is np.ndarray
        and values.dtype == np.float64
        and values.ndim == 2
        and values.shape[0]
        and values.shape[1]
        and (dims is None or values.shape[1] == dims)
        and np.isfinite(values).all()
    ):
        return values
    return as_points(values, dims=dims)


def euclidean(a: Sequence[float], b: Sequence[float]) -> float:
    """Euclidean distance between two points.

    Uses ``np.sum`` rather than ``np.dot`` so the scalar value is
    bit-identical to the one-candidate row of the batched kernels.
    """
    pa = _fast_point(a)
    pb = _fast_point(b, dims=pa.size)
    delta = pa - pb
    return float(np.sqrt(np.sum(delta * delta)))


def squared_euclidean(a: Sequence[float], b: Sequence[float]) -> float:
    """Squared Euclidean distance (avoids the square root when only ordering matters)."""
    pa = _fast_point(a)
    pb = _fast_point(b, dims=pa.size)
    delta = pa - pb
    return float(np.sum(delta * delta))


def minkowski(a: Sequence[float], b: Sequence[float], p: float = 2.0) -> float:
    """Minkowski ``L_p`` distance between two points (``p = inf`` is Chebyshev)."""
    pa = _fast_point(a)
    pb = _fast_point(b, dims=pa.size)
    return float(kernels.point_distances(pa.reshape(1, -1), pb, metric=kernels.MINKOWSKI, p=p)[0])


def distances_to_group(point: Sequence[float], group: np.ndarray) -> np.ndarray:
    """Vector of Euclidean distances from ``point`` to every point of ``group``."""
    p = _fast_point(point)
    pts = _fast_points(group, dims=p.size)
    return kernels.point_distances(pts, p)


def group_distance(
    point: Sequence[float],
    group: np.ndarray,
    weights: np.ndarray | None = None,
    aggregate: str = SUM,
) -> float:
    """Aggregate distance ``dist(p, Q)`` between a point and a query group.

    With the default ``sum`` aggregate and no weights this is exactly the
    paper's ``dist(p, Q) = sum_i |p q_i|``.

    Parameters
    ----------
    point:
        The data point ``p``.
    group:
        The query group ``Q`` as a ``(n, dims)`` array.
    weights:
        Optional positive per-query-point weights (extension feature).
    aggregate:
        One of ``"sum"`` (paper), ``"max"`` or ``"min"``.
    """
    dists = distances_to_group(point, group)
    if weights is not None:
        weights = _check_weights(weights, dists.size)
    return float(kernels.reduce_aggregate(dists, aggregate, weights))


def group_distances_bulk(
    points: np.ndarray,
    group: np.ndarray,
    weights: np.ndarray | None = None,
    aggregate: str = SUM,
) -> np.ndarray:
    """Aggregate distance from each of ``points`` to the group ``Q``.

    Vectorised over the data points; the validating entry point of
    :func:`repro.geometry.kernels.aggregate_distances`.
    """
    pts = _fast_points(points)
    grp = _fast_points(group, dims=pts.shape[1])
    if weights is not None:
        weights = _check_weights(weights, grp.shape[0])
    return kernels.aggregate_distances(pts, grp, weights=weights, aggregate=aggregate)


def group_mindist(
    mbr: MBR,
    group: np.ndarray,
    weights: np.ndarray | None = None,
    aggregate: str = SUM,
) -> float:
    """Lower bound of the aggregate distance between any point in ``mbr`` and ``Q``.

    For the ``sum`` aggregate this is Heuristic 3 of the paper:
    ``sum_i mindist(N, q_i)``.  For ``max``/``min`` the corresponding
    aggregate of the per-query mindists is still a valid lower bound,
    because each ``mindist(N, q_i)`` lower-bounds ``|p q_i|`` for every
    ``p`` in ``N``.
    """
    pts = _fast_points(group, dims=mbr.dims)
    dists = kernels.points_mindist_box(pts, mbr.low, mbr.high)
    if weights is not None:
        weights = _check_weights(weights, dists.size)
    return float(kernels.reduce_aggregate(dists, aggregate, weights))


def aggregate_distance(values: Sequence[float], aggregate: str = SUM) -> float:
    """Combine already-computed per-query distances with the chosen aggregate."""
    return float(kernels.reduce_aggregate(np.asarray(values, dtype=np.float64), aggregate))


def _aggregate(values: np.ndarray, aggregate: str) -> float:
    """Backwards-compatible alias for the kernel reduction."""
    return float(kernels.reduce_aggregate(values, aggregate))
