"""Hilbert space-filling curve.

The paper sorts query points by their Hilbert value so that consecutive
incremental NN queries (MQM, Section 3.1) and consecutive query blocks
(F-MQM / F-MBM, Sections 4.2-4.3) exhibit spatial locality.  The curve is
also used for Hilbert-packing bulk loads of the R-tree.

The implementation follows the classic iterative bit-manipulation
formulation (Hamilton's compact Hilbert indices restricted to equal
per-dimension precision), supporting arbitrary dimensionality.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.point import as_points

DEFAULT_ORDER = 16


def hilbert_index_2d(x: int, y: int, order: int = DEFAULT_ORDER) -> int:
    """Map 2-D grid coordinates to their Hilbert curve index.

    ``x`` and ``y`` must lie in ``[0, 2**order)``.  The classic
    rotate-and-flip formulation is used; the result is an integer in
    ``[0, 4**order)``.
    """
    side = 1 << order
    if not (0 <= x < side and 0 <= y < side):
        raise ValueError(f"coordinates ({x}, {y}) outside the {side}x{side} Hilbert grid")
    rx = ry = 0
    d = 0
    s = side >> 1
    while s > 0:
        rx = 1 if (x & s) > 0 else 0
        ry = 1 if (y & s) > 0 else 0
        d += s * s * ((3 * rx) ^ ry)
        # rotate the quadrant
        if ry == 0:
            if rx == 1:
                x = s - 1 - x
                y = s - 1 - y
            x, y = y, x
        s >>= 1
    return d


def hilbert_point_2d(d: int, order: int = DEFAULT_ORDER) -> tuple[int, int]:
    """Inverse of :func:`hilbert_index_2d` — map an index back to grid coordinates."""
    side = 1 << order
    if not 0 <= d < side * side:
        raise ValueError(f"index {d} outside the curve of order {order}")
    x = y = 0
    t = d
    s = 1
    while s < side:
        rx = 1 & (t // 2)
        ry = 1 & (t ^ rx)
        if ry == 0:
            if rx == 1:
                x = s - 1 - x
                y = s - 1 - y
            x, y = y, x
        x += s * rx
        y += s * ry
        t //= 4
        s <<= 1
    return x, y


def _normalise_to_grid(points: np.ndarray, order: int) -> np.ndarray:
    """Scale points into the integer grid ``[0, 2**order)`` per dimension."""
    low = points.min(axis=0)
    high = points.max(axis=0)
    span = np.where(high > low, high - low, 1.0)
    side = (1 << order) - 1
    scaled = np.floor((points - low) / span * side).astype(np.int64)
    return np.clip(scaled, 0, side)


def hilbert_index(point, order: int = DEFAULT_ORDER, grid: np.ndarray | None = None) -> int:
    """Hilbert index of a single (already grid-mapped) point.

    For 2-D input the exact Hilbert curve is used.  For other
    dimensionalities the function falls back to bit interleaving
    (Z-order), which preserves the locality property the algorithms need
    while keeping the code simple; the paper only evaluates 2-D data.
    """
    coords = np.asarray(point)
    if grid is None:
        coords = coords.astype(np.int64)
    if coords.size == 2:
        return hilbert_index_2d(int(coords[0]), int(coords[1]), order)
    return _zorder_index(coords.astype(np.int64), order)


def hilbert_indices(points: np.ndarray, order: int = DEFAULT_ORDER) -> np.ndarray:
    """Hilbert index of every point of a real-coordinate collection.

    The points are first normalised onto the ``2**order`` grid spanned by
    their own bounding box.
    """
    pts = as_points(points)
    grid = _normalise_to_grid(pts, order)
    if pts.shape[1] == 2:
        return np.array(
            [hilbert_index_2d(int(x), int(y), order) for x, y in grid], dtype=np.int64
        )
    return np.array([_zorder_index(row, order) for row in grid], dtype=np.int64)


def hilbert_sort(points: np.ndarray, order: int = DEFAULT_ORDER) -> np.ndarray:
    """Return the permutation that sorts ``points`` by Hilbert value.

    This is the "sort points in Q according to Hilbert value" step of
    MQM, F-MQM and F-MBM.
    """
    indices = hilbert_indices(points, order)
    return np.argsort(indices, kind="stable")


def _zorder_index(coords: np.ndarray, order: int) -> int:
    """Bit-interleaved (Morton) index for dimensionalities other than 2."""
    index = 0
    dims = coords.size
    for bit in range(order):
        for dim in range(dims):
            bit_value = (int(coords[dim]) >> bit) & 1
            index |= bit_value << (bit * dims + dim)
    return index
