"""Point helpers.

Points are represented throughout the library as 1-D ``numpy`` arrays of
``float64`` (a single point) or 2-D arrays of shape ``(count, dims)``
(a point collection).  These helpers normalise arbitrary user input
(lists, tuples, arrays) into that canonical representation and perform
the small amount of validation the rest of the code relies on.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np


class GeometryError(ValueError):
    """Raised when input cannot be interpreted as point data."""


def as_point(value: Sequence[float] | np.ndarray, dims: int | None = None) -> np.ndarray:
    """Return ``value`` as a 1-D float64 array representing a single point.

    Parameters
    ----------
    value:
        Any sequence of coordinates (list, tuple, array).
    dims:
        Optional expected dimensionality; a mismatch raises
        :class:`GeometryError`.
    """
    point = np.asarray(value, dtype=np.float64)
    if point.ndim != 1:
        raise GeometryError(f"expected a single point, got array of shape {point.shape}")
    if point.size == 0:
        raise GeometryError("a point must have at least one coordinate")
    if not np.all(np.isfinite(point)):
        raise GeometryError(f"point coordinates must be finite, got {point!r}")
    if dims is not None and point.size != dims:
        raise GeometryError(f"expected a {dims}-dimensional point, got {point.size} coordinates")
    return point


def as_points(values: Iterable[Sequence[float]] | np.ndarray, dims: int | None = None) -> np.ndarray:
    """Return ``values`` as a 2-D ``(count, dims)`` float64 array.

    A single point is promoted to a one-row collection.  Empty input is
    rejected because none of the algorithms in the paper are defined for
    an empty query group or dataset.
    """
    points = np.asarray(values, dtype=np.float64)
    if points.ndim == 1:
        points = points.reshape(1, -1)
    if points.ndim != 2:
        raise GeometryError(f"expected a collection of points, got array of shape {points.shape}")
    if points.shape[0] == 0 or points.shape[1] == 0:
        raise GeometryError("point collections must be non-empty")
    if not np.all(np.isfinite(points)):
        raise GeometryError("point coordinates must be finite")
    if dims is not None and points.shape[1] != dims:
        raise GeometryError(
            f"expected {dims}-dimensional points, got {points.shape[1]} coordinates"
        )
    return points


def point_equal(a: np.ndarray, b: np.ndarray, tolerance: float = 1e-12) -> bool:
    """Return True when two points coincide up to ``tolerance``."""
    a = as_point(a)
    b = as_point(b)
    if a.size != b.size:
        return False
    return bool(np.all(np.abs(a - b) <= tolerance))
