"""Axis-aligned minimum bounding rectangles (MBRs).

The R-tree stores an MBR per entry; the GNN pruning heuristics of the
paper are all phrased in terms of ``mindist`` between MBRs, points and
other MBRs (Table 3.1 of the paper).  The class below is dimension
agnostic — the paper uses 2-D data but explicitly notes the techniques
apply to higher dimensionalities.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.geometry.point import GeometryError, as_point, as_points


class MBR:
    """An axis-aligned hyper-rectangle described by its low/high corners.

    Instances are treated as immutable: all combining operations return
    new MBRs.  ``low`` and ``high`` are float64 arrays of equal length
    with ``low <= high`` in every dimension.
    """

    __slots__ = ("low", "high")

    def __init__(self, low: Sequence[float], high: Sequence[float]):
        low_arr = as_point(low)
        high_arr = as_point(high)
        if low_arr.size != high_arr.size:
            raise GeometryError("low and high corners must have the same dimensionality")
        if np.any(low_arr > high_arr):
            raise GeometryError(f"invalid MBR: low {low_arr} exceeds high {high_arr}")
        self.low = low_arr
        self.high = high_arr

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_point(cls, point: Sequence[float]) -> "MBR":
        """Return the degenerate MBR covering a single point."""
        p = as_point(point)
        return cls(p, p)

    @classmethod
    def from_points(cls, points: Iterable[Sequence[float]] | np.ndarray) -> "MBR":
        """Return the tightest MBR covering ``points``."""
        pts = as_points(points)
        return cls(pts.min(axis=0), pts.max(axis=0))

    @classmethod
    def union_of(cls, mbrs: Iterable["MBR"]) -> "MBR":
        """Return the tightest MBR covering every MBR in ``mbrs``."""
        mbrs = list(mbrs)
        if not mbrs:
            raise GeometryError("cannot take the union of zero MBRs")
        low = np.min(np.vstack([m.low for m in mbrs]), axis=0)
        high = np.max(np.vstack([m.high for m in mbrs]), axis=0)
        return cls(low, high)

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def dims(self) -> int:
        """Dimensionality of the rectangle."""
        return self.low.size

    @property
    def center(self) -> np.ndarray:
        """Geometric centre of the rectangle."""
        return (self.low + self.high) / 2.0

    @property
    def extents(self) -> np.ndarray:
        """Side length along each dimension."""
        return self.high - self.low

    def area(self) -> float:
        """Hyper-volume of the rectangle (area in 2-D)."""
        return float(np.prod(self.extents))

    def margin(self) -> float:
        """Sum of side lengths (the R*-tree split criterion calls this margin)."""
        return float(np.sum(self.extents))

    def is_degenerate(self) -> bool:
        """True when the rectangle has zero extent in every dimension."""
        return bool(np.all(self.extents == 0.0))

    # ------------------------------------------------------------------
    # predicates
    # ------------------------------------------------------------------
    def contains_point(self, point: Sequence[float]) -> bool:
        """True when ``point`` lies inside or on the boundary."""
        p = as_point(point, dims=self.dims)
        return bool(np.all(p >= self.low) and np.all(p <= self.high))

    def contains(self, other: "MBR") -> bool:
        """True when ``other`` is fully covered by this rectangle."""
        return bool(np.all(other.low >= self.low) and np.all(other.high <= self.high))

    def intersects(self, other: "MBR") -> bool:
        """True when the two rectangles share at least a boundary point."""
        return bool(np.all(self.low <= other.high) and np.all(other.low <= self.high))

    def intersection(self, other: "MBR") -> "MBR | None":
        """Return the overlapping region, or None when disjoint."""
        low = np.maximum(self.low, other.low)
        high = np.minimum(self.high, other.high)
        if np.any(low > high):
            return None
        return MBR(low, high)

    def overlap_area(self, other: "MBR") -> float:
        """Hyper-volume of the overlap region (0.0 when disjoint)."""
        region = self.intersection(other)
        return 0.0 if region is None else region.area()

    # ------------------------------------------------------------------
    # combining
    # ------------------------------------------------------------------
    def union(self, other: "MBR") -> "MBR":
        """Return the tightest MBR covering both rectangles."""
        return MBR(np.minimum(self.low, other.low), np.maximum(self.high, other.high))

    def union_point(self, point: Sequence[float]) -> "MBR":
        """Return the tightest MBR covering this rectangle and ``point``."""
        p = as_point(point, dims=self.dims)
        return MBR(np.minimum(self.low, p), np.maximum(self.high, p))

    def enlargement(self, other: "MBR") -> float:
        """Area increase needed to cover ``other`` (the R-tree insertion criterion)."""
        return self.union(other).area() - self.area()

    # ------------------------------------------------------------------
    # distances
    # ------------------------------------------------------------------
    def mindist_point(self, point: Sequence[float]) -> float:
        """Minimum Euclidean distance from ``point`` to any point of the MBR.

        This is the classic ``mindist(N, q)`` lower bound of [RKV95]; it is
        zero when the point lies inside the rectangle.
        """
        p = as_point(point, dims=self.dims)
        delta = np.maximum(0.0, np.maximum(self.low - p, p - self.high))
        # np.sum (not np.dot) so the scalar value is bit-identical to the
        # batched kernels in repro.geometry.kernels.
        return float(np.sqrt(np.sum(delta * delta)))

    def mindist_points(self, points: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`mindist_point` for a ``(count, dims)`` array."""
        pts = as_points(points, dims=self.dims)
        delta = np.maximum(0.0, np.maximum(self.low - pts, pts - self.high))
        return np.sqrt(np.sum(delta * delta, axis=1))

    def maxdist_point(self, point: Sequence[float]) -> float:
        """Maximum Euclidean distance from ``point`` to any point of the MBR."""
        p = as_point(point, dims=self.dims)
        delta = np.maximum(np.abs(self.low - p), np.abs(self.high - p))
        return float(np.sqrt(np.sum(delta * delta)))

    def mindist_mbr(self, other: "MBR") -> float:
        """Minimum distance between any two points of the two rectangles.

        ``mindist(N1, N2)`` in the paper's terminology; zero when the
        rectangles intersect.
        """
        delta = np.maximum(0.0, np.maximum(self.low - other.high, other.low - self.high))
        return float(np.sqrt(np.sum(delta * delta)))

    def maxdist_mbr(self, other: "MBR") -> float:
        """Maximum distance between any two points of the two rectangles."""
        delta = np.maximum(np.abs(self.high - other.low), np.abs(other.high - self.low))
        return float(np.sqrt(np.sum(delta * delta)))

    # ------------------------------------------------------------------
    # dunder helpers
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MBR):
            return NotImplemented
        return bool(np.array_equal(self.low, other.low) and np.array_equal(self.high, other.high))

    def __hash__(self) -> int:
        return hash((self.low.tobytes(), self.high.tobytes()))

    def __repr__(self) -> str:
        low = ", ".join(f"{v:g}" for v in self.low)
        high = ", ".join(f"{v:g}" for v in self.high)
        return f"MBR(low=[{low}], high=[{high}])"
