"""Vectorised aggregate-distance kernels.

Every GNN algorithm in the paper bottoms out in per-point aggregate
distance evaluation; this module is the array-at-a-time engine behind
those evaluations.  Each kernel scores a whole *array* of candidates
(data points, R-tree node rectangles, or stacked query groups) against a
query group in a single NumPy call, instead of one Python-level call per
candidate.

Layering contract
-----------------
Kernels sit *below* the scalar helpers of :mod:`repro.geometry.distance`
and assume well-formed ``float64`` arrays: callers on the hot paths
(R-tree traversal, the GNN algorithms, the batch executor) pass arrays
that were validated once at the API boundary.  The scalar helpers remain
the validating public entry points and are now thin wrappers over the
one-candidate case of these kernels.

Bit-identity
------------
Each kernel mirrors the arithmetic of the scalar helper it accelerates
axis for axis (same subtraction direction up to sign, same ``x * x``
squaring, same reduction order), so replacing a Python loop of scalar
calls with one kernel call produces bit-identical floats.  The
conformance suite in ``tests/test_kernels.py`` pins this down.

Supported metrics are Euclidean (the paper's), squared Euclidean (for
order-only comparisons) and Minkowski ``L_p``; supported aggregates are
``sum`` (the paper's), ``max`` and ``min``, each optionally weighted.
"""

from __future__ import annotations

import numpy as np

#: Aggregate identifiers accepted throughout the library.
SUM = "sum"
MAX = "max"
MIN = "min"
AGGREGATES = (SUM, MAX, MIN)

#: Metric identifiers accepted by the pairwise kernels.
EUCLIDEAN = "euclidean"
SQUARED = "squared"
MINKOWSKI = "minkowski"
METRICS = (EUCLIDEAN, SQUARED, MINKOWSKI)


def check_weights(weights: np.ndarray, expected: int) -> np.ndarray:
    """Validate a per-query-point weight vector and return it as float64."""
    w = np.asarray(weights, dtype=np.float64)
    if w.ndim != 1 or w.size != expected:
        raise ValueError(f"weights must be a vector of length {expected}, got shape {w.shape}")
    if np.any(w < 0) or not np.all(np.isfinite(w)):
        raise ValueError("weights must be finite and non-negative")
    return w


def reduce_aggregate(
    values: np.ndarray,
    aggregate: str = SUM,
    weights: np.ndarray | None = None,
    axis: int = -1,
) -> np.ndarray:
    """Apply optional weights, then the aggregate reduction along ``axis``.

    ``values`` holds per-query-point distances with the query axis last
    (shape ``(..., n)``); the result drops that axis.
    """
    if weights is not None:
        values = values * weights
    if aggregate == SUM:
        return values.sum(axis=axis)
    if aggregate == MAX:
        return values.max(axis=axis)
    if aggregate == MIN:
        return values.min(axis=axis)
    raise ValueError(f"unknown aggregate {aggregate!r}; expected one of {AGGREGATES}")


# ----------------------------------------------------------------------
# point-array metric kernels
# ----------------------------------------------------------------------
def point_distances(points: np.ndarray, q: np.ndarray, metric: str = EUCLIDEAN, p: float = 2.0) -> np.ndarray:
    """Distances from each row of ``points`` (``(m, d)``) to the single point ``q``."""
    delta = points - q
    if metric == EUCLIDEAN:
        return np.sqrt(np.sum(delta * delta, axis=1))
    if metric == SQUARED:
        return np.sum(delta * delta, axis=1)
    if metric == MINKOWSKI:
        return _minkowski_reduce(delta, p, axis=1)
    raise ValueError(f"unknown metric {metric!r}; expected one of {METRICS}")


def pairwise_distances(
    points: np.ndarray, group: np.ndarray, metric: str = EUCLIDEAN, p: float = 2.0
) -> np.ndarray:
    """The ``(m, n)`` matrix of distances between ``points`` and ``group`` rows."""
    delta = points[:, None, :] - group[None, :, :]
    if metric == EUCLIDEAN:
        return np.sqrt(np.sum(delta * delta, axis=2))
    if metric == SQUARED:
        return np.sum(delta * delta, axis=2)
    if metric == MINKOWSKI:
        return _minkowski_reduce(delta, p, axis=2)
    raise ValueError(f"unknown metric {metric!r}; expected one of {METRICS}")


def _minkowski_reduce(delta: np.ndarray, p: float, axis: int) -> np.ndarray:
    if not p > 0:
        raise ValueError(f"Minkowski order p must be positive, got {p}")
    if np.isinf(p):
        return np.abs(delta).max(axis=axis)
    return np.sum(np.abs(delta) ** p, axis=axis) ** (1.0 / p)


def aggregate_distances(
    points: np.ndarray,
    group: np.ndarray,
    weights: np.ndarray | None = None,
    aggregate: str = SUM,
    metric: str = EUCLIDEAN,
    p: float = 2.0,
) -> np.ndarray:
    """Aggregate distance ``dist(p_i, Q)`` for every row of ``points`` at once.

    The core kernel of the library: one call scores an entire R-tree leaf
    (or any candidate array) against the query group.
    """
    return reduce_aggregate(pairwise_distances(points, group, metric, p), aggregate, weights)


def point_aggregate_distance(
    point: np.ndarray,
    group: np.ndarray,
    weights: np.ndarray | None = None,
    aggregate: str = SUM,
) -> float:
    """The one-candidate case of :func:`aggregate_distances` as a scalar.

    Mirrors the historical scalar helper exactly: per-query distances via
    a single ``(n, d)`` difference, then the weighted reduction.
    """
    dists = point_distances(group, point)
    return float(reduce_aggregate(dists, aggregate, weights))


def batched_aggregate_distances(
    points: np.ndarray, groups: np.ndarray, aggregate: str = SUM
) -> np.ndarray:
    """Aggregate distances of ``(N, d)`` points against ``(g, n, d)`` stacked groups.

    Returns a ``(g, N)`` array; used by the batch executor to answer many
    brute-force specs through one shared distance tensor.  The arithmetic
    matches :func:`aggregate_distances` axis for axis so batched answers
    are bitwise identical to per-query answers.
    """
    delta = points[None, :, None, :] - groups[:, None, :, :]
    matrix = np.sqrt(np.sum(delta * delta, axis=3))
    return reduce_aggregate(matrix, aggregate)


# ----------------------------------------------------------------------
# MBR (box) kernels — batched lower bounds for arrays of node rectangles
# ----------------------------------------------------------------------
def boxes_mindist_point(lows: np.ndarray, highs: np.ndarray, q: np.ndarray) -> np.ndarray:
    """``mindist(N_j, q)`` for ``m`` boxes (``(m, d)`` corners) and one point."""
    delta = np.maximum(0.0, np.maximum(lows - q, q - highs))
    return np.sqrt(np.sum(delta * delta, axis=1))


def points_mindist_box(points: np.ndarray, low: np.ndarray, high: np.ndarray) -> np.ndarray:
    """``mindist(p_i, M)`` for ``m`` points against one box ``[low, high]``."""
    delta = np.maximum(0.0, np.maximum(low - points, points - high))
    return np.sqrt(np.sum(delta * delta, axis=1))


def boxes_mindist_box(
    lows: np.ndarray, highs: np.ndarray, low: np.ndarray, high: np.ndarray
) -> np.ndarray:
    """``mindist(N_j, M)`` for ``m`` boxes against one box ``[low, high]``."""
    delta = np.maximum(0.0, np.maximum(lows - high, low - highs))
    return np.sqrt(np.sum(delta * delta, axis=1))


def boxes_mindist_points(lows: np.ndarray, highs: np.ndarray, points: np.ndarray) -> np.ndarray:
    """``mindist(N_j, q_i)`` matrix for ``m`` boxes against ``n`` points.

    Returns an ``(n, m)`` array whose row ``i`` equals
    :func:`boxes_mindist_point` for ``points[i]`` — the same subtraction
    and max operations applied per element, so the matrix rows are
    bit-identical to the per-point kernel.  The multi-stream MQM
    frontier scores an internal node against every query point in this
    single call.
    """
    delta = np.maximum(
        0.0,
        np.maximum(lows[None, :, :] - points[:, None, :], points[:, None, :] - highs[None, :, :]),
    )
    return np.sqrt(np.sum(delta * delta, axis=2))


def boxes_mindist_boxes(
    lows: np.ndarray, highs: np.ndarray, query_lows: np.ndarray, query_highs: np.ndarray
) -> np.ndarray:
    """``mindist(N_j, M_b)`` for ``m`` boxes against ``B`` query rectangles.

    Returns a ``(B, m)`` array whose row ``b`` equals
    :func:`boxes_mindist_box` for ``[query_lows[b], query_highs[b]]``
    (same elementwise arithmetic, hence bit-identical rows).  The shared
    batch executor scores one child slice against every query MBR of a
    bucket in this single call.
    """
    delta = np.maximum(
        0.0,
        np.maximum(
            lows[None, :, :] - query_highs[:, None, :],
            query_lows[:, None, :] - highs[None, :, :],
        ),
    )
    return np.sqrt(np.sum(delta * delta, axis=2))


def boxes_groups_mindist(lows: np.ndarray, highs: np.ndarray, groups: np.ndarray) -> np.ndarray:
    """Aggregate lower bound ``amindist(N_j, Q_b)`` for ``B`` stacked groups.

    ``groups`` is a ``(B, n, dims)`` stack; the result is ``(B, m)`` and
    row ``b`` equals :func:`boxes_group_mindist` (sum, unweighted) for
    ``groups[b]``: the per-element max/subtract arithmetic is identical
    and each reduction runs over its own contiguous ``n`` axis, so rows
    are bit-identical to the per-query kernel.
    """
    delta = np.maximum(
        0.0,
        np.maximum(
            lows[None, :, None, :] - groups[:, None, :, :],
            groups[:, None, :, :] - highs[None, :, None, :],
        ),
    )
    matrix = np.sqrt(np.sum(delta * delta, axis=3))
    return reduce_aggregate(matrix, SUM)


def groups_aggregate_distances_2d(points: np.ndarray, groups: np.ndarray) -> np.ndarray:
    """2-D fast path of :func:`batched_aggregate_distances` (sum, unweighted).

    Flattens the ``(B, n, 2)`` group stack into per-axis ``(m, B*n)``
    operations (the same arithmetic :class:`Scorer2D` uses — summing a
    length-2 axis is exactly ``x + y``) and reduces each group's
    contiguous ``n`` block, so row ``b`` of the ``(B, m)`` result is
    bit-identical to :func:`aggregate_distances` against ``groups[b]``
    while avoiding the 4-D broadcast temporaries.
    """
    count, batch, n = points.shape[0], groups.shape[0], groups.shape[1]
    gx = np.ascontiguousarray(groups[:, :, 0]).reshape(-1)
    gy = np.ascontiguousarray(groups[:, :, 1]).reshape(-1)
    dx = points[:, None, 0] - gx[None, :]
    dx *= dx
    dy = points[:, None, 1] - gy[None, :]
    dy *= dy
    dx += dy
    np.sqrt(dx, out=dx)
    return np.ascontiguousarray(np.add.reduce(dx.reshape(count, batch, n), axis=2).T)


def boxes_groups_mindist_2d(lows: np.ndarray, highs: np.ndarray, groups: np.ndarray) -> np.ndarray:
    """2-D fast path of :func:`boxes_groups_mindist` (sum, unweighted).

    Same flattening as :func:`groups_aggregate_distances_2d`; row ``b``
    of the ``(B, m)`` result is bit-identical to
    :func:`boxes_group_mindist` against ``groups[b]``.
    """
    count, batch, n = lows.shape[0], groups.shape[0], groups.shape[1]
    gx = np.ascontiguousarray(groups[:, :, 0]).reshape(-1)
    gy = np.ascontiguousarray(groups[:, :, 1]).reshape(-1)
    ax = np.maximum(lows[:, None, 0] - gx[None, :], gx[None, :] - highs[:, None, 0])
    np.maximum(ax, 0.0, out=ax)
    ax *= ax
    ay = np.maximum(lows[:, None, 1] - gy[None, :], gy[None, :] - highs[:, None, 1])
    np.maximum(ay, 0.0, out=ay)
    ay *= ay
    ax += ay
    np.sqrt(ax, out=ax)
    return np.ascontiguousarray(np.add.reduce(ax.reshape(count, batch, n), axis=2).T)


def boxes_group_mindist(
    lows: np.ndarray,
    highs: np.ndarray,
    group: np.ndarray,
    weights: np.ndarray | None = None,
    aggregate: str = SUM,
) -> np.ndarray:
    """Aggregate lower bound ``amindist(N_j, Q)`` for ``m`` boxes at once.

    For the ``sum`` aggregate this is the paper's Heuristic 3 bound
    ``sum_i mindist(N, q_i)`` evaluated for a whole child list in one
    call; ``max``/``min`` (optionally weighted) generalise it the same
    way :func:`repro.geometry.distance.group_mindist` does.
    """
    delta = np.maximum(
        0.0,
        np.maximum(lows[:, None, :] - group[None, :, :], group[None, :, :] - highs[:, None, :]),
    )
    matrix = np.sqrt(np.sum(delta * delta, axis=2))
    return reduce_aggregate(matrix, aggregate, weights)


# ----------------------------------------------------------------------
# workspace-backed 2-D kernels (the flat snapshot's hot path)
# ----------------------------------------------------------------------
class Scorer2D:
    """Reusable evaluation buffers for one 2-D query over a flat index.

    The flat traversals score one child/leaf slice per heap pop; at that
    rate the general kernels above spend much of their time allocating
    broadcast temporaries and dispatching through ``np.sum``.  This
    scorer preallocates every intermediate once per query and evaluates
    the same arithmetic through explicit ufunc calls with ``out=``:

    * per-axis subtraction and squaring instead of a ``(m, n, 2)``
      difference tensor — summing a length-2 axis is exactly
      ``x + y``, so the per-axis form is bit-identical;
    * ``np.add.reduce`` instead of ``np.sum`` / ``ndarray.sum`` — which
      is the reduction those helpers dispatch to internally.

    Every method returns a **view into a reused buffer**: the caller
    must consume (or copy) the result before the next scorer call.
    Results are bit-identical to the corresponding general kernels for
    the unweighted ``sum`` aggregate in two dimensions; callers fall
    back to the general kernels for anything else.
    """

    __slots__ = ("group_x", "group_y", "_mn_a", "_mn_b", "_mn_c", "_m_a", "_m_b", "_m_out")

    def __init__(self, group: np.ndarray, capacity: int):
        if group.ndim != 2 or group.shape[1] != 2:
            raise ValueError("Scorer2D requires a 2-D query group")
        capacity = max(1, int(capacity))
        n = group.shape[0]
        self.group_x = np.ascontiguousarray(group[:, 0])
        self.group_y = np.ascontiguousarray(group[:, 1])
        self._mn_a = np.empty((capacity, n), dtype=np.float64)
        self._mn_b = np.empty((capacity, n), dtype=np.float64)
        self._mn_c = np.empty((capacity, n), dtype=np.float64)
        self._m_a = np.empty(capacity, dtype=np.float64)
        self._m_b = np.empty(capacity, dtype=np.float64)
        self._m_out = np.empty(capacity, dtype=np.float64)

    # -- point/box kernels against a single reference ------------------
    def point_distances(self, points: np.ndarray, q: np.ndarray) -> np.ndarray:
        """:func:`point_distances` (Euclidean) into reused buffers."""
        m = points.shape[0]
        a, b = self._m_a[:m], self._m_b[:m]
        np.subtract(points[:, 0], q[0], out=a)
        np.multiply(a, a, out=a)
        np.subtract(points[:, 1], q[1], out=b)
        np.multiply(b, b, out=b)
        np.add(a, b, out=a)
        return np.sqrt(a, out=a)

    def points_mindist_box(self, points: np.ndarray, low: np.ndarray, high: np.ndarray) -> np.ndarray:
        """:func:`points_mindist_box` into reused buffers."""
        m = points.shape[0]
        a, b = self._m_a[:m], self._m_b[:m]
        x, y = points[:, 0], points[:, 1]
        np.subtract(low[0], x, out=a)
        np.subtract(x, high[0], out=b)
        np.maximum(a, b, out=a)
        np.maximum(a, 0.0, out=a)
        np.multiply(a, a, out=a)
        np.subtract(low[1], y, out=b)
        np.subtract(y, high[1], out=self._m_out[:m])
        np.maximum(b, self._m_out[:m], out=b)
        np.maximum(b, 0.0, out=b)
        np.multiply(b, b, out=b)
        np.add(a, b, out=a)
        return np.sqrt(a, out=a)

    def boxes_mindist_point(self, lows: np.ndarray, highs: np.ndarray, q: np.ndarray) -> np.ndarray:
        """:func:`boxes_mindist_point` into reused buffers."""
        m = lows.shape[0]
        a, b = self._m_a[:m], self._m_b[:m]
        np.subtract(lows[:, 0], q[0], out=a)
        np.subtract(q[0], highs[:, 0], out=b)
        np.maximum(a, b, out=a)
        np.maximum(a, 0.0, out=a)
        np.multiply(a, a, out=a)
        np.subtract(lows[:, 1], q[1], out=b)
        np.subtract(q[1], highs[:, 1], out=self._m_out[:m])
        np.maximum(b, self._m_out[:m], out=b)
        np.maximum(b, 0.0, out=b)
        np.multiply(b, b, out=b)
        np.add(a, b, out=a)
        return np.sqrt(a, out=a)

    def boxes_mindist_box(
        self, lows: np.ndarray, highs: np.ndarray, low: np.ndarray, high: np.ndarray
    ) -> np.ndarray:
        """:func:`boxes_mindist_box` into reused buffers."""
        m = lows.shape[0]
        a, b = self._m_a[:m], self._m_b[:m]
        np.subtract(lows[:, 0], high[0], out=a)
        np.subtract(low[0], highs[:, 0], out=b)
        np.maximum(a, b, out=a)
        np.maximum(a, 0.0, out=a)
        np.multiply(a, a, out=a)
        np.subtract(lows[:, 1], high[1], out=b)
        np.subtract(low[1], highs[:, 1], out=self._m_out[:m])
        np.maximum(b, self._m_out[:m], out=b)
        np.maximum(b, 0.0, out=b)
        np.multiply(b, b, out=b)
        np.add(a, b, out=a)
        return np.sqrt(a, out=a)

    # -- group kernels (unweighted sum aggregate) ----------------------
    def group_distance_matrix(self, points: np.ndarray) -> np.ndarray:
        """The ``(m, n)`` distance matrix behind :meth:`group_sum_distances`.

        Column ``i`` is bit-identical to :meth:`point_distances` against
        query point ``i`` (per-axis subtract/square/add/sqrt — summing a
        length-2 axis is exactly ``x + y``).  The multi-stream MQM
        frontier consumes the whole matrix: every active stream's leaf
        keys come from one call.  The view aliases the workspace — copy
        before the next scorer call.
        """
        m = points.shape[0]
        a, b = self._mn_a[:m], self._mn_b[:m]
        np.subtract(points[:, None, 0], self.group_x[None, :], out=a)
        np.multiply(a, a, out=a)
        np.subtract(points[:, None, 1], self.group_y[None, :], out=b)
        np.multiply(b, b, out=b)
        np.add(a, b, out=a)
        return np.sqrt(a, out=a)

    def group_mindist_matrix(self, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
        """The ``(m, n)`` mindist matrix behind :meth:`boxes_group_sum_mindist`.

        Column ``i`` is bit-identical to :meth:`boxes_mindist_point`
        against query point ``i``; used by the multi-stream MQM frontier
        to bound an internal node's children for every stream at once.
        The view aliases the workspace — copy before the next call.
        """
        m = lows.shape[0]
        a, b = self._mn_a[:m], self._mn_b[:m]
        np.subtract(lows[:, None, 0], self.group_x[None, :], out=a)
        np.subtract(self.group_x[None, :], highs[:, None, 0], out=b)
        np.maximum(a, b, out=a)
        np.maximum(a, 0.0, out=a)
        np.multiply(a, a, out=a)
        c = self._mn_c[:m]
        np.subtract(lows[:, None, 1], self.group_y[None, :], out=b)
        np.subtract(self.group_y[None, :], highs[:, None, 1], out=c)
        np.maximum(b, c, out=b)
        np.maximum(b, 0.0, out=b)
        np.multiply(b, b, out=b)
        np.add(a, b, out=a)
        return np.sqrt(a, out=a)

    def group_sum_distances(self, points: np.ndarray) -> np.ndarray:
        """:func:`aggregate_distances` (sum, unweighted) into reused buffers."""
        m = points.shape[0]
        a, b = self._mn_a[:m], self._mn_b[:m]
        np.subtract(points[:, None, 0], self.group_x[None, :], out=a)
        np.multiply(a, a, out=a)
        np.subtract(points[:, None, 1], self.group_y[None, :], out=b)
        np.multiply(b, b, out=b)
        np.add(a, b, out=a)
        np.sqrt(a, out=a)
        return np.add.reduce(a, axis=1, out=self._m_out[:m])

    def boxes_group_sum_mindist(self, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
        """:func:`boxes_group_mindist` (sum, unweighted) into reused buffers."""
        m = lows.shape[0]
        a, b = self._mn_a[:m], self._mn_b[:m]
        np.subtract(lows[:, None, 0], self.group_x[None, :], out=a)
        np.subtract(self.group_x[None, :], highs[:, None, 0], out=b)
        np.maximum(a, b, out=a)
        np.maximum(a, 0.0, out=a)
        np.multiply(a, a, out=a)
        c = self._mn_c[:m]
        np.subtract(lows[:, None, 1], self.group_y[None, :], out=b)
        np.subtract(self.group_y[None, :], highs[:, None, 1], out=c)
        np.maximum(b, c, out=b)
        np.maximum(b, 0.0, out=b)
        np.multiply(b, b, out=b)
        np.add(a, b, out=a)
        np.sqrt(a, out=a)
        return np.add.reduce(a, axis=1, out=self._m_out[:m])


def scorer_for(group: np.ndarray, weights, aggregate: str, capacity: int) -> Scorer2D | None:
    """A :class:`Scorer2D` when the query qualifies for the 2-D fast path.

    The scorer's group kernels specialise the unweighted ``sum``
    aggregate in two dimensions — exactly the paper's setting; any other
    combination returns ``None`` and callers use the general kernels.
    """
    if group.ndim == 2 and group.shape[1] == 2 and weights is None and aggregate == SUM:
        return Scorer2D(group, capacity)
    return None


# ----------------------------------------------------------------------
# weighted-summary kernels (F-MBM's Heuristics 5/6 bounds)
# ----------------------------------------------------------------------
def boxes_weighted_group_mindist(
    lows: np.ndarray,
    highs: np.ndarray,
    summary_lows: np.ndarray,
    summary_highs: np.ndarray,
    cardinalities: np.ndarray,
) -> np.ndarray:
    """Heuristic-5 weighted mindist ``sum_i n_i * mindist(N_j, M_i)`` per box."""
    delta = np.maximum(
        0.0,
        np.maximum(
            lows[:, None, :] - summary_highs[None, :, :],
            summary_lows[None, :, :] - highs[:, None, :],
        ),
    )
    matrix = np.sqrt(np.sum(delta * delta, axis=2))
    return (matrix * cardinalities).sum(axis=1)


def points_weighted_group_mindist(
    points: np.ndarray,
    summary_lows: np.ndarray,
    summary_highs: np.ndarray,
    cardinalities: np.ndarray,
) -> np.ndarray:
    """Heuristic-5 weighted mindist for ``m`` points against the block summaries."""
    delta = np.maximum(
        0.0,
        np.maximum(
            summary_lows[None, :, :] - points[:, None, :],
            points[:, None, :] - summary_highs[None, :, :],
        ),
    )
    matrix = np.sqrt(np.sum(delta * delta, axis=2))
    return (matrix * cardinalities).sum(axis=1)
