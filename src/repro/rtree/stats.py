"""Node-access and computation accounting.

The paper's experiments report two cost metrics per query: the number of
R-tree node accesses ("NA") and CPU time.  Every traversal in this
package funnels node reads through :class:`TreeStats` so both logical
accesses and (optionally) buffer-aware page faults can be measured.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class TreeStats:
    """Mutable counters attached to an :class:`~repro.rtree.tree.RTree`.

    Attributes
    ----------
    node_accesses:
        Logical node reads (every time a traversal inspects the entries
        of a node).  This is the "NA" metric of the paper's figures.
    leaf_accesses:
        Subset of ``node_accesses`` that touched leaf nodes.
    page_faults:
        Node reads that missed the LRU buffer (equals ``node_accesses``
        when no buffer is configured).
    distance_computations:
        Point-to-point or point-to-MBR distance evaluations charged by
        the GNN algorithms; a proxy for CPU cost that is independent of
        the host machine.
    """

    node_accesses: int = 0
    leaf_accesses: int = 0
    page_faults: int = 0
    distance_computations: int = 0
    _history: list[tuple[str, int]] = field(default_factory=list, repr=False)

    def record_node_access(self, is_leaf: bool, buffer_hit: bool = False) -> None:
        """Charge one node read (leaf or internal), noting whether the buffer hit."""
        self.node_accesses += 1
        if is_leaf:
            self.leaf_accesses += 1
        if not buffer_hit:
            self.page_faults += 1

    def record_distance_computations(self, count: int = 1) -> None:
        """Charge ``count`` distance evaluations."""
        self.distance_computations += count

    def snapshot(self) -> dict[str, int]:
        """Return the current counter values as a plain dictionary."""
        return {
            "node_accesses": self.node_accesses,
            "leaf_accesses": self.leaf_accesses,
            "page_faults": self.page_faults,
            "distance_computations": self.distance_computations,
        }

    def reset(self) -> None:
        """Zero every counter (called between queries of a workload)."""
        self.node_accesses = 0
        self.leaf_accesses = 0
        self.page_faults = 0
        self.distance_computations = 0
        self._history.clear()

    def merge(self, other: "TreeStats") -> None:
        """Accumulate the counters of ``other`` into this object."""
        self.node_accesses += other.node_accesses
        self.leaf_accesses += other.leaf_accesses
        self.page_faults += other.page_faults
        self.distance_computations += other.distance_computations

    def __add__(self, other: "TreeStats") -> "TreeStats":
        merged = TreeStats()
        merged.merge(self)
        merged.merge(other)
        return merged
