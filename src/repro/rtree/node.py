"""R-tree nodes.

Nodes are kept in memory (the disk is simulated by the access counters
and the optional LRU buffer); a node corresponds to one disk page of the
paper's setup, with a configurable entry capacity (the paper uses 1 KByte
pages holding 50 entries).

For the vectorised kernel layer each node can expose its entries as
contiguous coordinate arrays (data points for leaves, child MBR corners
for internal nodes).  The arrays are cached because traversals re-read
the same nodes many times per query; any code that mutates ``entries``
or an entry's MBR in place must call :meth:`Node.invalidate_arrays` (the
tree's insert/delete paths do).
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.geometry.mbr import MBR
from repro.rtree.entry import ChildEntry, LeafEntry, entries_mbr

_node_id_counter = itertools.count()


class Node:
    """A single R-tree node (one simulated disk page).

    Attributes
    ----------
    level:
        0 for leaves, increasing towards the root.
    entries:
        ``LeafEntry`` objects when ``level == 0``; ``ChildEntry``
        objects otherwise.
    node_id:
        A process-unique identifier used as the page id by the buffer
        manager.
    """

    __slots__ = ("level", "entries", "node_id", "_arrays")

    def __init__(self, level: int, entries=None):
        self.level = int(level)
        self.entries: list = list(entries) if entries is not None else []
        self.node_id = next(_node_id_counter)
        self._arrays = None

    @property
    def is_leaf(self) -> bool:
        """True for level-0 nodes, which hold data points."""
        return self.level == 0

    def __len__(self) -> int:
        return len(self.entries)

    def compute_mbr(self) -> MBR:
        """Tightest MBR covering every entry of the node."""
        return entries_mbr(self.entries)

    def add(self, entry) -> None:
        """Append an entry, verifying it matches the node's level."""
        if self.is_leaf and not isinstance(entry, LeafEntry):
            raise TypeError("leaf nodes only accept LeafEntry objects")
        if not self.is_leaf and not isinstance(entry, ChildEntry):
            raise TypeError("internal nodes only accept ChildEntry objects")
        self.entries.append(entry)
        self._arrays = None

    # ------------------------------------------------------------------
    # cached coordinate arrays (the kernel layer's view of a node)
    # ------------------------------------------------------------------
    def invalidate_arrays(self) -> None:
        """Drop the cached coordinate arrays after a structural mutation."""
        self._arrays = None

    def points_array(self) -> np.ndarray:
        """The leaf's data points as a contiguous ``(fanout, dims)`` array (cached)."""
        if not self.is_leaf:
            raise TypeError("internal nodes hold no points")
        if self._arrays is None:
            self._arrays = np.array([entry.point for entry in self.entries], dtype=np.float64)
        return self._arrays

    def child_bounds(self) -> tuple[np.ndarray, np.ndarray]:
        """The children's MBR corners as ``(fanout, dims)`` low/high arrays (cached)."""
        if self.is_leaf:
            raise TypeError("leaf nodes have no child MBRs")
        if self._arrays is None:
            lows = np.array([entry.mbr.low for entry in self.entries], dtype=np.float64)
            highs = np.array([entry.mbr.high for entry in self.entries], dtype=np.float64)
            self._arrays = (lows, highs)
        return self._arrays

    def children(self):
        """Iterate over child nodes (internal nodes only)."""
        if self.is_leaf:
            raise TypeError("leaf nodes have no children")
        return (entry.child for entry in self.entries)

    def points(self):
        """Iterate over (record_id, point) pairs (leaf nodes only)."""
        if not self.is_leaf:
            raise TypeError("internal nodes hold no points")
        return ((entry.record_id, entry.point) for entry in self.entries)

    def __repr__(self) -> str:
        kind = "leaf" if self.is_leaf else f"level-{self.level}"
        return f"Node(id={self.node_id}, {kind}, entries={len(self.entries)})"
