"""Incremental closest-pair join between two R-trees.

The GCP algorithm of Section 4.1 of the paper consumes an *incremental*
closest-pair stream: pairs ``(p, q)`` with ``p`` from the data tree and
``q`` from the query tree, reported in ascending order of their
Euclidean distance.  The implementation below follows the heap-based
approach of [HS98] / [CMTV00]: a priority queue holds node/node,
node/point and point/point pairs keyed by ``mindist``; popping a
point/point pair emits it, popping anything else expands one side.

Node reads on either tree are charged to that tree's own statistics so
the experiment harness can report the combined NA, as the paper does.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Iterator

from repro.geometry import kernels
from repro.geometry.mbr import MBR
from repro.rtree.tree import RTree


class PairResult:
    """One emitted closest pair."""

    __slots__ = ("data_id", "data_point", "query_id", "query_point", "distance")

    def __init__(self, data_id, data_point, query_id, query_point, distance):
        self.data_id = int(data_id)
        self.data_point = data_point
        self.query_id = int(query_id)
        self.query_point = query_point
        self.distance = float(distance)

    def __repr__(self) -> str:
        return (
            f"PairResult(data_id={self.data_id}, query_id={self.query_id}, "
            f"distance={self.distance:.6g})"
        )


class _Item:
    """One side of a candidate pair: either a node or a data point."""

    __slots__ = ("node", "record_id", "point", "mbr")

    def __init__(self, node=None, record_id=None, point=None, mbr=None):
        self.node = node
        self.record_id = record_id
        self.point = point
        self.mbr = mbr

    @property
    def is_point(self) -> bool:
        return self.node is None


def _pair_mindist(item_a: _Item, item_b: _Item) -> float:
    return item_a.mbr.mindist_mbr(item_b.mbr)


def _expand(node) -> tuple[list[_Item], "np.ndarray"]:
    """Return the node's children as items plus their mindists to ``other``.

    The mindists of the whole child list against the other side's MBR are
    computed in one batched kernel call (the children of a leaf are
    degenerate boxes, so their point array serves as both corners).
    """
    if node.is_leaf:
        children = [
            _Item(record_id=entry.record_id, point=entry.point, mbr=MBR.from_point(entry.point))
            for entry in node.entries
        ]
        coords = node.points_array()
        return children, (coords, coords)
    children = [_Item(node=entry.child, mbr=entry.mbr) for entry in node.entries]
    return children, node.child_bounds()


def incremental_closest_pairs(data_tree: RTree, query_tree: RTree) -> Iterator[PairResult]:
    """Yield ``(p, q)`` pairs in non-decreasing distance order.

    The stream, when exhausted, enumerates the full Cartesian product of
    the two datasets; GCP normally stops consuming it long before that.
    """
    if len(data_tree) == 0 or len(query_tree) == 0:
        return
    counter = itertools.count()
    heap: list[tuple[float, int, _Item, _Item]] = []

    root_p = _Item(node=data_tree.root, mbr=data_tree.root.compute_mbr())
    root_q = _Item(node=query_tree.root, mbr=query_tree.root.compute_mbr())
    heapq.heappush(heap, (_pair_mindist(root_p, root_q), next(counter), root_p, root_q))

    while heap:
        distance, _, item_p, item_q = heapq.heappop(heap)

        if item_p.is_point and item_q.is_point:
            yield PairResult(
                item_p.record_id, item_p.point, item_q.record_id, item_q.point, distance
            )
            continue

        # Expand one side: prefer the higher node (keeps the heap shallow
        # and mirrors the "expand the larger node" policy of [CMTV00]).
        if not item_p.is_point and (item_q.is_point or item_p.node.level >= item_q.node.level):
            node = data_tree.read_node(item_p.node)
            children, (lows, highs) = _expand(node)
            mindists = kernels.boxes_mindist_box(lows, highs, item_q.mbr.low, item_q.mbr.high)
            for child, mindist in zip(children, mindists):
                heapq.heappush(heap, (float(mindist), next(counter), child, item_q))
        else:
            node = query_tree.read_node(item_q.node)
            children, (lows, highs) = _expand(node)
            mindists = kernels.boxes_mindist_box(lows, highs, item_p.mbr.low, item_p.mbr.high)
            for child, mindist in zip(children, mindists):
                heapq.heappush(heap, (float(mindist), next(counter), item_p, child))
