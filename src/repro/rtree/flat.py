"""Flat array-backed R-tree snapshots.

:class:`FlatRTree` is a read-optimized, immutable snapshot of an R-tree:
the whole index lives in a handful of contiguous numpy arrays instead of
linked Python ``Node``/``Entry`` objects.  Nodes are numbered in
breadth-first order (the root is node 0) so that the children of every
internal node — and the points of every leaf — occupy one contiguous
slice:

================  =====================================================
``lows/highs``    ``(num_nodes, dims)`` — the MBR of every node, exactly
                  the bounds the parent entry stored in the object tree
                  (the root row is the tree's computed MBR).
``child_start``   CSR-style offsets: for an internal node the id of its
``child_count``   first child; for a leaf the row of its first point in
                  ``points``.
``levels``        per-node level (0 for leaves), so all traversal state
                  is plain integers.
``node_ids``      the object tree's page ids, preserved so an attached
                  LRU buffer sees the *same* page-access sequence as the
                  dynamic tree (hit/miss parity).
``points``        ``(size, dims)`` leaf-point matrix in leaf order, with
``record_ids``    the matching record identifiers.
================  =====================================================

Best-first traversal over this layout never touches a Python ``Node``:
a heap pop scores an entire child slice (or leaf slice) with one kernel
call and pushes plain ``(key, counter, int)`` tuples.  The traversal
loops themselves live in :mod:`repro.rtree.traversal`
(``flat_incremental_nearest_generic``) and :mod:`repro.core.mbm`; they
charge node accesses and distance computations exactly like the
object-tree paths, so results, counters and buffer behaviour are
bit-identical.

A snapshot round-trips to disk as an *uncompressed* ``.npz`` archive.
``load(..., mmap_mode="r")`` maps the arrays straight out of the archive
(the stored ``.npy`` members are located inside the zip and wrapped in
``np.memmap``), so a large index opens in milliseconds and leaf pages
are paged in by the OS on demand — the number of OS pages spanned is
reported through :class:`repro.storage.counters.MappedPageCounters`.
"""

from __future__ import annotations

import struct
import zipfile

import numpy as np
from numpy.lib import format as npy_format

from repro.rtree.stats import TreeStats
from repro.storage.counters import MappedPageCounters

#: Array names persisted by :meth:`FlatRTree.save`.
_ARRAY_FIELDS = (
    "lows",
    "highs",
    "child_start",
    "child_count",
    "levels",
    "node_ids",
    "points",
    "record_ids",
)

#: Scalar metadata persisted alongside the arrays.
_META_FIELDS = ("dims", "size", "capacity", "height", "generation")

#: On-disk format version written by :meth:`FlatRTree.save`.  Version 2
#: appends the snapshot ``generation`` token to the meta row; version-1
#: archives (no token) are still read, with generation 0.
FORMAT_VERSION = 2

#: Sentinel distinguishing "not computed yet" from a legitimate None.
_UNSET = object()


class FlatRTree:
    """A read-only, struct-of-arrays snapshot of an R-tree.

    Instances are built with :meth:`from_tree` (snapshot an existing
    :class:`~repro.rtree.tree.RTree`), :meth:`bulk_load` (pack a static
    point set directly) or :meth:`load` (reopen a saved snapshot,
    optionally memory-mapped).  The snapshot exposes the same accounting
    surface as the dynamic tree — ``stats``, ``read_node``, an optional
    LRU ``buffer`` — so every traversal charges costs identically.
    """

    __slots__ = (
        "dims",
        "size",
        "capacity",
        "height",
        "generation",
        "lows",
        "highs",
        "child_start",
        "child_count",
        "levels",
        "node_ids",
        "points",
        "record_ids",
        "stats",
        "buffer",
        "mmap_io",
        "_points_cache",
    )

    def __init__(self, arrays: dict, meta: dict, buffer=None, mmap_io=None):
        for name in _ARRAY_FIELDS:
            setattr(self, name, arrays[name])
        self.dims = int(meta["dims"])
        self.size = int(meta["size"])
        self.capacity = int(meta["capacity"])
        self.height = int(meta["height"])
        self.generation = int(meta.get("generation", 0))
        self.stats = TreeStats()
        self.buffer = buffer
        self.mmap_io = mmap_io
        self._points_cache = _UNSET

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_tree(cls, tree, buffer="inherit") -> "FlatRTree":
        """Snapshot an existing :class:`~repro.rtree.tree.RTree`.

        The breadth-first walk preserves entry (storage) order, so a
        best-first traversal over the snapshot pushes, pops and reads in
        exactly the same sequence as over the object tree.  ``buffer``
        defaults to sharing the tree's LRU buffer; pass ``None`` (or a
        different buffer) to detach.
        """
        dims = tree.dims
        if buffer == "inherit":
            buffer = tree.buffer

        lows: list = []
        highs: list = []
        child_start: list = []
        child_count: list = []
        levels: list = []
        node_ids: list = []
        point_rows: list = []
        record_ids: list = []

        if tree.size == 0:
            arrays = {
                "lows": np.zeros((1, dims), dtype=np.float64),
                "highs": np.zeros((1, dims), dtype=np.float64),
                "child_start": np.zeros(1, dtype=np.int64),
                "child_count": np.zeros(1, dtype=np.int64),
                "levels": np.zeros(1, dtype=np.int16),
                "node_ids": np.array([tree.root.node_id], dtype=np.int64),
                "points": np.zeros((0, dims), dtype=np.float64),
                "record_ids": np.zeros(0, dtype=np.int64),
            }
        else:
            root_mbr = tree.root.compute_mbr()
            queue = [tree.root]
            queue_mbrs = [root_mbr]
            index = 0
            while index < len(queue):
                node = queue[index]
                mbr = queue_mbrs[index]
                lows.append(np.asarray(mbr.low, dtype=np.float64))
                highs.append(np.asarray(mbr.high, dtype=np.float64))
                levels.append(node.level)
                node_ids.append(node.node_id)
                if node.is_leaf:
                    child_start.append(len(point_rows))
                    child_count.append(len(node.entries))
                    for entry in node.entries:
                        point_rows.append(np.asarray(entry.point, dtype=np.float64))
                        record_ids.append(entry.record_id)
                else:
                    child_start.append(len(queue))
                    child_count.append(len(node.entries))
                    for entry in node.entries:
                        queue.append(entry.child)
                        queue_mbrs.append(entry.mbr)
                index += 1
            arrays = {
                "lows": np.ascontiguousarray(np.vstack(lows)),
                "highs": np.ascontiguousarray(np.vstack(highs)),
                "child_start": np.asarray(child_start, dtype=np.int64),
                "child_count": np.asarray(child_count, dtype=np.int64),
                "levels": np.asarray(levels, dtype=np.int16),
                "node_ids": np.asarray(node_ids, dtype=np.int64),
                "points": np.ascontiguousarray(np.vstack(point_rows)),
                "record_ids": np.asarray(record_ids, dtype=np.int64),
            }
        meta = {
            "dims": dims,
            "size": tree.size,
            "capacity": tree.capacity,
            "height": tree.height,
        }
        return cls(arrays, meta, buffer=buffer)

    @classmethod
    def bulk_load(
        cls, points, capacity: int = 50, method: str = "str", buffer=None, record_ids=None
    ) -> "FlatRTree":
        """Pack a static point set straight into a flat snapshot.

        Runs the same STR/Hilbert packer as ``RTree.bulk_load`` and
        flattens the result, so the snapshot is structurally identical
        to ``FlatRTree.from_tree(RTree.bulk_load(...))``.  ``record_ids``
        optionally replaces the default row-index ids — shard snapshots
        carry global row numbers so federated answers merge in the same
        identifier space as a single whole-dataset index.
        """
        from repro.rtree.tree import RTree

        tree = RTree.bulk_load(
            points, capacity=capacity, method=method, buffer=buffer, record_ids=record_ids
        )
        return cls.from_tree(tree, buffer=buffer)

    # ------------------------------------------------------------------
    # access accounting (mirrors RTree.read_node)
    # ------------------------------------------------------------------
    def read_node(self, index: int) -> int:
        """Charge one node access for node ``index`` and return it.

        The buffer (when attached) is keyed by the preserved object-tree
        page ids, so hit/miss sequences match the dynamic tree exactly.
        """
        hit = False
        if self.buffer is not None:
            hit = self.buffer.access(int(self.node_ids[index]))
        self.stats.record_node_access(bool(self.levels[index] == 0), buffer_hit=hit)
        return index

    def reset_stats(self) -> None:
        """Zero the access counters (the buffer contents are preserved)."""
        self.stats.reset()

    # ------------------------------------------------------------------
    # shape
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.size

    @property
    def num_nodes(self) -> int:
        """Total number of nodes in the snapshot."""
        return int(self.levels.shape[0])

    def is_leaf(self, index: int) -> bool:
        """True when node ``index`` is a leaf."""
        return bool(self.levels[index] == 0)

    def node_count(self) -> int:
        """Total number of nodes (API parity with :class:`RTree`)."""
        return self.num_nodes

    def root_mbr(self) -> tuple[np.ndarray, np.ndarray]:
        """The root MBR as plain ``(low, high)`` float64 copies.

        This is the bound a federation coordinator prunes on: the root
        row covers every point of the snapshot, so ``amindist(root, Q)``
        lower-bounds the aggregate distance of any record the shard
        could contribute.  Copies (not memmap views) are returned so the
        manifest stays valid after the mapping is closed.
        """
        return (
            np.array(self.lows[0], dtype=np.float64),
            np.array(self.highs[0], dtype=np.float64),
        )

    def points_by_record_id(self) -> np.ndarray | None:
        """The dataset in record-id order, or None when ids are not 0..N-1.

        Bulk-loaded trees use row indices as record ids, so the original
        ``(N, dims)`` dataset can be reconstructed exactly; trees with
        arbitrary ids cannot.  The reconstruction copies the point
        matrix once and is cached — snapshot-only engines call this
        lazily on the first brute-force spec.
        """
        if self._points_cache is _UNSET:
            self._points_cache = self._reconstruct_points()
        return self._points_cache

    def _reconstruct_points(self) -> np.ndarray | None:
        if self.size == 0:
            return np.array(self.points)
        order = np.argsort(self.record_ids, kind="stable")
        if not np.array_equal(self.record_ids[order], np.arange(self.size)):
            return None
        return np.ascontiguousarray(self.points[order])

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, path, generation: int | None = None, *, fsync: bool = False) -> None:
        """Write the snapshot as an *uncompressed* ``.npz`` archive.

        Uncompressed members are stored contiguously inside the zip,
        which is what allows :meth:`load` to memory-map them in place.
        The archive is written to exactly ``path`` (``np.savez``'s
        silent ``.npz``-appending is bypassed), so ``save(p)`` /
        ``load(p)`` always round-trip.

        ``generation`` stamps the persisted snapshot with a publication
        epoch (default: this snapshot's own ``generation``).  The
        serving subsystem uses the token for hot-swaps: a publisher
        saves the successor snapshot with a higher generation, and the
        workers report which generation answered each batch.

        Publication is atomic: the archive is staged in a same-directory
        temp file and renamed into place (the ``snapshot.rename`` fault
        point fires just before the rename), so a reader — or a recovery
        scan after a crash — never observes a half-written snapshot
        under the real name.  ``fsync=True`` additionally makes the
        snapshot durable before the rename.
        """
        from repro.storage.atomicio import atomic_output

        if generation is None:
            generation = self.generation
        payload = {name: np.ascontiguousarray(getattr(self, name)) for name in _ARRAY_FIELDS}
        payload["meta"] = np.array(
            [FORMAT_VERSION, self.dims, self.size, self.capacity, self.height, int(generation)],
            dtype=np.int64,
        )
        with atomic_output(path, fsync=fsync, fault_point="snapshot.rename") as handle:
            np.savez(handle, **payload)

    @classmethod
    def load(cls, path, mmap_mode: str | None = None, buffer=None) -> "FlatRTree":
        """Reopen a saved snapshot.

        With ``mmap_mode=None`` the arrays are materialised in memory.
        With ``mmap_mode="r"`` each array is located inside the ``.npz``
        archive and wrapped in a read-only ``np.memmap`` — nothing is
        copied, the OS pages data in on demand, and the mapping extent
        is reported on the returned snapshot's ``mmap_io`` counters.
        """
        if mmap_mode is None:
            with np.load(path) as archive:
                arrays = {name: np.array(archive[name]) for name in _ARRAY_FIELDS}
                meta_row = np.array(archive["meta"])
            return cls(arrays, _unpack_meta(meta_row), buffer=buffer)
        if mmap_mode != "r":
            raise ValueError(
                f"unsupported mmap_mode {mmap_mode!r}: flat snapshots are "
                "read-only, use mmap_mode='r' (or None to load into memory)"
            )
        arrays, mmap_io = _mmap_npz_arrays(path)
        meta_row = np.array(arrays.pop("meta"))
        return cls(arrays, _unpack_meta(meta_row), buffer=buffer, mmap_io=mmap_io)

    def __repr__(self) -> str:
        mapped = ", mmap" if self.mmap_io is not None else ""
        return (
            f"FlatRTree(size={self.size}, dims={self.dims}, height={self.height}, "
            f"nodes={self.num_nodes}{mapped})"
        )


def _unpack_meta(meta_row: np.ndarray) -> dict:
    version = int(meta_row[0])
    if version not in (1, FORMAT_VERSION):
        raise ValueError(
            f"unsupported flat snapshot format version {version} "
            f"(this build reads versions 1-{FORMAT_VERSION})"
        )
    meta = {
        "dims": int(meta_row[1]),
        "size": int(meta_row[2]),
        "capacity": int(meta_row[3]),
        "height": int(meta_row[4]),
    }
    # Version 1 predates the hot-swap generation token.
    meta["generation"] = int(meta_row[5]) if version >= 2 else 0
    return meta


# ----------------------------------------------------------------------
# memory-mapping .npy members inside an uncompressed .npz archive
# ----------------------------------------------------------------------
_LOCAL_HEADER_SIZE = 30  # fixed part of a zip local file header


def _local_data_offset(raw, info: zipfile.ZipInfo) -> int:
    """Byte offset of a stored member's data inside the archive file.

    The local file header repeats the filename and carries its own extra
    field (which may differ from the central directory's), so the header
    must be parsed at ``info.header_offset`` rather than reconstructed.
    """
    raw.seek(info.header_offset)
    header = raw.read(_LOCAL_HEADER_SIZE)
    if len(header) != _LOCAL_HEADER_SIZE or header[:4] != b"PK\x03\x04":
        raise ValueError(f"corrupt zip local header for {info.filename!r}")
    name_length, extra_length = struct.unpack("<HH", header[26:30])
    return info.header_offset + _LOCAL_HEADER_SIZE + name_length + extra_length


def _read_npy_header(member) -> tuple[tuple, bool, np.dtype, int]:
    """Parse a ``.npy`` stream header; returns (shape, fortran, dtype, header_len)."""
    version = npy_format.read_magic(member)
    if version == (1, 0):
        shape, fortran_order, dtype = npy_format.read_array_header_1_0(member)
    elif version == (2, 0):
        shape, fortran_order, dtype = npy_format.read_array_header_2_0(member)
    else:
        raise ValueError(f"unsupported .npy format version {version}")
    return shape, fortran_order, dtype, member.tell()


def _mmap_npz_arrays(path) -> tuple[dict, MappedPageCounters]:
    """Map every array of an uncompressed ``.npz`` archive without copying."""
    arrays: dict = {}
    counters = MappedPageCounters()
    with zipfile.ZipFile(path) as archive, open(path, "rb") as raw:
        for info in archive.infolist():
            if info.compress_type != zipfile.ZIP_STORED:
                raise ValueError(
                    f"member {info.filename!r} is compressed; only archives "
                    "written by FlatRTree.save (uncompressed np.savez) can "
                    "be memory-mapped"
                )
            name = info.filename
            if name.endswith(".npy"):
                name = name[: -len(".npy")]
            with archive.open(info.filename) as member:
                shape, fortran_order, dtype, header_length = _read_npy_header(member)
            if dtype.hasobject:
                raise ValueError(f"member {info.filename!r} holds Python objects")
            element_count = int(np.prod(shape)) if shape else 1
            if element_count == 0:
                arrays[name] = np.empty(shape, dtype=dtype)
                continue
            offset = _local_data_offset(raw, info) + header_length
            arrays[name] = np.memmap(
                path,
                dtype=dtype,
                mode="r",
                offset=offset,
                shape=shape,
                order="F" if fortran_order else "C",
            )
            # The "meta" header is copied out and discarded by load();
            # the counters report only the index arrays that stay mapped.
            if name != "meta":
                counters.record_mapped(element_count * dtype.itemsize)
    return arrays, counters
