"""Nearest-neighbor traversals over a single R-tree.

Three search primitives are provided, mirroring Section 2 of the paper:

* :func:`depth_first_nearest` — the DF algorithm of [RKV95],
* :func:`best_first_nearest` — the I/O-optimal BF algorithm of [HS99],
* :func:`incremental_nearest` / :func:`incremental_nearest_generic` —
  the incremental ("distance browsing") variant of BF that reports
  neighbors in ascending distance without knowing ``k`` in advance.
  MQM and F-MQM rely on incrementality because their termination
  condition is only discovered while consuming the stream.

The generic variant accepts arbitrary lower-bound/key functions so the
same machinery can rank nodes by ``mindist`` to a point (conventional
NN), to a centroid (SPM), to a query MBR (MBM), or by the aggregate
group distance (the incremental group-NN stream used by F-MQM).

Callers may additionally supply *vectorised* keys (``points_key`` /
``mbrs_key``) that score a whole leaf or child list in one kernel call
per heap pop instead of one Python call per entry — the hot path of
every algorithm in the paper.  Vectorised keys must compute exactly the
same values as their scalar counterparts (the kernels in
:mod:`repro.geometry.kernels` are built to guarantee this), so the heap
order, the emitted stream and the node-access counts are identical
either way.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable, Iterator, Sequence

import numpy as np

from repro.geometry import kernels
from repro.geometry.mbr import MBR
from repro.geometry.point import as_point
from repro.rtree.tree import RTree


class Neighbor:
    """A single nearest-neighbor result."""

    __slots__ = ("record_id", "point", "distance")

    def __init__(self, record_id: int, point: np.ndarray, distance: float):
        self.record_id = int(record_id)
        self.point = point
        self.distance = float(distance)

    def as_tuple(self) -> tuple[int, float]:
        """Return ``(record_id, distance)`` for compact comparisons in tests."""
        return (self.record_id, self.distance)

    def __repr__(self) -> str:
        return f"Neighbor(id={self.record_id}, distance={self.distance:.6g})"


def incremental_nearest_generic(
    tree: RTree,
    node_key: Callable[[MBR], float],
    point_key: Callable[[np.ndarray], float],
    *,
    points_key: Callable[[np.ndarray], np.ndarray] | None = None,
    mbrs_key: Callable[[np.ndarray, np.ndarray], np.ndarray] | None = None,
) -> Iterator[Neighbor]:
    """Yield every indexed point in ascending order of ``point_key``.

    ``node_key(mbr)`` must lower-bound ``point_key(p)`` for every point
    ``p`` inside ``mbr`` — exactly the property that makes best-first
    search correct.  Node reads are charged to ``tree.stats``.

    ``points_key`` (``(fanout, dims)`` point array → value array) and
    ``mbrs_key`` (low/high corner arrays → value array) are vectorised
    equivalents of ``point_key`` / ``node_key``; when provided, each
    popped node is scored with a single kernel call.  Entries are pushed
    in storage order in both modes, so tie-breaking is identical.
    """
    if len(tree) == 0:
        return
    counter = itertools.count()
    heap: list[tuple[float, int, str, object]] = []
    root_bound = node_key(tree.root.compute_mbr())
    heapq.heappush(heap, (root_bound, next(counter), "node", tree.root))

    while heap:
        key, _, kind, payload = heapq.heappop(heap)
        if kind == "point":
            record_id, point = payload
            yield Neighbor(record_id, point, key)
            continue
        node = tree.read_node(payload)
        if node.is_leaf:
            if points_key is not None:
                values = points_key(node.points_array())
                for entry, value in zip(node.entries, values):
                    heapq.heappush(
                        heap, (float(value), next(counter), "point", (entry.record_id, entry.point))
                    )
            else:
                for entry in node.entries:
                    value = point_key(entry.point)
                    heapq.heappush(
                        heap, (value, next(counter), "point", (entry.record_id, entry.point))
                    )
        else:
            if mbrs_key is not None:
                lows, highs = node.child_bounds()
                bounds = mbrs_key(lows, highs)
                for entry, bound in zip(node.entries, bounds):
                    heapq.heappush(heap, (float(bound), next(counter), "node", entry.child))
            else:
                for entry in node.entries:
                    bound = node_key(entry.mbr)
                    heapq.heappush(heap, (bound, next(counter), "node", entry.child))


def incremental_nearest(tree: RTree, query: Sequence[float]) -> Iterator[Neighbor]:
    """Yield indexed points in ascending Euclidean distance from ``query``."""
    q = as_point(query, dims=tree.dims)

    def node_key(mbr: MBR) -> float:
        return mbr.mindist_point(q)

    def point_key(point: np.ndarray) -> float:
        delta = point - q
        return float(np.sqrt(np.sum(delta * delta)))

    def points_key(points: np.ndarray) -> np.ndarray:
        return kernels.point_distances(points, q)

    def mbrs_key(lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
        return kernels.boxes_mindist_point(lows, highs, q)

    return incremental_nearest_generic(
        tree, node_key, point_key, points_key=points_key, mbrs_key=mbrs_key
    )


def best_first_nearest(tree: RTree, query: Sequence[float], k: int = 1) -> list[Neighbor]:
    """Return the ``k`` nearest neighbors of ``query`` using best-first search."""
    if k < 1:
        raise ValueError("k must be at least 1")
    results: list[Neighbor] = []
    for neighbor in incremental_nearest(tree, query):
        results.append(neighbor)
        if len(results) == k:
            break
    return results


def depth_first_nearest(tree: RTree, query: Sequence[float], k: int = 1) -> list[Neighbor]:
    """Return the ``k`` nearest neighbors of ``query`` using depth-first search.

    This is the branch-and-bound DF algorithm of [RKV95]: children are
    visited in ascending ``mindist`` order and subtrees whose ``mindist``
    exceeds the current k-th best distance are pruned.  It is included
    both as a baseline and because SPM/MBM admit DF implementations.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    q = as_point(query, dims=tree.dims)
    if len(tree) == 0:
        return []

    best: list[tuple[float, int, np.ndarray]] = []  # max-heap emulated with negated dist

    def kth_distance() -> float:
        if len(best) < k:
            return float("inf")
        return -best[0][0]

    def visit(node) -> None:
        node = tree.read_node(node)
        if node.is_leaf:
            dists = kernels.point_distances(node.points_array(), q)
            for entry, dist in zip(node.entries, dists):
                dist = float(dist)
                if dist < kth_distance():
                    heapq.heappush(best, (-dist, entry.record_id, entry.point))
                    if len(best) > k:
                        heapq.heappop(best)
            return
        lows, highs = node.child_bounds()
        mindists = kernels.boxes_mindist_point(lows, highs, q)
        for index in np.argsort(mindists, kind="stable"):
            if mindists[index] >= kth_distance():
                break
            visit(node.entries[index].child)

    visit(tree.root)
    ordered = sorted(best, key=lambda item: -item[0])
    return [Neighbor(record_id, point, -neg) for neg, record_id, point in ordered]
