"""Nearest-neighbor traversals over a single R-tree.

Three search primitives are provided, mirroring Section 2 of the paper:

* :func:`depth_first_nearest` — the DF algorithm of [RKV95],
* :func:`best_first_nearest` — the I/O-optimal BF algorithm of [HS99],
* :func:`incremental_nearest` / :func:`incremental_nearest_generic` —
  the incremental ("distance browsing") variant of BF that reports
  neighbors in ascending distance without knowing ``k`` in advance.
  MQM and F-MQM rely on incrementality because their termination
  condition is only discovered while consuming the stream.

The generic variant accepts arbitrary lower-bound/key functions so the
same machinery can rank nodes by ``mindist`` to a point (conventional
NN), to a centroid (SPM), to a query MBR (MBM), or by the aggregate
group distance (the incremental group-NN stream used by F-MQM).

Callers may additionally supply *vectorised* keys (``points_key`` /
``mbrs_key``) that score a whole leaf or child list in one kernel call
per heap pop instead of one Python call per entry — the hot path of
every algorithm in the paper.  Vectorised keys must compute exactly the
same values as their scalar counterparts (the kernels in
:mod:`repro.geometry.kernels` are built to guarantee this), so the heap
order, the emitted stream and the node-access counts are identical
either way.

Heap entries are plain ``(key, tiebreak, payload)`` tuples in both
modes.  On the object-tree path the payload is the ``Node`` or
``LeafEntry`` itself; on the flat path
(:func:`flat_incremental_nearest_generic`, used automatically when the
index is a :class:`~repro.rtree.flat.FlatRTree`) the payload is a plain
integer and no Python node objects exist at all.  The tiebreak counter
is unique and strictly increasing, so tuple comparison never reaches
the payload and push order — which is identical across all modes —
decides ties exactly as before.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable, Iterator, Sequence

import numpy as np

from repro.geometry import kernels
from repro.geometry.mbr import MBR
from repro.geometry.point import as_point
from repro.rtree.flat import FlatRTree
from repro.rtree.node import Node
from repro.rtree.tree import RTree


class Neighbor:
    """A single nearest-neighbor result.

    ``aux`` optionally carries a per-point value precomputed by the flat
    traversal (e.g. the exact aggregate group distance, batched per leaf
    by SPM); it never participates in the stream's ordering.
    """

    __slots__ = ("record_id", "point", "distance", "aux")

    def __init__(self, record_id: int, point: np.ndarray, distance: float, aux=None):
        self.record_id = int(record_id)
        self.point = point
        self.distance = float(distance)
        self.aux = aux

    def as_tuple(self) -> tuple[int, float]:
        """Return ``(record_id, distance)`` for compact comparisons in tests."""
        return (self.record_id, self.distance)

    def __repr__(self) -> str:
        return f"Neighbor(id={self.record_id}, distance={self.distance:.6g})"


def incremental_nearest_generic(
    tree: RTree | FlatRTree,
    node_key: Callable[[MBR], float] | None,
    point_key: Callable[[np.ndarray], float] | None,
    *,
    points_key: Callable[[np.ndarray], np.ndarray] | None = None,
    mbrs_key: Callable[[np.ndarray, np.ndarray], np.ndarray] | None = None,
) -> Iterator[Neighbor]:
    """Yield every indexed point in ascending order of ``point_key``.

    ``node_key(mbr)`` must lower-bound ``point_key(p)`` for every point
    ``p`` inside ``mbr`` — exactly the property that makes best-first
    search correct.  Node reads are charged to ``tree.stats``.

    ``points_key`` (``(fanout, dims)`` point array → value array) and
    ``mbrs_key`` (low/high corner arrays → value array) are vectorised
    equivalents of ``point_key`` / ``node_key``; when provided, each
    popped node is scored with a single kernel call.  Entries are pushed
    in storage order in both modes, so tie-breaking is identical.

    When ``tree`` is a :class:`~repro.rtree.flat.FlatRTree` the
    traversal runs entirely over its arrays (vectorised keys are then
    required) with identical emission order and accounting.
    """
    if isinstance(tree, FlatRTree):
        if points_key is None or mbrs_key is None:
            raise ValueError(
                "flat snapshots are traversed with vectorised keys; "
                "pass points_key and mbrs_key"
            )
        return flat_incremental_nearest_generic(tree, points_key, mbrs_key)
    return _object_incremental_nearest_generic(
        tree, node_key, point_key, points_key=points_key, mbrs_key=mbrs_key
    )


def _object_incremental_nearest_generic(
    tree: RTree,
    node_key,
    point_key,
    *,
    points_key=None,
    mbrs_key=None,
) -> Iterator[Neighbor]:
    """The object-tree traversal behind :func:`incremental_nearest_generic`."""
    if len(tree) == 0:
        return
    counter = itertools.count()
    heap: list[tuple[float, int, object]] = []
    root_bound = node_key(tree.root.compute_mbr())
    heapq.heappush(heap, (root_bound, next(counter), tree.root))

    while heap:
        key, _, payload = heapq.heappop(heap)
        if not isinstance(payload, Node):
            yield Neighbor(payload.record_id, payload.point, key)
            continue
        node = tree.read_node(payload)
        if node.is_leaf:
            if points_key is not None:
                values = points_key(node.points_array())
                for entry, value in zip(node.entries, values):
                    heapq.heappush(heap, (float(value), next(counter), entry))
            else:
                for entry in node.entries:
                    heapq.heappush(heap, (point_key(entry.point), next(counter), entry))
        else:
            if mbrs_key is not None:
                lows, highs = node.child_bounds()
                bounds = mbrs_key(lows, highs)
                for entry, bound in zip(node.entries, bounds):
                    heapq.heappush(heap, (float(bound), next(counter), entry.child))
            else:
                for entry in node.entries:
                    heapq.heappush(heap, (node_key(entry.mbr), next(counter), entry.child))


def flat_incremental_nearest_generic(
    flat: FlatRTree,
    points_key: Callable[[np.ndarray], np.ndarray],
    mbrs_key: Callable[[np.ndarray, np.ndarray], np.ndarray],
    *,
    points_aux: Callable[[np.ndarray], np.ndarray] | None = None,
) -> Iterator[Neighbor]:
    """Best-first stream over a flat snapshot; no ``Node`` objects exist.

    Heap entries are plain tuples of floats and ints: nodes are
    ``(bound, tiebreak, node_id)`` and leaf points
    ``(key, tiebreak, row, record_id[, aux])`` — the record id is
    converted once per leaf through ``tolist()`` so the yield path never
    touches a numpy scalar.  Push order, key values and node-access
    charges replicate the object-tree traversal exactly, so the emitted
    stream (and any attached buffer's hit/miss sequence) is
    bit-identical.

    ``points_aux`` optionally computes one extra value per leaf point in
    the same batched call pattern (e.g. the exact aggregate distance for
    SPM's consumer); it is carried on ``Neighbor.aux`` and never affects
    ordering or accounting.
    """
    if len(flat) == 0:
        return
    counter = itertools.count()
    lows = flat.lows
    highs = flat.highs
    child_start = flat.child_start
    child_count = flat.child_count
    levels = flat.levels
    points = flat.points
    record_ids = flat.record_ids
    read_node = flat.read_node
    push = heapq.heappush
    pop = heapq.heappop

    root_bound = float(mbrs_key(lows[0:1], highs[0:1])[0])
    heap: list[tuple] = [(root_bound, next(counter), 0)]

    while heap:
        item = pop(heap)
        if len(item) != 3:
            yield Neighbor(item[3], points[item[2]], item[0], item[4] if len(item) == 5 else None)
            continue
        index = read_node(item[2])
        start = int(child_start[index])
        stop = start + int(child_count[index])
        if levels[index] == 0:
            slice_points = points[start:stop]
            values = points_key(slice_points).tolist()
            ids = record_ids[start:stop].tolist()
            if points_aux is not None:
                aux_values = points_aux(slice_points).tolist()
                row = start
                for value, record_id, aux in zip(values, ids, aux_values):
                    push(heap, (value, next(counter), row, record_id, aux))
                    row += 1
            else:
                row = start
                for value, record_id in zip(values, ids):
                    push(heap, (value, next(counter), row, record_id))
                    row += 1
        else:
            bounds = mbrs_key(lows[start:stop], highs[start:stop]).tolist()
            for offset, bound in enumerate(bounds):
                push(heap, (bound, next(counter), start + offset))


def incremental_nearest(
    tree: RTree | FlatRTree, query: Sequence[float]
) -> Iterator[Neighbor]:
    """Yield indexed points in ascending Euclidean distance from ``query``."""
    q = as_point(query, dims=tree.dims)

    def node_key(mbr: MBR) -> float:
        return mbr.mindist_point(q)

    def point_key(point: np.ndarray) -> float:
        delta = point - q
        return float(np.sqrt(np.sum(delta * delta)))

    def points_key(points: np.ndarray) -> np.ndarray:
        return kernels.point_distances(points, q)

    def mbrs_key(lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
        return kernels.boxes_mindist_point(lows, highs, q)

    return incremental_nearest_generic(
        tree, node_key, point_key, points_key=points_key, mbrs_key=mbrs_key
    )


def best_first_nearest(
    tree: RTree | FlatRTree, query: Sequence[float], k: int = 1
) -> list[Neighbor]:
    """Return the ``k`` nearest neighbors of ``query`` using best-first search."""
    if k < 1:
        raise ValueError("k must be at least 1")
    results: list[Neighbor] = []
    for neighbor in incremental_nearest(tree, query):
        results.append(neighbor)
        if len(results) == k:
            break
    return results


def depth_first_nearest(tree: RTree, query: Sequence[float], k: int = 1) -> list[Neighbor]:
    """Return the ``k`` nearest neighbors of ``query`` using depth-first search.

    This is the branch-and-bound DF algorithm of [RKV95]: children are
    visited in ascending ``mindist`` order and subtrees whose ``mindist``
    exceeds the current k-th best distance are pruned.  It is included
    both as a baseline and because SPM/MBM admit DF implementations.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    q = as_point(query, dims=tree.dims)
    if len(tree) == 0:
        return []

    best: list[tuple[float, int, np.ndarray]] = []  # max-heap emulated with negated dist

    def kth_distance() -> float:
        if len(best) < k:
            return float("inf")
        return -best[0][0]

    def visit(node) -> None:
        node = tree.read_node(node)
        if node.is_leaf:
            dists = kernels.point_distances(node.points_array(), q)
            for entry, dist in zip(node.entries, dists):
                dist = float(dist)
                if dist < kth_distance():
                    heapq.heappush(best, (-dist, entry.record_id, entry.point))
                    if len(best) > k:
                        heapq.heappop(best)
            return
        lows, highs = node.child_bounds()
        mindists = kernels.boxes_mindist_point(lows, highs, q)
        for index in np.argsort(mindists, kind="stable"):
            if mindists[index] >= kth_distance():
                break
            visit(node.entries[index].child)

    visit(tree.root)
    ordered = sorted(best, key=lambda item: -item[0])
    return [Neighbor(record_id, point, -neg) for neg, record_id, point in ordered]
