"""Nearest-neighbor traversals over a single R-tree.

Three search primitives are provided, mirroring Section 2 of the paper:

* :func:`depth_first_nearest` — the DF algorithm of [RKV95],
* :func:`best_first_nearest` — the I/O-optimal BF algorithm of [HS99],
* :func:`incremental_nearest` / :func:`incremental_nearest_generic` —
  the incremental ("distance browsing") variant of BF that reports
  neighbors in ascending distance without knowing ``k`` in advance.
  MQM and F-MQM rely on incrementality because their termination
  condition is only discovered while consuming the stream.

The generic variant accepts arbitrary lower-bound/key functions so the
same machinery can rank nodes by ``mindist`` to a point (conventional
NN), to a centroid (SPM), to a query MBR (MBM), or by the aggregate
group distance (the incremental group-NN stream used by F-MQM).

Callers may additionally supply *vectorised* keys (``points_key`` /
``mbrs_key``) that score a whole leaf or child list in one kernel call
per heap pop instead of one Python call per entry — the hot path of
every algorithm in the paper.  Vectorised keys must compute exactly the
same values as their scalar counterparts (the kernels in
:mod:`repro.geometry.kernels` are built to guarantee this), so the heap
order, the emitted stream and the node-access counts are identical
either way.

Heap entries are plain ``(key, tiebreak, payload)`` tuples in both
modes.  On the object-tree path the payload is the ``Node`` or
``LeafEntry`` itself; on the flat path
(:func:`flat_incremental_nearest_generic`, used automatically when the
index is a :class:`~repro.rtree.flat.FlatRTree`) the payload is a plain
integer and no Python node objects exist at all.  The tiebreak counter
is unique and strictly increasing, so tuple comparison never reaches
the payload and push order — which is identical across all modes —
decides ties exactly as before.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable, Iterator, Sequence

import numpy as np

from repro.geometry import kernels
from repro.geometry.mbr import MBR
from repro.geometry.point import as_point
from repro.rtree.flat import FlatRTree
from repro.rtree.node import Node
from repro.rtree.tree import RTree


class Neighbor:
    """A single nearest-neighbor result.

    ``aux`` optionally carries a per-point value precomputed by the flat
    traversal (e.g. the exact aggregate group distance, batched per leaf
    by SPM); it never participates in the stream's ordering.
    """

    __slots__ = ("record_id", "point", "distance", "aux")

    def __init__(self, record_id: int, point: np.ndarray, distance: float, aux=None):
        self.record_id = int(record_id)
        self.point = point
        self.distance = float(distance)
        self.aux = aux

    def as_tuple(self) -> tuple[int, float]:
        """Return ``(record_id, distance)`` for compact comparisons in tests."""
        return (self.record_id, self.distance)

    def __repr__(self) -> str:
        return f"Neighbor(id={self.record_id}, distance={self.distance:.6g})"


def incremental_nearest_generic(
    tree: RTree | FlatRTree,
    node_key: Callable[[MBR], float] | None,
    point_key: Callable[[np.ndarray], float] | None,
    *,
    points_key: Callable[[np.ndarray], np.ndarray] | None = None,
    mbrs_key: Callable[[np.ndarray, np.ndarray], np.ndarray] | None = None,
) -> Iterator[Neighbor]:
    """Yield every indexed point in ascending order of ``point_key``.

    ``node_key(mbr)`` must lower-bound ``point_key(p)`` for every point
    ``p`` inside ``mbr`` — exactly the property that makes best-first
    search correct.  Node reads are charged to ``tree.stats``.

    ``points_key`` (``(fanout, dims)`` point array → value array) and
    ``mbrs_key`` (low/high corner arrays → value array) are vectorised
    equivalents of ``point_key`` / ``node_key``; when provided, each
    popped node is scored with a single kernel call.  Entries are pushed
    in storage order in both modes, so tie-breaking is identical.

    When ``tree`` is a :class:`~repro.rtree.flat.FlatRTree` the
    traversal runs entirely over its arrays (vectorised keys are then
    required) with identical emission order and accounting.
    """
    if isinstance(tree, FlatRTree):
        if points_key is None or mbrs_key is None:
            raise ValueError(
                "flat snapshots are traversed with vectorised keys; "
                "pass points_key and mbrs_key"
            )
        return flat_incremental_nearest_generic(tree, points_key, mbrs_key)
    return _object_incremental_nearest_generic(
        tree, node_key, point_key, points_key=points_key, mbrs_key=mbrs_key
    )


def _object_incremental_nearest_generic(
    tree: RTree,
    node_key,
    point_key,
    *,
    points_key=None,
    mbrs_key=None,
) -> Iterator[Neighbor]:
    """The object-tree traversal behind :func:`incremental_nearest_generic`."""
    if len(tree) == 0:
        return
    counter = itertools.count()
    heap: list[tuple[float, int, object]] = []
    root_bound = node_key(tree.root.compute_mbr())
    heapq.heappush(heap, (root_bound, next(counter), tree.root))

    while heap:
        key, _, payload = heapq.heappop(heap)
        if not isinstance(payload, Node):
            yield Neighbor(payload.record_id, payload.point, key)
            continue
        node = tree.read_node(payload)
        if node.is_leaf:
            if points_key is not None:
                values = points_key(node.points_array())
                for entry, value in zip(node.entries, values):
                    heapq.heappush(heap, (float(value), next(counter), entry))
            else:
                for entry in node.entries:
                    heapq.heappush(heap, (point_key(entry.point), next(counter), entry))
        else:
            if mbrs_key is not None:
                lows, highs = node.child_bounds()
                bounds = mbrs_key(lows, highs)
                for entry, bound in zip(node.entries, bounds):
                    heapq.heappush(heap, (float(bound), next(counter), entry.child))
            else:
                for entry in node.entries:
                    heapq.heappush(heap, (node_key(entry.mbr), next(counter), entry.child))


def flat_incremental_nearest_generic(
    flat: FlatRTree,
    points_key: Callable[[np.ndarray], np.ndarray],
    mbrs_key: Callable[[np.ndarray, np.ndarray], np.ndarray],
    *,
    points_aux: Callable[[np.ndarray], np.ndarray] | None = None,
) -> Iterator[Neighbor]:
    """Best-first stream over a flat snapshot; no ``Node`` objects exist.

    Heap entries are plain tuples of floats and ints: nodes are
    ``(bound, tiebreak, node_id)`` and leaf points
    ``(key, tiebreak, row, record_id[, aux])`` — the record id is
    converted once per leaf through ``tolist()`` so the yield path never
    touches a numpy scalar.  Push order, key values and node-access
    charges replicate the object-tree traversal exactly, so the emitted
    stream (and any attached buffer's hit/miss sequence) is
    bit-identical.

    ``points_aux`` optionally computes one extra value per leaf point in
    the same batched call pattern (e.g. the exact aggregate distance for
    SPM's consumer); it is carried on ``Neighbor.aux`` and never affects
    ordering or accounting.
    """
    if len(flat) == 0:
        return
    counter = itertools.count()
    lows = flat.lows
    highs = flat.highs
    child_start = flat.child_start
    child_count = flat.child_count
    levels = flat.levels
    points = flat.points
    record_ids = flat.record_ids
    read_node = flat.read_node
    push = heapq.heappush
    pop = heapq.heappop

    root_bound = float(mbrs_key(lows[0:1], highs[0:1])[0])
    heap: list[tuple] = [(root_bound, next(counter), 0)]

    while heap:
        item = pop(heap)
        if len(item) != 3:
            yield Neighbor(item[3], points[item[2]], item[0], item[4] if len(item) == 5 else None)
            continue
        index = read_node(item[2])
        start = int(child_start[index])
        stop = start + int(child_count[index])
        if levels[index] == 0:
            slice_points = points[start:stop]
            values = points_key(slice_points).tolist()
            ids = record_ids[start:stop].tolist()
            if points_aux is not None:
                aux_values = points_aux(slice_points).tolist()
                row = start
                for value, record_id, aux in zip(values, ids, aux_values):
                    push(heap, (value, next(counter), row, record_id, aux))
                    row += 1
            else:
                row = start
                for value, record_id in zip(values, ids):
                    push(heap, (value, next(counter), row, record_id))
                    row += 1
        else:
            bounds = mbrs_key(lows[start:stop], highs[start:stop]).tolist()
            for offset, bound in enumerate(bounds):
                push(heap, (bound, next(counter), start + offset))


# ----------------------------------------------------------------------
# multi-stream frontiers (the engine behind flat MQM)
# ----------------------------------------------------------------------
#: Field offsets of the *segment* lists handed out by
#: :class:`MultiStreamFrontier`.  A segment is the prefix of one
#: stream's merged pending frontier that provably precedes every node
#: bound still in that stream's heap: a driver may consume it inline —
#: plain list indexing per neighbor, no comparisons, no heap traffic.
SEG_POS = 0    # cursor
SEG_END = 1    # number of emissions in the segment
SEG_KEYS = 2   # per-neighbor distance to the stream's query point
SEG_ROWS = 3   # row in ``flat.points``
SEG_IDS = 4    # record ids

#: Pending entries pack ``(push counter, point row)`` into one int64 as
#: ``counter << 32 | row``; counters are unique, so packed order on key
#: ties equals counter order and the row bits never decide anything.
#: (Both fields stay below 2**31 / 2**32 for any realistic snapshot.)
_PACK_SHIFT = 32
_PACK_ROW = (1 << _PACK_SHIFT) - 1
_PACK_STEP = (1 << _PACK_SHIFT) + 1  # counter and row advance together


class MultiStreamFrontier:
    """All ``n`` incremental-NN frontiers of one query group, as one engine.

    MQM drives one incremental nearest-neighbor stream per query point.
    Run as ``n`` independent :func:`incremental_nearest` generators, each
    stream pays generator resumption, per-stream kernel calls on tiny
    arrays, and one heap tuple per leaf point.  This class keeps the
    per-stream state in struct-of-arrays form instead:

    * **shared per-node score matrices** — the first stream to read a
      node triggers one ``(n, fanout)`` kernel call that scores the
      node's child boxes (or leaf points, plus their exact aggregate
      group distances) against *all* query points at once
      (:class:`~repro.geometry.kernels.Scorer2D` in two dimensions, the
      general kernels otherwise), followed by one batched stable argsort
      that fixes every stream's emission order for that leaf; later
      streams reuse their row;
    * **merged pending frontier** — each stream keeps the points of its
      visited leaves merged into one ``(key, counter)``-sorted pair of
      arrays (key array plus packed counter/row array) while its heap
      holds *node bounds only*, as plain ``(bound, counter, node_id)``
      tuples.  Merging is one stable argsort by key: every pending
      counter predates every counter of a newly read leaf, so key-stable
      order *is* ``(key, counter)`` order;
    * **inline segments** — between two node reads the stream emits the
      pending prefix that lies strictly below the smallest node bound;
      that segment is materialised as plain lists once and consumed by
      the driver without calling back into the frontier.

    The observable behaviour replicates ``n`` independent
    :func:`flat_incremental_nearest_generic` streams *exactly*.  In the
    reference generator a node is read when its bound reaches the top of
    a heap holding both nodes and points — i.e. precisely when it
    precedes, in ``(key, push counter)`` order, every other frontier
    node and every already-scored point.  That is the identical trigger
    used here (nodes against the pending head), so node reads — and
    with them ``read_node`` charges and any attached LRU buffer's
    hit/miss sequence — happen in the same order, and points are
    emitted in the same globally sorted ``(key, counter)`` order with
    the same float keys.  Per-point aggregate group distances ride
    along for free in :attr:`agg_by_row`, bit-identical to
    ``GroupQuery.distance_to_canonical`` (same per-element arithmetic,
    same contiguous-axis reduction).

    Streams are indexed by *original* group order; the aggregate
    reduction therefore sums query points in exactly the order the
    per-record computation of object MQM does.
    """

    __slots__ = (
        "_flat",
        "_group",
        "_scorer",
        "_node_heaps",
        "segs",
        "agg_by_row",
        "_pend_keys",
        "_pend_packed",
        "_pend_pos",
        "_counters",
        "_leaf_cache",
        "_node_cache",
    )

    def __init__(self, flat: FlatRTree, group: np.ndarray):
        self._flat = flat
        self._group = np.asarray(group, dtype=np.float64)
        n = self._group.shape[0]
        self._scorer = kernels.scorer_for(self._group, None, kernels.SUM, flat.capacity)
        self._leaf_cache: dict[int, tuple] = {}
        self._node_cache: dict[int, np.ndarray] = {}
        #: Exact aggregate group distance per leaf row, filled leaf by
        #: leaf as leaves are first scored (public: drivers read the
        #: aggregate of an emitted row directly).
        self.agg_by_row = np.empty(flat.points.shape[0], dtype=np.float64)
        root_keys = self._bounds_matrix(flat.lows[0:1], flat.highs[0:1])[:, 0].tolist()
        # Mirrors the generator's start state: the root enters every
        # stream's heap with counter 0 before any node is read.
        self._node_heaps: list[list[tuple]] = [[(root_keys[i], 0, 0)] for i in range(n)]
        empty_f = np.empty(0, dtype=np.float64)
        empty_i = np.empty(0, dtype=np.int64)
        self._pend_keys: list[np.ndarray] = [empty_f] * n
        self._pend_packed: list[np.ndarray] = [empty_i] * n
        self._pend_pos: list[int] = [0] * n
        #: Per-stream active segment (public: drivers consume
        #: ``[SEG_POS, SEG_END)`` inline).
        self.segs: list[list] = [[0, 0, (), (), ()] for _ in range(n)]
        self._counters: list[int] = [1] * n

    # -- shared scoring -------------------------------------------------
    def _bounds_matrix(self, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
        """``(n, m)`` mindist matrix of ``m`` boxes against every stream."""
        if self._scorer is not None:
            # .T.copy(), not ascontiguousarray: a single-child slice
            # yields an (n, 1) transpose that numpy flags as contiguous,
            # and the cache must never alias the scorer workspace.
            return self._scorer.group_mindist_matrix(lows, highs).T.copy()
        return kernels.boxes_mindist_points(lows, highs, self._group)

    def _leaf_entry(self, index: int, start: int, stop: int) -> tuple:
        """Score *and presort* leaf ``index`` once for all streams.

        One ``(n, fanout)`` kernel call scores the leaf against every
        query point; a single batched stable argsort then fixes each
        stream's ``(key, push counter)`` emission order (points enter
        the reference generator's heap in storage order with consecutive
        counters, so a stable sort by key *is* ``(key, counter)``
        order).  The exact aggregate distances land in
        :attr:`agg_by_row`.
        """
        coords = self._flat.points[start:stop]
        if self._scorer is not None:
            matrix = self._scorer.group_distance_matrix(coords)  # (fanout, n) view
            aggregates = np.add.reduce(matrix, axis=1)
            keys = matrix.T.copy()  # must not alias the scorer workspace
        else:
            matrix = kernels.pairwise_distances(coords, self._group)
            aggregates = kernels.reduce_aggregate(matrix, kernels.SUM)
            keys = np.ascontiguousarray(matrix.T)
        self.agg_by_row[start:stop] = aggregates
        order = keys.argsort(kind="stable", axis=1)
        entry = (np.take_along_axis(keys, order, axis=1), order)
        self._leaf_cache[index] = entry
        return entry

    # -- the per-stream advance -----------------------------------------
    def advance(self, stream: int):
        """Advance stream ``stream`` by one neighbor.

        Returns ``(key, row, record_id)`` — the neighbor's distance to
        the stream's query point, its row in ``flat.points`` and its
        record id — or ``None`` once the stream is exhausted.  As a side
        effect the emitted neighbor's *segment* (every further pending
        point strictly below the smallest remaining node bound) is left
        in ``self.segs[stream]`` for inline consumption; exact aggregate
        group distances are read from :attr:`agg_by_row` by row.
        """
        flat = self._flat
        node_heap = self._node_heaps[stream]
        pend_keys = self._pend_keys[stream]
        pend_packed = self._pend_packed[stream]
        pend_pos = self._pend_pos[stream]
        heappop = heapq.heappop

        while True:
            pending = pend_pos < pend_keys.shape[0]
            if node_heap:
                top = node_heap[0]
                top_key = top[0]
                if pending:
                    head_key = pend_keys[pend_pos]
                    node_first = top_key < head_key or (
                        top_key == head_key
                        and top[1] < int(pend_packed[pend_pos]) >> _PACK_SHIFT
                    )
                else:
                    node_first = True
                if not node_first:
                    # The pending head precedes every node bound: emit a
                    # whole segment (strictly below the top bound; key
                    # ties fall back here one element at a time).
                    cut = int(pend_keys.searchsorted(top_key, side="left"))
                    if cut <= pend_pos:
                        cut = pend_pos + 1
                    return self._emit_segment(stream, pend_pos, cut)
                item = heappop(node_heap)
                index = flat.read_node(item[2])
                start = int(flat.child_start[index])
                count = int(flat.child_count[index])
                base = self._counters[stream]
                self._counters[stream] = base + count
                if flat.levels[index] != 0:
                    matrix = self._node_cache.get(index)
                    if matrix is None:
                        stop = start + count
                        matrix = self._bounds_matrix(
                            flat.lows[start:stop], flat.highs[start:stop]
                        )
                        self._node_cache[index] = matrix
                    bounds = matrix[stream].tolist()
                    push = heapq.heappush
                    for offset in range(count):
                        push(node_heap, (bounds[offset], base + offset, start + offset))
                    continue
                entry = self._leaf_cache.get(index)
                if entry is None:
                    entry = self._leaf_entry(index, start, start + count)
                leaf_keys = entry[0][stream]
                # counter = base + offset, row = start + offset: one
                # fused multiply-add packs both.
                leaf_packed = (base << _PACK_SHIFT) + start + entry[1][stream] * _PACK_STEP
                if pending:
                    merged_keys = np.concatenate((pend_keys[pend_pos:], leaf_keys))
                    merged_packed = np.concatenate((pend_packed[pend_pos:], leaf_packed))
                    # Every pending counter predates the new leaf's, so a
                    # stable sort by key alone reproduces the reference
                    # heap's (key, counter) order exactly.
                    sel = merged_keys.argsort(kind="stable")
                    pend_keys = merged_keys[sel]
                    pend_packed = merged_packed[sel]
                else:
                    pend_keys = leaf_keys
                    pend_packed = leaf_packed
                pend_pos = 0
                self._pend_keys[stream] = pend_keys
                self._pend_packed[stream] = pend_packed
                self._pend_pos[stream] = 0
                continue
            if not pending:
                self._pend_pos[stream] = pend_pos
                return None
            return self._emit_segment(stream, pend_pos, pend_keys.shape[0])

    def _emit_segment(self, stream: int, pos: int, cut: int):
        """Materialise pending ``[pos, cut)`` as the active segment."""
        rows = self._pend_packed[stream][pos:cut] & _PACK_ROW
        seg = [
            1,
            cut - pos,
            self._pend_keys[stream][pos:cut].tolist(),
            rows.tolist(),
            self._flat.record_ids[rows].tolist(),
        ]
        self.segs[stream] = seg
        self._pend_pos[stream] = cut
        return (seg[2][0], seg[3][0], seg[4][0])


def incremental_nearest(
    tree: RTree | FlatRTree, query: Sequence[float]
) -> Iterator[Neighbor]:
    """Yield indexed points in ascending Euclidean distance from ``query``."""
    q = as_point(query, dims=tree.dims)

    def node_key(mbr: MBR) -> float:
        return mbr.mindist_point(q)

    def point_key(point: np.ndarray) -> float:
        delta = point - q
        return float(np.sqrt(np.sum(delta * delta)))

    def points_key(points: np.ndarray) -> np.ndarray:
        return kernels.point_distances(points, q)

    def mbrs_key(lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
        return kernels.boxes_mindist_point(lows, highs, q)

    return incremental_nearest_generic(
        tree, node_key, point_key, points_key=points_key, mbrs_key=mbrs_key
    )


def best_first_nearest(
    tree: RTree | FlatRTree, query: Sequence[float], k: int = 1
) -> list[Neighbor]:
    """Return the ``k`` nearest neighbors of ``query`` using best-first search."""
    if k < 1:
        raise ValueError("k must be at least 1")
    results: list[Neighbor] = []
    for neighbor in incremental_nearest(tree, query):
        results.append(neighbor)
        if len(results) == k:
            break
    return results


def depth_first_nearest(tree: RTree, query: Sequence[float], k: int = 1) -> list[Neighbor]:
    """Return the ``k`` nearest neighbors of ``query`` using depth-first search.

    This is the branch-and-bound DF algorithm of [RKV95]: children are
    visited in ascending ``mindist`` order and subtrees whose ``mindist``
    exceeds the current k-th best distance are pruned.  It is included
    both as a baseline and because SPM/MBM admit DF implementations.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    q = as_point(query, dims=tree.dims)
    if len(tree) == 0:
        return []

    best: list[tuple[float, int, np.ndarray]] = []  # max-heap emulated with negated dist

    def kth_distance() -> float:
        if len(best) < k:
            return float("inf")
        return -best[0][0]

    def visit(node) -> None:
        node = tree.read_node(node)
        if node.is_leaf:
            dists = kernels.point_distances(node.points_array(), q)
            for entry, dist in zip(node.entries, dists):
                dist = float(dist)
                if dist < kth_distance():
                    heapq.heappush(best, (-dist, entry.record_id, entry.point))
                    if len(best) > k:
                        heapq.heappop(best)
            return
        lows, highs = node.child_bounds()
        mindists = kernels.boxes_mindist_point(lows, highs, q)
        for index in np.argsort(mindists, kind="stable"):
            if mindists[index] >= kth_distance():
                break
            visit(node.entries[index].child)

    visit(tree.root)
    ordered = sorted(best, key=lambda item: -item[0])
    return [Neighbor(record_id, point, -neg) for neg, record_id, point in ordered]
