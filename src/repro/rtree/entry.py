"""R-tree entries.

A node stores a list of entries.  Leaf nodes store :class:`LeafEntry`
objects (a data point plus its record identifier); internal nodes store
:class:`ChildEntry` objects (an MBR plus the child node it bounds).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.geometry.mbr import MBR
from repro.geometry.point import as_point

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.rtree.node import Node


class LeafEntry:
    """A data point stored at the leaf level.

    Attributes
    ----------
    point:
        The point coordinates as a float64 array.
    record_id:
        The identifier of the point in the original dataset (its row
        index for bulk-loaded trees).
    """

    __slots__ = ("point", "record_id")

    def __init__(self, point, record_id: int):
        self.point = as_point(point)
        self.record_id = int(record_id)

    @property
    def mbr(self) -> MBR:
        """Degenerate MBR covering the point (used by split/bulk-load code)."""
        return MBR.from_point(self.point)

    def __repr__(self) -> str:
        coords = ", ".join(f"{v:g}" for v in self.point)
        return f"LeafEntry(id={self.record_id}, point=[{coords}])"


class ChildEntry:
    """An internal-node entry bounding a child subtree."""

    __slots__ = ("mbr", "child")

    def __init__(self, mbr: MBR, child: "Node"):
        self.mbr = mbr
        self.child = child

    def recompute_mbr(self) -> None:
        """Tighten the stored MBR to exactly cover the child's entries."""
        self.mbr = self.child.compute_mbr()

    def __repr__(self) -> str:
        return f"ChildEntry(level={self.child.level}, mbr={self.mbr})"


def entries_mbr(entries) -> MBR:
    """Tightest MBR covering an iterable of leaf or child entries."""
    entries = list(entries)
    if not entries:
        raise ValueError("cannot compute the MBR of zero entries")
    if isinstance(entries[0], LeafEntry):
        points = np.vstack([e.point for e in entries])
        return MBR.from_points(points)
    return MBR.union_of(e.mbr for e in entries)
