"""Delta overlay: a mutable view over a frozen flat snapshot.

The write path follows the LSM pattern the ROADMAP names: the big,
read-optimised :class:`~repro.rtree.flat.FlatRTree` stays immutable
(and memory-mappable), while writes land in a small side structure —

* **inserts** go into ``delta``, a dynamic object R-tree holding only
  the post-snapshot points;
* **deletes** of snapshot-resident records become **tombstones**, a set
  of record ids the read path must skip (deletes of delta-resident
  records are removed from the delta physically).

Queries answer from the *merged* view: the algorithms traverse the base
snapshot with the tombstone set excluded and the delta tree as a second
candidate source, producing answers bit-identical to a from-scratch
rebuild over the live dataset (the distances come from the same kernels
applied to the same coordinates, and ties resolve by the library-wide
``(distance, record_id)`` rule).  :meth:`DeltaOverlay.compact` folds the
whole overlay into a generation ``N+1`` snapshot — the artifact a
background compactor publishes to the serving hot-swap.
"""

from __future__ import annotations

import heapq
from collections.abc import Iterator

import numpy as np

from repro.rtree.flat import FlatRTree
from repro.rtree.tree import RTree


class DeltaOverlay:
    """Inserts and tombstones layered over a frozen :class:`FlatRTree`.

    The overlay never mutates ``base``; it only grows ``delta`` and
    ``tombstones``.  ``dirty_ratio`` — pending writes over the base size
    — is the compaction trigger knob used by
    :class:`repro.serve.compaction.CompactingWriter`.
    """

    def __init__(self, base: FlatRTree, capacity: int | None = None):
        if not isinstance(base, FlatRTree):
            raise TypeError(f"DeltaOverlay expects a FlatRTree base, got {type(base).__name__}")
        self.base = base
        self.delta = RTree(dims=base.dims, capacity=capacity or base.capacity)
        self.tombstones: set[int] = set()
        self._delta_ids: set[int] = set()
        self._delta_cache: tuple[np.ndarray, np.ndarray] | None = None
        self._base_rows: dict[int, int] | None = None
        self._base_identity: bool | None = None
        self._max_id: int | None = None

    # ------------------------------------------------------------------
    # shape
    # ------------------------------------------------------------------
    @property
    def dims(self) -> int:
        return self.base.dims

    @property
    def generation(self) -> int:
        """The generation of the frozen base this overlay shadows."""
        return self.base.generation

    def __len__(self) -> int:
        """Number of live records in the merged view."""
        return self.base.size - len(self.tombstones) + len(self.delta)

    @property
    def dirty(self) -> bool:
        """True when the overlay holds any pending write."""
        return bool(self.tombstones) or len(self.delta) > 0

    @property
    def write_count(self) -> int:
        """Pending writes: delta inserts plus base tombstones."""
        return len(self.delta) + len(self.tombstones)

    @property
    def dirty_ratio(self) -> float:
        """Pending writes relative to the base size (compaction trigger)."""
        return self.write_count / max(1, self.base.size)

    @property
    def next_record_id(self) -> int:
        """Smallest id strictly above every id the merged view has seen."""
        if self._max_id is None:
            base_ids = np.asarray(self.base.record_ids)
            self._max_id = int(base_ids.max()) if base_ids.size else -1
        bound = self._max_id + 1
        if self._delta_ids:
            bound = max(bound, max(self._delta_ids) + 1)
        if self.tombstones:
            bound = max(bound, max(self.tombstones) + 1)
        return bound

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def insert(self, point, record_id: int) -> None:
        """Record a post-snapshot insert in the delta tree."""
        record_id = int(record_id)
        if record_id in self._delta_ids:
            raise ValueError(f"record id {record_id} is already live in the delta tree")
        if record_id not in self.tombstones and self.base_row(record_id) is not None:
            raise ValueError(f"record id {record_id} is already live in the base snapshot")
        self.delta.insert(np.asarray(point, dtype=np.float64), record_id=record_id)
        self._delta_ids.add(record_id)
        self._delta_cache = None
        if self._max_id is not None:
            self._max_id = max(self._max_id, record_id)

    def delete(self, point, record_id: int) -> bool:
        """Delete a record from the merged view; returns True when it was live.

        Delta-resident records are removed physically; base-resident
        records become tombstones (the base arrays stay untouched — they
        may be a read-only memory map shared with serving workers).
        """
        record_id = int(record_id)
        if record_id in self._delta_ids:
            removed = self.delta.delete(np.asarray(point, dtype=np.float64), record_id)
            if removed:
                self._delta_ids.discard(record_id)
                self._delta_cache = None
            return removed
        if record_id in self.tombstones:
            return False
        row = self.base_row(record_id)
        if row is None:
            return False
        if not np.array_equal(
            np.asarray(self.base.points[row], dtype=np.float64),
            np.asarray(point, dtype=np.float64),
        ):
            return False
        self.tombstones.add(record_id)
        return True

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def base_row(self, record_id: int) -> int | None:
        """The base-snapshot row holding ``record_id``, tombstoned or not."""
        if self._base_identity is None:
            base_ids = np.asarray(self.base.record_ids)
            self._base_identity = bool(
                np.array_equal(base_ids, np.arange(self.base.size, dtype=np.int64))
            )
        if self._base_identity:
            return record_id if 0 <= record_id < self.base.size else None
        if self._base_rows is None:
            self._base_rows = {
                int(rid): row for row, rid in enumerate(np.asarray(self.base.record_ids))
            }
        return self._base_rows.get(record_id)

    def delta_points(self) -> tuple[np.ndarray, np.ndarray]:
        """The delta tree's live records as ``(points, record_ids)``, id-ordered.

        Cached until the next delta write.  This is the read path's
        memtable scan: the delta stays small between compactions, so
        queries score it with one vectorised kernel call instead of a
        second tree traversal — the distances are computed by the same
        kernels either way, so the merged answers do not change.
        """
        if self._delta_cache is None:
            items = sorted(self.delta.all_points(), key=lambda item: item[0])
            if items:
                ids = np.array([rid for rid, _ in items], dtype=np.int64)
                points = np.vstack([point for _, point in items])
            else:
                ids = np.empty(0, dtype=np.int64)
                points = np.empty((0, self.dims), dtype=np.float64)
            self._delta_cache = (points, ids)
        return self._delta_cache

    def live_points(self) -> tuple[np.ndarray, np.ndarray]:
        """The merged live dataset as ``(points, record_ids)``, id-ordered.

        Record-id order makes the output deterministic and — because ids
        are allocated monotonically — identical to the append order of
        the original ingest, so bulk-loading it reproduces exactly the
        tree a from-scratch rebuild would build.
        """
        base_ids = np.asarray(self.base.record_ids)
        base_points = np.asarray(self.base.points)
        if self.tombstones:
            dead = np.fromiter(self.tombstones, dtype=np.int64, count=len(self.tombstones))
            keep = ~np.isin(base_ids, dead)
            base_points = base_points[keep]
            base_ids = base_ids[keep]
        parts_points = [base_points]
        parts_ids = [base_ids]
        if len(self.delta):
            delta_points, delta_ids = self.delta_points()
            parts_points.append(delta_points)
            parts_ids.append(delta_ids)
        points = np.concatenate(parts_points, axis=0)
        ids = np.concatenate(parts_ids, axis=0)
        order = np.argsort(ids, kind="stable")
        return np.ascontiguousarray(points[order]), ids[order]

    # ------------------------------------------------------------------
    # merged candidate stream
    # ------------------------------------------------------------------
    def group_nn_stream(self, query) -> Iterator:
        """Live records in ascending aggregate distance to ``query``.

        A lazy two-way merge of the base snapshot's and the delta tree's
        incremental best-first streams, keyed by ``(distance,
        record_id)``, with tombstoned records skipped — the incremental
        counterpart of the per-algorithm overlay execution in
        :func:`repro.api.executor.execute_overlay`.
        """
        from repro.core.aggregates import group_nn_stream

        streams = [group_nn_stream(self.base, query)]
        if len(self.delta):
            streams.append(group_nn_stream(self.delta, query))
        merged = (
            streams[0]
            if len(streams) == 1
            else heapq.merge(*streams, key=lambda n: (n.distance, n.record_id))
        )
        tombstones = self.tombstones
        for neighbor in merged:
            if neighbor.record_id not in tombstones:
                yield neighbor

    # ------------------------------------------------------------------
    # compaction
    # ------------------------------------------------------------------
    def compact(
        self, *, capacity: int | None = None, method: str = "str", buffer=None
    ) -> FlatRTree:
        """Fold base + delta − tombstones into a generation ``N+1`` snapshot.

        The result is bulk-loaded from the id-ordered live dataset with
        the original record ids preserved, so it is structurally
        identical to a from-scratch rebuild over the live points — and
        its ``generation`` is one above the base's, which is what the
        serving hot-swap (:meth:`repro.serve.server.GNNServer.swap_snapshot`)
        keys its epochs on.  The overlay itself is left untouched.
        """
        points, ids = self.live_points()
        flat = FlatRTree.bulk_load(
            points,
            capacity=capacity or self.base.capacity,
            method=method,
            buffer=buffer,
            record_ids=ids,
        )
        flat.generation = self.base.generation + 1
        return flat

    def __repr__(self) -> str:
        return (
            f"DeltaOverlay(base={self.base.size} pts gen{self.generation}, "
            f"delta={len(self.delta)}, tombstones={len(self.tombstones)})"
        )
