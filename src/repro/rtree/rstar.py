"""R*-tree insertion criteria.

The functions here implement the subtree-choice and forced-reinsertion
policies of the R*-tree [BKSS90], which the paper uses to index the data
set ``P``.  The actual tree plumbing (root replacement, overflow
handling) lives in :mod:`repro.rtree.tree`; this module only encodes the
selection heuristics so they can be unit-tested in isolation.
"""

from __future__ import annotations

from repro.geometry.mbr import MBR
from repro.rtree.node import Node

#: Fraction of the entries removed and re-inserted on the first overflow
#: of a node at each level (the value recommended by [BKSS90]).
REINSERT_FRACTION = 0.3


def choose_subtree(node: Node, new_mbr: MBR):
    """Return the child entry of ``node`` best suited to receive ``new_mbr``.

    Follows the R* policy: when the children are leaves, minimise the
    *overlap* enlargement (ties broken by area enlargement, then by
    area); otherwise minimise the area enlargement (ties broken by area).
    """
    entries = node.entries
    if not entries:
        raise ValueError("cannot choose a subtree in an empty node")
    children_are_leaves = entries[0].child.is_leaf

    if children_are_leaves:
        best = None
        best_key = None
        for entry in entries:
            enlarged = entry.mbr.union(new_mbr)
            overlap_before = _total_overlap(entry.mbr, entries, exclude=entry)
            overlap_after = _total_overlap(enlarged, entries, exclude=entry)
            key = (
                overlap_after - overlap_before,
                enlarged.area() - entry.mbr.area(),
                entry.mbr.area(),
            )
            if best_key is None or key < best_key:
                best_key = key
                best = entry
        return best

    best = None
    best_key = None
    for entry in entries:
        enlargement = entry.mbr.union(new_mbr).area() - entry.mbr.area()
        key = (enlargement, entry.mbr.area())
        if best_key is None or key < best_key:
            best_key = key
            best = entry
    return best


def reinsert_candidates(node: Node, node_mbr: MBR, count: int | None = None):
    """Select the entries to remove for forced re-insertion.

    The R* policy removes the ``REINSERT_FRACTION`` of entries whose
    centres lie farthest from the centre of the node's MBR, re-inserting
    them starting with the closest of the removed set.

    Returns
    -------
    tuple(list, list)
        ``(kept_entries, reinsert_entries)`` — the re-insert list is
        ordered closest-first, as prescribed by [BKSS90].
    """
    entries = list(node.entries)
    if count is None:
        count = max(1, int(round(REINSERT_FRACTION * len(entries))))
    center = node_mbr.center

    def distance_to_center(entry):
        entry_center = entry.mbr.center
        delta = entry_center - center
        return float((delta * delta).sum())

    ordered = sorted(entries, key=distance_to_center)
    kept = ordered[: len(entries) - count]
    reinsert = ordered[len(entries) - count :]
    reinsert.sort(key=distance_to_center)
    return kept, reinsert


def _total_overlap(mbr: MBR, entries, exclude) -> float:
    """Sum of overlap areas between ``mbr`` and every other entry's MBR."""
    total = 0.0
    for other in entries:
        if other is exclude:
            continue
        total += mbr.overlap_area(other.mbr)
    return total
