"""The R*-tree facade.

:class:`RTree` ties together the bulk loader, the R* insertion policies,
the splitting strategies and the access-counting machinery.  Every GNN
algorithm in :mod:`repro.core` receives an ``RTree`` over the dataset
``P`` and charges its node reads through :meth:`RTree.read_node`, which
is how the "NA" metric of the paper's experiments is produced.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.geometry.mbr import MBR
from repro.geometry.point import as_point, as_points
from repro.rtree import rstar
from repro.rtree.bulkload import PACKERS, pack
from repro.rtree.entry import ChildEntry, LeafEntry
from repro.rtree.node import Node
from repro.rtree.split import quadratic_split, rstar_split
from repro.rtree.stats import TreeStats

#: Node capacity used throughout the paper's experiments (1 KByte pages).
DEFAULT_CAPACITY = 50
DEFAULT_MIN_FILL_RATIO = 0.4

_SPLIT_FUNCTIONS = {
    "rstar": rstar_split,
    "quadratic": quadratic_split,
}

#: Kept as an alias of the bulkload registry for backwards compatibility.
_BULK_LOADERS = PACKERS


class RTree:
    """An R*-tree over multidimensional points.

    Parameters
    ----------
    dims:
        Dimensionality of the indexed points (2 in all of the paper's
        experiments).
    capacity:
        Maximum number of entries per node; the paper's setup of 1 KByte
        pages corresponds to 50.
    min_fill_ratio:
        Minimum node occupancy as a fraction of ``capacity``.
    split:
        ``"rstar"`` (default) or ``"quadratic"``.
    buffer:
        Optional LRU buffer (see :mod:`repro.storage.buffer`); when
        present, :attr:`stats` additionally distinguishes buffer hits
        from page faults.
    """

    def __init__(
        self,
        dims: int = 2,
        capacity: int = DEFAULT_CAPACITY,
        min_fill_ratio: float = DEFAULT_MIN_FILL_RATIO,
        split: str = "rstar",
        buffer=None,
    ):
        if capacity < 4:
            raise ValueError("node capacity must be at least 4")
        if not 0.0 < min_fill_ratio <= 0.5:
            raise ValueError("min_fill_ratio must be in (0, 0.5]")
        if split not in _SPLIT_FUNCTIONS:
            raise ValueError(f"unknown split strategy {split!r}")
        self.dims = int(dims)
        self.capacity = int(capacity)
        self.min_fill = max(2, int(capacity * min_fill_ratio))
        self._split_entries = _SPLIT_FUNCTIONS[split]
        self.buffer = buffer
        self.stats = TreeStats()
        self.root = Node(0)
        self.size = 0
        # Bulk-loaded (packed) trees may legitimately contain trailing
        # nodes below the dynamic minimum fill; validation relaxes the
        # occupancy check for them.
        self._strict_fill = True

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def bulk_load(
        cls,
        points: np.ndarray,
        capacity: int = DEFAULT_CAPACITY,
        method: str = "str",
        buffer=None,
        split: str = "rstar",
        record_ids=None,
    ) -> "RTree":
        """Build a packed tree over a static point set.

        ``method`` selects the packing strategy (``"str"`` or
        ``"hilbert"``).  Record ids default to the row indices of
        ``points``; ``record_ids`` overrides them (the sharding
        partitioner keeps each shard's *global* row numbers this way).
        """
        pts = as_points(points)
        tree = cls(dims=pts.shape[1], capacity=capacity, buffer=buffer, split=split)
        tree.root = pack(pts, capacity, method=method, record_ids=record_ids)
        tree.size = pts.shape[0]
        tree._strict_fill = False
        return tree

    # ------------------------------------------------------------------
    # access accounting
    # ------------------------------------------------------------------
    def read_node(self, node: Node) -> Node:
        """Charge one node access and return the node.

        Traversal code must call this before inspecting a node's
        entries; it is the single point where the "NA" metric and the
        LRU buffer are updated.
        """
        hit = False
        if self.buffer is not None:
            hit = self.buffer.access(node.node_id)
        self.stats.record_node_access(node.is_leaf, buffer_hit=hit)
        return node

    def reset_stats(self) -> None:
        """Zero the access counters (the buffer contents are preserved)."""
        self.stats.reset()

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.size

    @property
    def height(self) -> int:
        """Number of levels (1 for a tree that is a single leaf)."""
        return self.root.level + 1

    def root_mbr(self) -> MBR | None:
        """Tightest MBR of the whole dataset, or None when empty."""
        if self.size == 0:
            return None
        return self.root.compute_mbr()

    def node_count(self) -> int:
        """Total number of nodes in the tree."""
        return sum(1 for _ in self.iter_nodes())

    def iter_nodes(self):
        """Yield every node (without charging node accesses)."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            if not node.is_leaf:
                stack.extend(node.children())

    def all_points(self):
        """Yield ``(record_id, point)`` for every indexed point (no access charges)."""
        for node in self.iter_nodes():
            if node.is_leaf:
                yield from node.points()

    def range_search(self, region: MBR) -> list[LeafEntry]:
        """Return every leaf entry whose point lies inside ``region``."""
        results: list[LeafEntry] = []
        if self.size == 0:
            return results
        stack = [self.root]
        while stack:
            node = self.read_node(stack.pop())
            if node.is_leaf:
                for entry in node.entries:
                    if region.contains_point(entry.point):
                        results.append(entry)
            else:
                for entry in node.entries:
                    if region.intersects(entry.mbr):
                        stack.append(entry.child)
        return results

    # ------------------------------------------------------------------
    # insertion (R* with forced reinsertion)
    # ------------------------------------------------------------------
    def insert(self, point: Sequence[float], record_id: int | None = None) -> int:
        """Insert a point and return its record id."""
        p = as_point(point, dims=self.dims)
        if record_id is None:
            record_id = self.size
        self._insert_entry(LeafEntry(p, record_id), level=0, reinserted_levels=set())
        self.size += 1
        return int(record_id)

    def _insert_entry(self, entry, level: int, reinserted_levels: set[int]) -> None:
        path = self._choose_path(entry, level)
        node = path[-1][1] if path else self.root
        node.entries.append(entry)
        node.invalidate_arrays()
        self._adjust_path(path)
        if len(node.entries) > self.capacity:
            self._overflow(node, path, reinserted_levels)

    def _choose_path(self, entry, level: int):
        """Descend from the root to the target level, returning [(parent, child), ...]."""
        target_mbr = entry.mbr if isinstance(entry, (LeafEntry, ChildEntry)) else None
        path = []
        node = self.root
        while node.level > level:
            child_entry = rstar.choose_subtree(node, target_mbr)
            path.append((node, child_entry.child))
            node = child_entry.child
        return path

    def _adjust_path(self, path) -> None:
        """Tighten every child MBR along the insertion path, bottom-up."""
        for parent, child in reversed(path):
            for child_entry in parent.entries:
                if child_entry.child is child:
                    child_entry.recompute_mbr()
                    parent.invalidate_arrays()
                    break

    def _overflow(self, node: Node, path, reinserted_levels: set[int]) -> None:
        is_root = node is self.root
        if not is_root and node.level not in reinserted_levels:
            reinserted_levels.add(node.level)
            self._forced_reinsert(node, path, reinserted_levels)
        else:
            self._split_and_propagate(node, path, reinserted_levels)

    def _forced_reinsert(self, node: Node, path, reinserted_levels: set[int]) -> None:
        node_mbr = node.compute_mbr()
        kept, removed = rstar.reinsert_candidates(node, node_mbr)
        node.entries = list(kept)
        node.invalidate_arrays()
        self._adjust_path(path)
        for entry in removed:
            self._insert_entry(entry, level=node.level, reinserted_levels=reinserted_levels)

    def _split_and_propagate(self, node: Node, path, reinserted_levels: set[int]) -> None:
        group_a, group_b = self._split_entries(node.entries, self.min_fill)
        node.entries = list(group_a)
        node.invalidate_arrays()
        sibling = Node(node.level, group_b)

        if node is self.root:
            new_root = Node(node.level + 1)
            new_root.add(ChildEntry(node.compute_mbr(), node))
            new_root.add(ChildEntry(sibling.compute_mbr(), sibling))
            self.root = new_root
            return

        parent, _ = path[-1]
        for child_entry in parent.entries:
            if child_entry.child is node:
                child_entry.recompute_mbr()
                break
        parent.entries.append(ChildEntry(sibling.compute_mbr(), sibling))
        parent.invalidate_arrays()
        self._adjust_path(path[:-1])
        if len(parent.entries) > self.capacity:
            self._overflow(parent, path[:-1], reinserted_levels)

    # ------------------------------------------------------------------
    # deletion
    # ------------------------------------------------------------------
    def delete(self, point: Sequence[float], record_id: int) -> bool:
        """Remove the entry with the given point and record id.

        Returns True when an entry was removed.  Underfull nodes are
        condensed: they are removed from the tree and their surviving
        entries re-inserted, as in Guttman's original algorithm.
        """
        p = as_point(point, dims=self.dims)
        found = self._find_leaf(self.root, [], p, record_id)
        if found is None:
            return False
        path, leaf, entry = found
        leaf.entries.remove(entry)
        leaf.invalidate_arrays()
        self.size -= 1
        self._condense(path, leaf)
        # Shrink the root when it is an internal node with one child.
        while not self.root.is_leaf and len(self.root.entries) == 1:
            self.root = self.root.entries[0].child
        return True

    def _find_leaf(self, node: Node, path, point: np.ndarray, record_id: int):
        if node.is_leaf:
            for entry in node.entries:
                if entry.record_id == record_id and np.array_equal(entry.point, point):
                    return path, node, entry
            return None
        for child_entry in node.entries:
            if child_entry.mbr.contains_point(point):
                found = self._find_leaf(
                    child_entry.child, path + [(node, child_entry.child)], point, record_id
                )
                if found is not None:
                    return found
        return None

    def _condense(self, path, node: Node) -> None:
        orphans: list[tuple[int, object]] = []
        current = node
        for parent, child in reversed(path):
            if len(current.entries) < self.min_fill:
                parent.entries = [e for e in parent.entries if e.child is not current]
                orphans.extend((current.level, entry) for entry in current.entries)
            else:
                for child_entry in parent.entries:
                    if child_entry.child is current:
                        child_entry.recompute_mbr()
                        break
            parent.invalidate_arrays()
            current = parent
        for level, entry in orphans:
            self._insert_entry(entry, level=level, reinserted_levels=set())

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check the structural invariants of the tree; raise AssertionError on violation."""
        if self.size == 0:
            return
        leaf_levels: set[int] = set()
        point_count = self._validate_node(self.root, None, leaf_levels, is_root=True)
        assert point_count == self.size, (
            f"tree holds {point_count} points but size says {self.size}"
        )
        assert leaf_levels == {0}, f"leaves found at levels {leaf_levels}, expected only level 0"

    def _validate_node(self, node: Node, bounding: MBR | None, leaf_levels: set[int], is_root: bool) -> int:
        if not is_root:
            minimum = self.min_fill if self._strict_fill else 1
            assert len(node.entries) >= minimum, (
                f"node {node.node_id} underfull: {len(node.entries)} < {minimum}"
            )
        assert len(node.entries) <= self.capacity, (
            f"node {node.node_id} overfull: {len(node.entries)} > {self.capacity}"
        )
        node_mbr = node.compute_mbr()
        if bounding is not None:
            assert bounding.contains(node_mbr), (
                f"child MBR {node_mbr} escapes its parent entry {bounding}"
            )
        if node.is_leaf:
            leaf_levels.add(node.level)
            return len(node.entries)
        count = 0
        for entry in node.entries:
            assert entry.child.level == node.level - 1, "child level mismatch"
            assert entry.mbr.contains(entry.child.compute_mbr()), "stale child MBR"
            count += self._validate_node(entry.child, entry.mbr, leaf_levels, is_root=False)
        return count

    def __repr__(self) -> str:
        return (
            f"RTree(size={self.size}, dims={self.dims}, height={self.height}, "
            f"capacity={self.capacity})"
        )
