"""Node splitting strategies.

Two strategies are provided:

* :func:`rstar_split` — the R*-tree split of [BKSS90] (referenced by the
  paper as the index it builds): choose the split axis by minimum total
  margin, then the split index by minimum overlap (ties broken by area).
* :func:`quadratic_split` — Guttman's quadratic split, kept as a simpler
  alternative and used by tests as a cross-check.

Both operate on a list of entries and return two lists, each respecting
the minimum fill factor.
"""

from __future__ import annotations

from repro.rtree.entry import entries_mbr


def _entry_mbr(entry):
    return entry.mbr


def rstar_split(entries, min_fill: int):
    """Split ``entries`` into two groups using the R* criteria.

    Parameters
    ----------
    entries:
        Overflowing entry list (leaf or child entries).
    min_fill:
        Minimum number of entries each resulting group must contain.

    Returns
    -------
    tuple(list, list)
        The two entry groups.
    """
    entries = list(entries)
    count = len(entries)
    if count < 2 * min_fill:
        raise ValueError(
            f"cannot split {count} entries with a minimum fill of {min_fill} per group"
        )
    dims = _entry_mbr(entries[0]).dims

    best_axis = None
    best_axis_margin = None
    # Choose split axis: the one whose candidate distributions have the
    # smallest total margin.
    for axis in range(dims):
        margin_sum = 0.0
        for sort_key in (_sort_by_low(axis), _sort_by_high(axis)):
            ordered = sorted(entries, key=sort_key)
            for split_at in range(min_fill, count - min_fill + 1):
                left = entries_mbr(ordered[:split_at])
                right = entries_mbr(ordered[split_at:])
                margin_sum += left.margin() + right.margin()
        if best_axis_margin is None or margin_sum < best_axis_margin:
            best_axis_margin = margin_sum
            best_axis = axis

    # Choose the split index along the chosen axis: minimum overlap,
    # ties resolved by minimum combined area.
    best_groups = None
    best_overlap = None
    best_area = None
    for sort_key in (_sort_by_low(best_axis), _sort_by_high(best_axis)):
        ordered = sorted(entries, key=sort_key)
        for split_at in range(min_fill, count - min_fill + 1):
            left_entries = ordered[:split_at]
            right_entries = ordered[split_at:]
            left = entries_mbr(left_entries)
            right = entries_mbr(right_entries)
            overlap = left.overlap_area(right)
            area = left.area() + right.area()
            better = (
                best_overlap is None
                or overlap < best_overlap
                or (overlap == best_overlap and area < best_area)
            )
            if better:
                best_overlap = overlap
                best_area = area
                best_groups = (list(left_entries), list(right_entries))
    return best_groups


def quadratic_split(entries, min_fill: int):
    """Guttman's quadratic split.

    Picks the pair of entries that would waste the most area if grouped
    together as seeds, then assigns the remaining entries to the group
    whose MBR needs the smallest enlargement, while honouring the minimum
    fill factor.
    """
    entries = list(entries)
    count = len(entries)
    if count < 2 * min_fill:
        raise ValueError(
            f"cannot split {count} entries with a minimum fill of {min_fill} per group"
        )

    # Pick seeds: the pair with maximum dead space.
    worst_waste = -1.0
    seeds = (0, 1)
    for i in range(count):
        mbr_i = _entry_mbr(entries[i])
        for j in range(i + 1, count):
            mbr_j = _entry_mbr(entries[j])
            waste = mbr_i.union(mbr_j).area() - mbr_i.area() - mbr_j.area()
            if waste > worst_waste:
                worst_waste = waste
                seeds = (i, j)

    group_a = [entries[seeds[0]]]
    group_b = [entries[seeds[1]]]
    mbr_a = _entry_mbr(group_a[0])
    mbr_b = _entry_mbr(group_b[0])
    remaining = [e for idx, e in enumerate(entries) if idx not in seeds]

    while remaining:
        # If one group must absorb all remaining entries to reach the
        # minimum fill, do so.
        if len(group_a) + len(remaining) == min_fill:
            group_a.extend(remaining)
            remaining = []
            break
        if len(group_b) + len(remaining) == min_fill:
            group_b.extend(remaining)
            remaining = []
            break
        # Pick the entry with the strongest preference for one group.
        best_idx = None
        best_preference = -1.0
        best_target = None
        for idx, entry in enumerate(remaining):
            mbr = _entry_mbr(entry)
            enlarge_a = mbr_a.union(mbr).area() - mbr_a.area()
            enlarge_b = mbr_b.union(mbr).area() - mbr_b.area()
            preference = abs(enlarge_a - enlarge_b)
            if preference > best_preference:
                best_preference = preference
                best_idx = idx
                best_target = "a" if enlarge_a < enlarge_b else "b"
        entry = remaining.pop(best_idx)
        mbr = _entry_mbr(entry)
        if best_target == "a":
            group_a.append(entry)
            mbr_a = mbr_a.union(mbr)
        else:
            group_b.append(entry)
            mbr_b = mbr_b.union(mbr)
    return group_a, group_b


def _sort_by_low(axis: int):
    return lambda entry: float(_entry_mbr(entry).low[axis])


def _sort_by_high(axis: int):
    return lambda entry: float(_entry_mbr(entry).high[axis])
