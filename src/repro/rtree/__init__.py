"""A from-scratch R*-tree and the search primitives the GNN algorithms need.

The package provides:

* :class:`~repro.rtree.tree.RTree` — an R*-tree over points with insert,
  delete, range search and STR bulk loading,
* best-first (incremental) and depth-first nearest-neighbor search in
  :mod:`repro.rtree.traversal`,
* an incremental closest-pair join over two trees in
  :mod:`repro.rtree.closest_pairs` (needed by the GCP algorithm of
  Section 4.1 of the paper),
* node-access accounting in :mod:`repro.rtree.stats`, which the paper's
  experiments report as "NA",
* a mutable view over a frozen snapshot — delta tree plus tombstones —
  in :mod:`repro.rtree.overlay` (the engine's LSM-style write path).
"""

from repro.rtree.closest_pairs import incremental_closest_pairs
from repro.rtree.entry import ChildEntry, LeafEntry
from repro.rtree.flat import FlatRTree
from repro.rtree.node import Node
from repro.rtree.overlay import DeltaOverlay
from repro.rtree.stats import TreeStats
from repro.rtree.traversal import (
    best_first_nearest,
    depth_first_nearest,
    flat_incremental_nearest_generic,
    incremental_nearest,
    incremental_nearest_generic,
)
from repro.rtree.tree import RTree

__all__ = [
    "ChildEntry",
    "DeltaOverlay",
    "FlatRTree",
    "LeafEntry",
    "Node",
    "RTree",
    "TreeStats",
    "best_first_nearest",
    "depth_first_nearest",
    "flat_incremental_nearest_generic",
    "incremental_closest_pairs",
    "incremental_nearest",
    "incremental_nearest_generic",
]
