"""Bulk loading.

The experiments of the paper operate on static datasets (PP and TS), so
the natural way to build the R*-tree is a packed bulk load.  Two packing
strategies are provided:

* :func:`str_pack` — Sort-Tile-Recursive [LEL97-style], the default; it
  produces well-shaped, low-overlap leaves for point data.
* :func:`hilbert_pack` — packing by Hilbert order, useful as an
  alternative and for testing that tree quality (not a specific packing)
  drives the algorithms' behaviour.

Both return the root :class:`~repro.rtree.node.Node` of a height-balanced
tree whose nodes contain at most ``capacity`` entries.
"""

from __future__ import annotations

import math

import numpy as np

from repro.geometry.hilbert import hilbert_sort
from repro.geometry.point import as_points
from repro.rtree.entry import ChildEntry, LeafEntry
from repro.rtree.node import Node


def _resolve_record_ids(count: int, record_ids) -> np.ndarray:
    """Validate caller-supplied record ids (default: the row indices).

    Horizontal sharding is the motivating caller: a shard packs the rows
    ``points[global_rows]`` but must keep the *global* row numbers as
    record ids, so federated answers merge against the same identifier
    space as a single index over the whole dataset.
    """
    if record_ids is None:
        return np.arange(count, dtype=np.int64)
    ids = np.asarray(record_ids, dtype=np.int64)
    if ids.ndim != 1 or ids.shape[0] != count:
        raise ValueError(
            f"record_ids must be a flat vector with one id per point "
            f"({count}), got shape {ids.shape}"
        )
    return ids


def _pack_upwards(nodes: list[Node], capacity: int) -> Node:
    """Group ``nodes`` into parents level by level until one root remains."""
    level = nodes[0].level
    while len(nodes) > 1:
        level += 1
        parents: list[Node] = []
        for start in range(0, len(nodes), capacity):
            children = nodes[start : start + capacity]
            parent = Node(level)
            for child in children:
                parent.add(ChildEntry(child.compute_mbr(), child))
            parents.append(parent)
        nodes = parents
    return nodes[0]


def str_pack(points: np.ndarray, capacity: int, record_ids=None) -> Node:
    """Bulk load points with the Sort-Tile-Recursive strategy.

    Points are sorted by the first coordinate, cut into vertical slabs of
    roughly ``sqrt(leaf_count)`` leaves each, and each slab is sorted by
    the second coordinate before being chopped into leaves.  Higher
    dimensions reuse the first two coordinates for tiling, which is
    sufficient for the (2-D) evaluation of the paper while remaining
    correct for any dimensionality.
    """
    pts = as_points(points)
    count = pts.shape[0]
    ids = _resolve_record_ids(count, record_ids)
    leaf_count = math.ceil(count / capacity)
    slab_count = max(1, math.ceil(math.sqrt(leaf_count)))
    per_slab = math.ceil(count / slab_count)

    order_x = np.argsort(pts[:, 0], kind="stable")
    leaves: list[Node] = []
    for slab_start in range(0, count, per_slab):
        slab_ids = order_x[slab_start : slab_start + per_slab]
        sort_axis = 1 if pts.shape[1] > 1 else 0
        slab_ids = slab_ids[np.argsort(pts[slab_ids, sort_axis], kind="stable")]
        for leaf_start in range(0, slab_ids.size, capacity):
            chunk = slab_ids[leaf_start : leaf_start + capacity]
            leaf = Node(0)
            for row in chunk:
                leaf.add(LeafEntry(pts[row], int(ids[row])))
            leaves.append(leaf)
    return _pack_upwards(leaves, capacity)


def pack(points: np.ndarray, capacity: int, method: str = "str", record_ids=None) -> Node:
    """Bulk load with a named packing strategy (``"str"`` or ``"hilbert"``).

    The single entry point shared by ``RTree.bulk_load`` and
    ``FlatRTree.bulk_load``, so both index flavours accept exactly the
    same methods and fail with the same message on a typo.
    ``record_ids`` optionally replaces the default row-index ids (one id
    per point) — the sharding partitioner passes global row numbers.
    """
    if method not in PACKERS:
        raise ValueError(f"unknown bulk-load method {method!r}")
    return PACKERS[method](points, capacity, record_ids=record_ids)


def hilbert_pack(points: np.ndarray, capacity: int, record_ids=None) -> Node:
    """Bulk load points in Hilbert-curve order."""
    pts = as_points(points)
    ids = _resolve_record_ids(pts.shape[0], record_ids)
    order = hilbert_sort(pts)
    leaves: list[Node] = []
    for start in range(0, order.size, capacity):
        chunk = order[start : start + capacity]
        leaf = Node(0)
        for row in chunk:
            leaf.add(LeafEntry(pts[row], int(ids[row])))
        leaves.append(leaf)
    return _pack_upwards(leaves, capacity)


#: Registered packing strategies by name (consulted by :func:`pack`).
PACKERS = {
    "str": str_pack,
    "hilbert": hilbert_pack,
}
