"""Background compaction: fold engine overlays into served snapshots.

:class:`CompactingWriter` closes the loop between the engine's LSM-style
write path and the serving hot-swap.  It owns the *write side* of one
:class:`~repro.core.engine.GNNEngine`: inserts and deletes go through it
(lock-protected, so a background compaction never races a writer), and
once the overlay's dirty ratio crosses a threshold it compacts — the
live dataset (base minus tombstones plus delta inserts) is bulk-loaded
into a generation-``N+1`` :class:`~repro.rtree.flat.FlatRTree` and, when
a :class:`~repro.serve.server.GNNServer` is attached, published through
:meth:`GNNServer.publish_snapshot` so the worker pool remaps to the new
file between batches.  Readers never block: queries served before the
swap answer from the old generation, queries after it from the new one,
and both views contain exactly the records that were live when their
batch was dispatched.

The writer can run its trigger loop on a daemon thread
(:meth:`start` / :meth:`stop`, or the context manager) or be driven
manually with :meth:`maybe_compact` / :meth:`compact_now` — the
benchmark and the tests use the manual mode for determinism.
"""

from __future__ import annotations

import threading
import time

from repro.core.engine import GNNEngine
from repro.obs.logging import get_logger
from repro.rtree.flat import FlatRTree

_log = get_logger("serve.compaction")

#: Default dirty-ratio trigger: compact once overlay writes reach 10% of
#: the base snapshot's size (the benchmark's reference operating point).
DEFAULT_DIRTY_RATIO = 0.10

#: Default background poll interval (seconds).
DEFAULT_INTERVAL_S = 0.05


class CompactingWriter:
    """Apply writes to an engine and compact/publish when dirty enough.

    Parameters
    ----------
    engine:
        The engine absorbing the writes.  Any engine with a flat base
        works; a snapshot-only :meth:`GNNEngine.from_index` engine is
        the usual shape (one writer per served snapshot).
    server:
        Optional :class:`~repro.serve.server.GNNServer`; every
        compaction is then published to it (persisted under the next
        generation token and hot-swapped into dispatch).  Without a
        server the compaction still folds the overlay locally.
    dirty_ratio_trigger:
        Compact when ``engine.dirty_ratio`` (overlay writes over base
        size) reaches this; ``None`` disables ratio triggering.
    min_writes:
        Never trigger below this many overlay writes, whatever the
        ratio (protects tiny bases from compacting on every write).
    interval_s:
        Poll period of the background thread.
    store:
        Optional :class:`~repro.storage.generations.GenerationStore`;
        every compaction is then *durably published* as a new snapshot
        generation (atomic rename + manifest) before anything else
        observes it.
    wal:
        Optional :class:`~repro.storage.wal.WriteAheadLog` (usually the
        engine's own, attached via :meth:`GNNEngine.attach_wal`).  After
        a durable publication the log is truncated — and only then: a
        crash between publish and truncate leaves a stale log recovery
        recognises and discards, never a window where folded writes
        exist nowhere durable.
    """

    def __init__(
        self,
        engine: GNNEngine,
        server=None,
        *,
        dirty_ratio_trigger: float | None = DEFAULT_DIRTY_RATIO,
        min_writes: int = 1,
        interval_s: float = DEFAULT_INTERVAL_S,
        store=None,
        wal=None,
    ):
        if dirty_ratio_trigger is not None and dirty_ratio_trigger <= 0:
            raise ValueError("dirty_ratio_trigger must be positive (or None)")
        if min_writes < 1:
            raise ValueError("min_writes must be at least 1")
        self.engine = engine
        self.server = server
        self.store = store
        self.wal = wal
        self.dirty_ratio_trigger = dirty_ratio_trigger
        self.min_writes = int(min_writes)
        self.interval_s = float(interval_s)
        self.compactions = 0
        self.published_epochs: list[int] = []
        self._lock = threading.RLock()
        self._wake = threading.Event()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    # the write side
    # ------------------------------------------------------------------
    def insert(self, point, record_id: int | None = None) -> int:
        """Insert one point (see :meth:`GNNEngine.insert`); wakes the loop."""
        with self._lock:
            assigned = self.engine.insert(point, record_id=record_id)
        self._wake.set()
        return assigned

    def delete(self, point, record_id: int) -> bool:
        """Delete one record (see :meth:`GNNEngine.delete`); wakes the loop."""
        with self._lock:
            removed = self.engine.delete(point, record_id)
        if removed:
            self._wake.set()
        return removed

    @property
    def should_compact(self) -> bool:
        """Whether the trigger condition currently holds."""
        with self._lock:
            if not self.engine.dirty:
                return False
            overlay = self.engine.overlay
            if overlay.write_count < self.min_writes:
                return False
            if self.dirty_ratio_trigger is None:
                return False
            return overlay.dirty_ratio >= self.dirty_ratio_trigger

    # ------------------------------------------------------------------
    # compaction
    # ------------------------------------------------------------------
    def compact_now(self) -> FlatRTree | None:
        """Compact unconditionally; publish when a server is attached.

        Returns the new base snapshot, or ``None`` when the engine had
        no pending writes (nothing was folded or published).
        """
        with self._lock:
            if not self.engine.dirty:
                return None
            started = time.perf_counter()
            writes = self.engine.overlay.write_count
            flat = self.engine.compact()
            self.compactions += 1
            _log.info(
                "compaction.completed",
                generation=flat.generation,
                writes_folded=writes,
                size=flat.size,
                elapsed_s=round(time.perf_counter() - started, 6),
            )
            if self.store is not None:
                # Durable-first ordering: snapshot + manifest hit disk,
                # *then* the WAL is truncated.  The writer lock spans
                # both, so no insert/delete can land in the window and
                # be dropped by the truncation.
                self.store.publish(flat)
                wal = self.wal if self.wal is not None else self.engine.wal
                if wal is not None:
                    wal.reset(flat.generation)
            if self.server is not None:
                self.published_epochs.append(self.server.publish_snapshot(flat))
            return flat

    def maybe_compact(self) -> FlatRTree | None:
        """Compact only if :attr:`should_compact`; the loop's body."""
        with self._lock:
            if not self.should_compact:
                return None
            return self.compact_now()

    # ------------------------------------------------------------------
    # background lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "CompactingWriter":
        """Start the trigger loop on a daemon thread (idempotent)."""
        with self._lock:
            if self._thread is None or not self._thread.is_alive():
                self._stop.clear()
                self._thread = threading.Thread(
                    target=self._loop, name="gnn-compactor", daemon=True
                )
                self._thread.start()
        return self

    def stop(self, *, final_compact: bool = False) -> None:
        """Stop the loop; optionally fold any remaining writes first."""
        self._stop.set()
        self._wake.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=10.0)
            self._thread = None
        if final_compact:
            self.compact_now()

    def _loop(self) -> None:
        while not self._stop.is_set():
            self._wake.wait(timeout=self.interval_s)
            self._wake.clear()
            if self._stop.is_set():
                return
            self.maybe_compact()

    def __enter__(self) -> "CompactingWriter":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def __repr__(self) -> str:
        return (
            f"CompactingWriter(compactions={self.compactions}, "
            f"dirty={self.engine.dirty}, "
            f"trigger={self.dirty_ratio_trigger}, "
            f"running={self._thread is not None and self._thread.is_alive()})"
        )
