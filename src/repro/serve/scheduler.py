"""Micro-batching: coalesce compatible requests within a time/size window.

:class:`MicroBatcher` is the pure scheduling core of the serving
subsystem — no threads, no queues, no clock of its own, which is what
makes it unit-testable.  The server feeds it ``(key, item)`` pairs and
asks, against an explicit ``now``, which batches are ready:

* requests whose key (:func:`repro.api.executor.shared_bucket_key` via
  the server) names a shared-traversal bucket accumulate per key, so a
  flushed batch is answerable by *one* ``mbm_batch`` traversal;
* requests with ``key=None`` (not shared-traversal eligible) coalesce
  under a per-plan-signature key as well — ``execute_many`` still
  amortises planning, Hilbert locality and brute-force tensors for
  them, falling back to per-query execution where nothing amortises;
* a bucket flushes when it reaches ``max_batch`` items (size trigger,
  reported by :meth:`offer` so the caller can dispatch immediately) or
  when its *oldest* item has waited ``window_s`` (time trigger, polled
  via :meth:`due` / :meth:`next_deadline`).

``window_s = 0`` degenerates to per-request dispatch: every offer
returns its item immediately, which is the latency-first configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable


@dataclass
class _Bucket:
    deadline: float
    items: list = field(default_factory=list)


class MicroBatcher:
    """Time/size-windowed request coalescing, bucketed by compatibility key.

    Parameters
    ----------
    window_s:
        How long the oldest request of a bucket may wait before the
        bucket is flushed regardless of size.
    max_batch:
        Size at which a bucket flushes immediately.
    """

    def __init__(self, window_s: float, max_batch: int):
        if window_s < 0.0:
            raise ValueError("window_s must be non-negative")
        if max_batch < 1:
            raise ValueError("max_batch must be positive")
        self.window_s = float(window_s)
        self.max_batch = int(max_batch)
        self._buckets: dict[Hashable, _Bucket] = {}
        self._pending = 0

    # ------------------------------------------------------------------
    # feeding
    # ------------------------------------------------------------------
    def offer(self, key: Hashable, item: Any, now: float) -> list | None:
        """Queue ``item`` under ``key``; return a batch if one is ready.

        A non-``None`` return is a full bucket (size trigger) — or, with
        a zero window, the item itself — that the caller should dispatch
        right away.
        """
        if self.window_s == 0.0:
            return [item]
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = self._buckets[key] = _Bucket(deadline=now + self.window_s)
        bucket.items.append(item)
        self._pending += 1
        if len(bucket.items) >= self.max_batch:
            return self._flush(key)
        return None

    # ------------------------------------------------------------------
    # time trigger
    # ------------------------------------------------------------------
    def due(self, now: float) -> list[list]:
        """Flush and return every bucket whose window has expired."""
        expired = [key for key, bucket in self._buckets.items() if bucket.deadline <= now]
        return [self._flush(key) for key in expired]

    def next_deadline(self) -> float | None:
        """The earliest pending bucket deadline, or None when empty."""
        if not self._buckets:
            return None
        return min(bucket.deadline for bucket in self._buckets.values())

    def drain(self) -> list[list]:
        """Flush everything (shutdown path)."""
        return [self._flush(key) for key in list(self._buckets)]

    def _flush(self, key: Hashable) -> list:
        bucket = self._buckets.pop(key)
        self._pending -= len(bucket.items)
        return bucket.items

    def __len__(self) -> int:
        """Number of requests currently waiting in buckets."""
        return self._pending
