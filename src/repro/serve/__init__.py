"""Concurrent GNN serving over shared memory-mapped snapshots.

The serving subsystem turns the single-process primitives of this
package into a one-machine server:

* a published :class:`~repro.rtree.flat.FlatRTree` snapshot (``.npz``)
  is memory-mapped read-only by N worker processes — the OS page cache
  holds the index once, shared by all of them;
* a micro-batching scheduler coalesces compatible requests within a
  time/size window into the executor's shared-traversal buckets, so a
  burst of "where should the n of us meet?" queries pays one traversal,
  not one per request;
* admission control sheds load past a bounded high-water mark, and a
  hot-swap path publishes successor snapshots (generation tokens) that
  workers pick up between batches, without dropping a single request;
* a :class:`CompactingWriter` gives the served snapshot a write path:
  inserts and deletes land in the engine's delta overlay, and once the
  dirty ratio crosses a threshold the overlay is folded into a
  generation-``N+1`` snapshot and published through the same hot-swap —
  readers never block and never see a half-applied write.

Quickstart::

    from repro.serve import GNNServer
    with GNNServer.from_points(points, tmpdir, workers=4) as server:
        handle = server.handle()
        result = handle.run(QuerySpec(group=group, k=3))

Answers are bit-identical to sequential ``engine.execute`` — batching
and parallelism change the schedule, never the arithmetic.
"""

from repro.serve.compaction import CompactingWriter
from repro.serve.protocol import check_servable
from repro.serve.scheduler import MicroBatcher
from repro.serve.server import (
    AsyncServerHandle,
    GNNServer,
    ServerHandle,
    ServerOverloadedError,
    ServingError,
    WorkerDiedError,
    default_worker_count,
)
from repro.serve.stats import ServerStats, ServingCounters

__all__ = [
    "AsyncServerHandle",
    "CompactingWriter",
    "GNNServer",
    "MicroBatcher",
    "ServerHandle",
    "ServerOverloadedError",
    "ServerStats",
    "ServingCounters",
    "ServingError",
    "WorkerDiedError",
    "check_servable",
    "default_worker_count",
]
