"""The worker process: a read-only engine over the shared mmap snapshot.

Every worker runs :func:`worker_main`: it maps the published snapshot
with ``FlatRTree.load(path, mmap_mode="r")`` — N workers mapping the
*same* ``.npz`` share its pages through the OS page cache, so the index
is held in physical memory once, not N times — wraps it in a read-only
:class:`~repro.core.engine.GNNEngine`, and drains the shared request
queue.  Each popped :class:`~repro.serve.protocol.BatchRequest` is
answered with one ``engine.execute_many`` call, which routes compatible
members through the shared-traversal bucket path and everything else
through the ordinary per-query path — answers are identical to
sequential ``engine.execute`` either way.

Hot-swap: a batch stamped with a newer epoch than the worker's mapped
snapshot makes the worker remap *before* executing it; the previous
batch always finishes on the snapshot it started with, so in-flight
work is never torn.

Failure containment: a request that fails to decode or execute turns
into an error string for that request id; the worker itself keeps
serving.  Only the shutdown sentinel (``None``) ends the loop.
"""

from __future__ import annotations

import time
import traceback

from repro.core.engine import GNNEngine
from repro.obs import trace as obs_trace
from repro.rtree.flat import FlatRTree
from repro.serve.protocol import (
    SHUTDOWN,
    BatchClaim,
    BatchReply,
    BatchRequest,
    decode_spec,
    encode_result,
)
from repro.serve.stats import ServingCounters
from repro.testing import faults


def _load_engine(snapshot_path: str) -> tuple[GNNEngine, int]:
    """Map the snapshot read-only and wrap it in a snapshot-only engine."""
    flat = FlatRTree.load(snapshot_path, mmap_mode="r")
    return GNNEngine.from_index(flat), flat.generation


def execute_batch_message(
    engine: GNNEngine,
    message: BatchRequest,
    io_stall_s_per_access: float = 0.0,
    worker_id: int = -1,
    swapped: bool = False,
) -> tuple[tuple, ServingCounters, tuple]:
    """Answer one batch message; returns (reply items, counters delta, spans).

    Split out of the process loop so tests can drive a worker's
    execution path in-process.  ``io_stall_s_per_access`` optionally
    charges a simulated disk stall per R-tree node access (the paper's
    I/O cost model made temporal; see the serving benchmark) — the
    stall is slept *after* the batch, which preserves throughput
    semantics without perturbing the measured CPU path.

    When the batch carries trace contexts (``message.trace``), one
    ``serve.worker`` span is built per traced request — parented under
    the server's request span, stamped with the batch identity, the
    hot-swap flag and the request's own measured cost — and returned
    for the server to export.  An untraced batch pays one ``is None``
    check.
    """
    counters = ServingCounters()
    decoded: list[tuple[int, object]] = []
    failures: dict[int, str] = {}
    for request_id, payload in message.items:
        try:
            decoded.append((request_id, decode_spec(payload)))
        except Exception:
            failures[request_id] = traceback.format_exc(limit=2)

    contexts = dict(message.trace) if message.trace is not None else None
    spans: dict[int, dict] = {}
    outcomes: dict[int, object] = {}
    if decoded:
        if contexts:
            queue_wait_s = (
                max(0.0, time.monotonic() - message.dispatched_s)
                if message.dispatched_s
                else 0.0
            )
            for request_id, _ in decoded:
                context = contexts.get(request_id)
                if context is not None:
                    spans[request_id] = obs_trace.start_span(
                        "serve.worker",
                        trace_id=context[0],
                        parent_id=context[1],
                        worker_id=worker_id,
                        batch_id=message.batch_id,
                        batch_size=len(decoded),
                        epoch=message.epoch,
                        swapped=swapped,
                        queue_wait_s=round(queue_wait_s, 6),
                    )
        specs = [spec for _, spec in decoded]
        try:
            # Physical index work is measured as a stats delta across
            # the whole call: a shared-traversal bucket's one traversal
            # is charged once, not once per member.
            before = engine.flat.stats.snapshot()
            started = time.perf_counter()
            results = engine.execute_many(specs)
            elapsed = time.perf_counter() - started
            after = engine.flat.stats.snapshot()
            delta = {key: after[key] - before[key] for key in after}
            for (request_id, _), result in zip(decoded, results):
                span = spans.get(request_id)
                if span is not None:
                    obs_trace.finish_span(
                        span,
                        node_accesses=result.cost.node_accesses,
                        distance_computations=result.cost.distance_computations,
                        cpu_time=result.cost.cpu_time,
                    )
                outcomes[request_id] = encode_result(result)
            stall = io_stall_s_per_access * delta["node_accesses"]
            counters.record_batch(
                len(results), cpu_time=elapsed, io_stall_s=stall, index_stats_delta=delta
            )
            if stall > 0.0:
                time.sleep(stall)
        except Exception:
            error = traceback.format_exc(limit=4)
            for request_id, _ in decoded:
                failures[request_id] = error
                span = spans.get(request_id)
                if span is not None and span["end_s"] is None:
                    obs_trace.finish_span(span, error=error.splitlines()[-1])

    items = tuple(
        (request_id, outcomes.get(request_id), failures.get(request_id))
        for request_id, _ in list(message.items)
    )
    return items, counters, tuple(spans.values())


def worker_main(
    worker_id: int,
    request_queue,
    reply_queue,
    snapshot_path: str,
    epoch: int,
    io_stall_s_per_access: float = 0.0,
) -> None:
    """Process entry point: map the snapshot, drain batches until shutdown."""
    engine, generation = _load_engine(snapshot_path)
    current_epoch = epoch
    while True:
        message = request_queue.get()
        if message is SHUTDOWN:
            break
        # Claim the batch before touching it: if this process dies from
        # here on, the server knows exactly which requests died with it.
        reply_queue.put(BatchClaim(worker_id=worker_id, batch_id=message.batch_id))
        # ``worker.execute`` fires *after* the claim — a kill here is the
        # "worker died mid-batch" scenario the server must detect.  An
        # injected ``os._exit`` would race the queue's feeder thread and
        # could lose the claim it is about to simulate dying *after*, so
        # give the feeder a moment — only when a plan is armed.
        if faults.is_active():
            time.sleep(0.05)
        faults.fire("worker.execute")
        if message.epoch != current_epoch:
            # Finish-then-remap: the previous batch already completed on
            # the old mapping; this one demands the newer snapshot.
            engine, generation = _load_engine(message.snapshot_path)
            current_epoch = message.epoch
            swapped = True
        else:
            swapped = False
        items, counters, spans = execute_batch_message(
            engine, message, io_stall_s_per_access, worker_id=worker_id, swapped=swapped
        )
        if swapped:
            counters.record_swap()
        reply_queue.put(
            BatchReply(
                worker_id=worker_id,
                epoch=current_epoch,
                generation=generation,
                items=items,
                counters=counters.snapshot(),
                batch_id=message.batch_id,
                spans=spans,
            )
        )
