"""The serving front end: admission, micro-batching, worker pool, hot-swap.

:class:`GNNServer` is the process-level composition of the subsystem:

* **workers** — N ``multiprocessing`` processes, each mapping the *same*
  published snapshot read-only (:func:`repro.serve.worker.worker_main`);
  the OS page cache shares the index physically across all of them;
* **admission control** — requests are planned and validated at submit
  time (plan errors and un-servable routes raise immediately), and a
  bounded in-flight high-water mark sheds overload with
  :class:`ServerOverloadedError` instead of queueing without bound;
* **micro-batching** — accepted requests enter the
  :class:`~repro.serve.scheduler.MicroBatcher`; full buckets dispatch
  from the submitting thread, window-expired ones from the timer
  thread, and every dispatched batch is answered by one worker-side
  ``execute_many`` (shared traversals where members are compatible);
* **futures** — ``submit`` returns a ``concurrent.futures.Future``; a
  reply thread resolves it with the worker's result (or a
  :class:`ServingError`) and feeds the latency reservoir;
* **hot-swap** — :meth:`publish_snapshot` persists a successor snapshot
  under the next generation token and :meth:`swap_snapshot` re-points
  dispatch at it; workers finish their in-flight batch, then remap.

:class:`ServerHandle` / :class:`AsyncServerHandle` are the client
facades (sync and ``asyncio``).
"""

from __future__ import annotations

import multiprocessing
import os
import queue
import threading
import time
from concurrent.futures import Future
from pathlib import Path
from typing import Sequence

from repro.api.executor import SHARED_BUCKET_MAX_MEMBERS, shared_bucket_key
from repro.api.planner import QueryPlanner
from repro.api.spec import QuerySpec
from repro.core.engine import GNNEngine
from repro.core.types import GNNResult
from repro.obs import slowlog as obs_slowlog
from repro.obs import trace as obs_trace
from repro.obs.logging import get_logger
from repro.rtree.flat import FlatRTree
from repro.serve.protocol import SHUTDOWN, BatchClaim, BatchRequest, check_servable, encode_spec
from repro.serve.scheduler import MicroBatcher
from repro.serve.stats import ServerStats
from repro.serve.worker import worker_main

_log = get_logger("serve.server")

#: Default micro-batching window (seconds): long enough to coalesce a
#: burst into one shared traversal, short enough to stay invisible next
#: to per-query execution times.
DEFAULT_WINDOW_S = 0.002

#: Default shed threshold: in-flight requests past this raise
#: :class:`ServerOverloadedError` at submit.
DEFAULT_MAX_PENDING = 2048

#: Bound on the planner's signature->plan cache.
_PLAN_CACHE_LIMIT = 4096


class ServingError(RuntimeError):
    """A request failed inside a worker (carries the worker traceback)."""


class WorkerDiedError(ServingError):
    """The worker executing this request died before replying.

    The batch was *claimed* (the worker announced it was about to
    execute it) but no reply ever arrived and the claiming process is
    gone — so the requests in it fail fast instead of hanging until some
    unrelated timeout.  The query itself may be perfectly fine;
    resubmitting it is safe (queries are read-only).
    """


class ServerOverloadedError(RuntimeError):
    """Admission control rejected the request (high-water mark reached)."""


def _default_start_method() -> str:
    # fork is markedly cheaper and safe here: workers are forked in
    # __init__ before any server thread starts.  spawn remains available
    # for platforms without fork.
    return "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"


class GNNServer:
    """Serve GNN queries from N worker processes over one shared snapshot.

    Parameters
    ----------
    snapshot_path:
        A snapshot persisted by :meth:`FlatRTree.save`.  Workers map it
        with ``mmap_mode="r"``; nothing is copied per worker.
    workers:
        Number of worker processes.
    window_s / max_batch:
        Micro-batching window and size cap (see
        :class:`~repro.serve.scheduler.MicroBatcher`); ``window_s=0``
        disables coalescing.
    max_pending:
        Admission high-water mark: submits past this many in-flight
        requests shed with :class:`ServerOverloadedError`.
    io_stall_s_per_access:
        Optional simulated disk stall charged by workers per R-tree
        node access (0 disables; used by the serving benchmark to model
        the paper's I/O cost).
    start_method:
        ``multiprocessing`` start method (default: fork when available).
    respawn_workers:
        When True (default), a worker that dies unexpectedly is replaced
        by a fresh process with the same worker id; its in-flight batch
        fails with :class:`WorkerDiedError` either way.
    """

    def __init__(
        self,
        snapshot_path,
        *,
        workers: int = 2,
        window_s: float = DEFAULT_WINDOW_S,
        max_batch: int = SHARED_BUCKET_MAX_MEMBERS,
        max_pending: int = DEFAULT_MAX_PENDING,
        io_stall_s_per_access: float = 0.0,
        start_method: str | None = None,
        respawn_workers: bool = True,
    ):
        if workers < 1:
            raise ValueError("workers must be positive")
        if max_pending < 1:
            raise ValueError("max_pending must be positive")
        probe = FlatRTree.load(snapshot_path, mmap_mode="r")
        self._dims = probe.dims
        self._path = str(snapshot_path)
        self._epoch = probe.generation
        del probe  # release the probe mapping; workers map their own

        self.max_pending = int(max_pending)
        self._planner = QueryPlanner()
        self._plan_cache: dict[tuple, object] = {}
        self._stats = ServerStats()
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._batcher = MicroBatcher(window_s, max_batch)
        self._futures: dict[int, Future] = {}
        self._submit_times: dict[int, float] = {}
        self._next_id = 0
        self._next_batch_id = 0
        self._batches: dict[int, tuple[int, ...]] = {}  # batch_id -> request ids
        self._claims: dict[int, int] = {}  # batch_id -> claiming worker_id
        self._respawn = bool(respawn_workers)
        self._io_stall = float(io_stall_s_per_access)
        self._worker_deaths = 0
        self._dead_handled: set[int] = set()
        # request_id -> (root span, arrived-with-a-remote-parent) for
        # traced requests; empty (and never touched) when tracing is off.
        self._trace_spans: dict[int, tuple[dict, bool]] = {}
        self._exposition = None
        self._closed = threading.Event()
        self._close_lock = threading.Lock()
        self._close_done = threading.Event()
        self._reply_stop = threading.Event()

        context = multiprocessing.get_context(start_method or _default_start_method())
        self._context = context
        self._requests = context.Queue()
        self._replies = context.Queue()
        # Processes are started before any server thread exists, so the
        # fork start method never duplicates a thread mid-operation.
        self._workers = [self._make_worker(worker_id) for worker_id in range(int(workers))]
        for process in self._workers:
            process.start()

        self._timer_thread = threading.Thread(
            target=self._timer_loop, name="gnn-serve-timer", daemon=True
        )
        self._reply_thread = threading.Thread(
            target=self._reply_loop, name="gnn-serve-replies", daemon=True
        )
        self._timer_thread.start()
        self._reply_thread.start()
        _log.info(
            "server.started",
            workers=len(self._workers),
            epoch=self._epoch,
            snapshot=self._path,
        )

    # ------------------------------------------------------------------
    # construction conveniences
    # ------------------------------------------------------------------
    @classmethod
    def from_points(cls, data_points, directory, capacity: int = 50, **server_options) -> "GNNServer":
        """Build the index, publish generation-0, and serve it.

        The one-call path from a raw dataset to a running server:
        ``GNNServer.from_points(points, tmpdir, workers=4)``.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / "snapshot-gen000000.npz"
        GNNEngine(data_points, capacity=capacity).snapshot().save(path, generation=0)
        return cls(path, **server_options)

    # ------------------------------------------------------------------
    # client API
    # ------------------------------------------------------------------
    def submit(self, spec: QuerySpec, trace_parent: tuple | None = None) -> Future:
        """Admit one spec; returns a future resolving to its :class:`GNNResult`.

        Raises immediately (synchronously) for plan-time errors, for
        specs a snapshot-only worker cannot execute, and — past the
        ``max_pending`` high-water mark — with
        :class:`ServerOverloadedError` (shed-with-error backpressure).

        ``trace_parent`` is an optional ``(trace_id, parent_span_id)``
        context from a remote caller (the shard node): the request's
        ``serve.request`` span parents under it and the collected span
        tree rides back attached to the result.  Locally, a span is
        created whenever a tracer is enabled.
        """
        if self._closed.is_set():
            raise RuntimeError("this GNNServer is closed")
        if spec.dims != self._dims:
            raise ValueError(
                f"spec dimensionality {spec.dims} does not match the served "
                f"snapshot ({self._dims}-d)"
            )
        plan = self._plan(spec)
        check_servable(spec, plan)
        payload = encode_spec(spec)
        key = shared_bucket_key(spec, plan)
        if key is None:
            # Not shared-traversal eligible: coalesce per plan signature
            # anyway (execute_many still amortises planning/locality).
            key = ("solo", spec.plan_signature())
        else:
            key = ("shared", *key)

        root_span = None
        if trace_parent is not None:
            root_span = obs_trace.start_span(
                "serve.request",
                trace_id=trace_parent[0],
                parent_id=trace_parent[1],
                k=spec.k,
                group_size=len(spec.group),
            )
        elif obs_trace.get() is not None:
            root_span = obs_trace.start_span(
                "serve.request", k=spec.k, group_size=len(spec.group)
            )

        future: Future = Future()
        with self._cond:
            # Re-check under the lock: close() flips the flag and drains
            # the batcher while holding it, so a submit that slipped past
            # the fast-path check cannot enqueue into a drained batcher.
            if self._closed.is_set():
                raise RuntimeError("this GNNServer is closed")
            if len(self._futures) >= self.max_pending:
                self._stats.record_shed()
                raise ServerOverloadedError(
                    f"server overloaded: {len(self._futures)} requests in "
                    f"flight (max_pending={self.max_pending}); request shed"
                )
            request_id = self._next_id
            self._next_id += 1
            self._futures[request_id] = future
            self._submit_times[request_id] = time.monotonic()
            if root_span is not None:
                self._trace_spans[request_id] = (root_span, trace_parent is not None)
            self._stats.record_submit()
            ready = self._batcher.offer(key, (request_id, payload), time.monotonic())
            self._cond.notify_all()
        if ready is not None:
            self._dispatch(ready)
        return future

    def submit_many(self, specs: Sequence[QuerySpec]) -> list[Future]:
        """Submit a sequence of specs; returns their futures in order.

        Admission is per spec: an overload shed raises after the
        already-admitted prefix was accepted (those futures stay live).
        """
        return [self.submit(spec) for spec in specs]

    def handle(self) -> "ServerHandle":
        """A synchronous client facade bound to this server."""
        return ServerHandle(self)

    def async_handle(self) -> "AsyncServerHandle":
        """An ``asyncio`` client facade bound to this server."""
        return AsyncServerHandle(self)

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Server-wide statistics snapshot, in the unified nested shape.

        Top-level keys: ``server`` (request outcomes, pool health),
        ``latency_ms``, ``scheduler``, ``workers`` and ``total`` — the
        same convention :meth:`ShardNode.stats` and
        :meth:`ShardedEngine.stats` follow, so one metrics adapter reads
        any of them.
        """
        snapshot = self._stats.snapshot()
        with self._lock:
            snapshot["scheduler"] = {
                "queued": len(self._batcher),
                "in_flight": len(self._futures),
                "epoch": self._epoch,
                "snapshot_path": self._path,
            }
        snapshot["server"]["workers_alive"] = sum(p.is_alive() for p in self._workers)
        snapshot["server"]["worker_deaths"] = self._worker_deaths
        return snapshot

    def latency_seconds(self) -> list[float]:
        """The raw latency reservoir (scrape-time histogramming)."""
        return self._stats.latency_seconds()

    def start_exposition(self, host: str = "127.0.0.1", port: int = 0,
                         registry=None, stats_fn=None):
        """Start the optional admin HTTP listener; returns ``(host, port)``.

        Serves ``/metrics`` (Prometheus text), ``/stats`` (JSON) and
        ``/healthz``.  With no ``registry`` a fresh one is created and
        this server's collector mounted on it.  Stopped by :meth:`close`.
        """
        from repro.obs.exposition import HttpExposition
        from repro.obs.metrics import MetricsRegistry, server_collector

        if self._exposition is not None:
            return self._exposition.address
        if registry is None:
            registry = MetricsRegistry()
            registry.register(server_collector(self))
        self._exposition = HttpExposition(
            registry, stats_fn=stats_fn or self.stats, host=host, port=port
        )
        _log.info("exposition.started", url=self._exposition.url)
        return self._exposition.address

    @property
    def epoch(self) -> int:
        """The generation token batches are currently stamped with."""
        with self._lock:
            return self._epoch

    @property
    def snapshot_path(self) -> str:
        """Path of the snapshot batches are currently answered from."""
        with self._lock:
            return self._path

    # ------------------------------------------------------------------
    # hot-swap
    # ------------------------------------------------------------------
    def swap_snapshot(self, path, epoch: int | None = None) -> int:
        """Re-point dispatch at an already-persisted snapshot.

        The file is probed first (unreadable or dimension-mismatched
        snapshots are rejected before any worker sees them).  Workers
        finish their in-flight batch on the old mapping, then remap when
        the first batch stamped with the new epoch reaches them.
        Returns the new epoch.
        """
        probe = FlatRTree.load(path, mmap_mode="r")
        if probe.dims != self._dims:
            raise ValueError(
                f"snapshot {path!r} is {probe.dims}-d; this server serves "
                f"{self._dims}-d queries"
            )
        generation = probe.generation
        del probe
        with self._lock:
            self._epoch = int(epoch) if epoch is not None else max(self._epoch + 1, generation)
            self._path = str(path)
            new_epoch = self._epoch
        self._stats.record_swap()
        _log.info("snapshot.swapped", epoch=new_epoch, path=str(path))
        return new_epoch

    def publish_snapshot(self, source) -> int:
        """Persist a successor snapshot next to the current one and swap to it.

        ``source`` is a :class:`FlatRTree` or anything with a
        ``snapshot()`` method returning one (a :class:`GNNEngine`).  The
        file is written as ``<current stem>-gen<N>.npz`` with the next
        generation token, then :meth:`swap_snapshot` makes it current.
        """
        flat = source if isinstance(source, FlatRTree) else source.snapshot()
        if not isinstance(flat, FlatRTree):
            raise TypeError(
                f"publish_snapshot expects a FlatRTree or an engine, got "
                f"{type(source).__name__}"
            )
        with self._lock:
            next_epoch = self._epoch + 1
        current = Path(self._path)
        stem = current.stem.split("-gen")[0]
        path = current.parent / f"{stem}-gen{next_epoch:06d}.npz"
        flat.save(path, generation=next_epoch)
        return self.swap_snapshot(path, epoch=next_epoch)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self, timeout: float = 30.0) -> None:
        """Graceful shutdown: drain, wait, stop workers, fail leftovers.

        Queued requests are dispatched and awaited up to ``timeout``
        seconds; workers then receive one shutdown sentinel each and are
        joined (terminated if they overrun).  Futures still unresolved
        after that fail with :class:`ServingError`.

        ``close`` is idempotent and exception-safe: a second call (from
        any thread, including a concurrent one) waits for the first
        shutdown to finish instead of re-running it over already-closed
        queues, a crashed worker or a torn queue never aborts the
        teardown half-way, and the helper threads are stopped and every
        in-flight future failed even when an individual step errors —
        the shard node drives programmatic open/close cycles and relies
        on this.
        """
        with self._close_lock:
            first_closer = not self._closed.is_set()
            self._closed.set()
        if not first_closer:
            self._close_done.wait(timeout=timeout)
            return
        try:
            with self._cond:
                leftovers = self._batcher.drain()
                self._cond.notify_all()
            for batch in leftovers:
                self._try_dispatch(batch)

            deadline = time.monotonic() + timeout
            while time.monotonic() < deadline:
                with self._lock:
                    if not self._futures:
                        break
                if not any(process.is_alive() for process in self._workers):
                    break
                time.sleep(0.005)

            for _ in self._workers:
                self._try_put(self._requests, SHUTDOWN)
            join_deadline = time.monotonic() + max(1.0, deadline - time.monotonic())
            for process in self._workers:
                process.join(timeout=max(0.1, join_deadline - time.monotonic()))
            for process in self._workers:
                if process.is_alive():
                    process.terminate()
                    process.join(timeout=1.0)
        finally:
            self._reply_stop.set()
            self._timer_thread.join(timeout=5.0)
            self._reply_thread.join(timeout=5.0)

            now = time.monotonic()
            with self._lock:
                unresolved = [
                    (request_id, future, self._submit_times.get(request_id, now))
                    for request_id, future in self._futures.items()
                ]
                self._futures.clear()
                self._submit_times.clear()
            for request_id, future, submitted in unresolved:
                self._resolve_trace(request_id, None, "server closed")
                if not future.done():
                    self._stats.record_outcome(now - submitted, failed=True)
                    future.set_exception(
                        ServingError("server closed before the request completed")
                    )
            if self._exposition is not None:
                try:
                    self._exposition.close()
                except OSError:
                    pass
                self._exposition = None
            # Unstick the queue feeder threads so interpreter exit never
            # hangs; tolerate queues a worker crash already broke.
            for q in (self._requests, self._replies):
                try:
                    q.close()
                    q.cancel_join_thread()
                except (OSError, ValueError):
                    pass
            self._close_done.set()
            _log.info(
                "server.closed",
                worker_deaths=self._worker_deaths,
                unresolved=len(unresolved),
            )

    def __enter__(self) -> "GNNServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        alive = sum(p.is_alive() for p in self._workers)
        return (
            f"GNNServer(workers={alive}/{len(self._workers)}, "
            f"epoch={self._epoch}, snapshot={self._path!r})"
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _make_worker(self, worker_id: int):
        with self._lock:
            path, epoch = self._path, self._epoch
        return self._context.Process(
            target=worker_main,
            args=(worker_id, self._requests, self._replies, path, epoch, self._io_stall),
            daemon=True,
            name=f"gnn-serve-worker-{worker_id}",
        )

    def _plan(self, spec: QuerySpec):
        signature = spec.plan_signature()
        plan = self._plan_cache.get(signature)
        if plan is None:
            if len(self._plan_cache) >= _PLAN_CACHE_LIMIT:
                self._plan_cache.clear()
            plan = self._plan_cache[signature] = self._planner.plan(spec)
        return plan

    def _dispatch(self, items: list) -> None:
        items = tuple(items)
        with self._lock:
            epoch, path = self._epoch, self._path
            batch_id = self._next_batch_id
            self._next_batch_id += 1
            self._batches[batch_id] = tuple(request_id for request_id, _ in items)
            trace = None
            if self._trace_spans:
                contexts = []
                for request_id, _ in items:
                    entry = self._trace_spans.get(request_id)
                    if entry is not None:
                        span = entry[0]
                        contexts.append(
                            (request_id, (span["trace_id"], span["span_id"]))
                        )
                if contexts:
                    trace = tuple(contexts)
        self._requests.put(
            BatchRequest(
                epoch=epoch,
                snapshot_path=path,
                items=items,
                batch_id=batch_id,
                trace=trace,
                dispatched_s=time.monotonic(),
            )
        )

    def _try_dispatch(self, items: list) -> None:
        """Best-effort :meth:`_dispatch` for the shutdown path.

        A queue broken by a worker crash (or closed by an earlier,
        failed close attempt) must not abort the teardown; the affected
        requests are failed with :class:`ServingError` afterwards.
        """
        try:
            self._dispatch(items)
        except (OSError, ValueError, AssertionError):
            pass

    @staticmethod
    def _try_put(target_queue, item) -> None:
        """Best-effort queue put, tolerant of broken/closed queues."""
        try:
            target_queue.put(item)
        except (OSError, ValueError, AssertionError):
            pass

    def _timer_loop(self) -> None:
        """Flush window-expired buckets; exits once closed and drained."""
        while True:
            with self._cond:
                if self._closed.is_set() and len(self._batcher) == 0:
                    return
                deadline = self._batcher.next_deadline()
                now = time.monotonic()
                if deadline is None:
                    self._cond.wait(timeout=0.1)
                elif deadline > now:
                    self._cond.wait(timeout=deadline - now)
                due = self._batcher.due(time.monotonic())
            for batch in due:
                self._dispatch(batch)

    def _check_worker_deaths(self) -> None:
        """Fail claimed batches of dead workers; respawn replacements.

        Runs on the reply thread whenever the reply queue goes quiet.  A
        worker that died mid-batch announced its claim first, so exactly
        the requests it took down fail — with :class:`WorkerDiedError` —
        while everything else keeps serving.
        """
        for worker_id, process in enumerate(self._workers):
            if process.is_alive() or worker_id in self._dead_handled:
                continue
            self._dead_handled.add(worker_id)
            self._worker_deaths += 1
            now = time.monotonic()
            with self._lock:
                lost_batches = [
                    batch_id
                    for batch_id, claimant in self._claims.items()
                    if claimant == worker_id and batch_id in self._batches
                ]
                doomed = []
                for batch_id in lost_batches:
                    for request_id in self._batches.pop(batch_id, ()):
                        future = self._futures.pop(request_id, None)
                        submitted = self._submit_times.pop(request_id, now)
                        doomed.append((request_id, future, submitted))
                    self._claims.pop(batch_id, None)
            _log.warning(
                "worker.died",
                worker=worker_id,
                deaths=self._worker_deaths,
                lost_batches=len(lost_batches),
            )
            for request_id, future, submitted in doomed:
                self._resolve_trace(request_id, None, "worker died")
                if future is not None and not future.done():
                    self._stats.record_outcome(now - submitted, failed=True)
                    future.set_exception(
                        WorkerDiedError(
                            f"worker {worker_id} died while executing this "
                            "request's batch (safe to resubmit)"
                        )
                    )
            if self._respawn and not self._closed.is_set():
                replacement = self._make_worker(worker_id)
                replacement.start()
                self._workers[worker_id] = replacement
                self._dead_handled.discard(worker_id)
                _log.info("worker.respawned", worker=worker_id)

    def _resolve_trace(
        self, request_id: int, result, error: str | None, worker_spans=()
    ) -> None:
        """Finish, export and (for remote callers) attach a request's spans.

        Must be called *without* :attr:`_lock` held.  No-op for untraced
        requests — the common path costs one dict lookup that only
        happens when ``_trace_spans`` is non-empty.
        """
        with self._lock:
            entry = self._trace_spans.pop(request_id, None)
        if entry is None:
            return
        root, remote = entry
        if error is None:
            obs_trace.finish_span(root, outcome="ok")
        else:
            obs_trace.finish_span(root, outcome="error", error=error)
        spans = [root, *worker_spans]
        tracer = obs_trace.get()
        if tracer is not None:
            tracer.export(*spans)
        if result is not None:
            result.trace_id = root["trace_id"]
            if remote:
                result.spans = tuple(spans)

    def _reply_loop(self) -> None:
        """Resolve futures from worker replies; exits when stopped and idle."""
        while True:
            try:
                reply = self._replies.get(timeout=0.05)
            except queue.Empty:
                if self._reply_stop.is_set():
                    return
                self._check_worker_deaths()
                with self._lock:
                    pending = bool(self._futures)
                if pending and not any(p.is_alive() for p in self._workers):
                    # Every worker died with requests in flight (and no
                    # respawn replaced them): fail them all rather than
                    # letting clients wait forever.
                    now = time.monotonic()
                    with self._lock:
                        dead = [
                            (request_id, future, self._submit_times.get(request_id, now))
                            for request_id, future in self._futures.items()
                        ]
                        self._futures.clear()
                        self._submit_times.clear()
                        self._batches.clear()
                        self._claims.clear()
                    for request_id, future, submitted in dead:
                        self._resolve_trace(request_id, None, "all workers died")
                        if not future.done():
                            self._stats.record_outcome(now - submitted, failed=True)
                            future.set_exception(
                                ServingError("all serving workers exited unexpectedly")
                            )
                continue
            except (EOFError, OSError):
                return
            if isinstance(reply, BatchClaim):
                with self._lock:
                    self._claims[reply.batch_id] = reply.worker_id
                continue
            with self._lock:
                self._batches.pop(reply.batch_id, None)
                self._claims.pop(reply.batch_id, None)
            self._stats.record_reply(reply.worker_id, reply.counters)
            spans_by_trace: dict[str, list] = {}
            for span in reply.spans:
                spans_by_trace.setdefault(span["trace_id"], []).append(span)
            now = time.monotonic()
            for request_id, result, error in reply.items:
                with self._lock:
                    future = self._futures.pop(request_id, None)
                    submitted = self._submit_times.pop(request_id, None)
                    entry = (
                        self._trace_spans.get(request_id) if self._trace_spans else None
                    )
                if entry is not None:
                    worker_spans = spans_by_trace.get(entry[0]["trace_id"], ())
                    self._resolve_trace(request_id, result, error, worker_spans)
                if future is None:
                    continue
                latency = now - submitted if submitted is not None else 0.0
                slow = obs_slowlog.get()
                if slow is not None:
                    slow.observe(
                        latency,
                        kind="serve",
                        cost=None if result is None else result.cost,
                        trace_id=None if result is None else result.trace_id,
                        **({"error": error} if error is not None else {}),
                    )
                if error is not None:
                    self._stats.record_outcome(latency, failed=True)
                    future.set_exception(ServingError(error))
                else:
                    self._stats.record_outcome(latency)
                    future.set_result(result)


class ServerHandle:
    """Synchronous client facade over a :class:`GNNServer`.

    The handle is what application code should hold: it exposes
    ``submit`` (future), ``submit_many`` (futures) and the blocking
    conveniences ``run`` / ``run_many``, plus the server's stats.
    """

    def __init__(self, server: GNNServer):
        self._server = server

    def submit(self, spec: QuerySpec) -> Future:
        """Submit one spec; returns its future."""
        return self._server.submit(spec)

    def submit_many(self, specs: Sequence[QuerySpec]) -> list[Future]:
        """Submit many specs; returns their futures in order."""
        return self._server.submit_many(specs)

    def run(self, spec: QuerySpec, timeout: float | None = None) -> GNNResult:
        """Submit one spec and block for its result."""
        return self._server.submit(spec).result(timeout=timeout)

    def run_many(
        self, specs: Sequence[QuerySpec], timeout: float | None = None
    ) -> list[GNNResult]:
        """Submit many specs and block for all results (input order)."""
        futures = self._server.submit_many(specs)
        return [future.result(timeout=timeout) for future in futures]

    def stats(self) -> dict:
        """The server's statistics snapshot."""
        return self._server.stats()


class AsyncServerHandle:
    """``asyncio`` client facade: awaitable submission over the same server.

    The server stays thread-and-process based; this wrapper only bridges
    its ``concurrent.futures`` futures into the running event loop, so
    an async application can ``await handle.submit(spec)`` without
    blocking the loop while workers execute.
    """

    def __init__(self, server: GNNServer):
        self._server = server

    async def submit(self, spec: QuerySpec) -> GNNResult:
        """Submit one spec and await its result."""
        import asyncio

        return await asyncio.wrap_future(self._server.submit(spec))

    async def submit_many(self, specs: Sequence[QuerySpec]) -> list[GNNResult]:
        """Submit many specs and await all results (input order)."""
        import asyncio

        futures = [asyncio.wrap_future(f) for f in self._server.submit_many(specs)]
        return list(await asyncio.gather(*futures))

    def stats(self) -> dict:
        """The server's statistics snapshot."""
        return self._server.stats()


# Re-exported for os.cpu_count-based sizing in examples/benchmarks.
def default_worker_count() -> int:
    """A reasonable worker count for this machine (cpu count, min 1)."""
    return max(1, os.cpu_count() or 1)
