"""Serving statistics: per-worker counters merged into a server-wide view.

Each worker accumulates nothing globally — it attaches a small
:class:`ServingCounters` *delta* to every :class:`~repro.serve.protocol.BatchReply`
(a plain snapshot dictionary on the wire).  The server folds the deltas
into one :class:`ServingCounters` per worker and exposes the merged
picture through :meth:`ServerStats.snapshot`, alongside scheduler-side
counts (submitted / completed / shed / failed / swaps) and request
latency percentiles over a bounded reservoir of recent requests.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass

from repro.storage.counters import merge_snapshots

#: How many recent request latencies the percentile reservoir keeps.
LATENCY_RESERVOIR = 8192

#: Percentiles reported by :meth:`ServerStats.snapshot`.
LATENCY_PERCENTILES = (50.0, 95.0, 99.0)


def _nearest_rank(ordered, q: float) -> float:
    """Nearest-rank lookup into an already-sorted sequence."""
    if not ordered:
        return float("nan")
    rank = max(1, -(-len(ordered) * q // 100))  # ceil(len * q / 100)
    return float(ordered[int(rank) - 1])


def percentile(values, q: float) -> float:
    """Nearest-rank percentile of ``values`` (q in [0, 100])."""
    return _nearest_rank(sorted(values), q)


def percentiles(values, qs) -> list[float]:
    """Nearest-rank percentiles for every ``q`` in ``qs``, sorting once.

    Bit-identical to calling :func:`percentile` per ``q`` — the reservoir
    is just not re-sorted for each of them.
    """
    ordered = sorted(values)
    return [_nearest_rank(ordered, q) for q in qs]


@dataclass
class ServingCounters:
    """Mergeable execution counters of one worker (or one batch delta).

    All fields sum under :meth:`merge` except ``largest_batch``, which
    takes the maximum — exactly the semantics a server-wide rollup
    needs.  ``snapshot()`` dictionaries are the wire format; they merge
    with the same rules, so worker deltas can be folded in any order.
    """

    requests: int = 0
    batches: int = 0
    largest_batch: int = 0
    node_accesses: int = 0
    leaf_accesses: int = 0
    distance_computations: int = 0
    cpu_time: float = 0.0
    io_stall_s: float = 0.0
    snapshot_swaps: int = 0

    def record_batch(
        self,
        batch_size: int,
        cpu_time: float = 0.0,
        io_stall_s: float = 0.0,
        index_stats_delta: dict | None = None,
    ) -> None:
        """Fold one executed batch into the counters.

        ``index_stats_delta`` is the *physical* index work of the batch
        (a :meth:`~repro.rtree.stats.TreeStats.snapshot` delta across
        the ``execute_many`` call), so a shared-traversal bucket charges
        its one traversal once — not once per member, as summing the
        bucket-level per-result costs would.
        """
        self.requests += int(batch_size)
        self.batches += 1
        self.largest_batch = max(self.largest_batch, int(batch_size))
        self.cpu_time += float(cpu_time)
        self.io_stall_s += float(io_stall_s)
        if index_stats_delta:
            self.node_accesses += int(index_stats_delta.get("node_accesses", 0))
            self.leaf_accesses += int(index_stats_delta.get("leaf_accesses", 0))
            self.distance_computations += int(
                index_stats_delta.get("distance_computations", 0)
            )

    def record_swap(self) -> None:
        """Charge one snapshot remap (hot-swap observed by the worker)."""
        self.snapshot_swaps += 1

    def merge(self, other) -> "ServingCounters":
        """Fold another :class:`ServingCounters` (or snapshot dict) into this one."""
        snapshot = other if isinstance(other, dict) else other.snapshot()
        self.largest_batch = max(self.largest_batch, int(snapshot.get("largest_batch", 0)))
        summed = merge_snapshots(
            [
                {k: v for k, v in self.snapshot().items() if k != "largest_batch"},
                {k: v for k, v in snapshot.items() if k != "largest_batch"},
            ]
        )
        self.requests = int(summed.get("requests", 0))
        self.batches = int(summed.get("batches", 0))
        self.node_accesses = int(summed.get("node_accesses", 0))
        self.leaf_accesses = int(summed.get("leaf_accesses", 0))
        self.distance_computations = int(summed.get("distance_computations", 0))
        self.cpu_time = float(summed.get("cpu_time", 0.0))
        self.io_stall_s = float(summed.get("io_stall_s", 0.0))
        self.snapshot_swaps = int(summed.get("snapshot_swaps", 0))
        return self

    def snapshot(self) -> dict:
        """The counters as a plain (picklable, mergeable) dictionary."""
        return {
            "requests": self.requests,
            "batches": self.batches,
            "largest_batch": self.largest_batch,
            "node_accesses": self.node_accesses,
            "leaf_accesses": self.leaf_accesses,
            "distance_computations": self.distance_computations,
            "cpu_time": self.cpu_time,
            "io_stall_s": self.io_stall_s,
            "snapshot_swaps": self.snapshot_swaps,
        }


class ServerStats:
    """Thread-safe server-wide statistics.

    The scheduler side counts request outcomes (submitted, completed,
    failed, shed) and snapshot swaps; the execution side keeps one
    merged :class:`ServingCounters` per worker, folded from the deltas
    each :class:`~repro.serve.protocol.BatchReply` carries.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self.shed = 0
        self.swaps = 0
        self._workers: dict[int, ServingCounters] = {}
        self._latencies: deque[float] = deque(maxlen=LATENCY_RESERVOIR)

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record_submit(self, count: int = 1) -> None:
        with self._lock:
            self.submitted += count

    def record_shed(self, count: int = 1) -> None:
        with self._lock:
            self.shed += count

    def record_outcome(self, latency_s: float, failed: bool = False) -> None:
        with self._lock:
            if failed:
                self.failed += 1
            else:
                self.completed += 1
            self._latencies.append(latency_s)

    def record_swap(self) -> None:
        with self._lock:
            self.swaps += 1

    def record_reply(self, worker_id: int, counters: dict) -> None:
        with self._lock:
            mine = self._workers.setdefault(worker_id, ServingCounters())
            mine.merge(counters)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def latency_seconds(self) -> list[float]:
        """The raw latency reservoir (for scrape-time histogramming)."""
        with self._lock:
            return list(self._latencies)

    def snapshot(self) -> dict:
        """Server-wide view: scheduler counts, latencies, per-worker + total."""
        with self._lock:
            workers = {wid: c.snapshot() for wid, c in sorted(self._workers.items())}
            latencies = list(self._latencies)
            # Shed requests are rejected before admission, so they never
            # count as submitted (and never show up as pending).
            server = {
                "submitted": self.submitted,
                "completed": self.completed,
                "failed": self.failed,
                "shed": self.shed,
                "swaps": self.swaps,
                "pending": self.submitted - self.completed - self.failed,
            }
        total = ServingCounters()
        for counters in workers.values():
            total.merge(counters)
        ranks = percentiles(latencies, LATENCY_PERCENTILES)
        latency_ms = {
            f"p{percent:g}": round(rank * 1000.0, 3)
            for percent, rank in zip(LATENCY_PERCENTILES, ranks)
        }
        return {
            "server": server,
            "latency_ms": latency_ms if latencies else {},
            "workers": workers,
            "total": total.snapshot(),
        }
