"""Wire protocol between the server process and its worker processes.

Workers communicate with the server exclusively through two
``multiprocessing`` queues carrying the message types defined here:

* the server puts :class:`BatchRequest` messages (and a plain ``None``
  shutdown sentinel) on the request queue;
* workers put :class:`BatchReply` messages on the reply queue.

Everything that crosses the boundary must pickle.  Results do —
:class:`~repro.core.types.GNNResult` is plain data once the (process-
local) plan attachment is stripped — but :class:`~repro.api.spec.QuerySpec`
does not (its options live in a ``mappingproxy``), so specs are encoded
to plain-dictionary payloads with :func:`encode_spec` and re-validated
by :func:`decode_spec` on the worker side.

:func:`check_servable` is the admission filter: serving workers hold
*only* the shared flat snapshot, so any spec whose planned route needs
resources of the submitting process (a simulated-disk query file, the
dynamic object tree) is rejected up front, at submit time, with the
reason named — not deep inside a worker.
"""

from __future__ import annotations

import pickle
import struct
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.api.planner import QueryPlan
from repro.api.spec import MEMORY, OBJECT, QuerySpec
from repro.core.types import GNNResult

#: Shutdown sentinel put on the request queue, one per worker.
SHUTDOWN = None

#: Ceiling on one network frame (header-declared payload length).  A
#: frame carries one encoded spec or one k-result reply, both tiny; the
#: cap turns a corrupted or hostile length prefix into a clean error
#: instead of an attempted multi-gigabyte allocation.
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: Big-endian unsigned 32-bit length prefix of every frame.
_FRAME_HEADER = struct.Struct(">I")


@dataclass(frozen=True)
class BatchRequest:
    """One micro-batch dispatched to whichever worker pops it first.

    ``epoch`` and ``snapshot_path`` name the snapshot the batch must be
    answered from: a worker whose mapped snapshot is older remaps before
    executing (the hot-swap path).  ``items`` pairs each server-side
    request id with its encoded spec payload.  ``batch_id`` is the
    server-side identity of the batch; workers claim it before executing
    (:class:`BatchClaim`) and echo it in the reply, which is what lets
    the server attribute an in-flight batch to a worker that died.
    """

    epoch: int
    snapshot_path: str
    items: tuple[tuple[int, dict], ...]
    batch_id: int = -1
    #: Trace contexts for the traced requests of the batch: a tuple of
    #: ``(request_id, (trace_id, parent_span_id))`` pairs, or ``None``
    #: when nothing in the batch is traced (the common, zero-cost case).
    trace: tuple | None = None
    #: ``time.monotonic()`` at dispatch (CLOCK_MONOTONIC is shared
    #: across processes on one host): the gap to worker pickup is the
    #: queue wait, stamped on traced ``serve.worker`` spans.
    dispatched_s: float = 0.0


@dataclass(frozen=True)
class BatchClaim:
    """A worker's declaration that it is about to execute a batch.

    Sent on the reply queue *before* execution starts.  If the claiming
    worker dies before its :class:`BatchReply` arrives, the server knows
    exactly which requests died with it and can fail them immediately
    (``WorkerDiedError``) instead of leaving their futures hanging.
    """

    worker_id: int
    batch_id: int


@dataclass(frozen=True)
class BatchReply:
    """A worker's answer to one :class:`BatchRequest`.

    ``items`` carries ``(request_id, result, error)`` triples — exactly
    one of ``result``/``error`` is set per request.  ``counters`` is the
    worker's mergeable stats delta for this batch
    (:meth:`repro.serve.stats.ServingCounters.snapshot`), and
    ``generation`` the token of the snapshot that answered it.
    ``batch_id`` echoes the request's id so the server can retire the
    matching :class:`BatchClaim`.
    """

    worker_id: int
    epoch: int
    generation: int
    items: tuple[tuple[int, GNNResult | None, str | None], ...]
    counters: dict
    batch_id: int = -1
    #: Span dicts built worker-side for the batch's traced requests
    #: (each carries the trace_id it belongs to); empty when untraced.
    spans: tuple = ()


def check_servable(spec: QuerySpec, plan: QueryPlan) -> None:
    """Reject specs a snapshot-only worker can never execute.

    Raises ``ValueError`` naming the first blocking reason; returns
    silently when the planned route runs over the shared flat snapshot
    (or the snapshot-reconstructed dataset, for brute force).
    """
    if spec.group_file is not None:
        raise ValueError(
            "specs carrying a group_file cannot be served: the simulated "
            "disk file lives in the submitting process, not in the workers"
        )
    if plan.residency != MEMORY:
        raise ValueError(
            "disk-resident specs traverse the dynamic object R-tree, which "
            "serving workers do not hold; execute them on a local engine"
        )
    if spec.index == OBJECT:
        raise ValueError(
            "index='object' pins the query to the dynamic object R-tree, "
            "which serving workers do not hold; use index='auto' or 'flat'"
        )
    if not plan.use_flat and plan.algorithm.name != "brute-force":
        raise ValueError(
            f"the planned route ({plan.algorithm.name}, options "
            f"{dict(plan.options)!r}) has no flat-snapshot traversal; "
            "serving workers hold only the shared mmap snapshot"
        )


def encode_spec(spec: QuerySpec) -> dict[str, Any]:
    """Encode a (servable) spec as a picklable plain-dictionary payload."""
    return {
        "group": np.asarray(spec.group),
        "k": spec.k,
        "aggregate": spec.aggregate,
        "weights": None if spec.weights is None else np.asarray(spec.weights),
        "residency": spec.residency,
        "algorithm": spec.algorithm,
        "options": dict(spec.options),
        "index": spec.index,
        "label": spec.label,
    }


def decode_spec(payload: dict[str, Any]) -> QuerySpec:
    """Rebuild (and re-validate) a :class:`QuerySpec` from its payload."""
    return QuerySpec(**payload)


# ----------------------------------------------------------------------
# length-prefixed frames (the network transport of repro.shard)
# ----------------------------------------------------------------------
def pack_frame(message: Any) -> bytes:
    """Serialise one message as a length-prefixed pickle frame.

    The shard subsystem speaks this framing over TCP: a 4-byte
    big-endian payload length followed by the pickled message (specs
    cross as :func:`encode_spec` payloads, results as
    :func:`encode_result`-stripped :class:`GNNResult`\\ s).  Pickle is
    appropriate because both ends of a federation are trusted peers of
    the same deployment — this is an internal scatter-gather fabric,
    not a public API surface.
    """
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    if len(payload) > MAX_FRAME_BYTES:
        raise ValueError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte frame cap"
        )
    return _FRAME_HEADER.pack(len(payload)) + payload


def unpack_frame(data: bytes) -> Any:
    """Inverse of :func:`pack_frame` for a complete in-memory frame."""
    if len(data) < _FRAME_HEADER.size:
        raise ValueError("truncated frame: missing length prefix")
    (length,) = _FRAME_HEADER.unpack_from(data)
    if length > MAX_FRAME_BYTES:
        raise ValueError(f"frame of {length} bytes exceeds the {MAX_FRAME_BYTES}-byte cap")
    if len(data) != _FRAME_HEADER.size + length:
        raise ValueError(
            f"frame length prefix says {length} payload bytes, got "
            f"{len(data) - _FRAME_HEADER.size}"
        )
    return pickle.loads(data[_FRAME_HEADER.size :])


async def read_frame(reader) -> Any:
    """Read one frame from an ``asyncio.StreamReader``.

    Returns the decoded message, or ``None`` on a clean end-of-stream
    (the peer closed between frames).  A connection torn mid-frame
    raises ``ConnectionError`` — the caller must treat the stream as
    dead either way.
    """
    import asyncio

    try:
        header = await reader.readexactly(_FRAME_HEADER.size)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise ConnectionError("connection closed mid-frame (truncated header)") from error
    (length,) = _FRAME_HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ValueError(f"frame of {length} bytes exceeds the {MAX_FRAME_BYTES}-byte cap")
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as error:
        raise ConnectionError("connection closed mid-frame (truncated payload)") from error
    return pickle.loads(payload)


def encode_result(result: GNNResult) -> GNNResult:
    """Strip the process-local plan attachment so the result pickles.

    A :class:`~repro.api.planner.QueryPlan` holds the registry's runner
    callables and a ``mappingproxy``; neither crosses the process
    boundary, so served results never carry ``result.plan`` (re-plan
    with ``engine.explain`` client-side when the rationale is needed).
    """
    if result.plan is not None:
        result.plan = None
    return result
