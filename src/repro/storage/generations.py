"""Generation directory: crash-safe snapshot publication and recovery.

One engine's durable state lives in a single directory::

    snapshot-gen000003.npz   frozen FlatRTree generations (atomic renames)
    MANIFEST                 JSON pointer at the newest durable generation
    wal.log                  write-ahead log of mutations since that generation

Publication order is the whole correctness story:

1. the new snapshot is written via temp file + fsync + atomic rename
   (``FlatRTree.save(..., fsync=True)``) — a crash before or during this
   leaves the previous generation untouched;
2. ``MANIFEST`` is replaced atomically (``manifest.write`` fault point)
   — a crash between 1 and 2 leaves a complete but unreferenced
   snapshot, which the recovery scan may still adopt since it is newer
   and complete;
3. only after the manifest is durable are stale generations deleted —
   so at every instant at least one complete generation exists on disk.

Recovery (:meth:`GenerationStore.latest`) trusts ``MANIFEST`` when it
parses and points at a loadable snapshot, and otherwise falls back to
scanning generation files newest-first for the first one that loads —
tolerating a missing, torn, or stale manifest.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

from repro.storage.atomicio import write_json_atomic

MANIFEST_NAME = "MANIFEST"
WAL_NAME = "wal.log"
_SNAPSHOT_RE = re.compile(r"^snapshot-gen(\d{6})\.npz$")


def snapshot_name(generation: int) -> str:
    return f"snapshot-gen{int(generation):06d}.npz"


class GenerationStore:
    """Owns one engine's generation directory (layout documented above)."""

    def __init__(self, directory, *, fsync: bool = True, keep: int = 1):
        if keep < 1:
            raise ValueError("keep must retain at least the newest generation")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync = bool(fsync)
        self.keep = int(keep)

    @property
    def manifest_path(self) -> Path:
        return self.directory / MANIFEST_NAME

    @property
    def wal_path(self) -> Path:
        return self.directory / WAL_NAME

    def snapshot_path(self, generation: int) -> Path:
        return self.directory / snapshot_name(generation)

    # ------------------------------------------------------------------
    # publication
    # ------------------------------------------------------------------
    def publish(self, flat) -> Path:
        """Durably publish ``flat`` as the newest generation.

        Snapshot first, manifest second, GC last — see the module
        docstring for why a crash at any point in between is safe.
        """
        generation = int(flat.generation)
        path = self.snapshot_path(generation)
        flat.save(path, fsync=self.fsync)
        write_json_atomic(
            self.manifest_path,
            {
                "version": 1,
                "generation": generation,
                "snapshot": path.name,
                "size": int(flat.size),
                "dims": int(flat.dims),
            },
            fsync=self.fsync,
            fault_point="manifest.write",
        )
        self._collect_garbage(generation)
        return path

    def _collect_garbage(self, durable_generation: int) -> None:
        """Drop generations older than the ``keep`` newest ≤ durable one."""
        stale = [
            (gen, path)
            for gen, path in self._scan_snapshots()
            if gen <= durable_generation
        ]
        for gen, path in stale[self.keep:]:
            try:
                path.unlink()
            except OSError:
                pass  # GC is advisory; a leftover file is re-collected later
        # Stray temp files from crashed publications are dead weight too.
        for path in self.directory.glob("*.tmp"):
            try:
                path.unlink()
            except OSError:
                pass

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    def _scan_snapshots(self):
        """``(generation, path)`` pairs present on disk, newest first."""
        found = []
        for path in self.directory.iterdir():
            match = _SNAPSHOT_RE.match(path.name)
            if match:
                found.append((int(match.group(1)), path))
        found.sort(reverse=True)
        return found

    def manifest_generation(self):
        """The generation ``MANIFEST`` points at, or ``None`` if unreadable."""
        try:
            document = json.loads(self.manifest_path.read_text())
            return int(document["generation"])
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def latest(self, *, mmap_mode: str | None = "r"):
        """Load the newest *complete* generation, or ``None`` if none exists.

        The manifest is a hint, not an authority: a complete snapshot
        newer than the manifest (crash between snapshot rename and
        manifest write) is preferred, and a manifest pointing at a
        missing or unloadable file is simply skipped by the scan.
        """
        # Imported here: rtree.flat itself depends on repro.storage.
        from repro.rtree.flat import FlatRTree

        for generation, path in self._scan_snapshots():
            try:
                flat = FlatRTree.load(path, mmap_mode=mmap_mode)
            except Exception:
                continue  # incomplete/corrupt file — try the next-newest
            if int(flat.generation) != generation:
                flat.generation = generation
            return flat
        return None
