"""I/O counters for the simulated disk and for memory-mapped snapshots.

All counter classes here expose the same tiny protocol: ``snapshot()``
returns the counters as a plain numeric dictionary, ``reset()`` zeroes
them, and ``merge(other)`` folds another instance (or snapshot
dictionary) into this one.  Snapshots are therefore *mergeable*: the
serving subsystem ships per-worker snapshots across process boundaries
and folds them into one server-wide view with :func:`merge_snapshots`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

#: Default OS page size used to report memory-mapped extents.
OS_PAGE_BYTES = 4096


def merge_snapshots(snapshots: Iterable[Mapping[str, float]]) -> dict[str, float]:
    """Fold counter snapshot dictionaries into one by key-wise addition.

    Keys missing from some snapshots contribute zero; the result carries
    the union of all keys.  Integer-only columns stay integers.
    """
    merged: dict[str, float] = {}
    for snapshot in snapshots:
        for key, value in snapshot.items():
            merged[key] = merged.get(key, 0) + value
    return merged


def _as_snapshot(other) -> Mapping[str, float]:
    """Normalise a counter object or a plain dictionary to a snapshot."""
    if isinstance(other, Mapping):
        return other
    return other.snapshot()


@dataclass
class IOCounters:
    """Counts page and block reads against the simulated query file.

    Attributes
    ----------
    page_reads:
        Individual pages fetched from the simulated disk.
    block_reads:
        Memory-sized blocks of the query file loaded (each block is a
        group ``Q_i`` in the terminology of Sections 4.2-4.3).
    sort_passes:
        External-sort passes performed over the file (the paper excludes
        sorting from the reported cost, but the counter is kept so the
        harness can verify that exclusion explicitly).
    """

    page_reads: int = 0
    block_reads: int = 0
    sort_passes: int = 0

    def record_page_reads(self, count: int = 1) -> None:
        """Charge ``count`` page reads."""
        self.page_reads += count

    def record_block_read(self, pages_in_block: int) -> None:
        """Charge one block read consisting of ``pages_in_block`` pages."""
        self.block_reads += 1
        self.page_reads += pages_in_block

    def record_sort_pass(self) -> None:
        """Charge one external-sort pass."""
        self.sort_passes += 1

    def merge(self, other) -> "IOCounters":
        """Fold another :class:`IOCounters` (or its snapshot dict) into this one."""
        snapshot = _as_snapshot(other)
        self.page_reads += int(snapshot.get("page_reads", 0))
        self.block_reads += int(snapshot.get("block_reads", 0))
        self.sort_passes += int(snapshot.get("sort_passes", 0))
        return self

    def snapshot(self) -> dict[str, int]:
        """Return the counters as a plain dictionary."""
        return {
            "page_reads": self.page_reads,
            "block_reads": self.block_reads,
            "sort_passes": self.sort_passes,
        }

    def reset(self) -> None:
        """Zero every counter."""
        self.page_reads = 0
        self.block_reads = 0
        self.sort_passes = 0


@dataclass
class MappedPageCounters:
    """Extent of the arrays a memory-mapped flat snapshot spans.

    A ``FlatRTree`` opened with ``mmap_mode="r"`` copies nothing: the OS
    pages array data in on demand.  These counters record how much
    *could* be paged in — the number of arrays mapped, their total bytes
    and the OS pages (:data:`OS_PAGE_BYTES`) they span — so benchmarks
    and reports can put logical node accesses next to the physical
    footprint of the index.
    """

    arrays_mapped: int = 0
    bytes_mapped: int = 0
    pages_mapped: int = 0

    def record_mapped(self, nbytes: int, page_bytes: int = OS_PAGE_BYTES) -> None:
        """Charge one mapped array of ``nbytes`` bytes."""
        nbytes = int(nbytes)
        self.arrays_mapped += 1
        self.bytes_mapped += nbytes
        self.pages_mapped += -(-nbytes // page_bytes)

    def merge(self, other) -> "MappedPageCounters":
        """Fold another :class:`MappedPageCounters` (or its snapshot dict) into this one."""
        snapshot = _as_snapshot(other)
        self.arrays_mapped += int(snapshot.get("arrays_mapped", 0))
        self.bytes_mapped += int(snapshot.get("bytes_mapped", 0))
        self.pages_mapped += int(snapshot.get("pages_mapped", 0))
        return self

    def snapshot(self) -> dict[str, int]:
        """Return the counters as a plain dictionary."""
        return {
            "arrays_mapped": self.arrays_mapped,
            "bytes_mapped": self.bytes_mapped,
            "pages_mapped": self.pages_mapped,
        }

    def reset(self) -> None:
        """Zero every counter."""
        self.arrays_mapped = 0
        self.bytes_mapped = 0
        self.pages_mapped = 0
