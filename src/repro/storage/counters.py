"""I/O counters for the simulated disk and for memory-mapped snapshots."""

from __future__ import annotations

from dataclasses import dataclass

#: Default OS page size used to report memory-mapped extents.
OS_PAGE_BYTES = 4096


@dataclass
class IOCounters:
    """Counts page and block reads against the simulated query file.

    Attributes
    ----------
    page_reads:
        Individual pages fetched from the simulated disk.
    block_reads:
        Memory-sized blocks of the query file loaded (each block is a
        group ``Q_i`` in the terminology of Sections 4.2-4.3).
    sort_passes:
        External-sort passes performed over the file (the paper excludes
        sorting from the reported cost, but the counter is kept so the
        harness can verify that exclusion explicitly).
    """

    page_reads: int = 0
    block_reads: int = 0
    sort_passes: int = 0

    def record_page_reads(self, count: int = 1) -> None:
        """Charge ``count`` page reads."""
        self.page_reads += count

    def record_block_read(self, pages_in_block: int) -> None:
        """Charge one block read consisting of ``pages_in_block`` pages."""
        self.block_reads += 1
        self.page_reads += pages_in_block

    def record_sort_pass(self) -> None:
        """Charge one external-sort pass."""
        self.sort_passes += 1

    def snapshot(self) -> dict[str, int]:
        """Return the counters as a plain dictionary."""
        return {
            "page_reads": self.page_reads,
            "block_reads": self.block_reads,
            "sort_passes": self.sort_passes,
        }

    def reset(self) -> None:
        """Zero every counter."""
        self.page_reads = 0
        self.block_reads = 0
        self.sort_passes = 0


@dataclass
class MappedPageCounters:
    """Extent of the arrays a memory-mapped flat snapshot spans.

    A ``FlatRTree`` opened with ``mmap_mode="r"`` copies nothing: the OS
    pages array data in on demand.  These counters record how much
    *could* be paged in — the number of arrays mapped, their total bytes
    and the OS pages (:data:`OS_PAGE_BYTES`) they span — so benchmarks
    and reports can put logical node accesses next to the physical
    footprint of the index.
    """

    arrays_mapped: int = 0
    bytes_mapped: int = 0
    pages_mapped: int = 0

    def record_mapped(self, nbytes: int, page_bytes: int = OS_PAGE_BYTES) -> None:
        """Charge one mapped array of ``nbytes`` bytes."""
        nbytes = int(nbytes)
        self.arrays_mapped += 1
        self.bytes_mapped += nbytes
        self.pages_mapped += -(-nbytes // page_bytes)

    def snapshot(self) -> dict[str, int]:
        """Return the counters as a plain dictionary."""
        return {
            "arrays_mapped": self.arrays_mapped,
            "bytes_mapped": self.bytes_mapped,
            "pages_mapped": self.pages_mapped,
        }

    def reset(self) -> None:
        """Zero every counter."""
        self.arrays_mapped = 0
        self.bytes_mapped = 0
        self.pages_mapped = 0
