"""I/O counters for the simulated disk."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class IOCounters:
    """Counts page and block reads against the simulated query file.

    Attributes
    ----------
    page_reads:
        Individual pages fetched from the simulated disk.
    block_reads:
        Memory-sized blocks of the query file loaded (each block is a
        group ``Q_i`` in the terminology of Sections 4.2-4.3).
    sort_passes:
        External-sort passes performed over the file (the paper excludes
        sorting from the reported cost, but the counter is kept so the
        harness can verify that exclusion explicitly).
    """

    page_reads: int = 0
    block_reads: int = 0
    sort_passes: int = 0

    def record_page_reads(self, count: int = 1) -> None:
        """Charge ``count`` page reads."""
        self.page_reads += count

    def record_block_read(self, pages_in_block: int) -> None:
        """Charge one block read consisting of ``pages_in_block`` pages."""
        self.block_reads += 1
        self.page_reads += pages_in_block

    def record_sort_pass(self) -> None:
        """Charge one external-sort pass."""
        self.sort_passes += 1

    def snapshot(self) -> dict[str, int]:
        """Return the counters as a plain dictionary."""
        return {
            "page_reads": self.page_reads,
            "block_reads": self.block_reads,
            "sort_passes": self.sort_passes,
        }

    def reset(self) -> None:
        """Zero every counter."""
        self.page_reads = 0
        self.block_reads = 0
        self.sort_passes = 0
