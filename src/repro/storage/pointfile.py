"""Disk-resident query files.

F-MQM and F-MBM (Sections 4.2 and 4.3 of the paper) assume the query set
``Q`` is a flat, non-indexed file of points that does not fit in memory.
Both algorithms first sort the file by Hilbert value (for locality) and
then process it in memory-sized *blocks* ``Q_1 .. Q_m``.

:class:`PointFile` models that file: it wraps a :class:`~repro.storage.pager.Pager`,
supports Hilbert sorting, and exposes block-level reads that charge the
shared :class:`~repro.storage.counters.IOCounters`.  :class:`QueryBlock`
is the in-memory image of one block together with the summary (MBR and
cardinality) that F-MBM keeps resident.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.hilbert import hilbert_sort
from repro.geometry.mbr import MBR
from repro.geometry.point import as_points
from repro.storage.counters import IOCounters
from repro.storage.pager import Pager


class QueryBlock:
    """One memory-resident block ``Q_i`` of a disk-resident query set.

    Attributes
    ----------
    index:
        Position of the block within the file (0-based).
    points:
        ``(n_i, dims)`` array with the block's query points.
    record_ids:
        Identifiers of the points in the original (unsorted) file.
    mbr:
        Minimum bounding rectangle ``M_i`` of the block.
    """

    __slots__ = ("index", "points", "record_ids", "mbr")

    def __init__(self, index: int, points: np.ndarray, record_ids: np.ndarray):
        self.index = int(index)
        self.points = points
        self.record_ids = record_ids
        self.mbr = MBR.from_points(points)

    @property
    def cardinality(self) -> int:
        """Number of query points in the block (``n_i`` in the paper)."""
        return self.points.shape[0]

    def __len__(self) -> int:
        return self.cardinality

    def __repr__(self) -> str:
        return f"QueryBlock(index={self.index}, points={self.cardinality})"


class BlockSummary:
    """The in-memory summary F-MBM keeps per block: its MBR and cardinality."""

    __slots__ = ("index", "mbr", "cardinality")

    def __init__(self, index: int, mbr: MBR, cardinality: int):
        self.index = int(index)
        self.mbr = mbr
        self.cardinality = int(cardinality)

    def __repr__(self) -> str:
        return f"BlockSummary(index={self.index}, cardinality={self.cardinality})"


class PointFile:
    """A flat file of points stored on the simulated disk.

    Parameters
    ----------
    points:
        The query points in their original order.
    points_per_page:
        Page capacity of the simulated disk.
    block_pages:
        Number of pages that fit in memory at once; a block ``Q_i``
        consists of this many consecutive pages (the paper's experiments
        use blocks of 10,000 points).
    counters:
        Shared I/O counters; private ones are created when omitted.
    hilbert_sorted:
        When True (default), the file is rewritten in Hilbert order
        before being split into blocks, exactly as F-MQM/F-MBM require.
    """

    def __init__(
        self,
        points: np.ndarray,
        points_per_page: int = 50,
        block_pages: int = 200,
        counters: IOCounters | None = None,
        hilbert_sorted: bool = True,
    ):
        pts = as_points(points)
        self.counters = counters if counters is not None else IOCounters()
        self.block_pages = int(block_pages)
        if self.block_pages < 1:
            raise ValueError("block_pages must be positive")
        record_ids = np.arange(pts.shape[0], dtype=np.int64)
        if hilbert_sorted:
            order = hilbert_sort(pts)
            pts = pts[order]
            record_ids = record_ids[order]
            # One external sort pass is charged for bookkeeping, although
            # the paper excludes sorting from the reported cost.
            self.counters.record_sort_pass()
        self._pager = Pager(pts, points_per_page, counters=self.counters, record_ids=record_ids)

    # ------------------------------------------------------------------
    # shape
    # ------------------------------------------------------------------
    @property
    def point_count(self) -> int:
        """Total number of query points (``n`` in the paper)."""
        return self._pager.point_count

    @property
    def dims(self) -> int:
        """Dimensionality of the stored points."""
        return self._pager.dims

    @property
    def points_per_block(self) -> int:
        """Maximum number of points per block."""
        return self.block_pages * self._pager.points_per_page

    @property
    def block_count(self) -> int:
        """Number of blocks ``m`` the file splits into."""
        pages = self._pager.page_count
        return (pages + self.block_pages - 1) // self.block_pages

    def __len__(self) -> int:
        return self.point_count

    # ------------------------------------------------------------------
    # block access
    # ------------------------------------------------------------------
    def read_block(self, index: int) -> QueryBlock:
        """Load block ``Q_index`` into memory, charging one block read."""
        if not 0 <= index < self.block_count:
            raise IndexError(f"block {index} out of range (file has {self.block_count} blocks)")
        first_page = index * self.block_pages
        last_page = min(first_page + self.block_pages, self._pager.page_count)
        pages = [self._pager.peek_page(page_id) for page_id in range(first_page, last_page)]
        self.counters.record_block_read(pages_in_block=len(pages))
        points = np.vstack([page.points for page in pages])
        record_ids = np.concatenate([page.record_ids for page in pages])
        return QueryBlock(index, points, record_ids)

    def iter_blocks(self):
        """Yield every block in file order, charging I/O for each."""
        for index in range(self.block_count):
            yield self.read_block(index)

    def block_summaries(self) -> list[BlockSummary]:
        """Return the per-block MBR and cardinality summaries.

        F-MBM computes these once with a single sequential scan of the
        file (charged here) and keeps them in memory for the rest of the
        query.
        """
        summaries = []
        for block in self.iter_blocks():
            summaries.append(BlockSummary(block.index, block.mbr, block.cardinality))
        return summaries

    def all_points(self) -> np.ndarray:
        """Return every point (in storage order) without charging I/O.

        Used by correctness tests and the brute-force baseline, never by
        the algorithms under measurement.
        """
        pages = [self._pager.peek_page(i) for i in range(self._pager.page_count)]
        return np.vstack([page.points for page in pages])

    def __repr__(self) -> str:
        return (
            f"PointFile(points={self.point_count}, blocks={self.block_count}, "
            f"points_per_block={self.points_per_block})"
        )
