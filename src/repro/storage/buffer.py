"""A least-recently-used page buffer.

The paper notes that MQM "benefits from the existence of an LRU buffer"
because successive per-query-point NN searches revisit the same R-tree
nodes.  Attaching an :class:`LRUBuffer` to an
:class:`~repro.rtree.tree.RTree` makes the tree report both logical node
accesses and buffer misses (page faults), so that effect can be
reproduced and measured.
"""

from __future__ import annotations

from collections import OrderedDict


class LRUBuffer:
    """Fixed-capacity LRU cache of page identifiers.

    The buffer stores only identifiers — the simulated pages have no
    payload to cache — which is all that is needed to decide hit/miss.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("buffer capacity must be at least one page")
        self.capacity = int(capacity)
        self._pages: OrderedDict[int, None] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._pages)

    def __contains__(self, page_id: int) -> bool:
        return page_id in self._pages

    def access(self, page_id: int) -> bool:
        """Touch ``page_id``; return True on a buffer hit, False on a fault.

        A miss loads the page, evicting least recently used pages while
        the buffer is over capacity.  The page just touched is the most
        recently used and is never the one evicted — even mid-sequence
        with the buffer over capacity (e.g. after :meth:`resize` shrank
        ``capacity`` below the resident count, or a single-page buffer
        faulting on every access).
        """
        if page_id in self._pages:
            self._pages.move_to_end(page_id)
            self.hits += 1
            self._evict_over_capacity()
            return True
        self.misses += 1
        self._pages[page_id] = None
        self._evict_over_capacity()
        return False

    def _evict_over_capacity(self) -> None:
        """Evict from the LRU end until within capacity.

        The ``> 1`` guard keeps the most recently touched page resident
        no matter what ``capacity`` says: an accounting sequence must
        never report a miss for the page it just loaded.
        """
        pages = self._pages
        while len(pages) > self.capacity and len(pages) > 1:
            pages.popitem(last=False)

    def resize(self, capacity: int) -> None:
        """Change the buffer capacity, evicting LRU pages when shrinking.

        Counters are preserved — resizing models a reconfiguration
        mid-workload, not a restart.
        """
        if capacity < 1:
            raise ValueError("buffer capacity must be at least one page")
        self.capacity = int(capacity)
        self._evict_over_capacity()

    def clear(self) -> None:
        """Drop every cached page and zero the hit/miss counters."""
        self._pages.clear()
        self.hits = 0
        self.misses = 0

    def hit_ratio(self) -> float:
        """Fraction of accesses that hit the buffer (0.0 when never accessed)."""
        total = self.hits + self.misses
        if total == 0:
            return 0.0
        return self.hits / total

    def __repr__(self) -> str:
        return (
            f"LRUBuffer(capacity={self.capacity}, resident={len(self._pages)}, "
            f"hits={self.hits}, misses={self.misses})"
        )
