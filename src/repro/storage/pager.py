"""Simulated disk pages.

A :class:`Pager` owns a sequence of fixed-capacity :class:`Page` objects
holding point rows.  Reading a page charges the associated
:class:`~repro.storage.counters.IOCounters`.  The query-file abstraction
(:mod:`repro.storage.pointfile`) is built on top of this.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.point import as_points
from repro.storage.counters import IOCounters


class Page:
    """One fixed-size disk page holding a contiguous slice of points."""

    __slots__ = ("page_id", "points", "record_ids")

    def __init__(self, page_id: int, points: np.ndarray, record_ids: np.ndarray):
        self.page_id = int(page_id)
        self.points = points
        self.record_ids = record_ids

    def __len__(self) -> int:
        return self.points.shape[0]

    def __repr__(self) -> str:
        return f"Page(id={self.page_id}, points={len(self)})"


class Pager:
    """Splits a point array into pages and counts reads.

    Parameters
    ----------
    points:
        ``(count, dims)`` array in storage order.
    points_per_page:
        Page capacity; the paper's 1 KByte pages hold 50 two-dimensional
        points, which is the default used by the experiment configs.
    counters:
        Shared :class:`IOCounters`; a private instance is created when
        omitted.
    """

    def __init__(
        self,
        points: np.ndarray,
        points_per_page: int,
        counters: IOCounters | None = None,
        record_ids: np.ndarray | None = None,
    ):
        pts = as_points(points)
        if points_per_page < 1:
            raise ValueError("points_per_page must be positive")
        self.points_per_page = int(points_per_page)
        self.counters = counters if counters is not None else IOCounters()
        if record_ids is None:
            record_ids = np.arange(pts.shape[0], dtype=np.int64)
        else:
            record_ids = np.asarray(record_ids, dtype=np.int64)
            if record_ids.shape[0] != pts.shape[0]:
                raise ValueError("record_ids must have one entry per point")
        self._pages = [
            Page(
                page_id,
                pts[start : start + points_per_page],
                record_ids[start : start + points_per_page],
            )
            for page_id, start in enumerate(range(0, pts.shape[0], points_per_page))
        ]
        self._point_count = pts.shape[0]
        self._dims = pts.shape[1]

    @property
    def page_count(self) -> int:
        """Total number of pages in the file."""
        return len(self._pages)

    @property
    def point_count(self) -> int:
        """Total number of points stored."""
        return self._point_count

    @property
    def dims(self) -> int:
        """Dimensionality of the stored points."""
        return self._dims

    def read_page(self, page_id: int) -> Page:
        """Fetch one page, charging a page read."""
        if not 0 <= page_id < len(self._pages):
            raise IndexError(f"page {page_id} out of range (file has {len(self._pages)} pages)")
        self.counters.record_page_reads(1)
        return self._pages[page_id]

    def read_pages(self, first: int, count: int) -> list[Page]:
        """Fetch ``count`` consecutive pages starting at ``first``."""
        return [self.read_page(page_id) for page_id in range(first, first + count)]

    def peek_page(self, page_id: int) -> Page:
        """Return a page without charging I/O (used by tests and validation)."""
        return self._pages[page_id]

    def __repr__(self) -> str:
        return (
            f"Pager(points={self._point_count}, pages={self.page_count}, "
            f"points_per_page={self.points_per_page})"
        )
