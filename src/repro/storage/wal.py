"""Write-ahead log for the mutable engine write path.

The LSM write path (PR 7) keeps un-compacted writes in a delta overlay —
pure process memory, gone on a crash.  The WAL closes that hole with the
standard discipline: every ``insert``/``delete`` is appended (and,
depending on the fsync policy, made durable) *before* the in-memory
structures mutate, so ``GNNEngine.recover`` can rebuild the exact
pre-crash merged view from the last durable snapshot generation plus a
replay of the log tail.

File format (all little-endian)::

    header : magic b"RWAL" | version u16 | base_generation i64
    record : length u32 | crc32(payload) u32 | payload
    payload: op u8 (0=insert, 1=delete) | record_id i64 |
             dims u16 | dims * f64 coordinates

``base_generation`` stamps which snapshot generation the log's records
apply *on top of*.  Truncation (:meth:`WriteAheadLog.reset`) atomically
replaces the file with a fresh header stamped with the just-published
generation, so a crash between "snapshot durable" and "log truncated"
leaves a stale log whose ``base_generation`` is older than the
recovered snapshot — recovery detects that and ignores it (every record
is already folded in) instead of replaying writes twice.

Recovery tolerates a torn tail by construction: records are
length-prefixed and checksummed, and :meth:`scan` stops at the first
record whose bytes are missing or whose CRC fails.  Everything before
that point was acknowledged under the durability policy; everything
after it never was.

Fsync policy (``fsync=`` knob):

``always``
    fsync after every append — an acknowledged write survives power
    loss, at ~one disk flush per write.
``interval``
    flush to the OS on every append, fsync at most once per
    ``interval_s`` — bounds power-loss exposure to the interval while
    amortising the flush cost (the default).
``off``
    flush to the OS only — survives a process crash (the common case
    the chaos suite exercises) but not power loss.
"""

from __future__ import annotations

import os
import struct
import time
import zlib
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.obs.logging import get_logger
from repro.storage.atomicio import fsync_directory
from repro.testing import faults

_log = get_logger("storage.wal")

_MAGIC = b"RWAL"
_VERSION = 1
_HEADER = struct.Struct("<4sHq")
_FRAME = struct.Struct("<II")  # payload length, crc32(payload)
_PAYLOAD_HEAD = struct.Struct("<BqH")  # op, record_id, dims

_OP_CODES = {"insert": 0, "delete": 1}
_OP_NAMES = {code: name for name, code in _OP_CODES.items()}

FSYNC_POLICIES = ("always", "interval", "off")


class WalCorruptionError(RuntimeError):
    """The log's *header* is unreadable (torn tails are not errors)."""


@dataclass(frozen=True)
class WalRecord:
    """One logged mutation."""

    op: str
    record_id: int
    point: tuple

    def encode(self) -> bytes:
        coords = tuple(float(c) for c in self.point)
        payload = _PAYLOAD_HEAD.pack(
            _OP_CODES[self.op], int(self.record_id), len(coords)
        ) + struct.pack(f"<{len(coords)}d", *coords)
        return _FRAME.pack(len(payload), zlib.crc32(payload)) + payload


@dataclass(frozen=True)
class WalScan:
    """Everything :meth:`WriteAheadLog.scan` could read from a log file."""

    base_generation: int
    records: tuple
    valid_bytes: int  # header + every intact record; a torn tail starts here
    torn: bool


class WriteAheadLog:
    """Append-only durable log of engine mutations.

    Opening an existing file adopts its ``base_generation`` and truncates
    any torn tail (the bytes past the last intact record never reached
    durability, so discarding them is correct, and leaving them would
    corrupt the *next* append).  Opening a missing file creates it with
    the given ``base_generation``.
    """

    def __init__(
        self,
        path,
        *,
        fsync: str = "interval",
        interval_s: float = 0.05,
        base_generation: int = 0,
    ):
        if fsync not in FSYNC_POLICIES:
            raise ValueError(f"fsync policy must be one of {FSYNC_POLICIES}")
        self.path = str(path)
        self.fsync = fsync
        self.interval_s = float(interval_s)
        self._last_sync = 0.0
        if os.path.exists(self.path):
            scan = self.scan(self.path)
            self.base_generation = scan.base_generation
            if scan.torn:
                with open(self.path, "r+b") as handle:
                    handle.truncate(scan.valid_bytes)
                _log.warning(
                    "wal.torn_tail_truncated",
                    path=self.path,
                    valid_bytes=scan.valid_bytes,
                    records=len(scan.records),
                )
            self._handle = open(self.path, "ab")
        else:
            self.base_generation = int(base_generation)
            self._handle = open(self.path, "wb")
            self._handle.write(_HEADER.pack(_MAGIC, _VERSION, self.base_generation))
            self._handle.flush()
            os.fsync(self._handle.fileno())
            fsync_directory(os.path.dirname(os.path.abspath(self.path)))
            self._last_sync = time.monotonic()

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def append(self, op: str, record_id: int, point: Sequence[float]) -> WalRecord:
        """Log one mutation; returns only once it is on disk per policy.

        The ``wal.append`` fault point covers this write: a ``crash`` arm
        dies at the record boundary (full record flushed, then death), a
        ``torn`` arm flushes a seeded prefix first — both after the bytes
        actually reached the file, so recovery sees what a real crash
        would leave.
        """
        record = WalRecord(op, int(record_id), tuple(float(c) for c in point))
        data, crash_after = faults.filter_write("wal.append", record.encode())
        self._handle.write(data)
        self._handle.flush()
        if crash_after:
            # The simulated crash must observe the bytes on disk first.
            os.fsync(self._handle.fileno())
            faults.crash_after_write("wal.append")
        if self.fsync == "always":
            os.fsync(self._handle.fileno())
        elif self.fsync == "interval":
            now = time.monotonic()
            if now - self._last_sync >= self.interval_s:
                os.fsync(self._handle.fileno())
                self._last_sync = now
        return record

    def sync(self) -> None:
        """Force an fsync regardless of policy."""
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._last_sync = time.monotonic()

    def reset(self, base_generation: int) -> None:
        """Truncate the log after its records were folded into a snapshot.

        Atomic: a fresh header stamped ``base_generation`` is written to
        a temp file, fsync'd, and renamed over the log.  A crash anywhere
        around the rename leaves either the old full log (stale
        ``base_generation`` → recovery ignores it) or the new empty one.
        """
        self._handle.close()
        tmp = self.path + ".reset.tmp"
        with open(tmp, "wb") as handle:
            handle.write(_HEADER.pack(_MAGIC, _VERSION, int(base_generation)))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)
        fsync_directory(os.path.dirname(os.path.abspath(self.path)))
        self.base_generation = int(base_generation)
        self._handle = open(self.path, "ab")
        self._last_sync = time.monotonic()
        _log.info("wal.reset", path=self.path, base_generation=self.base_generation)

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.flush()
            self._handle.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    @classmethod
    def scan(cls, path) -> WalScan:
        """Read a log file, stopping cleanly at any torn tail."""
        with open(path, "rb") as handle:
            blob = handle.read()
        if len(blob) < _HEADER.size:
            raise WalCorruptionError(f"{path}: missing WAL header")
        magic, version, base_generation = _HEADER.unpack_from(blob)
        if magic != _MAGIC or version != _VERSION:
            raise WalCorruptionError(f"{path}: bad WAL magic/version")
        records = []
        offset = _HEADER.size
        torn = False
        while offset < len(blob):
            if offset + _FRAME.size > len(blob):
                torn = True
                break
            length, crc = _FRAME.unpack_from(blob, offset)
            start = offset + _FRAME.size
            end = start + length
            if length < _PAYLOAD_HEAD.size or end > len(blob):
                torn = True
                break
            payload = blob[start:end]
            if zlib.crc32(payload) != crc:
                torn = True
                break
            op_code, record_id, dims = _PAYLOAD_HEAD.unpack_from(payload)
            if op_code not in _OP_NAMES or len(payload) != _PAYLOAD_HEAD.size + 8 * dims:
                torn = True
                break
            coords = struct.unpack_from(f"<{dims}d", payload, _PAYLOAD_HEAD.size)
            records.append(WalRecord(_OP_NAMES[op_code], record_id, coords))
            offset = end
        return WalScan(base_generation, tuple(records), offset, torn)

    @classmethod
    def replay(cls, path) -> Iterable[WalRecord]:
        """The intact records of a log file, oldest first."""
        return cls.scan(path).records
