"""Atomic (and optionally durable) file publication.

Every file the system *publishes* — snapshots, manifests, baselines —
goes through the same discipline: write a same-directory temp file,
flush it, optionally ``fsync`` it, then :func:`os.replace` it into
place (atomic on POSIX and Windows) and optionally ``fsync`` the
directory so the rename itself survives a power cut.  Readers therefore
only ever observe the old complete file or the new complete file; a
crash at any instant leaves at worst a stray ``*.tmp`` the next
publication ignores.

``fsync=False`` (the default) keeps the *atomicity* — torn files are
impossible regardless — and skips only the durability barrier; callers
on a recovery-critical path (the generation store, WAL truncation) pass
``fsync=True``.
"""

from __future__ import annotations

import json
import os
import tempfile
from contextlib import contextmanager

from repro.testing import faults


def fsync_directory(directory) -> None:
    """Durably record a directory's entries (best-effort off-POSIX)."""
    try:
        fd = os.open(str(directory), os.O_RDONLY)
    except OSError:
        return  # platforms that refuse O_RDONLY on directories
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


@contextmanager
def atomic_output(path, *, fsync: bool = False, fault_point: str | None = None):
    """Yield a binary handle whose contents appear at ``path`` atomically.

    On clean exit the temp file is flushed (and ``fsync``\\ 'd when asked),
    the optional ``fault_point`` fires (letting the chaos suite crash
    the publication *between* the complete temp file and the rename),
    and the file is renamed into place.  On any exception the temp file
    is removed and ``path`` is untouched.
    """
    path = str(path)
    directory = os.path.dirname(os.path.abspath(path)) or "."
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    handle = os.fdopen(fd, "wb")
    try:
        yield handle
        handle.flush()
        if fsync:
            os.fsync(handle.fileno())
        handle.close()
        if fault_point is not None:
            faults.fire(fault_point)
        os.replace(tmp_path, path)
        if fsync:
            fsync_directory(directory)
    except BaseException:
        try:
            handle.close()
        except OSError:
            pass
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def write_json_atomic(
    path, document: dict, *, fsync: bool = False, fault_point: str | None = None
) -> None:
    """Write ``document`` as JSON via temp file + atomic rename.

    Readers (and the committed repository) only ever observe the old
    complete file or the new complete file — never a truncation from an
    interrupted run.  ``fsync=True`` adds the durability barrier.
    """
    with atomic_output(path, fsync=fsync, fault_point=fault_point) as handle:
        handle.write(
            (json.dumps(document, indent=2, sort_keys=True) + "\n").encode("utf-8")
        )
