"""Disk simulation: page I/O accounting, an LRU buffer and paged point files.

The paper's disk-resident algorithms (Section 4) assume the query set
``Q`` lives on disk, Hilbert-sorted and read in memory-sized blocks.  No
real disk is involved in this reproduction; instead the classes here
model pages and blocks explicitly and count every read, so the
experiments can report I/O alongside R-tree node accesses.
"""

from repro.storage.buffer import LRUBuffer
from repro.storage.counters import IOCounters, MappedPageCounters, merge_snapshots
from repro.storage.pager import Page, Pager
from repro.storage.pointfile import BlockSummary, PointFile, QueryBlock

__all__ = [
    "BlockSummary",
    "IOCounters",
    "LRUBuffer",
    "MappedPageCounters",
    "Page",
    "Pager",
    "PointFile",
    "QueryBlock",
    "merge_snapshots",
]
