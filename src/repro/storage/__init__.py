"""Disk simulation: page I/O accounting, an LRU buffer and paged point files.

The paper's disk-resident algorithms (Section 4) assume the query set
``Q`` lives on disk, Hilbert-sorted and read in memory-sized blocks.  No
real disk is involved in this reproduction; instead the classes here
model pages and blocks explicitly and count every read, so the
experiments can report I/O alongside R-tree node accesses.
"""

from repro.storage.atomicio import atomic_output, fsync_directory, write_json_atomic
from repro.storage.buffer import LRUBuffer
from repro.storage.counters import IOCounters, MappedPageCounters, merge_snapshots
from repro.storage.generations import GenerationStore, snapshot_name
from repro.storage.pager import Page, Pager
from repro.storage.pointfile import BlockSummary, PointFile, QueryBlock
from repro.storage.wal import WalCorruptionError, WalRecord, WalScan, WriteAheadLog

__all__ = [
    "BlockSummary",
    "GenerationStore",
    "IOCounters",
    "LRUBuffer",
    "MappedPageCounters",
    "Page",
    "Pager",
    "PointFile",
    "QueryBlock",
    "WalCorruptionError",
    "WalRecord",
    "WalScan",
    "WriteAheadLog",
    "atomic_output",
    "fsync_directory",
    "merge_snapshots",
    "snapshot_name",
    "write_json_atomic",
]
