"""Dataset and workload generators for the paper's experiments.

The paper evaluates on two real datasets that are no longer downloadable
(PP — populated places of North America; TS — centroids of stream MBRs
of four US states).  :mod:`repro.datasets.real_like` provides synthetic
stand-ins with the same cardinalities and qualitatively similar spatial
skew; :mod:`repro.datasets.workload` builds the query workloads used by
Figures 5.1-5.7 (query groups of ``n`` uniform points inside a random
MBR covering a given fraction of the data workspace, workspace scaling
and workspace-overlap placement).
"""

from repro.datasets.real_like import pp_like, ts_like
from repro.datasets.synthetic import gaussian_clusters, uniform_points
from repro.datasets.workload import (
    TraceRequest,
    WorkloadSpec,
    generate_query_group,
    generate_request_trace,
    generate_workload,
    place_with_overlap,
    scale_into_workspace,
)

__all__ = [
    "TraceRequest",
    "WorkloadSpec",
    "gaussian_clusters",
    "generate_query_group",
    "generate_request_trace",
    "generate_workload",
    "place_with_overlap",
    "pp_like",
    "scale_into_workspace",
    "ts_like",
    "uniform_points",
]
