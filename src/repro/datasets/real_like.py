"""Stand-ins for the paper's real datasets.

The paper evaluates on:

* **PP** — 24,493 populated places in North America ([Web1]), a heavily
  clustered point set (cities cluster along coasts and rivers);
* **TS** — 194,971 centroids of MBRs of streams (poly-lines) in Iowa,
  Kansas, Missouri and Nebraska ([Web2]), i.e. points that are dense
  along linear features.

Both download locations are long gone, so this module generates
synthetic datasets with the same cardinalities and qualitatively similar
spatial skew (documented as a substitution in DESIGN.md).  The
generators accept a ``count`` override so tests and CI-speed benchmarks
can run on proportionally smaller instances: what matters for the
reproduction is the *ratio* of the two cardinalities (TS is roughly 8x
PP, which drives the number of query blocks in Section 5.2) and the
clustered, non-uniform distribution.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.synthetic import DEFAULT_WORKSPACE, gaussian_clusters, line_segments

#: Cardinalities of the original datasets.
PP_CARDINALITY = 24_493
TS_CARDINALITY = 194_971


def pp_like(
    count: int = PP_CARDINALITY,
    workspace: tuple[float, float] = DEFAULT_WORKSPACE,
    seed: int = 7,
) -> np.ndarray:
    """A PP-like dataset: strongly clustered "populated places".

    Produced as a mixture of many Gaussian clusters with skewed sizes
    (large metropolitan clusters plus many small towns) over a sparse
    uniform background.
    """
    if count < 10:
        raise ValueError("count must be at least 10 to mix clusters and background")
    rng = np.random.default_rng(seed)
    background = max(1, count // 20)
    clustered = count - background
    clusters = max(5, min(120, clustered // 150))
    cluster_points = gaussian_clusters(
        clustered,
        clusters=clusters,
        spread_fraction=0.02,
        workspace=workspace,
        seed=seed,
    )
    low, high = workspace
    background_points = rng.uniform(low, high, size=(background, 2))
    points = np.vstack([cluster_points, background_points])
    rng.shuffle(points)
    return points


def ts_like(
    count: int = TS_CARDINALITY,
    workspace: tuple[float, float] = DEFAULT_WORKSPACE,
    seed: int = 11,
) -> np.ndarray:
    """A TS-like dataset: points dense along linear (stream-like) features."""
    if count < 10:
        raise ValueError("count must be at least 10")
    segments = max(50, count // 300)
    points = line_segments(count, segments=segments, workspace=workspace, seed=seed)
    rng = np.random.default_rng(seed)
    rng.shuffle(points)
    return points


def scaled_pair(
    scale: float = 1.0, workspace: tuple[float, float] = DEFAULT_WORKSPACE, seed: int = 3
) -> tuple[np.ndarray, np.ndarray]:
    """Return (PP-like, TS-like) datasets shrunk by ``scale``.

    ``scale=1.0`` reproduces the paper's cardinalities; smaller values
    keep the 1:8 ratio while letting the pure-Python benchmarks finish in
    reasonable time.  The ratio is what determines the number of query
    blocks (3 vs 20 in the paper) and therefore the relative behaviour of
    F-MQM and F-MBM.
    """
    if not 0.0 < scale <= 1.0:
        raise ValueError("scale must be in (0, 1]")
    pp_count = max(100, int(round(PP_CARDINALITY * scale)))
    ts_count = max(800, int(round(TS_CARDINALITY * scale)))
    return (
        pp_like(pp_count, workspace=workspace, seed=seed),
        ts_like(ts_count, workspace=workspace, seed=seed + 1),
    )
