"""Basic synthetic point distributions.

These are the building blocks for the "real-like" datasets and for
property-based tests that need controllable inputs.  All generators are
deterministic given a seed and return ``(count, dims)`` float64 arrays.
"""

from __future__ import annotations

import numpy as np

#: The workspace every generator uses by default: a square matching the
#: order of magnitude of projected geographic coordinates.
DEFAULT_WORKSPACE = (0.0, 10_000.0)


def _rng(seed):
    return np.random.default_rng(seed)


def uniform_points(
    count: int,
    dims: int = 2,
    workspace: tuple[float, float] = DEFAULT_WORKSPACE,
    seed: int | None = 0,
) -> np.ndarray:
    """Points drawn uniformly at random from the workspace hyper-cube."""
    if count < 1:
        raise ValueError("count must be positive")
    low, high = workspace
    return _rng(seed).uniform(low, high, size=(count, dims))


def gaussian_clusters(
    count: int,
    clusters: int = 10,
    dims: int = 2,
    spread_fraction: float = 0.03,
    workspace: tuple[float, float] = DEFAULT_WORKSPACE,
    seed: int | None = 0,
    cluster_weights: np.ndarray | None = None,
) -> np.ndarray:
    """A mixture of isotropic Gaussian clusters, clipped to the workspace.

    Parameters
    ----------
    count:
        Total number of points.
    clusters:
        Number of mixture components; centres are uniform in the workspace.
    spread_fraction:
        Cluster standard deviation as a fraction of the workspace side.
    cluster_weights:
        Optional relative sizes of the clusters (normalised internally);
        by default sizes follow a skewed (Dirichlet) split so that some
        clusters dominate, as real population data does.
    """
    if count < 1:
        raise ValueError("count must be positive")
    if clusters < 1:
        raise ValueError("clusters must be positive")
    rng = _rng(seed)
    low, high = workspace
    side = high - low
    centers = rng.uniform(low, high, size=(clusters, dims))
    if cluster_weights is None:
        cluster_weights = rng.dirichlet(np.full(clusters, 0.7))
    else:
        cluster_weights = np.asarray(cluster_weights, dtype=np.float64)
        cluster_weights = cluster_weights / cluster_weights.sum()
    assignments = rng.choice(clusters, size=count, p=cluster_weights)
    noise = rng.normal(scale=spread_fraction * side, size=(count, dims))
    points = centers[assignments] + noise
    return np.clip(points, low, high)


def line_segments(
    count: int,
    segments: int = 200,
    dims: int = 2,
    workspace: tuple[float, float] = DEFAULT_WORKSPACE,
    seed: int | None = 0,
) -> np.ndarray:
    """Points sampled along random poly-lines (random walks).

    Mimics datasets derived from linear features such as rivers or
    roads: points are dense along one-dimensional structures rather
    than spread over areas.
    """
    if count < 1:
        raise ValueError("count must be positive")
    rng = _rng(seed)
    low, high = workspace
    side = high - low
    per_segment = max(1, count // segments)
    points = []
    remaining = count
    while remaining > 0:
        start = rng.uniform(low, high, size=dims)
        direction = rng.normal(size=dims)
        direction /= np.sqrt((direction * direction).sum())
        length = rng.uniform(0.02, 0.15) * side
        steps = min(per_segment, remaining)
        t = np.sort(rng.uniform(0.0, 1.0, size=steps))
        jitter = rng.normal(scale=0.002 * side, size=(steps, dims))
        segment_points = start[None, :] + t[:, None] * direction[None, :] * length + jitter
        points.append(segment_points)
        remaining -= steps
    stacked = np.vstack(points)[:count]
    return np.clip(stacked, low, high)
