"""Query-workload generation for the paper's experiments.

Section 5.1: "we use workloads of 100 queries.  Each query has a number
``n`` of points, distributed uniformly in a MBR of area ``M``, which is
randomly generated in the workspace of ``P``."  Section 5.2 varies the
*relative workspaces* of the data and query datasets: either the query
workspace is a centred, scaled-down copy of the data workspace, or the
two workspaces have equal size and a controlled overlap fraction.

The helpers here implement exactly those placements.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.mbr import MBR
from repro.geometry.point import as_points


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of one experimental setting (one x-axis position of a figure).

    Attributes
    ----------
    n:
        Number of query points per group.
    mbr_fraction:
        Area of the query MBR as a fraction of the data workspace area
        (the paper's ``M``, e.g. 0.08 for "8%").
    k:
        Number of group nearest neighbors retrieved.
    queries:
        Number of query groups in the workload (100 in the paper).
    """

    n: int
    mbr_fraction: float
    k: int
    queries: int = 100

    def describe(self) -> str:
        """Human-readable one-liner used by the report tables."""
        return (
            f"n={self.n}, M={self.mbr_fraction:.0%}, k={self.k}, "
            f"queries={self.queries}"
        )


def _place_query_box(
    data_mbr: MBR, mbr_fraction: float, rng: np.random.Generator
) -> tuple[np.ndarray, float]:
    """A random square query box inside the workspace: ``(low corner, side)``.

    The square's area is ``mbr_fraction * area(data_mbr)``, clamped so it
    fits, and its position is uniform over the placements that keep it
    inside the workspace.
    """
    extents = data_mbr.extents
    side = float(np.sqrt(mbr_fraction * data_mbr.area()))
    side = min(side, float(extents.min()))
    low = np.array(
        [
            rng.uniform(data_mbr.low[d], data_mbr.high[d] - side)
            if data_mbr.high[d] - side > data_mbr.low[d]
            else data_mbr.low[d]
            for d in range(data_mbr.dims)
        ]
    )
    return low, side


def generate_query_group(
    data_mbr: MBR,
    n: int,
    mbr_fraction: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Generate one query group: ``n`` uniform points in a random query MBR.

    The query MBR is a square of area ``mbr_fraction * area(data_mbr)``
    placed uniformly at random inside the data workspace (clamped so it
    fits).
    """
    if n < 1:
        raise ValueError("n must be positive")
    if not 0.0 < mbr_fraction <= 1.0:
        raise ValueError("mbr_fraction must be in (0, 1]")
    low, side = _place_query_box(data_mbr, mbr_fraction, rng)
    return rng.uniform(low, low + side, size=(n, data_mbr.dims))


def generate_workload(
    data_points: np.ndarray,
    spec: WorkloadSpec,
    seed: int = 0,
) -> list[np.ndarray]:
    """Generate the full workload (a list of query groups) for one setting."""
    pts = as_points(data_points)
    data_mbr = MBR.from_points(pts)
    rng = np.random.default_rng(seed)
    return [
        generate_query_group(data_mbr, spec.n, spec.mbr_fraction, rng)
        for _ in range(spec.queries)
    ]


@dataclass(frozen=True)
class TraceRequest:
    """One request of a serving trace: when it arrives and what it asks.

    Attributes
    ----------
    arrival_s:
        Arrival time in seconds since the start of the trace.
    group:
        The ``(n, dims)`` query group.
    k:
        Number of group nearest neighbors requested.
    hotspot:
        Index of the popularity hotspot the group was drawn from (useful
        to verify cache behaviour against the Zipf skew).
    """

    arrival_s: float
    group: np.ndarray
    k: int
    hotspot: int


def generate_request_trace(
    data_points: np.ndarray | None = None,
    *,
    requests: int,
    rate_per_s: float,
    n: int,
    mbr_fraction: float,
    k: int,
    hotspots: int = 16,
    zipf_exponent: float = 1.1,
    seed: int = 0,
    extent: MBR | tuple | None = None,
) -> list[TraceRequest]:
    """Seeded Poisson/Zipf request trace for serving experiments.

    Models how user traffic actually reaches a GNN server rather than
    the paper's fixed 100-query workloads: arrival times follow a
    homogeneous Poisson process of ``rate_per_s`` requests per second
    (i.i.d. exponential inter-arrivals), and spatial popularity is
    skewed — ``hotspots`` query boxes are placed like the Figure-5
    workloads (:func:`generate_query_group`'s placement, each of area
    ``mbr_fraction`` of the workspace), and each request picks hotspot
    ``i`` with probability proportional to ``(i + 1) ** -zipf_exponent``
    (a Zipf law, so a few boxes receive most of the traffic), then draws
    its ``n`` points uniformly inside that box.

    The workspace the hotspots are placed in defaults to the bounding
    box of ``data_points``; ``extent`` overrides it with an explicit
    :class:`~repro.geometry.mbr.MBR` (or ``(low, high)`` pair), which is
    how per-shard-skewed traces are generated — pass one shard's root
    MBR from a :class:`repro.shard.ShardManifest` and every hotspot
    lands inside that shard's territory.  Exactly one of ``data_points``
    and ``extent`` is required (both together use ``extent``); traces
    generated without ``extent`` are byte-identical to those of earlier
    versions for the same ``seed``.

    The trace is fully determined by ``seed``: replaying it against two
    server configurations compares them on identical work.
    """
    if requests < 1:
        raise ValueError("requests must be positive")
    if rate_per_s <= 0.0:
        raise ValueError("rate_per_s must be positive")
    if hotspots < 1:
        raise ValueError("hotspots must be positive")
    if zipf_exponent < 0.0:
        raise ValueError("zipf_exponent must be non-negative")
    if n < 1:
        raise ValueError("n must be positive")
    if not 0.0 < mbr_fraction <= 1.0:
        raise ValueError("mbr_fraction must be in (0, 1]")
    if extent is not None:
        data_mbr = extent if isinstance(extent, MBR) else MBR(extent[0], extent[1])
    elif data_points is not None:
        data_mbr = MBR.from_points(as_points(data_points))
    else:
        raise ValueError(
            "generate_request_trace needs a workspace: pass data_points "
            "(its bounding box is used) or an explicit extent"
        )
    rng = np.random.default_rng(seed)

    arrivals = np.cumsum(rng.exponential(1.0 / rate_per_s, size=requests))
    boxes = [_place_query_box(data_mbr, mbr_fraction, rng) for _ in range(hotspots)]
    weights = np.arange(1, hotspots + 1, dtype=np.float64) ** -zipf_exponent
    choices = rng.choice(hotspots, size=requests, p=weights / weights.sum())

    trace = []
    for arrival, choice in zip(arrivals, choices):
        low, side = boxes[choice]
        group = rng.uniform(low, low + side, size=(n, data_mbr.dims))
        trace.append(
            TraceRequest(
                arrival_s=float(arrival), group=group, k=k, hotspot=int(choice)
            )
        )
    return trace


def scale_into_workspace(
    query_points: np.ndarray,
    data_points: np.ndarray,
    area_fraction: float,
) -> np.ndarray:
    """Affinely map a query dataset into a centred sub-workspace of the data.

    Used by Figures 5.4 and 5.5: the workspaces of ``P`` and ``Q`` share
    the same centroid but the MBR of ``Q`` covers ``area_fraction`` of
    the workspace of ``P``.
    """
    if not 0.0 < area_fraction <= 1.0:
        raise ValueError("area_fraction must be in (0, 1]")
    q = as_points(query_points)
    data_mbr = MBR.from_points(as_points(data_points))
    query_mbr = MBR.from_points(q)
    scale = float(np.sqrt(area_fraction))
    target_extents = data_mbr.extents * scale
    target_low = data_mbr.center - target_extents / 2.0
    source_extents = np.where(query_mbr.extents > 0, query_mbr.extents, 1.0)
    normalised = (q - query_mbr.low) / source_extents
    return target_low + normalised * target_extents


def place_with_overlap(
    query_points: np.ndarray,
    data_points: np.ndarray,
    overlap_fraction: float,
) -> np.ndarray:
    """Place the query workspace so it overlaps the data workspace by a fraction.

    Used by Figures 5.6 and 5.7: both workspaces have the same size; an
    overlap of 100% means they coincide, 0% means they are disjoint
    (meeting at a corner).  Intermediate values are obtained by shifting
    the query workspace diagonally, exactly as described in the paper:
    a shift of ``s`` times the side length on both axes leaves an overlap
    area of ``(1 - s)^2``, hence ``s = 1 - sqrt(overlap_fraction)``.
    """
    if not 0.0 <= overlap_fraction <= 1.0:
        raise ValueError("overlap_fraction must be in [0, 1]")
    q = as_points(query_points)
    data_mbr = MBR.from_points(as_points(data_points))
    query_mbr = MBR.from_points(q)
    # First, map the query workspace onto the data workspace (same size,
    # same position), then shift diagonally.
    source_extents = np.where(query_mbr.extents > 0, query_mbr.extents, 1.0)
    normalised = (q - query_mbr.low) / source_extents
    aligned = data_mbr.low + normalised * data_mbr.extents
    shift_fraction = 1.0 - float(np.sqrt(overlap_fraction))
    return aligned + shift_fraction * data_mbr.extents
