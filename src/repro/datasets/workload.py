"""Query-workload generation for the paper's experiments.

Section 5.1: "we use workloads of 100 queries.  Each query has a number
``n`` of points, distributed uniformly in a MBR of area ``M``, which is
randomly generated in the workspace of ``P``."  Section 5.2 varies the
*relative workspaces* of the data and query datasets: either the query
workspace is a centred, scaled-down copy of the data workspace, or the
two workspaces have equal size and a controlled overlap fraction.

The helpers here implement exactly those placements.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.mbr import MBR
from repro.geometry.point import as_points


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of one experimental setting (one x-axis position of a figure).

    Attributes
    ----------
    n:
        Number of query points per group.
    mbr_fraction:
        Area of the query MBR as a fraction of the data workspace area
        (the paper's ``M``, e.g. 0.08 for "8%").
    k:
        Number of group nearest neighbors retrieved.
    queries:
        Number of query groups in the workload (100 in the paper).
    """

    n: int
    mbr_fraction: float
    k: int
    queries: int = 100

    def describe(self) -> str:
        """Human-readable one-liner used by the report tables."""
        return (
            f"n={self.n}, M={self.mbr_fraction:.0%}, k={self.k}, "
            f"queries={self.queries}"
        )


def generate_query_group(
    data_mbr: MBR,
    n: int,
    mbr_fraction: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Generate one query group: ``n`` uniform points in a random query MBR.

    The query MBR is a square of area ``mbr_fraction * area(data_mbr)``
    placed uniformly at random inside the data workspace (clamped so it
    fits).
    """
    if n < 1:
        raise ValueError("n must be positive")
    if not 0.0 < mbr_fraction <= 1.0:
        raise ValueError("mbr_fraction must be in (0, 1]")
    extents = data_mbr.extents
    # A square whose area is the requested fraction of the workspace area.
    side = float(np.sqrt(mbr_fraction * data_mbr.area()))
    side = min(side, float(extents.min()))
    low = np.array(
        [
            rng.uniform(data_mbr.low[d], data_mbr.high[d] - side)
            if data_mbr.high[d] - side > data_mbr.low[d]
            else data_mbr.low[d]
            for d in range(data_mbr.dims)
        ]
    )
    return rng.uniform(low, low + side, size=(n, data_mbr.dims))


def generate_workload(
    data_points: np.ndarray,
    spec: WorkloadSpec,
    seed: int = 0,
) -> list[np.ndarray]:
    """Generate the full workload (a list of query groups) for one setting."""
    pts = as_points(data_points)
    data_mbr = MBR.from_points(pts)
    rng = np.random.default_rng(seed)
    return [
        generate_query_group(data_mbr, spec.n, spec.mbr_fraction, rng)
        for _ in range(spec.queries)
    ]


def scale_into_workspace(
    query_points: np.ndarray,
    data_points: np.ndarray,
    area_fraction: float,
) -> np.ndarray:
    """Affinely map a query dataset into a centred sub-workspace of the data.

    Used by Figures 5.4 and 5.5: the workspaces of ``P`` and ``Q`` share
    the same centroid but the MBR of ``Q`` covers ``area_fraction`` of
    the workspace of ``P``.
    """
    if not 0.0 < area_fraction <= 1.0:
        raise ValueError("area_fraction must be in (0, 1]")
    q = as_points(query_points)
    data_mbr = MBR.from_points(as_points(data_points))
    query_mbr = MBR.from_points(q)
    scale = float(np.sqrt(area_fraction))
    target_extents = data_mbr.extents * scale
    target_low = data_mbr.center - target_extents / 2.0
    source_extents = np.where(query_mbr.extents > 0, query_mbr.extents, 1.0)
    normalised = (q - query_mbr.low) / source_extents
    return target_low + normalised * target_extents


def place_with_overlap(
    query_points: np.ndarray,
    data_points: np.ndarray,
    overlap_fraction: float,
) -> np.ndarray:
    """Place the query workspace so it overlaps the data workspace by a fraction.

    Used by Figures 5.6 and 5.7: both workspaces have the same size; an
    overlap of 100% means they coincide, 0% means they are disjoint
    (meeting at a corner).  Intermediate values are obtained by shifting
    the query workspace diagonally, exactly as described in the paper:
    a shift of ``s`` times the side length on both axes leaves an overlap
    area of ``(1 - s)^2``, hence ``s = 1 - sqrt(overlap_fraction)``.
    """
    if not 0.0 <= overlap_fraction <= 1.0:
        raise ValueError("overlap_fraction must be in [0, 1]")
    q = as_points(query_points)
    data_mbr = MBR.from_points(as_points(data_points))
    query_mbr = MBR.from_points(q)
    # First, map the query workspace onto the data workspace (same size,
    # same position), then shift diagonally.
    source_extents = np.where(query_mbr.extents > 0, query_mbr.extents, 1.0)
    normalised = (q - query_mbr.low) / source_extents
    aligned = data_mbr.low + normalised * data_mbr.extents
    shift_fraction = 1.0 - float(np.sqrt(overlap_fraction))
    return aligned + shift_fraction * data_mbr.extents
