"""Plain-text and Markdown reporting of experiment results.

The paper presents its results as log-scale plots; a text harness cannot
draw them, so the report writer prints, for each x-axis value, one row
per algorithm with the two metrics of every figure (average node
accesses and CPU seconds).  The Markdown writer produces the tables that
EXPERIMENTS.md embeds.
"""

from __future__ import annotations

from repro.bench.experiments import ExperimentResult


def _format_value(value) -> str:
    if isinstance(value, float):
        if value != 0 and (abs(value) < 0.01 or abs(value) >= 100000):
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(result: ExperimentResult, metrics=("node_accesses", "cpu_time")) -> str:
    """Render one experiment as an aligned plain-text table."""
    headers = [result.x_label, "algorithm", *metrics, "notes"]
    rows = []
    for row in result.rows:
        rows.append(
            [
                _format_value(row["x"]),
                row["algorithm"],
                *[_format_value(row.get(metric, "")) for metric in metrics],
                row.get("notes", "") or "",
            ]
        )
    widths = [max(len(str(h)), *(len(r[i]) for r in rows)) if rows else len(str(h)) for i, h in enumerate(headers)]
    lines = [
        f"{result.name}: {result.description} [scale={result.scale}]",
        "  " + "  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers)),
        "  " + "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rows:
        lines.append("  " + "  ".join(row[i].ljust(widths[i]) for i in range(len(headers))))
    return "\n".join(lines)


def results_to_markdown(result: ExperimentResult, metrics=("node_accesses", "cpu_time")) -> str:
    """Render one experiment as a GitHub-flavoured Markdown table."""
    headers = [result.x_label, "algorithm", *metrics, "notes"]
    lines = [
        f"### {result.name} — {result.description} (scale: {result.scale})",
        "",
        "| " + " | ".join(headers) + " |",
        "| " + " | ".join("---" for _ in headers) + " |",
    ]
    for row in result.rows:
        cells = [
            _format_value(row["x"]),
            row["algorithm"],
            *[_format_value(row.get(metric, "")) for metric in metrics],
            row.get("notes", "") or "",
        ]
        lines.append("| " + " | ".join(cells) + " |")
    lines.append("")
    return "\n".join(lines)
