"""Workload execution.

A *setting* is one x-axis position of one figure: a set of query groups
(or one disk-resident query dataset placement) that is run through every
competing algorithm.  The runner builds a declarative
:class:`~repro.api.spec.QuerySpec` per (group, algorithm variant) and
executes it through the planner/executor layer — memory workloads go
through the batched :func:`~repro.api.executor.execute_batch` path (the
same code path ``GNNEngine.execute_many`` uses) — then averages the cost
metrics per algorithm, exactly what the paper plots (average node
accesses and CPU time per query of the workload).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.api.executor import ExecutionContext, execute_batch, execute_spec
from repro.api.planner import QueryPlanner
from repro.api.spec import DISK, QuerySpec
from repro.rtree.tree import RTree

MEMORY_ALGORITHMS = ("MQM", "SPM", "MBM")
DISK_ALGORITHMS = ("GCP", "F-MQM", "F-MBM")

#: Bench series name → (registry algorithm, options).  The ablation
#: variants are ordinary algorithms with non-default options, which is
#: exactly what QuerySpec.options is for.
MEMORY_VARIANTS = {
    "MQM": ("mqm", {}),
    "SPM": ("spm", {}),
    "MBM": ("mbm", {}),
    "MBM-H2": ("mbm", {"use_heuristic3": False}),
    "SPM-weiszfeld": ("spm", {"centroid_method": "weiszfeld"}),
    "SPM-mean": ("spm", {"centroid_method": "mean"}),
}

DISK_VARIANTS = {
    "GCP": "gcp",
    "F-MQM": "fmqm",
    "F-MBM": "fmbm",
}


@dataclass
class AlgorithmAverages:
    """Average per-query cost of one algorithm over a workload."""

    algorithm: str
    node_accesses: float = 0.0
    cpu_time: float = 0.0
    distance_computations: float = 0.0
    page_reads: float = 0.0
    queries: int = 0
    notes: str = ""

    def as_row(self) -> dict[str, object]:
        """Return the averages as a flat dictionary (one table row)."""
        return {
            "algorithm": self.algorithm,
            "node_accesses": round(self.node_accesses, 1),
            "cpu_time": self.cpu_time,
            "distance_computations": round(self.distance_computations, 1),
            "page_reads": round(self.page_reads, 1),
            "queries": self.queries,
            "notes": self.notes,
        }


@dataclass
class MemoryWorkloadResult:
    """Result of one memory-resident setting: averages per algorithm."""

    setting: dict[str, object]
    averages: dict[str, AlgorithmAverages] = field(default_factory=dict)


@dataclass
class DiskWorkloadResult:
    """Result of one disk-resident setting: averages per algorithm."""

    setting: dict[str, object]
    averages: dict[str, AlgorithmAverages] = field(default_factory=dict)


def _accumulate(averages: AlgorithmAverages, cost) -> None:
    averages.node_accesses += cost.node_accesses
    averages.cpu_time += cost.cpu_time
    averages.distance_computations += cost.distance_computations
    averages.page_reads += cost.page_reads
    averages.queries += 1


def _finalise(averages: AlgorithmAverages) -> None:
    if averages.queries == 0:
        return
    averages.node_accesses /= averages.queries
    averages.cpu_time /= averages.queries
    averages.distance_computations /= averages.queries
    averages.page_reads /= averages.queries


def run_memory_setting(
    tree: RTree,
    query_groups: list[np.ndarray],
    k: int,
    algorithms: tuple[str, ...] = MEMORY_ALGORITHMS,
    setting: dict[str, object] | None = None,
) -> MemoryWorkloadResult:
    """Run every memory-resident algorithm over a workload of query groups.

    The same query groups are fed to every algorithm so the comparison is
    paired, and the results of the algorithms are cross-checked against
    each other (a mismatch raises, because it would invalidate the whole
    measurement).
    """
    for name in algorithms:
        if name not in MEMORY_VARIANTS:
            raise ValueError(
                f"unknown memory-resident algorithm {name!r}; "
                f"expected one of {sorted(MEMORY_VARIANTS)}"
            )
    result = MemoryWorkloadResult(setting=dict(setting or {}))
    context = ExecutionContext(tree=tree)
    planner = QueryPlanner()

    reference: list[np.ndarray | None] = [None] * len(query_groups)
    for name in algorithms:
        averages = result.averages[name] = AlgorithmAverages(algorithm=name)
        algorithm, options = MEMORY_VARIANTS[name]
        specs = [
            QuerySpec(group=group, k=k, algorithm=algorithm, options=options)
            for group in query_groups
        ]
        outcomes = execute_batch(context, specs, planner=planner)
        for index, outcome in enumerate(outcomes):
            _accumulate(averages, outcome.cost)
            distances = np.array(outcome.distances())
            if reference[index] is None:
                reference[index] = distances
            elif not np.allclose(distances, reference[index], rtol=1e-8, atol=1e-8):
                raise AssertionError(
                    f"algorithm {name} disagrees with {algorithms[0]} on a workload query"
                )
    for averages in result.averages.values():
        _finalise(averages)
    return result


def run_disk_setting(
    tree: RTree,
    query_points: np.ndarray,
    k: int,
    algorithms: tuple[str, ...] = DISK_ALGORITHMS,
    points_per_page: int = 50,
    block_pages: int = 200,
    query_tree_capacity: int = 50,
    gcp_max_pairs: int | None = None,
    setting: dict[str, object] | None = None,
) -> DiskWorkloadResult:
    """Run the disk-resident algorithms for one placement of the query dataset.

    GCP gets an R-tree over the query points (the paper's indexed
    setting); F-MQM and F-MBM get a Hilbert-sorted
    :class:`~repro.storage.pointfile.PointFile` split into blocks of
    ``block_pages * points_per_page`` points, built by the executor from
    the spec's file-geometry options.
    """
    result = DiskWorkloadResult(setting=dict(setting or {}))
    context = ExecutionContext(tree=tree)
    planner = QueryPlanner()
    reference_distances = None

    for name in algorithms:
        if name not in DISK_VARIANTS:
            raise ValueError(
                f"unknown disk-resident algorithm {name!r}; "
                f"expected one of {sorted(DISK_VARIANTS)}"
            )
        averages = AlgorithmAverages(algorithm=name)
        result.averages[name] = averages
        if name == "GCP":
            options = {"query_tree_capacity": query_tree_capacity, "max_pairs": gcp_max_pairs}
        else:
            options = {"points_per_page": points_per_page, "block_pages": block_pages}
        spec = QuerySpec(
            group=query_points,
            k=k,
            residency=DISK,
            algorithm=DISK_VARIANTS[name],
            options=options,
        )
        outcome = execute_spec(context, spec, planner=planner)
        if name == "GCP" and "aborted" in outcome.cost.algorithm:
            averages.notes = "did not terminate within the pair cap"
        _accumulate(averages, outcome.cost)
        _finalise(averages)

        distances = np.array(outcome.distances())
        if averages.notes:
            continue  # an aborted GCP run cannot be used as a correctness reference
        if reference_distances is None:
            reference_distances = distances
        elif distances.size and not np.allclose(
            distances, reference_distances, rtol=1e-8, atol=1e-8
        ):
            raise AssertionError(f"algorithm {name} disagrees with the reference result")
    return result
