"""Workload execution.

A *setting* is one x-axis position of one figure: a set of query groups
(or one disk-resident query dataset placement) that is run through every
competing algorithm.  The runner executes the setting and averages the
cost metrics per algorithm — exactly what the paper plots (average node
accesses and CPU time per query of the workload).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.fmbm import fmbm
from repro.core.fmqm import fmqm
from repro.core.gcp import gcp
from repro.core.mbm import mbm
from repro.core.mqm import mqm
from repro.core.spm import spm
from repro.core.types import GroupQuery
from repro.rtree.tree import RTree
from repro.storage.pointfile import PointFile

MEMORY_ALGORITHMS = ("MQM", "SPM", "MBM")
DISK_ALGORITHMS = ("GCP", "F-MQM", "F-MBM")


@dataclass
class AlgorithmAverages:
    """Average per-query cost of one algorithm over a workload."""

    algorithm: str
    node_accesses: float = 0.0
    cpu_time: float = 0.0
    distance_computations: float = 0.0
    page_reads: float = 0.0
    queries: int = 0
    notes: str = ""

    def as_row(self) -> dict[str, object]:
        """Return the averages as a flat dictionary (one table row)."""
        return {
            "algorithm": self.algorithm,
            "node_accesses": round(self.node_accesses, 1),
            "cpu_time": self.cpu_time,
            "distance_computations": round(self.distance_computations, 1),
            "page_reads": round(self.page_reads, 1),
            "queries": self.queries,
            "notes": self.notes,
        }


@dataclass
class MemoryWorkloadResult:
    """Result of one memory-resident setting: averages per algorithm."""

    setting: dict[str, object]
    averages: dict[str, AlgorithmAverages] = field(default_factory=dict)


@dataclass
class DiskWorkloadResult:
    """Result of one disk-resident setting: averages per algorithm."""

    setting: dict[str, object]
    averages: dict[str, AlgorithmAverages] = field(default_factory=dict)


def _accumulate(averages: AlgorithmAverages, cost) -> None:
    averages.node_accesses += cost.node_accesses
    averages.cpu_time += cost.cpu_time
    averages.distance_computations += cost.distance_computations
    averages.page_reads += cost.page_reads
    averages.queries += 1


def _finalise(averages: AlgorithmAverages) -> None:
    if averages.queries == 0:
        return
    averages.node_accesses /= averages.queries
    averages.cpu_time /= averages.queries
    averages.distance_computations /= averages.queries
    averages.page_reads /= averages.queries


def run_memory_setting(
    tree: RTree,
    query_groups: list[np.ndarray],
    k: int,
    algorithms: tuple[str, ...] = MEMORY_ALGORITHMS,
    setting: dict[str, object] | None = None,
) -> MemoryWorkloadResult:
    """Run every memory-resident algorithm over a workload of query groups.

    The same query groups are fed to every algorithm so the comparison is
    paired, and the results of the algorithms are cross-checked against
    each other (a mismatch raises, because it would invalidate the whole
    measurement).
    """
    result = MemoryWorkloadResult(setting=dict(setting or {}))
    runners = {
        "MQM": lambda query: mqm(tree, query),
        "SPM": lambda query: spm(tree, query),
        "MBM": lambda query: mbm(tree, query),
        "MBM-H2": lambda query: mbm(tree, query, use_heuristic3=False),
        "SPM-weiszfeld": lambda query: spm(tree, query, centroid_method="weiszfeld"),
        "SPM-mean": lambda query: spm(tree, query, centroid_method="mean"),
    }
    for name in algorithms:
        if name not in runners:
            raise ValueError(f"unknown memory-resident algorithm {name!r}")
        result.averages[name] = AlgorithmAverages(algorithm=name)

    for group in query_groups:
        reference_distances = None
        for name in algorithms:
            query = GroupQuery(group, k=k)
            outcome = runners[name](query)
            _accumulate(result.averages[name], outcome.cost)
            distances = np.array(outcome.distances())
            if reference_distances is None:
                reference_distances = distances
            elif not np.allclose(distances, reference_distances, rtol=1e-8, atol=1e-8):
                raise AssertionError(
                    f"algorithm {name} disagrees with {algorithms[0]} on a workload query"
                )
    for averages in result.averages.values():
        _finalise(averages)
    return result


def run_disk_setting(
    tree: RTree,
    query_points: np.ndarray,
    k: int,
    algorithms: tuple[str, ...] = DISK_ALGORITHMS,
    points_per_page: int = 50,
    block_pages: int = 200,
    query_tree_capacity: int = 50,
    gcp_max_pairs: int | None = None,
    setting: dict[str, object] | None = None,
) -> DiskWorkloadResult:
    """Run the disk-resident algorithms for one placement of the query dataset.

    GCP gets an R-tree over the query points (the paper's indexed
    setting); F-MQM and F-MBM get a Hilbert-sorted :class:`PointFile`
    split into blocks of ``block_pages * points_per_page`` points.
    """
    result = DiskWorkloadResult(setting=dict(setting or {}))
    reference_distances = None

    for name in algorithms:
        averages = AlgorithmAverages(algorithm=name)
        result.averages[name] = averages
        if name == "GCP":
            query_tree = RTree.bulk_load(query_points, capacity=query_tree_capacity)
            outcome = gcp(tree, query_tree, k=k, max_pairs=gcp_max_pairs)
            if "aborted" in outcome.cost.algorithm:
                averages.notes = "did not terminate within the pair cap"
        elif name == "F-MQM":
            query_file = PointFile(
                query_points, points_per_page=points_per_page, block_pages=block_pages
            )
            outcome = fmqm(tree, query_file, k=k)
        elif name == "F-MBM":
            query_file = PointFile(
                query_points, points_per_page=points_per_page, block_pages=block_pages
            )
            outcome = fmbm(tree, query_file, k=k)
        else:
            raise ValueError(f"unknown disk-resident algorithm {name!r}")
        _accumulate(averages, outcome.cost)
        _finalise(averages)

        distances = np.array(outcome.distances())
        if averages.notes:
            continue  # an aborted GCP run cannot be used as a correctness reference
        if reference_distances is None:
            reference_distances = distances
        elif distances.size and not np.allclose(
            distances, reference_distances, rtol=1e-8, atol=1e-8
        ):
            raise AssertionError(f"algorithm {name} disagrees with the reference result")
    return result
