"""Experiment harness reproducing Section 5 of the paper.

Every figure of the evaluation (5.1-5.7) has a corresponding experiment
definition in :mod:`repro.bench.experiments`; running one produces the
same series the paper plots (average node accesses and CPU time per
algorithm, as a function of the figure's x-axis).  The harness can be
driven three ways:

* programmatically (``run_experiment("fig5_1_pp")``),
* from the command line (``python -m repro.bench --list`` /
  ``python -m repro.bench fig5_1_pp --scale quick``),
* through the pytest-benchmark modules under ``benchmarks/``.
"""

from repro.bench.config import BenchScale, get_scale
from repro.bench.experiments import EXPERIMENTS, run_experiment
from repro.bench.report import format_table, results_to_markdown
from repro.bench.runner import (
    DiskWorkloadResult,
    MemoryWorkloadResult,
    run_disk_setting,
    run_memory_setting,
)

__all__ = [
    "BenchScale",
    "DiskWorkloadResult",
    "EXPERIMENTS",
    "MemoryWorkloadResult",
    "format_table",
    "get_scale",
    "results_to_markdown",
    "run_disk_setting",
    "run_experiment",
    "run_memory_setting",
]
