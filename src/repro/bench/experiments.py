"""Experiment definitions for every figure of the paper's evaluation.

Each function reproduces one figure (both of its panels — node accesses
and CPU time — come from the same run) and returns an
:class:`ExperimentResult` whose rows are exactly the series the paper
plots.  The registry at the bottom maps experiment names (used by the
CLI and the pytest benchmarks) to these functions.

Figures and settings (Section 5):

* 5.1 — memory-resident, cost vs. query cardinality ``n`` (M=8%, k=8)
* 5.2 — memory-resident, cost vs. query MBR size ``M`` (n=64, k=8)
* 5.3 — memory-resident, cost vs. number of neighbors ``k`` (n=64, M=8%)
* 5.4 — disk-resident, Q=PP over P=TS, cost vs. query MBR size
* 5.5 — disk-resident, Q=TS over P=PP, cost vs. query MBR size
* 5.6 — disk-resident, Q=PP over P=TS, cost vs. workspace overlap
* 5.7 — disk-resident, Q=TS over P=PP, cost vs. workspace overlap

plus two ablations called out in the paper's text (footnote 3 on the
value of Heuristic 3, and the sensitivity of SPM to the centroid
approximation), and one engine-level experiment beyond the paper:
``batch_throughput`` measures the planner API's ``execute_many`` batch
path against one ``execute`` call per query.

Workloads are executed through the declarative
:class:`~repro.api.spec.QuerySpec` / planner / executor layer (see
:mod:`repro.bench.runner`), the same code path as ``GNNEngine.execute``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.api.spec import QuerySpec
from repro.bench.config import BenchScale, get_scale
from repro.bench.runner import run_disk_setting, run_memory_setting
from repro.core.engine import GNNEngine
from repro.datasets.real_like import pp_like, ts_like
from repro.datasets.workload import (
    WorkloadSpec,
    generate_workload,
    place_with_overlap,
    scale_into_workspace,
)
from repro.rtree.tree import RTree


@dataclass
class ExperimentResult:
    """All measured series of one figure."""

    name: str
    description: str
    x_label: str
    scale: str
    rows: list[dict] = field(default_factory=list)

    def series(self, algorithm: str, metric: str = "node_accesses") -> list[tuple]:
        """Return ``(x, value)`` pairs of one algorithm's series."""
        return [
            (row["x"], row[metric])
            for row in self.rows
            if row["algorithm"] == algorithm
        ]

    def algorithms(self) -> list[str]:
        """Names of the algorithms that appear in the rows."""
        seen = []
        for row in self.rows:
            if row["algorithm"] not in seen:
                seen.append(row["algorithm"])
        return seen


def _dataset(name: str, scale: BenchScale):
    if name == "pp":
        return pp_like(scale.pp_size)
    if name == "ts":
        return ts_like(scale.ts_size)
    raise ValueError(f"unknown dataset {name!r}; expected 'pp' or 'ts'")


def _memory_figure(
    name: str,
    description: str,
    dataset: str,
    scale: BenchScale,
    x_label: str,
    x_values,
    spec_for,
    algorithms=("MQM", "SPM", "MBM"),
    seed: int = 17,
) -> ExperimentResult:
    """Shared driver for Figures 5.1-5.3 (and the memory ablations)."""
    data = _dataset(dataset, scale)
    tree = RTree.bulk_load(data, capacity=scale.node_capacity)
    result = ExperimentResult(
        name=name, description=description, x_label=x_label, scale=scale.name
    )
    for x in x_values:
        spec: WorkloadSpec = spec_for(x)
        groups = generate_workload(data, spec, seed=seed)
        setting = {"x": x, "spec": spec.describe(), "dataset": dataset.upper()}
        outcome = run_memory_setting(
            tree, groups, k=spec.k, algorithms=algorithms, setting=setting
        )
        for algorithm, averages in outcome.averages.items():
            row = {"x": x, "dataset": dataset.upper(), **averages.as_row()}
            result.rows.append(row)
    return result


# ----------------------------------------------------------------------
# memory-resident figures
# ----------------------------------------------------------------------
def fig5_1(dataset: str, scale: BenchScale) -> ExperimentResult:
    """Figure 5.1: cost vs. query cardinality n (M=8%, k=8)."""
    return _memory_figure(
        name=f"fig5_1_{dataset}",
        description=(
            "Cost vs. cardinality n of Q "
            f"(M={scale.fixed_mbr_fraction:.0%}, k={scale.fixed_k}, dataset={dataset.upper()})"
        ),
        dataset=dataset,
        scale=scale,
        x_label="n",
        x_values=scale.cardinalities,
        spec_for=lambda n: WorkloadSpec(
            n=n,
            mbr_fraction=scale.fixed_mbr_fraction,
            k=scale.fixed_k,
            queries=scale.queries_per_setting,
        ),
    )


def fig5_2(dataset: str, scale: BenchScale) -> ExperimentResult:
    """Figure 5.2: cost vs. size M of the query MBR (n=64, k=8)."""
    return _memory_figure(
        name=f"fig5_2_{dataset}",
        description=(
            f"Cost vs. size of MBR of Q (n={scale.fixed_n}, k={scale.fixed_k}, "
            f"dataset={dataset.upper()})"
        ),
        dataset=dataset,
        scale=scale,
        x_label="M (fraction of workspace)",
        x_values=scale.mbr_fractions,
        spec_for=lambda fraction: WorkloadSpec(
            n=scale.fixed_n,
            mbr_fraction=fraction,
            k=scale.fixed_k,
            queries=scale.queries_per_setting,
        ),
    )


def fig5_3(dataset: str, scale: BenchScale) -> ExperimentResult:
    """Figure 5.3: cost vs. number of retrieved neighbors k (n=64, M=8%)."""
    return _memory_figure(
        name=f"fig5_3_{dataset}",
        description=(
            f"Cost vs. number of retrieved NNs k (n={scale.fixed_n}, "
            f"M={scale.fixed_mbr_fraction:.0%}, dataset={dataset.upper()})"
        ),
        dataset=dataset,
        scale=scale,
        x_label="k",
        x_values=scale.k_values,
        spec_for=lambda k: WorkloadSpec(
            n=scale.fixed_n,
            mbr_fraction=scale.fixed_mbr_fraction,
            k=k,
            queries=scale.queries_per_setting,
        ),
    )


# ----------------------------------------------------------------------
# disk-resident figures
# ----------------------------------------------------------------------
def _disk_figure(
    name: str,
    description: str,
    data_name: str,
    query_name: str,
    scale: BenchScale,
    x_label: str,
    x_values,
    place,
    algorithms,
) -> ExperimentResult:
    """Shared driver for Figures 5.4-5.7."""
    data = _dataset(data_name, scale)
    query_source = _dataset(query_name, scale)
    tree = RTree.bulk_load(data, capacity=scale.node_capacity)
    result = ExperimentResult(
        name=name, description=description, x_label=x_label, scale=scale.name
    )
    for x in x_values:
        query_points = place(query_source, data, x)
        setting = {"x": x, "P": data_name.upper(), "Q": query_name.upper()}
        outcome = run_disk_setting(
            tree,
            query_points,
            k=scale.fixed_k,
            algorithms=algorithms,
            block_pages=scale.block_pages,
            query_tree_capacity=scale.node_capacity,
            gcp_max_pairs=scale.gcp_max_pairs,
            setting=setting,
        )
        for algorithm, averages in outcome.averages.items():
            row = {"x": x, "P": data_name.upper(), "Q": query_name.upper(), **averages.as_row()}
            result.rows.append(row)
    return result


def fig5_4(scale: BenchScale) -> ExperimentResult:
    """Figure 5.4: disk-resident Q=PP over P=TS, cost vs. query MBR area."""
    return _disk_figure(
        name="fig5_4",
        description=f"Disk-resident cost vs. MBR area of Q (k={scale.fixed_k}, P=TS, Q=PP)",
        data_name="ts",
        query_name="pp",
        scale=scale,
        x_label="MBR area of Q (fraction of workspace of P)",
        x_values=scale.mbr_fractions,
        place=lambda q, p, fraction: scale_into_workspace(q, p, fraction),
        algorithms=("GCP", "F-MQM", "F-MBM"),
    )


def fig5_5(scale: BenchScale) -> ExperimentResult:
    """Figure 5.5: disk-resident Q=TS over P=PP (GCP omitted, as in the paper)."""
    return _disk_figure(
        name="fig5_5",
        description=f"Disk-resident cost vs. MBR area of Q (k={scale.fixed_k}, P=PP, Q=TS)",
        data_name="pp",
        query_name="ts",
        scale=scale,
        x_label="MBR area of Q (fraction of workspace of P)",
        x_values=scale.mbr_fractions,
        place=lambda q, p, fraction: scale_into_workspace(q, p, fraction),
        algorithms=("F-MQM", "F-MBM"),
    )


def fig5_6(scale: BenchScale) -> ExperimentResult:
    """Figure 5.6: disk-resident Q=PP over P=TS, cost vs. workspace overlap."""
    return _disk_figure(
        name="fig5_6",
        description=f"Disk-resident cost vs. workspace overlap (k={scale.fixed_k}, P=TS, Q=PP)",
        data_name="ts",
        query_name="pp",
        scale=scale,
        x_label="overlap area (fraction)",
        x_values=scale.overlap_fractions,
        place=lambda q, p, overlap: place_with_overlap(q, p, overlap),
        algorithms=("GCP", "F-MQM", "F-MBM"),
    )


def fig5_7(scale: BenchScale) -> ExperimentResult:
    """Figure 5.7: disk-resident Q=TS over P=PP, cost vs. workspace overlap."""
    return _disk_figure(
        name="fig5_7",
        description=f"Disk-resident cost vs. workspace overlap (k={scale.fixed_k}, P=PP, Q=TS)",
        data_name="pp",
        query_name="ts",
        scale=scale,
        x_label="overlap area (fraction)",
        x_values=scale.overlap_fractions,
        place=lambda q, p, overlap: place_with_overlap(q, p, overlap),
        algorithms=("F-MQM", "F-MBM"),
    )


# ----------------------------------------------------------------------
# ablations
# ----------------------------------------------------------------------
def ablation_heuristics(dataset: str, scale: BenchScale) -> ExperimentResult:
    """Footnote 3 of the paper: MBM with Heuristic 2 only vs. Heuristics 2+3 vs. SPM."""
    return _memory_figure(
        name=f"ablation_heuristics_{dataset}",
        description=(
            "MBM heuristic ablation: heuristic 2 only (MBM-H2) vs. full MBM vs. SPM "
            f"(M={scale.fixed_mbr_fraction:.0%}, k={scale.fixed_k})"
        ),
        dataset=dataset,
        scale=scale,
        x_label="n",
        x_values=scale.cardinalities,
        spec_for=lambda n: WorkloadSpec(
            n=n,
            mbr_fraction=scale.fixed_mbr_fraction,
            k=scale.fixed_k,
            queries=scale.queries_per_setting,
        ),
        algorithms=("MBM", "MBM-H2", "SPM"),
    )


def ablation_centroid(dataset: str, scale: BenchScale) -> ExperimentResult:
    """SPM centroid sensitivity: gradient descent (paper) vs. Weiszfeld vs. plain mean."""
    return _memory_figure(
        name=f"ablation_centroid_{dataset}",
        description=(
            "SPM centroid ablation: gradient descent vs. Weiszfeld vs. arithmetic mean "
            f"(M={scale.fixed_mbr_fraction:.0%}, k={scale.fixed_k})"
        ),
        dataset=dataset,
        scale=scale,
        x_label="n",
        x_values=scale.cardinalities,
        spec_for=lambda n: WorkloadSpec(
            n=n,
            mbr_fraction=scale.fixed_mbr_fraction,
            k=scale.fixed_k,
            queries=scale.queries_per_setting,
        ),
        algorithms=("SPM", "SPM-weiszfeld", "SPM-mean"),
    )


# ----------------------------------------------------------------------
# engine-level experiments (beyond the paper)
# ----------------------------------------------------------------------
def batch_throughput(dataset: str, scale: BenchScale) -> ExperimentResult:
    """Batched vs. per-query execution of the same memory-resident workload.

    Both series answer identical auto-planned specs; ``execute_many``
    additionally amortises planning, schedules queries in Hilbert order
    for buffer locality, and is the hook for future sharding/async.
    """
    data = _dataset(dataset, scale)
    engine = GNNEngine(data, capacity=scale.node_capacity, buffer_pages=scale.node_capacity * 8)
    result = ExperimentResult(
        name=f"batch_throughput_{dataset}",
        description=(
            "execute_many vs. per-query execute on identical auto-planned specs "
            f"(n={scale.fixed_n}, k={scale.fixed_k}, dataset={dataset.upper()})"
        ),
        x_label="batch size",
        scale=scale.name,
    )
    for batch_size in scale.cardinalities:
        spec_def = WorkloadSpec(
            n=scale.fixed_n,
            mbr_fraction=scale.fixed_mbr_fraction,
            k=scale.fixed_k,
            queries=int(batch_size),
        )
        groups = generate_workload(data, spec_def, seed=23)
        specs = [QuerySpec(group=group, k=scale.fixed_k) for group in groups]
        for label, run in (
            ("execute", lambda: [engine.execute(spec) for spec in specs]),
            ("execute_many", lambda: engine.execute_many(specs)),
        ):
            # Cold cache for every timed series: without this the
            # per-query series would pre-warm the buffer for the batched
            # one and the comparison would conflate scheduling with
            # leftover cache warmth.
            engine.buffer.clear()
            started = time.perf_counter()
            outcomes = run()
            elapsed = time.perf_counter() - started
            page_faults = sum(outcome.cost.page_faults for outcome in outcomes)
            result.rows.append(
                {
                    "x": int(batch_size),
                    "dataset": dataset.upper(),
                    "algorithm": label,
                    "node_accesses": round(
                        sum(o.cost.node_accesses for o in outcomes) / len(outcomes), 1
                    ),
                    "cpu_time": elapsed / len(outcomes),
                    "distance_computations": round(
                        sum(o.cost.distance_computations for o in outcomes) / len(outcomes), 1
                    ),
                    "page_reads": round(page_faults / len(outcomes), 1),
                    "queries": len(outcomes),
                    "notes": "batched" if label == "execute_many" else "",
                }
            )
    return result


#: Registry used by the CLI and the pytest benchmark modules.
EXPERIMENTS = {
    "fig5_1_pp": lambda scale: fig5_1("pp", scale),
    "fig5_1_ts": lambda scale: fig5_1("ts", scale),
    "fig5_2_pp": lambda scale: fig5_2("pp", scale),
    "fig5_2_ts": lambda scale: fig5_2("ts", scale),
    "fig5_3_pp": lambda scale: fig5_3("pp", scale),
    "fig5_3_ts": lambda scale: fig5_3("ts", scale),
    "fig5_4": fig5_4,
    "fig5_5": fig5_5,
    "fig5_6": fig5_6,
    "fig5_7": fig5_7,
    "ablation_heuristics": lambda scale: ablation_heuristics("pp", scale),
    "ablation_centroid": lambda scale: ablation_centroid("pp", scale),
    "batch_throughput": lambda scale: batch_throughput("pp", scale),
}


def run_experiment(name: str, scale="quick") -> ExperimentResult:
    """Run one named experiment at the given scale (name or :class:`BenchScale`)."""
    if name not in EXPERIMENTS:
        raise ValueError(f"unknown experiment {name!r}; expected one of {sorted(EXPERIMENTS)}")
    if isinstance(scale, str):
        scale = get_scale(scale)
    return EXPERIMENTS[name](scale)
