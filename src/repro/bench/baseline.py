"""Machine-readable performance baseline (``BENCH_quick.json``).

``python -m repro.bench --quick`` measures two fixed configurations and
writes the medians as JSON, so every future PR has a comparable
trajectory point (and CI archives one per run):

* **fig-5.1 smoke** — the paper's Figure 5.1 setting at smoke scale
  (PP-like dataset, n=64, M=8%, k=8), each memory-resident algorithm
  timed over both the object R-tree and the flat array-backed snapshot.
  The two paths must agree exactly (results and counters) or the
  baseline refuses to write — a perf number for a wrong answer is
  worse than no number.
* **one disk config** — F-MQM and F-MBM over a Hilbert-sorted query
  file split into multiple blocks.
* **batch serving** — a batch of 64 meeting-sized groups answered
  through ``engine.execute_many`` (the shared-traversal path over the
  flat snapshot) versus one ``engine.execute`` per spec, answers
  verified identical before timing.
* **write path** — the same fig-5.1 workload over a delta overlay
  carrying 10% uncompacted writes versus the equivalent frozen
  (compacted) snapshot; overlay and frozen answers must be
  bit-identical before timing, and ``write_path_efficiency``
  (frozen/overlay latency) is gated so mutability never silently costs
  more than its 1.5x budget.
* **serving** — the multi-process server over a shared mmap snapshot at
  the fig-5.1 smoke setting: a seeded Poisson/Zipf trace is replayed
  against 1, 2 and 4 workers, reporting throughput (flood) and
  p50/p95/p99 latency (paced at half the 1-worker capacity).  Workers
  charge the paper's I/O cost model *temporally*: every physical R-tree
  node access sleeps ``SERVING_IO_STALL_S`` (one simulated random disk
  read), so the measurement reflects a disk-backed index whose stalls
  overlap across workers — the regime multi-process serving exists for.
  CPU-only numbers would conflate this with host core count; the stall
  parameter is recorded in the emitted setting for reproducibility.

Wall-clock entries are medians of per-query means across repeats;
counter entries are medians across the workload's queries.  Numbers are
machine-dependent; the ``speedup`` ratios are the portable signal —
:func:`compare_baseline` (the ``--compare`` CLI mode) turns them into a
regression gate against the committed file.  The JSON is written
atomically (temp file + rename), so an interrupted run can never leave
a truncated baseline behind.
"""

from __future__ import annotations

import contextlib
import json
import os
import platform
import statistics
import tempfile
import time

from repro.api.spec import QuerySpec
from repro.core.engine import GNNEngine
from repro.core.fmbm import fmbm
from repro.core.fmqm import fmqm
from repro.core.mbm import mbm
from repro.core.mqm import mqm
from repro.core.spm import spm
from repro.core.types import GroupQuery
from repro.datasets.real_like import pp_like
from repro.datasets.workload import WorkloadSpec, generate_workload
from repro.rtree.flat import FlatRTree
from repro.rtree.tree import RTree
from repro.storage.atomicio import write_json_atomic
from repro.storage.pointfile import PointFile

#: Schema version of the emitted JSON (bump on layout changes).
#: Schema 3 added the ``serving`` section (multi-process server
#: throughput/latency vs worker count).  Schema 4 added the ``sharded``
#: section (scatter-gather over networked shard nodes vs shard count).
#: Schema 5 added the ``write_path`` section (query latency over a
#: dirty delta overlay vs the equivalent frozen snapshot).  Schema 6
#: added the ``durability`` section (write-ahead-logged insert overhead
#: at the ``interval`` fsync policy vs the volatile overlay write path,
#: plus crash-recovery replay time).  Schema 7 added the
#: ``observability`` section (fig-5.1 query latency with the obs layer
#: disabled vs fully enabled — tracing, metrics, slow-query log, JSON
#: logging — gating the cost of instrumentation).
SCHEMA_VERSION = 7

#: Default output filename (also the CI artifact name).
DEFAULT_OUTPUT = "BENCH_quick.json"

#: fig-5.1 smoke setting: PP-like dataset, the paper's n=64 / M=8% / k=8.
FIG51_DATASET_SIZE = 1_200
FIG51_CARDINALITY = 64
FIG51_MBR_FRACTION = 0.08
FIG51_K = 8
FIG51_QUERIES = 4
FIG51_SEED = 17

#: Disk config: one multi-block query file over the same dataset.
DISK_QUERY_POINTS = 500
DISK_POINTS_PER_PAGE = 50
DISK_BLOCK_PAGES = 2
DISK_K = 8

#: Batch-serving config: 64 meeting-sized groups (the "where should the
#: n of us meet" workload) answered in one execute_many call.
BATCH_SIZE = 64
BATCH_CARDINALITY = 8
BATCH_K = 8

#: Serving config: the fig-5.1 smoke setting served through the
#: multi-process server from a Poisson/Zipf request trace.
SERVING_WORKER_COUNTS = (1, 2, 4)
SERVING_REQUESTS = 192
SERVING_HOTSPOTS = 8
SERVING_ZIPF_EXPONENT = 1.1
SERVING_WINDOW_S = 0.002
#: Micro-batch size cap.  8 (not the executor's 32) keeps each shared
#: traversal's simulated I/O large relative to its CPU share, which is
#: the regime the worker-count scaling measures; larger caps trade
#: parallel speedup for single-worker throughput.
SERVING_MAX_BATCH = 8
#: Simulated disk stall charged per physical node access (the paper's
#: I/O cost model made temporal: one random disk read ~1 ms).
SERVING_IO_STALL_S = 0.001
#: The latency phase paces arrivals at this fraction of the measured
#: 1-worker flood throughput (the same absolute rate for every worker
#: count, so latency numbers compare like for like).
SERVING_LATENCY_UTILISATION = 0.5
SERVING_REPEATS = 3

#: Sharded config: the same traced workload scatter-gathered over 1, 2
#: and 4 networked shard nodes (one serving worker each, same simulated
#: I/O stall), so the headline ratio isolates what horizontal sharding
#: buys: parallel per-shard stalls plus federation-level pruning.
SHARDED_SHARD_COUNTS = (1, 2, 4)
#: Shard trees use page-sized nodes (the paper's disk-resident setting,
#: not the in-memory default of 50): deeper trees touch more pages, so
#: the 1 ms-per-access stall dominates wall time for *every* shard
#: count.  That is the regime horizontal sharding targets, and it makes
#: the headline ratio robust — both ends of the ratio are sleep-bound,
#: so host CPU contention largely cancels instead of compressing the
#: CPU-bound end only.
SHARDED_CAPACITY = 8
#: The flood replays the trace this many times back to back; with
#: page-sized nodes one pass already runs for seconds per repeat, which
#: is long enough to average out scheduler noise.
SHARDED_FLOOD_PASSES = 1
SHARDED_REPEATS = 5

#: Write-path config: the fig-5.1 smoke setting queried over a delta
#: overlay carrying 10% uncompacted writes (60 deletes + 60 inserts on
#: the 1200-point base), versus the equivalent frozen (compacted)
#: snapshot of the same live dataset.  ``write_path_efficiency`` is
#: frozen over overlay latency, so 0.67 corresponds to the 1.5x
#: overhead budget of the overlay design.
WRITE_PATH_DELETES = 60
WRITE_PATH_INSERTS = 60

#: Durability config: per-insert cost with a write-ahead log attached
#: (``interval`` fsync — the serving default) against the same inserts
#: into a volatile overlay, plus the time to recover (snapshot load +
#: full WAL replay) a directory carrying this many logged writes.
#: ``durability_efficiency`` is volatile over logged per-write time, so
#: 0.5 means logging doubles the insert cost.
WAL_WRITES = 400

#: Regression floor of the --compare gate: a freshly measured speedup
#: may not fall below this fraction of the committed value.
COMPARE_FLOOR_RATIO = 0.9

MEMORY_ALGORITHMS = (("MQM", mqm), ("SPM", spm), ("MBM", mbm))
DISK_ALGORITHMS = (("F-MQM", fmqm), ("F-MBM", fmbm))


def _median_runtime(run, repeats: int) -> float:
    """Median over ``repeats`` of the mean per-query wall-clock of ``run``."""
    samples = []
    run()  # warm-up: caches, allocator, numpy internals
    for _ in range(repeats):
        started = time.perf_counter()
        count = run()
        samples.append((time.perf_counter() - started) / count)
    return statistics.median(samples)


def _memory_baseline(repeats: int) -> dict:
    data = pp_like(FIG51_DATASET_SIZE)
    tree = RTree.bulk_load(data, capacity=50)
    flat = FlatRTree.from_tree(tree)
    workload = generate_workload(
        data,
        WorkloadSpec(
            n=FIG51_CARDINALITY,
            mbr_fraction=FIG51_MBR_FRACTION,
            k=FIG51_K,
            queries=FIG51_QUERIES,
        ),
        seed=FIG51_SEED,
    )

    results: dict = {}
    for name, algorithm in MEMORY_ALGORITHMS:
        queries = [GroupQuery(group, k=FIG51_K) for group in workload]
        object_results = [algorithm(tree, query) for query in queries]
        flat_results = [algorithm(flat, query) for query in queries]
        object_costs = [result.cost for result in object_results]
        flat_costs = [result.cost for result in flat_results]
        object_answers = [[n.as_tuple() for n in r.neighbors] for r in object_results]
        flat_answers = [[n.as_tuple() for n in r.neighbors] for r in flat_results]
        if object_answers != flat_answers:
            raise AssertionError(f"{name}: flat snapshot answers differ from the object tree")
        for object_cost, flat_cost in zip(object_costs, flat_costs):
            if (
                object_cost.node_accesses != flat_cost.node_accesses
                or object_cost.distance_computations != flat_cost.distance_computations
            ):
                raise AssertionError(f"{name}: flat snapshot counters differ from the object tree")

        def run_object(algorithm=algorithm, queries=queries):
            for query in queries:
                algorithm(tree, query)
            return len(queries)

        def run_flat(algorithm=algorithm, queries=queries):
            for query in queries:
                algorithm(flat, query)
            return len(queries)

        object_ms = _median_runtime(run_object, repeats) * 1000.0
        flat_ms = _median_runtime(run_flat, repeats) * 1000.0
        results[name] = {
            "object_ms_per_query": round(object_ms, 4),
            "flat_ms_per_query": round(flat_ms, 4),
            "flat_speedup": round(object_ms / flat_ms, 2),
            "node_accesses_median": statistics.median(
                cost.node_accesses for cost in object_costs
            ),
            "distance_computations_median": statistics.median(
                cost.distance_computations for cost in object_costs
            ),
        }
    return {
        "setting": {
            "figure": "5.1",
            "scale": "smoke",
            "dataset": f"pp_like({FIG51_DATASET_SIZE})",
            "n": FIG51_CARDINALITY,
            "mbr_fraction": FIG51_MBR_FRACTION,
            "k": FIG51_K,
            "queries": FIG51_QUERIES,
        },
        "algorithms": results,
    }


def _disk_baseline(repeats: int) -> dict:
    import numpy as np

    data = pp_like(FIG51_DATASET_SIZE)
    tree = RTree.bulk_load(data, capacity=50)
    query_points = np.random.default_rng(FIG51_SEED).uniform(
        data.min(axis=0), data.max(axis=0), size=(DISK_QUERY_POINTS, 2)
    )

    results: dict = {}
    for name, algorithm in DISK_ALGORITHMS:
        def run(algorithm=algorithm):
            query_file = PointFile(
                query_points,
                points_per_page=DISK_POINTS_PER_PAGE,
                block_pages=DISK_BLOCK_PAGES,
            )
            algorithm(tree, query_file, k=DISK_K)
            return 1

        query_file = PointFile(
            query_points, points_per_page=DISK_POINTS_PER_PAGE, block_pages=DISK_BLOCK_PAGES
        )
        cost = algorithm(tree, query_file, k=DISK_K).cost
        results[name] = {
            "ms_per_query": round(_median_runtime(run, repeats) * 1000.0, 4),
            "node_accesses": cost.node_accesses,
            "page_reads": cost.page_reads,
            "block_reads": cost.block_reads,
        }
    return {
        "setting": {
            "dataset": f"pp_like({FIG51_DATASET_SIZE})",
            "query_points": DISK_QUERY_POINTS,
            "points_per_page": DISK_POINTS_PER_PAGE,
            "block_pages": DISK_BLOCK_PAGES,
            "k": DISK_K,
        },
        "algorithms": results,
    }


def _batch_baseline(repeats: int) -> dict:
    """Throughput of ``execute_many`` vs per-query ``execute`` at B=64."""
    data = pp_like(FIG51_DATASET_SIZE)
    engine = GNNEngine(data, capacity=50)
    workload = generate_workload(
        data,
        WorkloadSpec(
            n=BATCH_CARDINALITY,
            mbr_fraction=FIG51_MBR_FRACTION,
            k=BATCH_K,
            queries=BATCH_SIZE,
        ),
        seed=FIG51_SEED,
    )
    specs = [QuerySpec(group=group, k=BATCH_K) for group in workload]

    single_results = [engine.execute(spec) for spec in specs]
    batch_results = engine.execute_many(specs)
    for single, batched in zip(single_results, batch_results):
        if [n.as_tuple() for n in single.neighbors] != [n.as_tuple() for n in batched.neighbors]:
            raise AssertionError("execute_many answers differ from per-query execute")

    def run_single():
        for spec in specs:
            engine.execute(spec)
        return len(specs)

    def run_batch():
        engine.execute_many(specs)
        return len(specs)

    single_ms = _median_runtime(run_single, repeats) * 1000.0
    batch_ms = _median_runtime(run_batch, repeats) * 1000.0
    return {
        "setting": {
            "dataset": f"pp_like({FIG51_DATASET_SIZE})",
            "batch_size": BATCH_SIZE,
            "n": BATCH_CARDINALITY,
            "mbr_fraction": FIG51_MBR_FRACTION,
            "k": BATCH_K,
        },
        "execute_ms_per_query": round(single_ms, 4),
        "execute_many_ms_per_query": round(batch_ms, 4),
        "batch_speedup": round(single_ms / batch_ms, 2),
    }


def _serving_trace(data):
    """The serving workload: a seeded Poisson/Zipf trace at fig-5.1 shape."""
    from repro.datasets.workload import generate_request_trace

    # The nominal trace rate only shapes inter-arrival jitter; the
    # latency phase rescales arrivals to the measured pace.
    return generate_request_trace(
        data,
        requests=SERVING_REQUESTS,
        rate_per_s=500.0,
        n=FIG51_CARDINALITY,
        mbr_fraction=FIG51_MBR_FRACTION,
        k=FIG51_K,
        hotspots=SERVING_HOTSPOTS,
        zipf_exponent=SERVING_ZIPF_EXPONENT,
        seed=FIG51_SEED,
    )


def _serving_flood_rps(server, specs, repeats: int) -> float:
    """Median flood throughput: submit everything, wait for everything."""
    samples = []
    for _ in range(repeats):
        started = time.perf_counter()
        futures = server.submit_many(specs)
        for future in futures:
            future.result(timeout=300)
        samples.append(len(specs) / (time.perf_counter() - started))
    return statistics.median(samples)


def _serving_paced_latencies(server, trace, specs, rate_per_s: float) -> list[float]:
    """Replay the trace's Poisson arrivals rescaled to ``rate_per_s``."""
    scale = (trace[-1].arrival_s * rate_per_s) / len(trace)
    latencies: list[float] = []
    futures = []
    started = time.perf_counter()
    for request, spec in zip(trace, specs):
        due = started + request.arrival_s / scale
        delay = due - time.perf_counter()
        if delay > 0:
            time.sleep(delay)
        submitted = time.perf_counter()
        future = server.submit(spec)
        future.add_done_callback(
            lambda f, submitted=submitted: latencies.append(
                time.perf_counter() - submitted
            )
        )
        futures.append(future)
    for future in futures:
        future.result(timeout=300)
    # result() can return before the reply thread has run the last
    # done-callbacks (set_result notifies waiters first); wait for the
    # tail so the percentiles never miss their slowest entries.
    waited = time.perf_counter()
    while len(latencies) < len(futures) and time.perf_counter() - waited < 5.0:
        time.sleep(0.001)
    return latencies


def _serving_baseline(repeats: int) -> dict:
    """Throughput and latency of the multi-process server vs worker count."""
    from pathlib import Path

    from repro.serve.server import GNNServer
    from repro.serve.stats import percentile

    repeats = max(1, min(repeats, SERVING_REPEATS))
    data = pp_like(FIG51_DATASET_SIZE)
    engine = GNNEngine(data, capacity=50)
    trace = _serving_trace(data)
    specs = [QuerySpec(group=request.group, k=request.k) for request in trace]

    workers_section: dict = {}
    latency_rate = None
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "serving-gen000000.npz"
        engine.snapshot().save(path, generation=0)
        for worker_count in SERVING_WORKER_COUNTS:
            with GNNServer(
                path,
                workers=worker_count,
                window_s=SERVING_WINDOW_S,
                max_batch=SERVING_MAX_BATCH,
                io_stall_s_per_access=SERVING_IO_STALL_S,
            ) as server:
                handle = server.handle()
                # Correctness first: served answers must equal sequential
                # execute (this also warms every worker's mapping).
                sample = specs[: max(SERVING_MAX_BATCH, 2 * worker_count)]
                for spec, served in zip(sample, handle.run_many(sample, timeout=300)):
                    expected = engine.execute(spec)
                    served_answers = [n.as_tuple() for n in served.neighbors]
                    if served_answers != [n.as_tuple() for n in expected.neighbors]:
                        raise AssertionError(
                            f"serving: {worker_count}-worker answers differ from "
                            "sequential execute"
                        )
                throughput = _serving_flood_rps(server, specs, repeats)
                if latency_rate is None:
                    # Same absolute pace for every worker count.
                    latency_rate = SERVING_LATENCY_UTILISATION * throughput
                latencies = _serving_paced_latencies(server, trace, specs, latency_rate)
                workers_section[str(worker_count)] = {
                    "throughput_rps": round(throughput, 1),
                    "p50_ms": round(percentile(latencies, 50) * 1000.0, 2),
                    "p95_ms": round(percentile(latencies, 95) * 1000.0, 2),
                    "p99_ms": round(percentile(latencies, 99) * 1000.0, 2),
                }
    first = workers_section[str(SERVING_WORKER_COUNTS[0])]["throughput_rps"]
    last = workers_section[str(SERVING_WORKER_COUNTS[-1])]["throughput_rps"]
    return {
        "setting": {
            "figure": "5.1",
            "scale": "smoke",
            "dataset": f"pp_like({FIG51_DATASET_SIZE})",
            "n": FIG51_CARDINALITY,
            "mbr_fraction": FIG51_MBR_FRACTION,
            "k": FIG51_K,
            "requests": SERVING_REQUESTS,
            "trace": "poisson-zipf",
            "hotspots": SERVING_HOTSPOTS,
            "zipf_exponent": SERVING_ZIPF_EXPONENT,
            "window_ms": SERVING_WINDOW_S * 1000.0,
            "max_batch": SERVING_MAX_BATCH,
            "io_stall_ms_per_node_access": SERVING_IO_STALL_S * 1000.0,
            "latency_rate_rps": round(latency_rate, 1),
        },
        "workers": workers_section,
        "throughput_speedup_4w_vs_1w": round(last / first, 2),
    }


def _sharded_baseline(repeats: int) -> dict:
    """Flood throughput of scatter-gather serving vs shard count.

    Every shard count serves the *same* traced workload under the same
    1 ms-per-node-access I/O stall model; answers are verified against
    sequential ``engine.execute`` before anything is timed.  Shard
    nodes run one serving worker each, so the K=1 row is the
    single-machine reference and ``sharded_speedup`` (K=4 over K=1) is
    the portable signal the ``--compare`` gate holds.
    """
    from pathlib import Path

    from repro.shard import ShardNode, ShardedEngine, partition_dataset

    repeats = max(1, min(repeats, SHARDED_REPEATS))
    data = pp_like(FIG51_DATASET_SIZE)
    engine = GNNEngine(data, capacity=50)
    trace = _serving_trace(data)
    specs = [QuerySpec(group=request.group, k=request.k) for request in trace]
    expected = [
        [n.as_tuple() for n in engine.execute(spec).neighbors] for spec in specs
    ]

    shards_section: dict = {}
    with tempfile.TemporaryDirectory() as tmp, contextlib.ExitStack() as stack:
        # Every federation (1, 2 and 4 shards) is brought up at once and
        # the timing rounds are interleaved across them, so all shard
        # counts sample the same stretch of host noise instead of each
        # owning its own quiet-or-busy minute.
        federations: dict[int, object] = {}
        for shard_count in SHARDED_SHARD_COUNTS:
            directory = Path(tmp) / f"shards-{shard_count}"
            manifest = partition_dataset(
                data, shard_count, directory, capacity=SHARDED_CAPACITY
            )
            addresses = []
            for shard in manifest.shards:
                node = stack.enter_context(
                    ShardNode(
                        shard.shard_id,
                        directory / shard.path,
                        workers=1,
                        window_s=SERVING_WINDOW_S,
                        max_batch=SERVING_MAX_BATCH,
                        io_stall_s_per_access=SERVING_IO_STALL_S,
                    )
                )
                addresses.append(node.address)
            sharded = stack.enter_context(
                ShardedEngine.connect(manifest, addresses, timeout_s=300.0)
            )
            # Correctness first: the federated answers must equal
            # sequential execute (this also warms every link).
            answers = [
                [n.as_tuple() for n in result.neighbors]
                for result in sharded.execute_many(specs)
            ]
            if answers != expected:
                raise AssertionError(
                    f"sharded: {shard_count}-shard answers differ from "
                    "sequential execute"
                )
            federations[shard_count] = sharded

        flood = specs * SHARDED_FLOOD_PASSES
        samples: dict[int, list[float]] = {c: [] for c in SHARDED_SHARD_COUNTS}
        for _ in range(repeats):
            for shard_count, sharded in federations.items():
                started = time.perf_counter()
                futures = [sharded.submit(spec) for spec in flood]
                for future in futures:
                    future.result(timeout=300)
                samples[shard_count].append(
                    len(flood) / (time.perf_counter() - started)
                )

        for shard_count, sharded in federations.items():
            stats = sharded.stats()["coordinator"]
            contact_rate = stats["shards_contacted"] / max(
                1, stats["queries"] * shard_count
            )
            # Flood throughput measures *capacity*: unrelated host load
            # can only subtract from a round, so the best round is the
            # least-contaminated estimate (the throughput analogue of
            # timing with min, as timeit does).
            shards_section[str(shard_count)] = {
                "throughput_rps": round(max(samples[shard_count]), 1),
                "shard_contact_rate": round(contact_rate, 3),
            }
    first = shards_section[str(SHARDED_SHARD_COUNTS[0])]["throughput_rps"]
    last = shards_section[str(SHARDED_SHARD_COUNTS[-1])]["throughput_rps"]
    return {
        "setting": {
            "figure": "5.1",
            "scale": "smoke",
            "dataset": f"pp_like({FIG51_DATASET_SIZE})",
            "n": FIG51_CARDINALITY,
            "mbr_fraction": FIG51_MBR_FRACTION,
            "k": FIG51_K,
            "requests": SERVING_REQUESTS,
            "flood_passes": SHARDED_FLOOD_PASSES,
            "capacity": SHARDED_CAPACITY,
            "trace": "poisson-zipf",
            "workers_per_shard": 1,
            "window_ms": SERVING_WINDOW_S * 1000.0,
            "max_batch": SERVING_MAX_BATCH,
            "io_stall_ms_per_node_access": SERVING_IO_STALL_S * 1000.0,
            "transport": "tcp-loopback",
        },
        "shards": shards_section,
        "throughput_speedup_4s_vs_1s": round(last / first, 2),
    }


def _write_path_baseline(repeats: int) -> dict:
    """Query latency over a 10%-dirty delta overlay vs a frozen snapshot.

    A snapshot-only engine absorbs 60 deletes and 60 inserts into its
    overlay; the same fig-5.1-shaped workload is then timed over the
    merged (base + delta − tombstones) view and over the equivalent
    compacted snapshot — the same live dataset, frozen.  Answers must be
    bit-identical between the two views (and across compaction) before
    anything is timed.  ``write_path_efficiency`` is the portable ratio
    the ``--compare`` gate holds: frozen over overlay latency, where
    0.67 corresponds to the overlay's 1.5x overhead budget.
    """
    import numpy as np

    from repro.rtree.flat import FlatRTree as _FlatRTree

    data = pp_like(FIG51_DATASET_SIZE)
    base = GNNEngine(data, capacity=50).snapshot()
    dirty = GNNEngine.from_index(base)
    rng = np.random.default_rng(FIG51_SEED)
    for record_id in rng.choice(data.shape[0], size=WRITE_PATH_DELETES, replace=False):
        if not dirty.delete(data[record_id], int(record_id)):
            raise AssertionError(f"write_path: delete of record {record_id} failed")
    jitter = 0.01 * (data.max(axis=0) - data.min(axis=0))
    for row in rng.choice(data.shape[0], size=WRITE_PATH_INSERTS, replace=False):
        dirty.insert(data[row] + jitter * rng.standard_normal(data.shape[1]))
    dirty_ratio = dirty.dirty_ratio

    # The frozen reference: the same live dataset, compacted.  The
    # overlay itself stays dirty (compact() on the overlay object folds
    # without clearing the engine), so both views coexist for timing.
    frozen = GNNEngine.from_index(dirty.overlay.compact(capacity=50))

    workload = generate_workload(
        data,
        WorkloadSpec(
            n=FIG51_CARDINALITY,
            mbr_fraction=FIG51_MBR_FRACTION,
            k=FIG51_K,
            queries=FIG51_QUERIES,
        ),
        seed=FIG51_SEED,
    )

    results: dict = {}
    overlay_total = 0.0
    frozen_total = 0.0
    for name in ("mqm", "spm", "mbm"):
        specs = [QuerySpec(group=group, k=FIG51_K, algorithm=name) for group in workload]
        overlay_results = [dirty.execute(spec) for spec in specs]
        frozen_results = [frozen.execute(spec) for spec in specs]
        for overlay_result, frozen_result in zip(overlay_results, frozen_results):
            if [n.as_tuple() for n in overlay_result.neighbors] != [
                n.as_tuple() for n in frozen_result.neighbors
            ]:
                raise AssertionError(
                    f"write_path: {name} overlay answers differ from the "
                    "compacted snapshot"
                )

        def run_overlay(specs=specs):
            for spec in specs:
                dirty.execute(spec)
            return len(specs)

        def run_frozen(specs=specs):
            for spec in specs:
                frozen.execute(spec)
            return len(specs)

        overlay_ms = _median_runtime(run_overlay, repeats) * 1000.0
        frozen_ms = _median_runtime(run_frozen, repeats) * 1000.0
        overlay_total += overlay_ms
        frozen_total += frozen_ms
        results[name.upper()] = {
            "overlay_ms_per_query": round(overlay_ms, 4),
            "frozen_ms_per_query": round(frozen_ms, 4),
            "overlay_overhead": round(overlay_ms / frozen_ms, 2),
        }

    # Compaction cost (fold + bulk-load of the live dataset), and proof
    # that compaction round-trips: a reloaded generation-N+1 snapshot
    # answers exactly like the overlay did.
    started = time.perf_counter()
    compacted = dirty.compact()
    compaction_ms = (time.perf_counter() - started) * 1000.0
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "write-path-gen000001.npz")
        compacted.save(path)
        reloaded = GNNEngine.from_index(_FlatRTree.load(path, mmap_mode="r"))
        spec = QuerySpec(group=workload[0], k=FIG51_K)
        if [n.as_tuple() for n in reloaded.execute(spec).neighbors] != [
            n.as_tuple() for n in frozen.execute(spec).neighbors
        ]:
            raise AssertionError("write_path: reloaded compaction answers differ")

    return {
        "setting": {
            "figure": "5.1",
            "scale": "smoke",
            "dataset": f"pp_like({FIG51_DATASET_SIZE})",
            "n": FIG51_CARDINALITY,
            "mbr_fraction": FIG51_MBR_FRACTION,
            "k": FIG51_K,
            "queries": FIG51_QUERIES,
            "deletes": WRITE_PATH_DELETES,
            "inserts": WRITE_PATH_INSERTS,
            "dirty_ratio": round(dirty_ratio, 3),
        },
        "algorithms": results,
        "compaction_ms": round(compaction_ms, 2),
        "compacted_generation": compacted.generation,
        "write_path_efficiency": round(frozen_total / overlay_total, 2),
    }


def _durability_baseline(repeats: int) -> dict:
    """WAL append overhead and crash-recovery replay time.

    The volatile write path (PR 7's plain overlay insert) is timed
    against the *durable increment* — one ``WriteAheadLog.append`` per
    write at the ``interval`` fsync policy — measured on its own, since
    the append is orders of magnitude cheaper than the R*-tree delta
    insert it precedes and would drown in its timing noise if the two
    were compared insert-vs-insert.  ``durability_efficiency`` is the
    decomposed throughput retention ``volatile / (volatile + append)``.
    A populated log is then left behind and a full ``GNNEngine.recover``
    (snapshot load + replay) is timed.
    """
    import numpy as np

    from repro.storage.generations import GenerationStore
    from repro.storage.wal import WriteAheadLog

    data = pp_like(FIG51_DATASET_SIZE)
    rng = np.random.default_rng(FIG51_SEED)
    extra = rng.uniform(
        data.min(axis=0), data.max(axis=0), size=(WAL_WRITES, data.shape[1])
    )

    with tempfile.TemporaryDirectory() as tmp:
        store = GenerationStore(tmp)
        store.publish(GNNEngine(data, capacity=50).snapshot())

        volatile = GNNEngine.from_index(store.latest())

        def run_volatile():
            for row in extra:
                volatile.insert(row)
            return len(extra)

        volatile_us = _median_runtime(run_volatile, repeats) * 1e6

        append_log = WriteAheadLog(
            os.path.join(tmp, "append-bench.log"), fsync="interval"
        )

        def run_append():
            for record_id, row in enumerate(extra):
                append_log.append("insert", record_id, row)
            return len(extra)

        append_us = _median_runtime(run_append, repeats) * 1e6
        append_log.close()

        # Leave a populated log behind and time recovering it.
        logged = GNNEngine.recover(tmp, fsync="interval")
        for row in extra:
            logged.insert(row)
        logged.wal.sync()
        logged.wal.close()

        def run_recover():
            recovered = GNNEngine.recover(tmp, fsync="off")
            recovered.wal.close()
            if recovered.overlay is None or recovered.overlay.write_count != len(extra):
                raise AssertionError(
                    "durability: recovery replayed the wrong record count"
                )
            return 1

        recovery_ms = _median_runtime(run_recover, repeats) * 1000.0

    return {
        "setting": {
            "dataset": f"pp_like({FIG51_DATASET_SIZE})",
            "wal_writes": WAL_WRITES,
            "fsync": "interval",
        },
        "volatile_us_per_write": round(volatile_us, 3),
        "wal_append_us_per_write": round(append_us, 3),
        "recovery_ms": round(recovery_ms, 3),
        "recovered_records": WAL_WRITES,
        "durability_efficiency": round(volatile_us / (volatile_us + append_us), 3),
    }


def _observability_baseline(repeats: int) -> dict:
    """Query latency with observability off vs fully on (schema 7).

    The fig-5.1 smoke workload runs through ``engine.execute`` twice:
    first with the obs layer disabled (the production default — every
    instrumentation site pays two module-global ``is None`` reads) and
    then with tracing, metrics, the slow-query log and JSON logging all
    enabled.  ``observability_efficiency`` is disabled over enabled
    latency — 1.0 means instrumentation is free, 0.9 means enabling
    everything costs ~11% — and the ``--compare`` gate holds its floor,
    so observability can never silently grow into the query path.
    """
    from repro.obs import disable_all, enable_all

    data = pp_like(FIG51_DATASET_SIZE)
    engine = GNNEngine(data, capacity=50)
    workload = generate_workload(
        data,
        WorkloadSpec(
            n=FIG51_CARDINALITY,
            mbr_fraction=FIG51_MBR_FRACTION,
            k=FIG51_K,
            queries=FIG51_QUERIES,
        ),
        seed=FIG51_SEED,
    )
    specs = [QuerySpec(group=group, k=FIG51_K) for group in workload]

    def run():
        for spec in specs:
            engine.execute(spec)
        return len(specs)

    disable_all()  # defensive: measure the true production default
    disabled_ms = _median_runtime(run, repeats) * 1000.0
    with open(os.devnull, "w", encoding="utf-8") as sink:
        enable_all(log_stream=sink)
        try:
            enabled_ms = _median_runtime(run, repeats) * 1000.0
        finally:
            disable_all()
    return {
        "setting": {
            "figure": "5.1",
            "scale": "smoke",
            "dataset": f"pp_like({FIG51_DATASET_SIZE})",
            "n": FIG51_CARDINALITY,
            "mbr_fraction": FIG51_MBR_FRACTION,
            "k": FIG51_K,
            "queries": FIG51_QUERIES,
            "enabled": "trace + metrics + slowlog + logging",
        },
        "disabled_ms_per_query": round(disabled_ms, 4),
        "enabled_ms_per_query": round(enabled_ms, 4),
        "enabled_overhead": round(enabled_ms / disabled_ms, 3),
        "observability_efficiency": round(disabled_ms / enabled_ms, 3),
    }


def quick_baseline(repeats: int = 5) -> dict:
    """Measure all configurations and return the baseline document."""
    return {
        "schema": SCHEMA_VERSION,
        "platform": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "memory_fig5_1": _memory_baseline(repeats),
        "disk": _disk_baseline(repeats),
        "batch_flat": _batch_baseline(repeats),
        "write_path": _write_path_baseline(repeats),
        "durability": _durability_baseline(repeats),
        "serving": _serving_baseline(repeats),
        "sharded": _sharded_baseline(repeats),
        "observability": _observability_baseline(repeats),
    }


def collect_speedups(document: dict) -> dict[str, float]:
    """The portable speedup ratios of a baseline document, flattened.

    Returns ``{"flat_speedup/MQM": 3.2, ..., "batch_speedup": 4.4}`` —
    the machine-independent signals :func:`compare_baseline` gates on.
    """
    speedups: dict[str, float] = {}
    memory = document.get("memory_fig5_1", {}).get("algorithms", {})
    for name, row in sorted(memory.items()):
        if "flat_speedup" in row:
            speedups[f"flat_speedup/{name}"] = float(row["flat_speedup"])
    batch = document.get("batch_flat", {})
    if "batch_speedup" in batch:
        speedups["batch_speedup"] = float(batch["batch_speedup"])
    write_path = document.get("write_path", {})
    if "write_path_efficiency" in write_path:
        speedups["write_path_efficiency"] = float(write_path["write_path_efficiency"])
    durability = document.get("durability", {})
    if "durability_efficiency" in durability:
        speedups["durability_efficiency"] = float(
            durability["durability_efficiency"]
        )
    serving = document.get("serving", {})
    if "throughput_speedup_4w_vs_1w" in serving:
        speedups["serving_speedup"] = float(serving["throughput_speedup_4w_vs_1w"])
    sharded = document.get("sharded", {})
    if "throughput_speedup_4s_vs_1s" in sharded:
        speedups["sharded_speedup"] = float(sharded["throughput_speedup_4s_vs_1s"])
    observability = document.get("observability", {})
    if "observability_efficiency" in observability:
        speedups["observability_efficiency"] = float(
            observability["observability_efficiency"]
        )
    return speedups


def compare_baseline(
    current: dict, reference: dict, floor_ratio: float = COMPARE_FLOOR_RATIO
) -> list[str]:
    """Regression check of ``current`` speedups against a committed baseline.

    Returns a list of human-readable failures: one entry per speedup
    that fell below ``floor_ratio`` times the committed value, plus one
    per committed speedup that the current document no longer reports.
    An empty list means the gate passes.
    """
    current_speedups = collect_speedups(current)
    reference_speedups = collect_speedups(reference)
    failures = []
    for name, committed in sorted(reference_speedups.items()):
        measured = current_speedups.get(name)
        if measured is None:
            failures.append(f"{name}: missing from the current measurement")
            continue
        floor = committed * floor_ratio
        if measured < floor:
            failures.append(
                f"{name}: measured {measured:.2f}x < floor {floor:.2f}x "
                f"({floor_ratio:.0%} of committed {committed:.2f}x)"
            )
    return failures


def baseline_warnings(current: dict, reference: dict) -> list[str]:
    """Non-fatal observations when comparing against an older baseline.

    A committed baseline written by an earlier schema simply lacks the
    newer sections — that must not crash (or fail) the gate, but it
    deserves a warning: the missing speedups are not being gated at
    all until the baseline is regenerated.
    """
    warnings = []
    current_schema = current.get("schema")
    reference_schema = reference.get("schema")
    if reference_schema != current_schema:
        warnings.append(
            f"baseline schema is {reference_schema!r}, this build writes "
            f"{current_schema!r}; sections added since are not gated"
        )
    ungated = sorted(set(collect_speedups(current)) - set(collect_speedups(reference)))
    for name in ungated:
        warnings.append(
            f"{name}: measured but absent from the baseline (older schema?) — "
            "not gated until the committed baseline is regenerated"
        )
    return warnings


def write_baseline(path: str = DEFAULT_OUTPUT, repeats: int = 5) -> dict:
    """Measure and write ``path`` (atomically); returns the document."""
    document = quick_baseline(repeats=repeats)
    write_json_atomic(path, document)
    return document
