"""Benchmark scales.

The paper runs on a 2.4 GHz Pentium with C++ code, 24k/195k-point real
datasets and 100-query workloads.  A pure-Python reproduction cannot run
that full matrix in CI time, so the harness defines three scales:

* ``smoke`` — minimal sizes used by the pytest-benchmark suite so the
  whole matrix executes in a couple of minutes.
* ``quick`` — the default for ``python -m repro.bench``; large enough
  for the figures' qualitative shape (orderings, growth trends,
  crossovers) to be clearly visible.
* ``paper`` — the paper's cardinalities and workload sizes.  Slow in
  pure Python; provided for completeness.

Absolute numbers differ from the paper at every scale (different
hardware, language and datasets); EXPERIMENTS.md records the comparison
of shapes.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class BenchScale:
    """Sizing knobs shared by every experiment at one scale."""

    name: str
    pp_size: int
    ts_size: int
    queries_per_setting: int
    cardinalities: tuple[int, ...]
    mbr_fractions: tuple[float, ...]
    k_values: tuple[int, ...]
    overlap_fractions: tuple[float, ...]
    node_capacity: int = 50
    #: Disk-resident settings: pages per block (block size = pages * 50 points).
    block_pages: int = 200
    #: Safety cap on emitted closest pairs for GCP (None = uncapped).
    gcp_max_pairs: int | None = None
    #: Default k for the experiments that keep k fixed (the paper uses 8).
    fixed_k: int = 8
    #: Default n for the experiments that keep n fixed (the paper uses 64).
    fixed_n: int = 64
    #: Default MBR fraction for the experiments that keep M fixed (8%).
    fixed_mbr_fraction: float = 0.08


_SCALES: dict[str, BenchScale] = {
    "smoke": BenchScale(
        name="smoke",
        pp_size=1_200,
        ts_size=5_000,
        queries_per_setting=2,
        cardinalities=(4, 16, 64),
        mbr_fractions=(0.02, 0.08, 0.32),
        k_values=(1, 8, 32),
        overlap_fractions=(0.0, 0.5, 1.0),
        block_pages=6,
        gcp_max_pairs=50_000,
        fixed_n=16,
    ),
    "quick": BenchScale(
        name="quick",
        pp_size=4_000,
        ts_size=16_000,
        queries_per_setting=4,
        cardinalities=(4, 16, 64, 256, 1024),
        mbr_fractions=(0.02, 0.04, 0.08, 0.16, 0.32),
        k_values=(1, 2, 4, 8, 16, 32),
        overlap_fractions=(0.0, 0.25, 0.5, 0.75, 1.0),
        block_pages=20,
        gcp_max_pairs=500_000,
    ),
    "paper": BenchScale(
        name="paper",
        pp_size=24_493,
        ts_size=194_971,
        queries_per_setting=100,
        cardinalities=(4, 16, 64, 256, 1024),
        mbr_fractions=(0.02, 0.04, 0.08, 0.16, 0.32),
        k_values=(1, 2, 4, 8, 16, 32),
        overlap_fractions=(0.0, 0.25, 0.5, 0.75, 1.0),
        block_pages=200,
        gcp_max_pairs=None,
    ),
}


def get_scale(name: str = "quick") -> BenchScale:
    """Return the named scale (``smoke``, ``quick`` or ``paper``)."""
    try:
        return _SCALES[name]
    except KeyError:
        raise ValueError(f"unknown scale {name!r}; expected one of {sorted(_SCALES)}") from None


def available_scales() -> list[str]:
    """Names of the defined scales."""
    return sorted(_SCALES)
