"""Command-line entry point for the experiment harness.

Examples::

    # list the available experiments
    python -m repro.bench --list

    # reproduce Figure 5.1 on the PP-like dataset at the default scale
    python -m repro.bench fig5_1_pp

    # reproduce everything the paper reports, writing Markdown tables
    python -m repro.bench all --scale quick --markdown results.md
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench.config import available_scales, get_scale
from repro.bench.experiments import EXPERIMENTS, run_experiment
from repro.bench.report import format_table, results_to_markdown


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Reproduce the experiments of 'Group Nearest Neighbor Queries' (ICDE 2004).",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        default=None,
        help="experiment name (see --list) or 'all'",
    )
    parser.add_argument(
        "--scale",
        default="quick",
        choices=available_scales(),
        help="problem size: smoke (seconds), quick (minutes, default), paper (hours)",
    )
    parser.add_argument("--list", action="store_true", help="list available experiments and exit")
    parser.add_argument(
        "--markdown",
        metavar="PATH",
        default=None,
        help="also write the results as Markdown tables to this file",
    )
    return parser


def main(argv=None) -> int:
    """Entry point; returns a process exit code."""
    args = _parser().parse_args(argv)
    if args.list or args.experiment is None:
        print("Available experiments:")
        for name in sorted(EXPERIMENTS):
            print(f"  {name}")
        print("  all")
        return 0

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    if any(name not in EXPERIMENTS for name in names):
        print(f"unknown experiment {args.experiment!r}; use --list", file=sys.stderr)
        return 2

    scale = get_scale(args.scale)
    markdown_chunks = []
    for name in names:
        started = time.perf_counter()
        result = run_experiment(name, scale)
        elapsed = time.perf_counter() - started
        print(format_table(result))
        print(f"  (experiment wall time: {elapsed:.1f}s)\n")
        markdown_chunks.append(results_to_markdown(result))

    if args.markdown:
        with open(args.markdown, "w", encoding="utf-8") as handle:
            handle.write("\n".join(markdown_chunks))
        print(f"Markdown tables written to {args.markdown}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
