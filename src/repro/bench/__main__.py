"""Command-line entry point for the experiment harness.

Examples::

    # list the available experiments
    python -m repro.bench --list

    # reproduce Figure 5.1 on the PP-like dataset at the default scale
    python -m repro.bench fig5_1_pp

    # reproduce everything the paper reports, writing Markdown tables
    python -m repro.bench all --scale quick --markdown results.md

    # write the machine-readable perf baseline (BENCH_quick.json)
    python -m repro.bench --quick
"""

from __future__ import annotations

import argparse
import sys
import time

import json

from repro.bench.baseline import (
    DEFAULT_OUTPUT,
    baseline_warnings,
    compare_baseline,
    write_baseline,
)
from repro.bench.config import available_scales, get_scale
from repro.storage.atomicio import atomic_output
from repro.bench.experiments import EXPERIMENTS, run_experiment
from repro.bench.report import format_table, results_to_markdown


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Reproduce the experiments of 'Group Nearest Neighbor Queries' (ICDE 2004).",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        default=None,
        help="experiment name (see --list) or 'all'",
    )
    parser.add_argument(
        "--scale",
        default="quick",
        choices=available_scales(),
        help="problem size: smoke (seconds), quick (minutes, default), paper (hours)",
    )
    parser.add_argument("--list", action="store_true", help="list available experiments and exit")
    parser.add_argument(
        "--markdown",
        metavar="PATH",
        default=None,
        help="also write the results as Markdown tables to this file",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help=(
            "measure the fixed perf baseline (fig-5.1 smoke, object vs flat "
            "index, one disk config, the execute_many batch path, and the "
            f"multi-worker serving section) and write {DEFAULT_OUTPUT}"
        ),
    )
    parser.add_argument(
        "--output",
        metavar="PATH",
        default=DEFAULT_OUTPUT,
        help=f"where --quick writes its JSON (default: {DEFAULT_OUTPUT})",
    )
    parser.add_argument(
        "--compare",
        metavar="BASELINE",
        default=None,
        help=(
            "with --quick: after measuring, compare the speedup ratios "
            "against this committed baseline JSON and exit non-zero when "
            "any falls below 90%% of its committed value (the CI "
            "bench-baseline regression gate)"
        ),
    )
    return parser


def main(argv=None) -> int:
    """Entry point; returns a process exit code."""
    args = _parser().parse_args(argv)
    if args.quick:
        document = write_baseline(args.output)
        memory = document["memory_fig5_1"]["algorithms"]
        print(f"Perf baseline written to {args.output}")
        for name, row in memory.items():
            print(
                f"  {name:6s} object {row['object_ms_per_query']:8.2f} ms/query   "
                f"flat {row['flat_ms_per_query']:8.2f} ms/query   "
                f"speedup {row['flat_speedup']:.2f}x"
            )
        for name, row in document["disk"]["algorithms"].items():
            print(
                f"  {name:6s} {row['ms_per_query']:8.2f} ms/query   "
                f"{row['node_accesses']} node accesses, {row['page_reads']} page reads"
            )
        batch = document["batch_flat"]
        print(
            f"  batch  execute {batch['execute_ms_per_query']:8.2f} ms/query   "
            f"execute_many {batch['execute_many_ms_per_query']:8.2f} ms/query   "
            f"speedup {batch['batch_speedup']:.2f}x "
            f"(B={batch['setting']['batch_size']})"
        )
        serving = document["serving"]
        for workers, row in sorted(serving["workers"].items(), key=lambda kv: int(kv[0])):
            print(
                f"  serve  {workers} worker(s) {row['throughput_rps']:8.1f} req/s   "
                f"p50 {row['p50_ms']:6.1f} ms   p95 {row['p95_ms']:6.1f} ms   "
                f"p99 {row['p99_ms']:6.1f} ms"
            )
        print(
            f"  serve  4-worker throughput speedup over 1 worker: "
            f"{serving['throughput_speedup_4w_vs_1w']:.2f}x"
        )
        sharded = document["sharded"]
        for shards, row in sorted(sharded["shards"].items(), key=lambda kv: int(kv[0])):
            print(
                f"  shard  {shards} shard(s)  {row['throughput_rps']:8.1f} req/s   "
                f"contact rate {row['shard_contact_rate']:.0%}"
            )
        print(
            f"  shard  4-shard throughput speedup over 1 shard: "
            f"{sharded['throughput_speedup_4s_vs_1s']:.2f}x"
        )
        observability = document["observability"]
        print(
            f"  obs    disabled {observability['disabled_ms_per_query']:8.2f} ms/query   "
            f"enabled {observability['enabled_ms_per_query']:8.2f} ms/query   "
            f"overhead {observability['enabled_overhead']:.3f}x"
        )
        if args.compare is not None:
            with open(args.compare, "r", encoding="utf-8") as handle:
                reference = json.load(handle)
            for warning in baseline_warnings(document, reference):
                print(f"warning: {warning}", file=sys.stderr)
            failures = compare_baseline(document, reference)
            if failures:
                print(f"Speedup regression vs {args.compare}:", file=sys.stderr)
                for failure in failures:
                    print(f"  {failure}", file=sys.stderr)
                return 1
            print(f"Speedups hold against {args.compare}")
        return 0
    if args.compare is not None:
        print("--compare requires --quick", file=sys.stderr)
        return 2
    if args.list or args.experiment is None:
        print("Available experiments:")
        for name in sorted(EXPERIMENTS):
            print(f"  {name}")
        print("  all")
        return 0

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    if any(name not in EXPERIMENTS for name in names):
        print(f"unknown experiment {args.experiment!r}; use --list", file=sys.stderr)
        return 2

    scale = get_scale(args.scale)
    markdown_chunks = []
    for name in names:
        started = time.perf_counter()
        result = run_experiment(name, scale)
        elapsed = time.perf_counter() - started
        print(format_table(result))
        print(f"  (experiment wall time: {elapsed:.1f}s)\n")
        markdown_chunks.append(results_to_markdown(result))

    if args.markdown:
        with atomic_output(args.markdown) as handle:
            handle.write("\n".join(markdown_chunks).encode("utf-8"))
        print(f"Markdown tables written to {args.markdown}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
