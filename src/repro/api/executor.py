"""Plan execution, single and batched.

The executor is the only layer that touches resources: it materialises
``GroupQuery`` objects and simulated-disk :class:`PointFile`\\ s from a
:class:`~repro.api.spec.QuerySpec`, hands them to the registered runner
of the planned algorithm, and (for batches) amortises work across
queries:

* **plan caching** — specs with equal plan signatures are planned once;
* **locality scheduling** — memory-resident queries are executed in
  Hilbert order of their group centroids, so consecutive queries touch
  overlapping parts of the R-tree and an LRU buffer serves far more
  requests from memory (results are returned in input order regardless);
* **vectorised scans** — specs planned to the brute-force baseline are
  evaluated through a single chunked ``(groups, N, n)`` distance tensor
  instead of one dataset pass per query.

Batching never changes answers: every fast path reproduces the exact
arithmetic of the per-query route, which ``execute_many`` equivalence
tests pin down.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from repro.api.planner import (
    DEFAULT_BLOCK_PAGES,
    DEFAULT_POINTS_PER_PAGE,
    QueryPlan,
    QueryPlanner,
)
from repro.api.spec import MEMORY, QuerySpec
from repro.core.types import GNNResult, GroupNeighbor, GroupQuery, QueryCost
from repro.geometry import kernels
from repro.geometry.hilbert import hilbert_indices
from repro.rtree.flat import FlatRTree
from repro.rtree.tree import RTree
from repro.storage.buffer import LRUBuffer
from repro.storage.pointfile import PointFile

#: Upper bound on the number of float64 elements a brute-force batch
#: chunk may allocate (the (g, N, n, dims) difference tensor).
BATCH_TENSOR_ELEMENT_CAP = 8_000_000


@dataclass
class ExecutionContext:
    """Everything a runner may need: the indexes, the raw dataset, the buffer.

    ``flat`` optionally carries a read-optimised array-backed snapshot
    of the tree (:class:`~repro.rtree.flat.FlatRTree`); plans whose
    ``use_flat`` flag is set traverse it instead of the object tree.
    ``flat_provider`` lets an engine hand out the snapshot *lazily* —
    it is invoked (once) only when a flat-capable plan actually
    executes, so workloads that never touch the snapshot never pay for
    building it.  ``tree`` may be ``None`` for snapshot-only contexts
    (``GNNEngine.from_index``) — disk-resident plans then fail with an
    explicit error, since the Section-4 algorithms stream against the
    dynamic tree.
    """

    tree: RTree | None
    points: np.ndarray | None = None
    buffer: LRUBuffer | None = None
    flat: FlatRTree | None = None
    flat_provider: Callable[[], FlatRTree | None] | None = None

    def get_flat(self) -> FlatRTree | None:
        """The flat snapshot, materialising it through the provider once."""
        if self.flat is None and self.flat_provider is not None:
            self.flat = self.flat_provider()
        return self.flat


@dataclass
class PreparedQuery:
    """A spec with its heavyweight inputs materialised for one runner call."""

    spec: QuerySpec
    plan: QueryPlan
    query: GroupQuery | None = None
    query_file: PointFile | None = None
    options: Mapping[str, Any] = field(default_factory=dict)


def prepare(spec: QuerySpec, plan: QueryPlan) -> PreparedQuery:
    """Materialise the runner inputs demanded by the planned algorithm."""
    options = dict(plan.options)
    if plan.residency == MEMORY:
        return PreparedQuery(spec=spec, plan=plan, query=spec.group_query(), options=options)
    if plan.algorithm.requires_raw_points:
        # GCP builds its own query R-tree from the raw points.
        return PreparedQuery(spec=spec, plan=plan, options=options)
    query_file = spec.group_file
    if query_file is None:
        query_file = PointFile(
            spec.group,
            points_per_page=int(spec.options.get("points_per_page", DEFAULT_POINTS_PER_PAGE)),
            block_pages=int(spec.options.get("block_pages", DEFAULT_BLOCK_PAGES)),
        )
    return PreparedQuery(spec=spec, plan=plan, query_file=query_file, options=options)


def execute_spec(
    context: ExecutionContext,
    spec: QuerySpec,
    planner: QueryPlanner | None = None,
    plan: QueryPlan | None = None,
) -> GNNResult:
    """Plan (unless a plan is supplied) and execute one spec."""
    if plan is None:
        plan = (planner or QueryPlanner()).plan(spec)
    if plan.residency != MEMORY and context.tree is None:
        raise ValueError(
            "disk-resident specs traverse the object R-tree, but this "
            "execution context holds only a flat snapshot "
            "(engine built with GNNEngine.from_index)"
        )
    result = plan.algorithm.runner(context, prepare(spec, plan))
    if spec.trace:
        result.plan = plan
    return result


def execute_batch(
    context: ExecutionContext,
    specs: Sequence[QuerySpec],
    planner: QueryPlanner | None = None,
) -> list[GNNResult]:
    """Execute many specs, amortising planning, locality and scan work.

    Results are returned in the order of ``specs``.  Answers are
    identical to calling :func:`execute_spec` once per spec.
    """
    planner = planner or QueryPlanner()
    specs = list(specs)
    plans: list[QueryPlan] = []
    plan_cache: dict[tuple, QueryPlan] = {}
    for spec in specs:
        signature = spec.plan_signature()
        cached = plan_cache.get(signature)
        if cached is None:
            cached = plan_cache[signature] = planner.plan(spec)
        plans.append(cached.for_spec(spec))

    results: list[GNNResult | None] = [None] * len(specs)

    # Split off the specs the vectorised scan kernel can take wholesale.
    scan_indices = [
        i
        for i, plan in enumerate(plans)
        if plan.algorithm.name == "brute-force"
        and specs[i].weights is None
        and specs[i].group is not None
        and context.points is not None
    ]
    for index, result in _batched_brute_force(context, specs, scan_indices):
        if specs[index].trace:
            result.plan = plans[index]
        results[index] = result

    remaining = [i for i in range(len(specs)) if results[i] is None]
    for index in _locality_order(specs, plans, remaining):
        results[index] = execute_spec(context, specs[index], plan=plans[index])
    return results  # type: ignore[return-value]


# ----------------------------------------------------------------------
# locality scheduling
# ----------------------------------------------------------------------
def _locality_order(
    specs: Sequence[QuerySpec], plans: Sequence[QueryPlan], indices: list[int]
) -> list[int]:
    """Order memory-resident queries along the Hilbert curve of their centroids.

    Nearby groups explore overlapping R-tree regions; executing them
    consecutively keeps those nodes hot in the LRU buffer.  Disk-resident
    specs keep their input order (their cost is dominated by their own
    query file, not by inter-query locality).
    """
    memory = [
        i for i in indices if plans[i].residency == MEMORY and specs[i].group is not None
    ]
    memory_set = set(memory)
    other = [i for i in indices if i not in memory_set]
    if len(memory) > 1:
        centroids = np.vstack([specs[i].group.mean(axis=0) for i in memory])
        if centroids.shape[1] == 2:
            keys = hilbert_indices(centroids)
            memory = [memory[j] for j in np.argsort(keys, kind="stable")]
    return memory + other


# ----------------------------------------------------------------------
# vectorised brute-force batches
# ----------------------------------------------------------------------
def _batched_brute_force(
    context: ExecutionContext, specs: Sequence[QuerySpec], indices: list[int]
):
    """Evaluate brute-force specs through shared distance tensors.

    Groups are bucketed by (aggregate, cardinality) so each bucket stacks
    into a dense ``(g, n, dims)`` array; buckets are processed in chunks
    bounded by :data:`BATCH_TENSOR_ELEMENT_CAP`.  The tensor arithmetic
    lives in :func:`repro.geometry.kernels.batched_aggregate_distances`,
    which mirrors the per-query kernel axis for axis so the resulting
    distances are bitwise identical to the per-query path.
    """
    if not indices:
        return
    pts = np.asarray(context.points, dtype=np.float64)
    size, dims = pts.shape
    buckets: dict[tuple[str, int], list[int]] = {}
    for i in indices:
        buckets.setdefault((specs[i].aggregate, specs[i].cardinality), []).append(i)

    for (aggregate, cardinality), bucket in buckets.items():
        chunk = max(1, BATCH_TENSOR_ELEMENT_CAP // max(1, size * cardinality * dims))
        for start in range(0, len(bucket), chunk):
            members = bucket[start : start + chunk]
            started = time.perf_counter()
            groups = np.stack([specs[i].group for i in members])  # (g, n, dims)
            distances = kernels.batched_aggregate_distances(pts, groups, aggregate)  # (g, N)
            elapsed = (time.perf_counter() - started) / len(members)
            for row, i in enumerate(members):
                yield i, _topk_result(
                    pts, distances[row], specs[i].k, cardinality, elapsed
                )


def _topk_result(
    pts: np.ndarray, distances: np.ndarray, k: int, cardinality: int, elapsed: float
) -> GNNResult:
    """Select the top-k exactly like :func:`repro.core.bruteforce.brute_force_gnn`."""
    k = min(k, pts.shape[0])
    candidate_ids = np.argpartition(distances, k - 1)[:k]
    order = candidate_ids[np.argsort(distances[candidate_ids], kind="stable")]
    neighbors = [GroupNeighbor(int(i), pts[i], float(distances[i])) for i in order]
    cost = QueryCost(
        algorithm="brute-force",
        distance_computations=int(pts.shape[0] * cardinality),
        cpu_time=elapsed,
    )
    return GNNResult(neighbors=neighbors, cost=cost)
