"""Plan execution, single and batched.

The executor is the only layer that touches resources: it materialises
``GroupQuery`` objects and simulated-disk :class:`PointFile`\\ s from a
:class:`~repro.api.spec.QuerySpec`, hands them to the registered runner
of the planned algorithm, and (for batches) amortises work across
queries:

* **plan caching** — specs with equal plan signatures are planned once;
* **locality scheduling** — memory-resident queries are executed in
  Hilbert order of their group centroids, so consecutive queries touch
  overlapping parts of the R-tree and an LRU buffer serves far more
  requests from memory (results are returned in input order regardless);
* **vectorised scans** — specs planned to the brute-force baseline are
  evaluated through a single chunked ``(groups, N, n)`` distance tensor
  instead of one dataset pass per query;
* **shared traversals** — flat-index MBM specs are bucketed by
  ``(cardinality, k, heuristics)``, Hilbert-ordered, and answered by
  :func:`repro.core.mbm.mbm_batch`: *one* best-first traversal of the
  lazily-built snapshot serves the whole bucket, scoring each visited
  node for every still-active query in a single ``(B, fanout)`` (or
  ``(B, m)``) kernel call and pruning per query with Heuristics 2/3 —
  so a bucket pays the traversal once instead of ``B`` times.  The
  snapshot itself is materialised at most once per batch.

When the execution context carries a *dirty* delta overlay
(:class:`~repro.rtree.overlay.DeltaOverlay` — the engine's mutable
write path), snapshot-routed plans detour through
:func:`execute_overlay`: the planned algorithm runs over the frozen
base with tombstones excluded and over the small delta tree of
post-snapshot inserts, and the candidates merge by ``(distance,
record_id)`` — bit-identical to a from-scratch rebuild.  Shared
traversals are disabled while dirty (they see only the base arrays).

Batching never changes answers: every fast path reproduces the exact
arithmetic of the per-query route, which ``execute_many`` equivalence
tests pin down.  Two deliberate caveats on the shared paths, both
matching the batched brute-force precedent: an *exact* tie in the k-th
distance may resolve to a different, equally distant record (the batch
picks the smallest record ids, the per-query traversal keeps the first
one it met), and cost reporting is bucket-level — shared-traversal
results carry the counters of the one traversal under the
``MBM-batch`` label rather than per-query fictions.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from repro.api.planner import (
    DEFAULT_BLOCK_PAGES,
    DEFAULT_POINTS_PER_PAGE,
    QueryPlan,
    QueryPlanner,
)
from repro.api.spec import AUTO, MEMORY, OBJECT, QuerySpec
from repro.core.aggregates import aggregate_gnn
from repro.core.bruteforce import brute_force_gnn
from repro.core.mbm import mbm, mbm_batch
from repro.core.mqm import mqm
from repro.core.spm import spm
from repro.core.types import GNNResult, GroupNeighbor, GroupQuery, QueryCost
from repro.geometry import kernels
from repro.geometry.hilbert import hilbert_indices
from repro.obs import slowlog as obs_slowlog
from repro.obs import trace as obs_trace
from repro.rtree.flat import FlatRTree
from repro.rtree.overlay import DeltaOverlay
from repro.rtree.tree import RTree
from repro.storage.buffer import LRUBuffer
from repro.storage.pointfile import PointFile

#: Upper bound on the number of float64 elements a brute-force batch
#: chunk may allocate (the (g, N, n, dims) difference tensor).
BATCH_TENSOR_ELEMENT_CAP = 8_000_000

#: Upper bound on the elements of one shared-traversal leaf tensor (the
#: (B, fanout, n, dims) difference tensor scored per leaf); buckets are
#: chunked so B stays below it.
SHARED_BUCKET_ELEMENT_CAP = 8_000_000

#: Upper bound on the members of one shared traversal.  Buckets are
#: Hilbert-ordered before chunking, so each chunk covers a spatially
#: tight neighborhood: a shared traversal expands the *union* of its
#: members' search regions, and capping the chunk keeps that union —
#: and with it the per-member overhead on scattered workloads — small.
SHARED_BUCKET_MAX_MEMBERS = 32


@dataclass
class ExecutionContext:
    """Everything a runner may need: the indexes, the raw dataset, the buffer.

    ``flat`` optionally carries a read-optimised array-backed snapshot
    of the tree (:class:`~repro.rtree.flat.FlatRTree`); plans whose
    ``use_flat`` flag is set traverse it instead of the object tree.
    ``flat_provider`` lets an engine hand out the snapshot *lazily* —
    it is invoked (once) only when a flat-capable plan actually
    executes, so workloads that never touch the snapshot never pay for
    building it.  ``tree`` may be ``None`` for snapshot-only contexts
    (``GNNEngine.from_index``) — disk-resident plans then fail with an
    explicit error, since the Section-4 algorithms stream against the
    dynamic tree.

    ``point_ids`` names the record id of each row of ``points`` when
    the two no longer coincide (after deletions, or for shard views
    carrying global ids); ``None`` keeps the classic row-index rule.
    ``overlay`` carries the engine's *dirty* delta overlay — when set,
    snapshot-routed plans execute through :func:`execute_overlay`
    (base + delta − tombstones) instead of the stale frozen arrays.
    """

    tree: RTree | None
    points: np.ndarray | None = None
    buffer: LRUBuffer | None = None
    flat: FlatRTree | None = None
    flat_provider: Callable[[], FlatRTree | None] | None = None
    point_ids: np.ndarray | None = None
    overlay: DeltaOverlay | None = None

    def get_flat(self) -> FlatRTree | None:
        """The flat snapshot, materialising it through the provider once."""
        if self.flat is None and self.flat_provider is not None:
            self.flat = self.flat_provider()
        return self.flat


@dataclass
class PreparedQuery:
    """A spec with its heavyweight inputs materialised for one runner call."""

    spec: QuerySpec
    plan: QueryPlan
    query: GroupQuery | None = None
    query_file: PointFile | None = None
    options: Mapping[str, Any] = field(default_factory=dict)


def prepare(spec: QuerySpec, plan: QueryPlan) -> PreparedQuery:
    """Materialise the runner inputs demanded by the planned algorithm."""
    options = dict(plan.options)
    if plan.residency == MEMORY:
        return PreparedQuery(spec=spec, plan=plan, query=spec.group_query(), options=options)
    if plan.algorithm.requires_raw_points:
        # GCP builds its own query R-tree from the raw points.
        return PreparedQuery(spec=spec, plan=plan, options=options)
    query_file = spec.group_file
    if query_file is None:
        query_file = PointFile(
            spec.group,
            points_per_page=int(spec.options.get("points_per_page", DEFAULT_POINTS_PER_PAGE)),
            block_pages=int(spec.options.get("block_pages", DEFAULT_BLOCK_PAGES)),
        )
    return PreparedQuery(spec=spec, plan=plan, query_file=query_file, options=options)


def execute_spec(
    context: ExecutionContext,
    spec: QuerySpec,
    planner: QueryPlanner | None = None,
    plan: QueryPlan | None = None,
) -> GNNResult:
    """Plan (unless a plan is supplied) and execute one spec.

    With a tracer or slow-query log enabled (:mod:`repro.obs`) the call
    is wrapped in a ``query`` span tree and threshold-checked; the
    common disabled path pays exactly two module-global ``is None``
    reads on top of the classic code.
    """
    tracer = obs_trace.get()
    slow = obs_slowlog.get()
    if tracer is None and slow is None:
        if plan is None:
            plan = (planner or QueryPlanner()).plan(spec)
        return _run_planned(context, spec, plan)
    return _execute_observed(context, spec, planner, plan, tracer, slow)


def _run_planned(
    context: ExecutionContext, spec: QuerySpec, plan: QueryPlan
) -> GNNResult:
    """The classic execution core: route one planned spec to its runner."""
    if plan.residency != MEMORY and context.tree is None:
        raise ValueError(
            "disk-resident specs traverse the object R-tree, but this "
            "execution context holds only a flat snapshot "
            "(engine built with GNNEngine.from_index)"
        )
    if _overlay_routed(context, spec, plan):
        result = execute_overlay(context, spec, plan)
    else:
        result = plan.algorithm.runner(context, prepare(spec, plan))
    if spec.trace:
        result.plan = plan
    return result


def _execute_observed(
    context: ExecutionContext,
    spec: QuerySpec,
    planner: QueryPlanner | None,
    plan: QueryPlan | None,
    tracer,
    slow,
) -> GNNResult:
    """:func:`execute_spec` with observability on: span tree + slow log.

    The ``query`` root span's counter attributes are copied from
    ``result.cost`` *after* execution, so for a single query they
    reconcile exactly — by construction — with both the result's cost
    and the index's stats delta (pinned by the obs test suite).
    """
    started = time.perf_counter()
    root = (
        tracer.start(
            "query",
            k=spec.k,
            group_size=spec.cardinality,
            aggregate=spec.aggregate,
        )
        if tracer is not None
        else None
    )
    try:
        if plan is None:
            plan_span = (
                tracer.start("query.plan", parent=root) if tracer is not None else None
            )
            plan = (planner or QueryPlanner()).plan(spec)
            if plan_span is not None:
                tracer.finish(
                    plan_span,
                    algorithm=plan.algorithm.name,
                    residency=plan.residency,
                    rationale=plan.rationale,
                )
        execute_span = (
            tracer.start("query.execute", parent=root) if tracer is not None else None
        )
        result = _run_planned(context, spec, plan)
        if execute_span is not None:
            tracer.finish(execute_span, algorithm=result.cost.algorithm)
    except BaseException as error:
        if root is not None:
            tracer.finish(root, outcome="error", error=str(error))
        raise
    elapsed = time.perf_counter() - started
    if root is not None:
        tracer.finish(
            root,
            outcome="ok",
            algorithm=result.cost.algorithm,
            node_accesses=result.cost.node_accesses,
            leaf_accesses=result.cost.leaf_accesses,
            page_faults=result.cost.page_faults,
            distance_computations=result.cost.distance_computations,
        )
        result.trace_id = root["trace_id"]
    if slow is not None:
        slow.observe(
            elapsed,
            kind="query",
            spec=spec,
            plan=plan,
            cost=result.cost,
            trace_id=None if root is None else root["trace_id"],
        )
    return result


# ----------------------------------------------------------------------
# delta-overlay execution
# ----------------------------------------------------------------------
#: Tombstone-aware entry points of the built-in algorithms: these merge
#: the overlay inside the driver (the base traversal excludes the
#: tombstone set directly, so pruning bounds track the *live* k-th best
#: instead of an inflated k).  Algorithms registered by third parties
#: fall back to k-widening plus post-filtering in
#: :func:`execute_overlay`, which is exact but less tight.
_OVERLAY_DRIVERS: dict[str, Callable[..., GNNResult]] = {
    "mqm": lambda index, query, options, exclude: mqm(index, query, exclude=exclude),
    "spm": lambda index, query, options, exclude: spm(
        index, query, exclude=exclude, **options
    ),
    "mbm": lambda index, query, options, exclude: mbm(
        index, query, exclude=exclude, **options
    ),
    "best-first": lambda index, query, options, exclude: aggregate_gnn(
        index, query, exclude=exclude
    ),
}


def _overlay_routed(context: ExecutionContext, spec: QuerySpec, plan: QueryPlan) -> bool:
    """Whether this spec must answer from the merged overlay view.

    Only snapshot-routed memory plans are affected: the object tree
    (``index="object"`` or a brute-force scan of the live points) is
    mutated in place by the engine and already current, so those paths
    keep their classic route.
    """
    overlay = context.overlay
    if overlay is None or not overlay.dirty:
        return False
    if plan.residency != MEMORY or spec.index == OBJECT:
        return False
    if plan.use_flat:
        return True
    # Snapshot-only engines have no live object tree to fall back to:
    # the overlay is the only current view of the data.
    return context.tree is None and plan.algorithm.name == "brute-force"


def execute_overlay(
    context: ExecutionContext, spec: QuerySpec, plan: QueryPlan
) -> GNNResult:
    """Answer a memory-resident spec over a dirty delta overlay.

    The planned algorithm runs twice — once over the frozen base
    snapshot with the tombstone set excluded, once over the (small)
    delta tree of post-snapshot inserts — and the two candidate lists
    merge by the library-wide ``(distance, record_id)`` rule.  Both runs
    use the same distance kernels over the same coordinates a rebuilt
    single tree would hold, so the merged answers are bit-identical to a
    from-scratch rebuild over the live dataset; counters sum the two
    traversals and the algorithm label gains an ``+overlay`` suffix.
    """
    overlay = context.overlay
    started = time.perf_counter()
    name = plan.algorithm.name
    if name == "brute-force":
        points, ids = overlay.live_points()
        result = brute_force_gnn(points, spec.group_query(), record_ids=ids)
        result.cost.algorithm = "brute-force+overlay"
        result.cost.cpu_time = time.perf_counter() - started
        return result

    driver = _OVERLAY_DRIVERS.get(name)
    parts: list[GNNResult] = []
    if driver is not None:
        query = spec.group_query()
        exclude = overlay.tombstones if overlay.tombstones else None
        parts.append(driver(overlay.base, query, dict(plan.options), exclude))
        if len(overlay.delta):
            # The memtable scan: the delta stays small between
            # compactions, so one vectorised kernel call scores all of
            # it — the same kernel the traversals use, so the merged
            # answers are unchanged.
            delta_points, delta_ids = overlay.delta_points()
            parts.append(
                brute_force_gnn(delta_points, query, record_ids=delta_ids)
            )
    else:
        # Unknown (third-party) algorithm: widen k so the base's top
        # k + |tombstones| provably contains the top-k live records,
        # then post-filter; the delta side runs the algorithm verbatim.
        base_spec = (
            spec.replace(k=spec.k + len(overlay.tombstones))
            if overlay.tombstones
            else spec
        )
        base_plan = replace(plan, spec=base_spec)
        base_context = ExecutionContext(
            tree=None, buffer=context.buffer, flat=overlay.base
        )
        base = plan.algorithm.runner(base_context, prepare(base_spec, base_plan))
        base.neighbors = [
            n for n in base.neighbors if n.record_id not in overlay.tombstones
        ]
        parts.append(base)
        if len(overlay.delta):
            delta_spec = spec if spec.index == AUTO else spec.replace(index=AUTO)
            delta_plan = replace(plan, spec=delta_spec, use_flat=False)
            delta_context = ExecutionContext(tree=overlay.delta)
            parts.append(
                plan.algorithm.runner(delta_context, prepare(delta_spec, delta_plan))
            )
    return _merge_overlay_parts(spec.k, parts, time.perf_counter() - started)


def _merge_overlay_parts(
    k: int, parts: list[GNNResult], elapsed: float
) -> GNNResult:
    """Merge base and delta candidates; sum the counters of both runs."""
    candidates = [neighbor for part in parts for neighbor in part.neighbors]
    # Base and delta record ids are disjoint by construction, so the
    # merge is a plain sort by the canonical (distance, record id) rule.
    candidates.sort(key=lambda neighbor: (neighbor.distance, neighbor.record_id))
    cost = QueryCost(algorithm=f"{parts[0].cost.algorithm}+overlay", cpu_time=elapsed)
    for part in parts:
        cost.node_accesses += part.cost.node_accesses
        cost.leaf_accesses += part.cost.leaf_accesses
        cost.page_faults += part.cost.page_faults
        cost.distance_computations += part.cost.distance_computations
        cost.page_reads += part.cost.page_reads
        cost.block_reads += part.cost.block_reads
    return GNNResult(neighbors=candidates[:k], cost=cost)


def execute_batch(
    context: ExecutionContext,
    specs: Sequence[QuerySpec],
    planner: QueryPlanner | None = None,
) -> list[GNNResult]:
    """Execute many specs, amortising planning, locality and scan work.

    Results are returned in the order of ``specs``.  Answers are
    identical to calling :func:`execute_spec` once per spec.
    """
    planner = planner or QueryPlanner()
    specs = list(specs)
    plans: list[QueryPlan] = []
    plan_cache: dict[tuple, QueryPlan] = {}
    for spec in specs:
        signature = spec.plan_signature()
        cached = plan_cache.get(signature)
        if cached is None:
            cached = plan_cache[signature] = planner.plan(spec)
        plans.append(cached.for_spec(spec))

    results: list[GNNResult | None] = [None] * len(specs)

    # Split off the specs the vectorised scan kernel can take wholesale.
    scan_indices = [
        i
        for i, plan in enumerate(plans)
        if plan.algorithm.name == "brute-force"
        and specs[i].weights is None
        and specs[i].group is not None
        and context.points is not None
    ]
    for index, result in _batched_brute_force(context, specs, scan_indices):
        if specs[index].trace:
            result.plan = plans[index]
        results[index] = result

    remaining = [i for i in range(len(specs)) if results[i] is None]

    # Materialise the flat snapshot at most once for the whole batch:
    # every flat-capable plan shares it for the batch's duration, so an
    # engine-side invalidation (e.g. an insert between batches) can
    # never trigger repeated lazy rebuilds inside one call.  A dirty
    # overlay disables the shared traversal wholesale — the frozen
    # arrays alone no longer describe the live data; the per-spec path
    # below answers from the merged overlay view instead.
    flat = None
    if context.overlay is None and any(plans[i].use_flat for i in remaining):
        flat = context.get_flat()
    if flat is not None:
        shared_indices = [
            i for i in remaining if shared_traversal_eligible(specs[i], plans[i])
        ]
        for index, result in _shared_traversal_mbm(flat, specs, plans, shared_indices):
            if specs[index].trace:
                result.plan = plans[index]
            results[index] = result
        remaining = [i for i in range(len(specs)) if results[i] is None]

    for index in _locality_order(specs, plans, remaining):
        results[index] = execute_spec(context, specs[index], plan=plans[index])
    return results  # type: ignore[return-value]


# ----------------------------------------------------------------------
# shared-traversal batches (flat MBM)
# ----------------------------------------------------------------------
def shared_traversal_eligible(spec: QuerySpec, plan: QueryPlan) -> bool:
    """Whether a spec can join a shared-traversal MBM bucket.

    The shared traversal specialises the paper's setting — best-first
    MBM over an unweighted sum group held in memory — which is exactly
    what the auto policy plans for such specs.  Everything else stays on
    the per-query path (with identical answers either way).

    This predicate is the public batch-eligibility contract: the serving
    scheduler (:mod:`repro.serve.scheduler`) uses it to decide which
    incoming requests may be coalesced into one micro-batch.
    """
    return (
        plan.use_flat
        and plan.algorithm.name == "mbm"
        and spec.group is not None
        and spec.weights is None
        and spec.aggregate == kernels.SUM
    )


def shared_bucket_key(spec: QuerySpec, plan: QueryPlan) -> tuple | None:
    """The shared-traversal bucket ``spec`` coalesces into, or ``None``.

    Specs with equal keys can be answered by *one* :func:`mbm_batch`
    traversal (they stack along the batch dimensions: group cardinality,
    ``k`` and the Heuristic-3 toggle).  ``None`` means the spec is not
    shared-traversal eligible and must run on the per-query path.
    """
    if not shared_traversal_eligible(spec, plan):
        return None
    return (
        spec.cardinality,
        spec.k,
        bool(plan.options.get("use_heuristic3", True)),
    )


def _shared_traversal_mbm(
    flat: FlatRTree, specs: Sequence[QuerySpec], plans: Sequence[QueryPlan], indices: list[int]
):
    """Answer flat-MBM specs through shared bucket traversals.

    Specs are bucketed by ``(cardinality, k, use_heuristic3)`` — the
    stacking dimensions of :func:`repro.core.mbm.mbm_batch` — and each
    bucket runs in Hilbert order of the group centroids, so one
    traversal's node visits serve spatially coherent queries.  Buckets
    are chunked to bound the ``(B, fanout, n)`` leaf scoring tensors.
    Single-spec buckets stay on the per-query path (a batch of one
    amortises nothing).
    """
    if len(indices) < 2:
        return
    buckets: dict[tuple, list[int]] = {}
    for i in indices:
        key = shared_bucket_key(specs[i], plans[i])
        if key is None:
            # Defensive: the caller prefilters with the same predicate;
            # an ineligible spec must fall back to the per-query path,
            # never join a shared bucket.
            continue
        buckets.setdefault(key, []).append(i)
    dims = flat.dims
    for (cardinality, k, use_heuristic3), bucket in buckets.items():
        if len(bucket) < 2:
            continue
        chunk = min(
            SHARED_BUCKET_MAX_MEMBERS,
            SHARED_BUCKET_ELEMENT_CAP // max(1, flat.capacity * cardinality * dims),
        )
        if chunk < 2:
            continue  # groups too large to stack; per-query path handles them
        bucket = _hilbert_order(specs, bucket)
        for start in range(0, len(bucket), chunk):
            members = bucket[start : start + chunk]
            if len(members) < 2:
                continue  # leftover singleton: the per-query path is cheaper
            outcomes = mbm_batch(
                flat,
                np.stack([specs[i].group for i in members]),
                k,
                use_heuristic3=use_heuristic3,
            )
            yield from zip(members, outcomes)


# ----------------------------------------------------------------------
# locality scheduling
# ----------------------------------------------------------------------
def _hilbert_order(specs: Sequence[QuerySpec], indices: list[int]) -> list[int]:
    """``indices`` reordered along the Hilbert curve of the group centroids.

    The curve is only defined for 2-D groups; other dimensionalities
    keep their input order.
    """
    if len(indices) < 2:
        return indices
    centroids = np.vstack([specs[i].group.mean(axis=0) for i in indices])
    if centroids.shape[1] != 2:
        return indices
    keys = hilbert_indices(centroids)
    return [indices[j] for j in np.argsort(keys, kind="stable")]


def _locality_order(
    specs: Sequence[QuerySpec], plans: Sequence[QueryPlan], indices: list[int]
) -> list[int]:
    """Order memory-resident queries along the Hilbert curve of their centroids.

    Nearby groups explore overlapping R-tree regions; executing them
    consecutively keeps those nodes hot in the LRU buffer.  Disk-resident
    specs keep their input order (their cost is dominated by their own
    query file, not by inter-query locality).
    """
    memory = [
        i for i in indices if plans[i].residency == MEMORY and specs[i].group is not None
    ]
    memory_set = set(memory)
    other = [i for i in indices if i not in memory_set]
    return _hilbert_order(specs, memory) + other


# ----------------------------------------------------------------------
# vectorised brute-force batches
# ----------------------------------------------------------------------
def _batched_brute_force(
    context: ExecutionContext, specs: Sequence[QuerySpec], indices: list[int]
):
    """Evaluate brute-force specs through shared distance tensors.

    Groups are bucketed by (aggregate, cardinality) so each bucket stacks
    into a dense ``(g, n, dims)`` array; buckets are processed in chunks
    bounded by :data:`BATCH_TENSOR_ELEMENT_CAP`.  The tensor arithmetic
    lives in :func:`repro.geometry.kernels.batched_aggregate_distances`,
    which mirrors the per-query kernel axis for axis so the resulting
    distances are bitwise identical to the per-query path.
    """
    if not indices:
        return
    pts = np.asarray(context.points, dtype=np.float64)
    ids = context.point_ids
    size, dims = pts.shape
    buckets: dict[tuple[str, int], list[int]] = {}
    for i in indices:
        buckets.setdefault((specs[i].aggregate, specs[i].cardinality), []).append(i)

    for (aggregate, cardinality), bucket in buckets.items():
        chunk = max(1, BATCH_TENSOR_ELEMENT_CAP // max(1, size * cardinality * dims))
        for start in range(0, len(bucket), chunk):
            members = bucket[start : start + chunk]
            started = time.perf_counter()
            groups = np.stack([specs[i].group for i in members])  # (g, n, dims)
            distances = kernels.batched_aggregate_distances(pts, groups, aggregate)  # (g, N)
            elapsed = (time.perf_counter() - started) / len(members)
            for row, i in enumerate(members):
                yield i, _topk_result(
                    pts, distances[row], specs[i].k, cardinality, elapsed, ids
                )


def _topk_result(
    pts: np.ndarray,
    distances: np.ndarray,
    k: int,
    cardinality: int,
    elapsed: float,
    record_ids: np.ndarray | None = None,
) -> GNNResult:
    """Select the top-k exactly like :func:`repro.core.bruteforce.brute_force_gnn`."""
    k = min(k, pts.shape[0])
    candidate_ids = np.argpartition(distances, k - 1)[:k]
    order = candidate_ids[np.argsort(distances[candidate_ids], kind="stable")]
    if record_ids is None:
        neighbors = [GroupNeighbor(int(i), pts[i], float(distances[i])) for i in order]
    else:
        neighbors = [
            GroupNeighbor(int(record_ids[i]), pts[i], float(distances[i])) for i in order
        ]
    cost = QueryCost(
        algorithm="brute-force",
        distance_computations=int(pts.shape[0] * cardinality),
        cpu_time=elapsed,
    )
    return GNNResult(neighbors=neighbors, cost=cost)
