"""Capability-aware algorithm registry.

Every GNN algorithm the engine can execute is described by an
:class:`AlgorithmInfo`: its runner, the residency it handles
(memory-resident group vs. disk-resident query file), the aggregates it
is defined for, whether it accepts per-point weights, and the options it
understands.  The planner consults this metadata instead of hard-coding
``if/elif`` chains, so third-party algorithms plug in with a single
:func:`register_algorithm` call and immediately participate in
``engine.execute`` / ``engine.explain`` / ``engine.execute_many``.

The capability declarations follow the *paper's* definitions (MQM, SPM,
MBM and F-MQM/F-MBM are sum-aggregate algorithms; Section 3/4), even
where an implementation happens to generalise further — the registry is
the contract the planner enforces, and the generalised entry points
(``best-first``, ``brute-force``) cover the other aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.core.aggregates import aggregate_gnn
from repro.core.bruteforce import brute_force_gnn, brute_force_over_tree
from repro.core.fmbm import fmbm
from repro.core.fmqm import fmqm
from repro.core.gcp import gcp
from repro.core.mbm import mbm
from repro.core.mqm import mqm
from repro.core.spm import spm
from repro.geometry.distance import MAX, MIN, SUM
from repro.rtree.tree import DEFAULT_CAPACITY, RTree

from repro.api.spec import DISK, MEMORY, QuerySpec

#: Options that shape the simulated disk file rather than the algorithm
#: itself; the executor consumes them when it builds a PointFile.
FILE_GEOMETRY_OPTIONS = ("points_per_page", "block_pages")


@dataclass(frozen=True)
class AlgorithmInfo:
    """Metadata and entry point of one registered algorithm.

    ``runner`` receives ``(context, request)`` where ``context`` is the
    executor's :class:`~repro.api.executor.ExecutionContext` (tree,
    dataset points, buffer) and ``request`` the prepared
    :class:`~repro.api.executor.PreparedQuery` (spec, materialised
    ``GroupQuery`` or ``PointFile``, algorithm options).
    """

    name: str
    runner: Callable[..., Any]
    residency: str
    aggregates: tuple[str, ...] = (SUM,)
    supports_weights: bool = False
    requires_raw_points: bool = False
    options: tuple[str, ...] = ()
    cost_rank: int = 1
    description: str = ""
    #: True when the algorithm's best-first traversal can run over a
    #: flat array-backed snapshot (FlatRTree) with identical results and
    #: accounting; the planner uses this to set ``QueryPlan.use_flat``.
    supports_flat: bool = False

    def capability_errors(self, spec: QuerySpec) -> list[str]:
        """Reasons this algorithm cannot answer ``spec`` (empty when it can)."""
        errors = []
        residency = spec.resolved_residency()
        if residency != self.residency:
            errors.append(
                f"{self.name} handles {self.residency}-resident groups, "
                f"but the spec is {residency}-resident"
            )
        if spec.aggregate not in self.aggregates:
            errors.append(
                f"{self.name} supports aggregates {self.aggregates}, "
                f"not {spec.aggregate!r}"
            )
        if spec.weights is not None and not self.supports_weights:
            errors.append(f"{self.name} does not support weighted queries")
        needs_points = self.requires_raw_points or self.residency == MEMORY
        if needs_points and spec.group is None:
            errors.append(
                f"{self.name} needs the raw query points "
                "(a group_file alone is not enough)"
            )
        return errors

    def supports(self, spec: QuerySpec) -> bool:
        """True when this algorithm can answer ``spec``."""
        return not self.capability_errors(spec)


_REGISTRY: dict[str, AlgorithmInfo] = {}


def register_algorithm(info: AlgorithmInfo, overwrite: bool = False) -> AlgorithmInfo:
    """Add an algorithm to the registry; returns the stored info."""
    name = info.name.lower()
    if name in _REGISTRY and not overwrite:
        raise ValueError(f"algorithm {name!r} is already registered")
    if info.residency not in (MEMORY, DISK):
        raise ValueError(
            f"algorithm residency must be {MEMORY!r} or {DISK!r}, got {info.residency!r}"
        )
    _REGISTRY[name] = info
    return info


def unregister_algorithm(name: str) -> None:
    """Remove an algorithm (mostly useful for tests of the registry itself)."""
    _REGISTRY.pop(name.lower(), None)


def get_algorithm(name: str) -> AlgorithmInfo:
    """Look up an algorithm by (case-insensitive) name.

    Raises ``ValueError`` with the list of known names, so a typo in a
    spec fails with an actionable message.
    """
    info = _REGISTRY.get(name.lower())
    if info is None:
        raise ValueError(
            f"unknown algorithm {name!r}; registered algorithms: "
            f"{sorted(_REGISTRY)}"
        )
    return info


def available_algorithms(residency: str | None = None) -> list[AlgorithmInfo]:
    """All registered algorithms, optionally filtered by residency."""
    infos = sorted(_REGISTRY.values(), key=lambda info: info.name)
    if residency is None:
        return infos
    return [info for info in infos if info.residency == residency]


# ----------------------------------------------------------------------
# built-in runners
# ----------------------------------------------------------------------
def _memory_index(context, request):
    """The index a memory-resident runner should traverse.

    The flat snapshot is used when the plan allows it and the execution
    context holds one; otherwise the object tree.  A spec that demanded
    ``index="flat"`` against a context without a snapshot — or a
    fallback to an object tree the engine does not have — fails here
    with an actionable message.
    """
    plan = request.plan
    if plan is not None and plan.use_flat:
        flat = context.get_flat()
        if flat is not None:
            return flat
    if request.spec.index == "flat":
        raise ValueError(
            "spec requires the flat index but the execution context holds "
            "no flat snapshot; call engine.snapshot() (or build the engine "
            "with snapshot=True) first"
        )
    if context.tree is None:
        raise ValueError(
            "this execution context holds only a flat snapshot; the "
            "requested path (object-tree traversal) is unavailable"
        )
    return context.tree


def _run_mqm(context, request):
    return mqm(_memory_index(context, request), request.query)


def _run_spm(context, request):
    return spm(_memory_index(context, request), request.query, **request.options)


def _run_mbm(context, request):
    return mbm(_memory_index(context, request), request.query, **request.options)


def _run_best_first(context, request):
    return aggregate_gnn(_memory_index(context, request), request.query)


def _run_brute_force(context, request):
    if context.points is not None:
        # point_ids maps live rows back to record ids once deletions (or
        # shard-global ids) break the row-index rule; None keeps it.
        return brute_force_gnn(
            context.points, request.query, record_ids=context.point_ids
        )
    if context.tree is not None:
        return brute_force_over_tree(context.tree, request.query)
    # Snapshot-only context: reconstruct the dataset from the flat
    # snapshot (cached there) when record ids are the usual row indices,
    # else scan its leaf arrays in record-id order (compacted
    # generations keep their original ids, so ids are no longer dense).
    flat = context.get_flat()
    if flat is not None:
        points = flat.points_by_record_id()
        if points is not None:
            return brute_force_gnn(points, request.query)
        order = np.argsort(flat.record_ids, kind="stable")
        return brute_force_gnn(
            flat.points[order], request.query, record_ids=flat.record_ids[order]
        )
    raise ValueError(
        "brute force needs the raw dataset points, the object R-tree, or a "
        "flat snapshot; this execution context has none of those"
    )


def _run_fmqm(context, request):
    return fmqm(context.tree, request.query_file, k=request.spec.k, **request.options)


def _run_fmbm(context, request):
    return fmbm(context.tree, request.query_file, k=request.spec.k, **request.options)


def _run_gcp(context, request):
    options = dict(request.options)
    capacity = options.pop("query_tree_capacity", DEFAULT_CAPACITY)
    query_tree = RTree.bulk_load(request.spec.group, capacity=capacity)
    return gcp(context.tree, query_tree, k=request.spec.k, **options)


BUILTIN_ALGORITHMS = (
    AlgorithmInfo(
        name="mqm",
        runner=_run_mqm,
        residency=MEMORY,
        aggregates=(SUM,),
        cost_rank=3,
        supports_flat=True,
        description="Multiple query method: one incremental NN search per query point (Section 3.1).",
    ),
    AlgorithmInfo(
        name="spm",
        runner=_run_spm,
        residency=MEMORY,
        aggregates=(SUM,),
        options=("traversal", "centroid_method"),
        cost_rank=2,
        supports_flat=True,
        description="Single point method: one traversal around the group centroid (Section 3.2).",
    ),
    AlgorithmInfo(
        name="mbm",
        runner=_run_mbm,
        residency=MEMORY,
        aggregates=(SUM,),
        supports_weights=True,
        options=("traversal", "use_heuristic3"),
        cost_rank=1,
        supports_flat=True,
        description="Minimum bounding method: single traversal pruned by the group MBR (Section 3.3).",
    ),
    AlgorithmInfo(
        name="best-first",
        runner=_run_best_first,
        residency=MEMORY,
        aggregates=(SUM, MAX, MIN),
        supports_weights=True,
        cost_rank=2,
        supports_flat=True,
        description="Aggregate-generalised optimal best-first traversal (sum/max/min, weighted).",
    ),
    AlgorithmInfo(
        name="brute-force",
        runner=_run_brute_force,
        residency=MEMORY,
        aggregates=(SUM, MAX, MIN),
        supports_weights=True,
        cost_rank=9,
        description="Exhaustive scan of the dataset; the ground-truth baseline.",
    ),
    AlgorithmInfo(
        name="fmqm",
        runner=_run_fmqm,
        residency=DISK,
        aggregates=(SUM,),
        options=FILE_GEOMETRY_OPTIONS,
        cost_rank=1,
        description="File multiple query method: one GNN sub-query per Hilbert block (Section 4.2).",
    ),
    AlgorithmInfo(
        name="fmbm",
        runner=_run_fmbm,
        residency=DISK,
        aggregates=(SUM,),
        options=FILE_GEOMETRY_OPTIONS + ("traversal", "charge_summary_scan"),
        cost_rank=2,
        description="File minimum bounding method: single traversal pruned by block summaries (Section 4.3).",
    ),
    AlgorithmInfo(
        name="gcp",
        runner=_run_gcp,
        residency=DISK,
        aggregates=(SUM,),
        requires_raw_points=True,
        options=("query_tree_capacity", "max_pairs"),
        cost_rank=8,
        description="Group closest pairs over two R-trees (Section 4.1); expensive, for indexed Q.",
    ),
)

for _info in BUILTIN_ALGORITHMS:
    register_algorithm(_info, overwrite=True)
