"""Declarative query specifications.

A :class:`QuerySpec` is the immutable, validated description of one group
nearest neighbor query: *what* to retrieve (group, ``k``, aggregate,
weights), *where* the group lives (memory- or disk-resident), and *how*
the caller wants it answered (an algorithm hint plus per-algorithm
options).  It deliberately contains no execution state, so the same spec
can be planned (:class:`repro.api.planner.QueryPlanner`), explained, and
executed any number of times — including in batches through
``GNNEngine.execute_many``.

All input validation that used to be scattered across ``GroupQuery`` and
the engine's keyword plumbing happens here, up front, with explicit
error messages: ``k < 1``, empty groups, weight vectors whose length
does not match the group cardinality, unknown aggregates and residencies
are all rejected at construction time.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from types import MappingProxyType
from typing import Any, Mapping

import numpy as np

from repro.core.types import GroupQuery
from repro.geometry.distance import AGGREGATES, SUM
from repro.geometry.point import as_points
from repro.storage.pointfile import PointFile

#: Sentinel used for ``algorithm``, ``residency`` and ``index`` to
#: request planner-driven selection.
AUTO = "auto"

#: Valid residency declarations.
MEMORY = "memory"
DISK = "disk"
RESIDENCIES = (AUTO, MEMORY, DISK)

#: Valid index preferences: ``auto`` lets the planner route
#: memory-resident queries through a flat snapshot when the engine
#: holds one, ``flat`` demands the snapshot, ``object`` pins the query
#: to the dynamic object tree, and ``sharded`` routes through a
#: federation of shard snapshots (requires a coordinator-backed engine,
#: :class:`repro.shard.ShardedEngine`; planning fails actionably on any
#: other engine).
FLAT = "flat"
OBJECT = "object"
SHARDED = "sharded"
INDEXES = (AUTO, FLAT, OBJECT, SHARDED)


@dataclass(frozen=True, eq=False)
class QuerySpec:
    """Immutable description of one GNN query.

    Parameters
    ----------
    group:
        The query group ``Q`` as an ``(n, dims)`` array-like, or ``None``
        when only ``group_file`` is supplied.  The stored array is a
        read-only ``float64`` copy, so a spec can never be mutated
        through the original input.
    group_file:
        An existing disk-resident :class:`~repro.storage.pointfile.PointFile`
        holding the group (Section 4 of the paper).  ``group`` and
        ``group_file`` may both be given; algorithms that need raw
        points (GCP) use ``group``, file-based ones use ``group_file``.
    k:
        Number of group nearest neighbors to retrieve (``>= 1``).
    aggregate:
        ``"sum"`` (the paper's definition), ``"max"`` or ``"min"``.
    weights:
        Optional per-query-point weights; must match the group size.
    residency:
        ``"auto"`` (infer from the inputs), ``"memory"`` or ``"disk"``.
    algorithm:
        ``"auto"`` (let the planner choose) or a registry name such as
        ``"mbm"`` or ``"fmqm"``; case-insensitive.
    options:
        Per-algorithm options forwarded by the executor (for example
        ``traversal="depth_first"``, ``use_heuristic3=False``,
        ``block_pages=200`` or ``max_pairs=10_000``).
    index:
        ``"auto"`` (default: the planner routes memory-resident queries
        through the engine's flat snapshot when one is available — and,
        when pending writes have made that snapshot stale, through the
        merged delta-overlay view, which stays bit-identical to a
        rebuilt index),
        ``"flat"`` (require the flat snapshot; planning or execution
        fails if the algorithm or engine cannot provide it),
        ``"object"`` (always traverse the dynamic object tree) or
        ``"sharded"`` (scatter-gather over a shard federation; only a
        coordinator-backed :class:`repro.shard.ShardedEngine` can plan
        it).
    trace:
        When True the executor attaches the full :class:`QueryPlan`
        (algorithm choice, rationale, cost estimate) to the result as
        ``result.plan``; when False ``result.plan`` stays ``None``.
    label:
        Optional caller-supplied tag, carried through to plans untouched
        (useful to correlate batch results with business objects).
    """

    group: np.ndarray | None = None
    group_file: PointFile | None = None
    k: int = 1
    aggregate: str = SUM
    weights: np.ndarray | None = None
    residency: str = AUTO
    algorithm: str = AUTO
    options: Mapping[str, Any] = field(default_factory=dict)
    index: str = AUTO
    trace: bool = False
    label: str | None = None

    def __post_init__(self):
        if self.group is None and self.group_file is None:
            raise ValueError(
                "a QuerySpec needs a query group: pass 'group' (points) and/or "
                "'group_file' (a disk-resident PointFile)"
            )
        if self.group is not None:
            points = as_points(self.group)
            if points.shape[0] == 0:
                raise ValueError("the query group must contain at least one point")
            points = points.copy()
            points.setflags(write=False)
            object.__setattr__(self, "group", points)
        if self.group_file is not None and self.group_file.point_count == 0:
            raise ValueError("the query group file must contain at least one point")
        if int(self.k) != self.k or self.k < 1:
            raise ValueError(f"k must be a positive integer, got {self.k!r}")
        object.__setattr__(self, "k", int(self.k))
        if self.aggregate not in AGGREGATES:
            raise ValueError(
                f"unknown aggregate {self.aggregate!r}; expected one of {AGGREGATES}"
            )
        if self.weights is not None:
            weights = np.asarray(self.weights, dtype=np.float64)
            if weights.ndim != 1:
                raise ValueError(
                    f"weights must be a 1-d vector, got shape {weights.shape}"
                )
            if self.group is not None and weights.size != self.group.shape[0]:
                raise ValueError(
                    f"weights length {weights.size} does not match the "
                    f"group cardinality {self.group.shape[0]}"
                )
            if np.any(weights < 0) or not np.all(np.isfinite(weights)):
                raise ValueError("weights must be finite and non-negative")
            weights = weights.copy()
            weights.setflags(write=False)
            object.__setattr__(self, "weights", weights)
        residency = str(self.residency).lower()
        if residency not in RESIDENCIES:
            raise ValueError(
                f"unknown residency {self.residency!r}; expected one of {RESIDENCIES}"
            )
        object.__setattr__(self, "residency", residency)
        index = str(self.index).lower()
        if index not in INDEXES:
            raise ValueError(
                f"unknown index preference {self.index!r}; expected one of {INDEXES}"
            )
        object.__setattr__(self, "index", index)
        object.__setattr__(self, "algorithm", str(self.algorithm).lower())
        object.__setattr__(
            self, "options", MappingProxyType(dict(self.options or {}))
        )

    # ------------------------------------------------------------------
    # derived shape
    # ------------------------------------------------------------------
    @property
    def cardinality(self) -> int:
        """Number of query points ``n`` (from ``group`` or ``group_file``)."""
        if self.group is not None:
            return int(self.group.shape[0])
        return int(self.group_file.point_count)

    @property
    def dims(self) -> int:
        """Dimensionality of the query points."""
        if self.group is not None:
            return int(self.group.shape[1])
        return int(self.group_file.dims)

    def resolved_residency(self) -> str:
        """The declared residency, or the inferred one when ``"auto"``.

        ``auto`` resolves to ``disk`` when a :class:`PointFile` was
        supplied; otherwise the group is in memory by construction.
        """
        if self.residency != AUTO:
            return self.residency
        return DISK if self.group_file is not None else MEMORY

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    def group_query(self) -> GroupQuery:
        """Materialise the legacy :class:`GroupQuery` for the algorithm layer."""
        if self.group is None:
            raise ValueError(
                "this spec only carries a disk-resident group_file; "
                "no in-memory GroupQuery can be built from it"
            )
        return GroupQuery(
            self.group, k=self.k, aggregate=self.aggregate, weights=self.weights
        )

    def replace(self, **changes) -> "QuerySpec":
        """Return a copy of this spec with the given fields replaced."""
        return replace(self, **changes)

    def plan_signature(self) -> tuple:
        """Hashable key under which the planner's decision is cacheable.

        Two specs with equal signatures are guaranteed to produce the
        same plan (algorithm choice and rationale): the planner's output
        depends on the algorithm hint, residency, aggregate, presence of
        weights, ``k``, group cardinality, and the options mapping — but
        never on the coordinates themselves.
        """
        return (
            self.algorithm,
            self.resolved_residency(),
            self.aggregate,
            self.weights is None,
            self.k,
            self.cardinality,
            self.index,
            self.group_file.block_count if self.group_file is not None else None,
            tuple(sorted((key, repr(value)) for key, value in self.options.items())),
        )

    def __repr__(self) -> str:
        source = "file" if self.group is None else f"n={self.cardinality}"
        return (
            f"QuerySpec({source}, k={self.k}, aggregate={self.aggregate!r}, "
            f"residency={self.residency!r}, algorithm={self.algorithm!r})"
        )
