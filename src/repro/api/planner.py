"""Query planning: from a declarative spec to an executable plan.

:class:`QueryPlanner` replaces the engine's old inline ``"auto"``
dispatch with an explicit, testable step: ``plan(spec)`` returns a
:class:`QueryPlan` naming the chosen algorithm, a human-readable
rationale grounded in the paper's experimental findings (Section 5), and
a coarse cost estimate derived from the index shape.  Explicit algorithm
requests are validated against the registry's capability metadata, so a
spec asking MBM for a ``max`` aggregate fails at planning time with a
message that names the mismatch instead of deep inside a traversal.

The auto policy encodes the paper's recommendations:

* memory-resident groups → **MBM** (the clear winner of Figures 5.1-5.3)
  for the sum aggregate, the generalised best-first traversal otherwise;
* disk-resident files with few blocks → **F-MQM**, otherwise **F-MBM**
  (Figures 5.4-5.7 and the summary of Section 5.2).
"""

from __future__ import annotations

import difflib
import math
from dataclasses import dataclass, replace
from types import MappingProxyType
from typing import Any, Mapping

from repro.api.registry import (
    AlgorithmInfo,
    FILE_GEOMETRY_OPTIONS,
    available_algorithms,
    get_algorithm,
)
from repro.api.spec import AUTO, FLAT, INDEXES, MEMORY, OBJECT, SHARDED, QuerySpec

#: Block-count threshold below which the auto policy prefers F-MQM; the
#: paper's PP-as-query experiments (3 blocks) favour F-MQM while the
#: TS-as-query experiments (20 blocks) favour F-MBM.
AUTO_FMQM_MAX_BLOCKS = 6

#: Default simulated-disk geometry (the paper's 1 KByte pages of 50
#: points, blocks of 10,000 points).
DEFAULT_POINTS_PER_PAGE = 50
DEFAULT_BLOCK_PAGES = 200


@dataclass(frozen=True)
class CostEstimate:
    """Coarse, index-shape-based cost prediction for one plan.

    The numbers are order-of-magnitude guidance (useful to compare plans
    and to schedule batches), not measurements; ``basis`` spells out the
    model that produced them.
    """

    node_accesses: float
    distance_computations: float
    io_reads: float
    basis: str

    def as_dict(self) -> dict[str, Any]:
        return {
            "node_accesses": self.node_accesses,
            "distance_computations": self.distance_computations,
            "io_reads": self.io_reads,
            "basis": self.basis,
        }


@dataclass(frozen=True)
class QueryPlan:
    """The planner's decision for one spec: algorithm, rationale, estimate.

    ``use_flat`` records whether the planned traversal may run over a
    flat array-backed snapshot (:class:`~repro.rtree.flat.FlatRTree`):
    the algorithm supports it, the group is memory-resident, and the
    requested options stay on the best-first path.  The executor routes
    through the snapshot only when the execution context actually holds
    one, so a True value is a capability, not a promise.
    """

    spec: QuerySpec
    algorithm: AlgorithmInfo
    residency: str
    options: Mapping[str, Any]
    rationale: str
    estimate: CostEstimate | None = None
    use_flat: bool = False

    def for_spec(self, spec: QuerySpec) -> "QueryPlan":
        """Rebind a cached plan to another spec with the same signature."""
        return replace(self, spec=spec)

    def describe(self) -> str:
        """Human-readable multi-line explanation (what ``explain`` prints)."""
        lines = [
            f"QueryPlan for {self.spec!r}",
            f"  algorithm : {self.algorithm.name} — {self.algorithm.description}",
            f"  residency : {self.residency}",
            f"  index     : "
            + (
                "flat snapshot (when the engine holds one)"
                if self.use_flat
                else "object R-tree"
            ),
            f"  rationale : {self.rationale}",
        ]
        if self.options:
            rendered = ", ".join(f"{k}={v!r}" for k, v in sorted(self.options.items()))
            lines.append(f"  options   : {rendered}")
        if self.estimate is not None:
            lines.append(
                "  estimate  : "
                f"~{self.estimate.node_accesses:.0f} node accesses, "
                f"~{self.estimate.distance_computations:.0f} distance computations, "
                f"~{self.estimate.io_reads:.0f} I/O reads "
                f"({self.estimate.basis})"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"QueryPlan(algorithm={self.algorithm.name!r}, "
            f"residency={self.residency!r}, rationale={self.rationale!r})"
        )


class QueryPlanner:
    """Chooses and justifies an algorithm for each :class:`QuerySpec`.

    Parameters
    ----------
    engine:
        Optional :class:`~repro.core.engine.GNNEngine` (or any object
        with a ``tree`` attribute).  When given, plans carry a
        :class:`CostEstimate` derived from the index shape; planning
        works without it, just without estimates.
    fmqm_max_blocks:
        Auto-policy threshold between F-MQM and F-MBM.
    """

    def __init__(self, engine=None, fmqm_max_blocks: int = AUTO_FMQM_MAX_BLOCKS):
        self.engine = engine
        self.fmqm_max_blocks = int(fmqm_max_blocks)

    # ------------------------------------------------------------------
    # public entry point
    # ------------------------------------------------------------------
    def plan(self, spec: QuerySpec) -> QueryPlan:
        """Resolve ``spec`` into an executable :class:`QueryPlan`.

        Raises ``ValueError`` for unknown algorithm names and for
        capability mismatches (wrong residency, unsupported aggregate or
        weights) — planning is where a bad spec fails, not execution.
        """
        residency = spec.resolved_residency()
        if spec.algorithm == AUTO:
            info, rationale = self._choose(spec, residency)
        else:
            info = get_algorithm(spec.algorithm)
            errors = info.capability_errors(spec)
            if errors:
                raise ValueError(
                    f"algorithm {info.name!r} cannot answer this spec: "
                    + "; ".join(errors)
                )
            rationale = f"explicitly requested by the spec ({info.name})"
        # File geometry shapes the simulated disk file (built by the
        # executor), not the algorithm call itself.
        options = {
            key: value
            for key, value in spec.options.items()
            if key not in FILE_GEOMETRY_OPTIONS
        }
        unknown = sorted(set(options) - set(info.options))
        if unknown:
            valid = sorted(set(info.options) | set(FILE_GEOMETRY_OPTIONS))
            suggestions = [
                close[0]
                for name in unknown
                if (close := difflib.get_close_matches(name, valid, n=1))
            ]
            hint = f" (did you mean {sorted(set(suggestions))}?)" if suggestions else ""
            known = sorted(info.options)
            known_text = (
                f"options valid for {info.name!r}: {known}"
                if known
                else f"algorithm {info.name!r} takes no algorithm options"
            )
            raise ValueError(
                f"algorithm {info.name!r} does not understand option(s) "
                f"{unknown}{hint}; {known_text}; file-geometry options "
                f"{sorted(FILE_GEOMETRY_OPTIONS)} are accepted on any spec"
            )
        return QueryPlan(
            spec=spec,
            algorithm=info,
            residency=residency,
            options=MappingProxyType(options),
            rationale=rationale,
            estimate=self._estimate(spec, info, residency),
            use_flat=self._resolve_index(spec, info, residency, options),
        )

    def _resolve_index(self, spec, info, residency, options) -> bool:
        """Whether the planned traversal may run over a flat snapshot.

        A spec demanding ``index="flat"`` fails here — at plan time,
        with the reason named — when the combination can never run over
        a snapshot: a disk-resident group, an algorithm without a flat
        traversal, or a depth-first option.  ``index="sharded"`` is only
        plannable by a coordinator-backed engine
        (:class:`repro.shard.ShardedEngine`); every other engine rejects
        it here with the valid alternatives named.
        """
        flat_capable = (
            residency == MEMORY
            and info.supports_flat
            and options.get("traversal", "best_first") == "best_first"
        )
        if spec.index == SHARDED:
            if getattr(self.engine, "coordinator", None) is None:
                valid = [name for name in INDEXES if name != SHARDED]
                raise ValueError(
                    "index='sharded' needs a coordinator-backed engine, but "
                    "this engine serves a single index (valid index values "
                    f"here: {valid}); partition the dataset with "
                    "repro.shard.partition_dataset, start shard nodes, and "
                    "query through repro.shard.ShardedEngine"
                )
            # Shard workers traverse their own flat snapshots; the
            # coordinator-backed engine validates servability on top.
            return flat_capable
        if spec.index == FLAT and not flat_capable:
            if residency != MEMORY:
                reason = "disk-resident groups always traverse the object R-tree"
            elif not info.supports_flat:
                reason = f"algorithm {info.name!r} has no flat-snapshot traversal"
            else:
                reason = "the depth-first traversal needs the object R-tree"
            raise ValueError(f"spec requires the flat index, but {reason}")
        if spec.index == OBJECT:
            return False
        return flat_capable

    # ------------------------------------------------------------------
    # auto policy
    # ------------------------------------------------------------------
    def _choose(self, spec: QuerySpec, residency: str) -> tuple[AlgorithmInfo, str]:
        if residency == MEMORY:
            if spec.aggregate == "sum" and spec.weights is None:
                return (
                    get_algorithm("mbm"),
                    "memory-resident sum query: MBM is the paper's overall winner "
                    "(Figures 5.1-5.3)",
                )
            flavour = (
                f"{spec.aggregate} aggregate"
                if spec.weights is None
                else f"weighted {spec.aggregate} aggregate"
            )
            return (
                get_algorithm("best-first"),
                f"{flavour}: only the generalised best-first traversal is exact "
                "for non-sum/weighted groups",
            )
        blocks = self._block_count(spec)
        if blocks <= self.fmqm_max_blocks:
            return (
                get_algorithm("fmqm"),
                f"disk-resident group in {blocks} block(s) <= {self.fmqm_max_blocks}: "
                "F-MQM wins for few blocks (Figure 5.4, Section 5.2)",
            )
        return (
            get_algorithm("fmbm"),
            f"disk-resident group in {blocks} blocks > {self.fmqm_max_blocks}: "
            "F-MBM scales better with many blocks (Figures 5.5-5.7)",
        )

    def _block_count(self, spec: QuerySpec) -> int:
        """Number of disk blocks the group occupies (exact or from geometry)."""
        if spec.group_file is not None:
            return spec.group_file.block_count
        points_per_page = int(spec.options.get("points_per_page", DEFAULT_POINTS_PER_PAGE))
        block_pages = int(spec.options.get("block_pages", DEFAULT_BLOCK_PAGES))
        pages = math.ceil(spec.cardinality / max(1, points_per_page))
        return max(1, math.ceil(pages / max(1, block_pages)))

    # ------------------------------------------------------------------
    # cost model
    # ------------------------------------------------------------------
    def _estimate(
        self, spec: QuerySpec, info: AlgorithmInfo, residency: str
    ) -> CostEstimate | None:
        tree = getattr(self.engine, "tree", None)
        if tree is None:
            # Snapshot-only engines (GNNEngine.from_index) still expose
            # the index shape through the flat snapshot.
            tree = getattr(self.engine, "flat", None)
        if tree is None or len(tree) == 0:
            return None
        size = len(tree)
        capacity = max(2, tree.capacity)
        height = max(1, tree.height)
        n = spec.cardinality
        # One root-to-leaf descent plus per-neighbor refinement: the
        # backbone of every best-first search over the index.
        descent = height * (1 + spec.k)
        if info.name == "brute-force":
            return CostEstimate(0.0, float(size * n), 0.0, "exhaustive scan: N*n")
        if residency == MEMORY:
            factor = {"mqm": float(n)}.get(info.name, 1.0)
            node_accesses = factor * descent
            return CostEstimate(
                node_accesses,
                node_accesses * capacity * (n + 1),
                0.0,
                "descents " + ("per query point (MQM)" if factor > 1 else "per query"),
            )
        pages = math.ceil(n / int(spec.options.get("points_per_page", DEFAULT_POINTS_PER_PAGE)))
        blocks = self._block_count(spec)
        if info.name == "gcp":
            return CostEstimate(
                float(descent * math.ceil(n / capacity)),
                float(size * math.isqrt(max(1, n))),
                0.0,
                "closest-pair frontier over both trees (coarse)",
            )
        traversals = blocks if info.name == "fmqm" else 1
        return CostEstimate(
            float(traversals * descent),
            float(traversals * descent * capacity * (min(n, capacity) + 1)),
            float(pages + blocks),
            f"{traversals} index traversal(s) + {pages} query pages",
        )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def candidates(self, spec: QuerySpec) -> list[AlgorithmInfo]:
        """Registered algorithms capable of answering ``spec``."""
        return [
            info
            for info in available_algorithms(spec.resolved_residency())
            if info.supports(spec)
        ]
