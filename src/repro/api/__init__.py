"""Declarative query API: specs, planning, registry, execution.

This package is the public face of the engine redesign:

* :class:`~repro.api.spec.QuerySpec` — immutable, validated description
  of one GNN query (group or file, ``k``, aggregate, weights, residency,
  algorithm hint, options);
* :class:`~repro.api.registry.AlgorithmInfo` /
  :func:`~repro.api.registry.register_algorithm` — the capability-aware
  algorithm registry the paper's six algorithms (plus the baselines)
  register into, and the extension point for new ones;
* :class:`~repro.api.planner.QueryPlanner` — ``plan(spec)`` returns a
  :class:`~repro.api.planner.QueryPlan` with the chosen algorithm, a
  human-readable rationale and a cost estimate;
* :mod:`~repro.api.executor` — runs plans, including the batched
  ``execute_many`` path that amortises planning, index locality and
  scan work across queries.

``GNNEngine.execute`` / ``explain`` / ``execute_many`` wrap these pieces
for the common case of one engine-owned dataset.
"""

from repro.api.executor import (
    ExecutionContext,
    PreparedQuery,
    execute_batch,
    execute_spec,
    prepare,
)
from repro.api.planner import (
    AUTO_FMQM_MAX_BLOCKS,
    CostEstimate,
    QueryPlan,
    QueryPlanner,
)
from repro.api.registry import (
    AlgorithmInfo,
    available_algorithms,
    get_algorithm,
    register_algorithm,
    unregister_algorithm,
)
from repro.api.spec import AUTO, DISK, MEMORY, QuerySpec

__all__ = [
    "AUTO",
    "AUTO_FMQM_MAX_BLOCKS",
    "AlgorithmInfo",
    "CostEstimate",
    "DISK",
    "ExecutionContext",
    "MEMORY",
    "PreparedQuery",
    "QueryPlan",
    "QueryPlanner",
    "QuerySpec",
    "available_algorithms",
    "execute_batch",
    "execute_spec",
    "get_algorithm",
    "prepare",
    "register_algorithm",
    "unregister_algorithm",
]
