"""Reproduction of "Group Nearest Neighbor Queries" (Papadias et al., ICDE 2004).

Given a dataset ``P`` indexed by an R-tree and a group of query points
``Q``, a group nearest neighbor (GNN) query returns the ``k`` points of
``P`` with the smallest sum of Euclidean distances to all points of
``Q``.  This package implements the paper's six algorithms (MQM, SPM,
MBM for memory-resident ``Q``; GCP, F-MQM, F-MBM for disk-resident
``Q``), every substrate they depend on (R*-tree, incremental NN and
closest-pair search, Hilbert sorting, simulated disk I/O), and the full
experimental harness of Section 5.

Quickstart::

    import numpy as np
    from repro import GNNEngine

    data = np.random.default_rng(0).uniform(0, 100, size=(10_000, 2))
    engine = GNNEngine(data)
    meeting = engine.query([[10, 10], [20, 35], [40, 15]], k=3)
    for neighbor in meeting.neighbors:
        print(neighbor.record_id, neighbor.distance)
"""

from repro.core import (
    GNNEngine,
    GNNResult,
    GroupNeighbor,
    GroupQuery,
    QueryCost,
    aggregate_gnn,
    brute_force_gnn,
    fmbm,
    fmqm,
    gcp,
    mbm,
    mqm,
    spm,
)
from repro.geometry import MBR
from repro.rtree import RTree
from repro.storage import LRUBuffer, PointFile

__version__ = "1.0.0"

__all__ = [
    "GNNEngine",
    "GNNResult",
    "GroupNeighbor",
    "GroupQuery",
    "LRUBuffer",
    "MBR",
    "PointFile",
    "QueryCost",
    "RTree",
    "aggregate_gnn",
    "brute_force_gnn",
    "fmbm",
    "fmqm",
    "gcp",
    "mbm",
    "mqm",
    "spm",
    "__version__",
]
