"""Reproduction of "Group Nearest Neighbor Queries" (Papadias et al., ICDE 2004).

Given a dataset ``P`` indexed by an R-tree and a group of query points
``Q``, a group nearest neighbor (GNN) query returns the ``k`` points of
``P`` with the smallest sum of Euclidean distances to all points of
``Q``.  This package implements the paper's six algorithms (MQM, SPM,
MBM for memory-resident ``Q``; GCP, F-MQM, F-MBM for disk-resident
``Q``), every substrate they depend on (R*-tree, incremental NN and
closest-pair search, Hilbert sorting, simulated disk I/O), and the full
experimental harness of Section 5.

Queries are declarative: a :class:`~repro.api.QuerySpec` describes what
to retrieve, a capability-aware planner picks the right algorithm (with
an inspectable rationale via ``engine.explain``), and batches run
through ``engine.execute_many``, which amortises planning, index
locality and scan work across queries.

Quickstart::

    import numpy as np
    from repro import GNNEngine, QuerySpec

    data = np.random.default_rng(0).uniform(0, 100, size=(10_000, 2))
    engine = GNNEngine(data)
    spec = QuerySpec(group=[[10, 10], [20, 35], [40, 15]], k=3)
    print(engine.explain(spec).describe())   # planner's choice + rationale
    meeting = engine.execute(spec)
    for neighbor in meeting.neighbors:
        print(neighbor.record_id, neighbor.distance)
"""

# repro.core must be imported before repro.api: the engine (loaded by
# repro.core's __init__) pulls in the api package, and importing api
# first would re-enter it while partially initialised.
from repro.core import (
    GNNEngine,
    GNNResult,
    GroupNeighbor,
    GroupQuery,
    QueryCost,
    aggregate_gnn,
    brute_force_gnn,
    fmbm,
    fmqm,
    gcp,
    mbm,
    mqm,
    spm,
)
from repro.api import (
    AlgorithmInfo,
    QueryPlan,
    QueryPlanner,
    QuerySpec,
    available_algorithms,
    register_algorithm,
)
from repro.geometry import MBR
from repro.rtree import FlatRTree, RTree
from repro.storage import LRUBuffer, PointFile

__version__ = "2.0.0"

__all__ = [
    "AlgorithmInfo",
    "FlatRTree",
    "GNNEngine",
    "GNNResult",
    "GroupNeighbor",
    "GroupQuery",
    "LRUBuffer",
    "MBR",
    "PointFile",
    "QueryCost",
    "QueryPlan",
    "QueryPlanner",
    "QuerySpec",
    "RTree",
    "aggregate_gnn",
    "available_algorithms",
    "brute_force_gnn",
    "fmbm",
    "fmqm",
    "gcp",
    "mbm",
    "mqm",
    "register_algorithm",
    "spm",
    "__version__",
]
