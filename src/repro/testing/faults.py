"""Deterministic fault injection at named crash/fault points.

Durability claims are only as good as the failures they were tested
under, so the storage and serving layers are instrumented with **named
fault points** — fixed call sites that consult this module before (or
while) doing something a crash could tear.  In production nothing is
armed and every check is a single ``is None`` test; under test, a seeded
:class:`FaultPlan` is installed and the same code paths crash, tear
writes, drop frames or kill processes at exactly the scheduled moments.
The chaos conformance suite (``tests/test_chaos.py`` /
``tests/test_durability.py``) drives the whole recovery story through
these hooks, which is what lets it assert byte-identical recovery and
*exact* failure-handling counters rather than "it probably survived".

The registered points (callers may add more; these are the documented
surface the chaos suite sweeps):

=====================  ==================================================
``wal.append``         one write-ahead-log record write — supports
                       boundary crashes (full record on disk, then die)
                       and **torn writes** (a seeded prefix of the
                       record survives, then die).
``snapshot.rename``    :meth:`FlatRTree.save`'s publication rename; a
                       crash here leaves only the temp file, never a
                       half-written snapshot under the real name.
``manifest.write``     a generation/shard manifest publication; a crash
                       here leaves the previous manifest in place.
``node.recv``          one frame received by a shard node — supports
                       ``drop`` (swallow the frame, the peer times out),
                       ``delay`` (hold it), and ``kill`` (the node
                       process dies mid-conversation).
``worker.execute``     a serving worker about to execute a claimed
                       batch — ``kill`` here is a real worker-process
                       death the server must detect and fail over.
=====================  ==================================================

Faults fire by **hit count**: ``plan.kill("worker.execute", at=3)``
arms the third execution attempt, process-locally.  Plans are inherited
by ``fork``-started children (servers and shard nodes fork their
workers), which is how a plan armed in the test process kills a worker
three batches later — with the ``spawn`` start method children start
with no plan.  All bookkeeping is lock-protected and the RNG is seeded,
so a given plan misbehaves identically on every run.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from random import Random

#: The documented fault points (informational; arming an unknown name is
#: legal — it simply never fires unless some caller checks it).
FAULT_POINTS = (
    "wal.append",
    "snapshot.rename",
    "manifest.write",
    "node.recv",
    "worker.execute",
)


class FaultError(RuntimeError):
    """An injected (non-crash) failure at a fault point."""


class InjectedCrash(FaultError):
    """A simulated process death at a crash point.

    Raised instead of actually dying so in-process tests can observe the
    on-disk state "the crash" left behind and drive recovery over it; a
    handler other than the test harness catching it would falsify the
    simulation, so production code must never swallow it (``kill`` arms
    exist for the cases where a real process death is required).
    """


@dataclass
class _Arm:
    """One scheduled fault: fire ``times`` hits starting at hit ``at``."""

    kind: str  # crash | kill | error | drop | delay | torn
    at: int = 1
    times: int = 1
    seconds: float = 0.0
    keep_bytes: int | None = None
    message: str = ""
    fired: int = 0

    def covers(self, hit: int) -> bool:
        if hit < self.at:
            return False
        return self.times < 0 or hit < self.at + self.times


@dataclass
class FaultPlan:
    """A seeded schedule of faults, armed per named point.

    The builder methods (:meth:`crash`, :meth:`kill`, :meth:`fail`,
    :meth:`drop`, :meth:`delay`, :meth:`torn`) each arm one fault and
    return ``self`` for chaining.  ``at`` is the 1-based hit index the
    fault starts firing on, ``times`` how many consecutive hits fire
    (``-1`` = forever).  :attr:`hits` and :attr:`fired` expose the
    per-point bookkeeping the chaos suite asserts against.
    """

    seed: int = 0
    hits: dict = field(default_factory=dict)
    fired: dict = field(default_factory=dict)

    def __post_init__(self):
        self.random = Random(self.seed)
        self._arms: dict[str, list[_Arm]] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # arming
    # ------------------------------------------------------------------
    def _arm(self, point: str, arm: _Arm) -> "FaultPlan":
        if arm.at < 1:
            raise ValueError("at is a 1-based hit index")
        with self._lock:
            self._arms.setdefault(point, []).append(arm)
        return self

    def crash(self, point: str, at: int = 1, times: int = 1) -> "FaultPlan":
        """Raise :class:`InjectedCrash` (simulated death; state observable)."""
        return self._arm(point, _Arm("crash", at, times))

    def kill(self, point: str, at: int = 1, times: int = 1) -> "FaultPlan":
        """``os._exit`` the hitting process — a *real* death, for forked children."""
        return self._arm(point, _Arm("kill", at, times))

    def fail(self, point: str, at: int = 1, times: int = 1,
             message: str = "") -> "FaultPlan":
        """Raise :class:`FaultError` (a recoverable, handled failure)."""
        return self._arm(point, _Arm("error", at, times, message=message))

    def drop(self, point: str, at: int = 1, times: int = 1) -> "FaultPlan":
        """Swallow a frame at a frame point (the peer never hears back)."""
        return self._arm(point, _Arm("drop", at, times))

    def delay(self, point: str, seconds: float, at: int = 1,
              times: int = 1) -> "FaultPlan":
        """Stall a point for ``seconds`` before proceeding normally."""
        return self._arm(point, _Arm("delay", at, times, seconds=float(seconds)))

    def torn(self, point: str, at: int = 1, keep_bytes: int | None = None) -> "FaultPlan":
        """Tear a byte write: a prefix survives, then the process "dies".

        ``keep_bytes`` pins the surviving prefix length; by default a
        seeded length in ``[1, len(data) - 1]`` is chosen at fire time,
        so sweeps with different seeds tear at different offsets while
        any single seed reproduces exactly.
        """
        return self._arm(point, _Arm("torn", at, 1, keep_bytes=keep_bytes))

    # ------------------------------------------------------------------
    # polling (used by the module-level check functions)
    # ------------------------------------------------------------------
    def poll(self, point: str) -> _Arm | None:
        """Count one hit of ``point``; return the arm due to fire, if any."""
        with self._lock:
            hit = self.hits.get(point, 0) + 1
            self.hits[point] = hit
            for arm in self._arms.get(point, ()):
                if arm.covers(hit):
                    arm.fired += 1
                    self.fired[point] = self.fired.get(point, 0) + 1
                    return arm
        return None

    def torn_length(self, arm: _Arm, total: int) -> int:
        """The surviving prefix length of a torn write (seeded when unpinned)."""
        if arm.keep_bytes is not None:
            return max(0, min(int(arm.keep_bytes), total - 1))
        if total <= 1:
            return 0
        with self._lock:
            return self.random.randint(1, total - 1)


# ----------------------------------------------------------------------
# the active plan (process-global, inherited across fork)
# ----------------------------------------------------------------------
_active: FaultPlan | None = None


def is_active() -> bool:
    """Whether any fault plan is installed in this process."""
    return _active is not None


def install(plan: FaultPlan) -> FaultPlan:
    """Make ``plan`` the process's active plan (replacing any previous one)."""
    global _active
    _active = plan
    return plan


def clear() -> None:
    """Deactivate fault injection (the production state)."""
    global _active
    _active = None


@contextmanager
def active(plan: FaultPlan):
    """Context manager: install ``plan`` for the block, then clear it."""
    install(plan)
    try:
        yield plan
    finally:
        clear()


def _die(point: str) -> None:
    # A real, unhandleable process death: no atexit hooks, no flushing —
    # exactly what a SIGKILL mid-write leaves behind.
    os._exit(17)


def fire(point: str) -> None:
    """Check a plain crash/fault point (no bytes, no frames involved).

    No-op without an active plan or when nothing is due; otherwise
    crashes (:class:`InjectedCrash`), kills the process, raises
    :class:`FaultError`, or sleeps out a delay arm.
    """
    plan = _active
    if plan is None:
        return
    arm = plan.poll(point)
    if arm is None:
        return
    if arm.kind == "crash":
        raise InjectedCrash(f"injected crash at {point!r}")
    if arm.kind == "kill":
        _die(point)
    if arm.kind == "error":
        raise FaultError(arm.message or f"injected fault at {point!r}")
    if arm.kind == "delay":
        time.sleep(arm.seconds)
        return
    raise FaultError(
        f"arm kind {arm.kind!r} cannot fire at plain point {point!r}"
    )


def filter_write(point: str, data: bytes) -> tuple[bytes, bool]:
    """Check a byte-write point; returns ``(bytes_to_write, crash_after)``.

    The caller writes (and flushes) the returned bytes, then — when
    ``crash_after`` is set — must raise :class:`InjectedCrash` via
    :func:`crash_after_write`.  A ``crash`` arm keeps the full record
    and dies at the boundary; a ``torn`` arm keeps a seeded prefix.
    """
    plan = _active
    if plan is None:
        return data, False
    arm = plan.poll(point)
    if arm is None:
        return data, False
    if arm.kind == "crash":
        return data, True
    if arm.kind == "torn":
        return data[: plan.torn_length(arm, len(data))], True
    if arm.kind == "kill":
        return data, True  # caller flushes, then crash_after_write kills
    if arm.kind == "error":
        raise FaultError(arm.message or f"injected fault at {point!r}")
    if arm.kind == "delay":
        time.sleep(arm.seconds)
        return data, False
    raise FaultError(f"arm kind {arm.kind!r} cannot fire at write point {point!r}")


def crash_after_write(point: str) -> None:
    """Finish a ``crash_after`` write: die for real under a kill arm,
    otherwise raise :class:`InjectedCrash`."""
    plan = _active
    if plan is not None:
        for arm in plan._arms.get(point, ()):
            if arm.kind == "kill" and arm.fired:
                _die(point)
    raise InjectedCrash(f"injected crash after write at {point!r}")


def frame_action(point: str):
    """Check a frame point; returns ``None``, ``("drop",)`` or ``("delay", s)``.

    ``kill`` arms die on the spot (the node process vanishes
    mid-conversation); ``crash``/``error`` arms raise.  The caller
    handles ``drop`` by swallowing the frame and ``delay`` by sleeping
    *asynchronously* — a frame point lives on an event loop, so the
    delay must not block it.
    """
    plan = _active
    if plan is None:
        return None
    arm = plan.poll(point)
    if arm is None:
        return None
    if arm.kind == "drop":
        return ("drop",)
    if arm.kind == "delay":
        return ("delay", arm.seconds)
    if arm.kind == "kill":
        _die(point)
    if arm.kind == "crash":
        raise InjectedCrash(f"injected crash at {point!r}")
    raise FaultError(arm.message or f"injected fault at {point!r}")
