"""Deterministic testing instrumentation (fault injection)."""

from repro.testing.faults import (
    FAULT_POINTS,
    FaultError,
    FaultPlan,
    InjectedCrash,
    active,
    clear,
    filter_write,
    fire,
    frame_action,
    install,
    is_active,
)

__all__ = [
    "FAULT_POINTS",
    "FaultError",
    "FaultPlan",
    "InjectedCrash",
    "active",
    "clear",
    "filter_write",
    "fire",
    "frame_action",
    "install",
    "is_active",
]
