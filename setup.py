"""Setup shim.

The project is fully described by ``pyproject.toml``; this file exists so
that editable installs keep working on environments whose setuptools
predates PEP 660 editable-wheel support (no ``wheel`` package available,
as in the offline evaluation container).
"""

from setuptools import setup

setup()
