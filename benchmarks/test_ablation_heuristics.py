"""Ablation — the value of Heuristic 3 inside MBM (footnote 3 of the paper).

The paper states: "We implemented a version of MBM with only heuristic 2
and we found it inferior to SPM.  Nevertheless, heuristic 2 is useful
(in conjunction with heuristic 3) because it reduces the CPU time."
This benchmark reproduces that comparison: full MBM vs. MBM restricted
to Heuristic 2 vs. SPM, on the same workloads.
"""

import pytest

from repro.datasets.workload import WorkloadSpec

from helpers import run_memory_benchmark

ALGORITHMS = ("MBM", "MBM-H2", "SPM")
N_STEPS = range(3)


@pytest.mark.parametrize("n_index", N_STEPS)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_ablation_mbm_heuristics(benchmark, datasets, scale, n_index, algorithm):
    if n_index >= len(scale.cardinalities):
        pytest.skip("scale defines fewer cardinality steps")
    n = scale.cardinalities[n_index]
    points, tree = datasets["pp"]
    spec = WorkloadSpec(
        n=n,
        mbr_fraction=scale.fixed_mbr_fraction,
        k=scale.fixed_k,
        queries=scale.queries_per_setting,
    )
    averages = run_memory_benchmark(benchmark, tree, points, spec, algorithm)
    benchmark.extra_info["n"] = n
