"""Figure 5.1 — memory-resident cost vs. query cardinality n (M=8%, k=8).

Paper's finding: MQM is the worst method and degrades sharply as ``n``
grows (it runs one incremental NN query per query point); SPM and MBM
perform a single traversal, so their node accesses are nearly flat in
``n``; MBM is the overall winner.  Both panels (node accesses, CPU) of
both datasets (PP, TS) come from these benchmarks; the same sweep is
also produced by ``python -m repro.bench fig5_1_pp`` / ``fig5_1_ts``.
"""

import pytest

from repro.datasets.workload import WorkloadSpec

from helpers import run_memory_benchmark

ALGORITHMS = ("MQM", "SPM", "MBM")
#: x-axis positions, expressed as indices into scale.cardinalities so the
#: same benchmark ids work at every scale.
N_STEPS = range(5)


@pytest.mark.parametrize("dataset", ["pp", "ts"])
@pytest.mark.parametrize("n_index", N_STEPS)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig5_1_cost_vs_cardinality(benchmark, datasets, scale, dataset, n_index, algorithm):
    if n_index >= len(scale.cardinalities):
        pytest.skip("scale defines fewer cardinality steps")
    n = scale.cardinalities[n_index]
    points, tree = datasets[dataset]
    spec = WorkloadSpec(
        n=n,
        mbr_fraction=scale.fixed_mbr_fraction,
        k=scale.fixed_k,
        queries=scale.queries_per_setting,
    )
    averages = run_memory_benchmark(benchmark, tree, points, spec, algorithm)
    benchmark.extra_info["n"] = n
    benchmark.extra_info["dataset"] = dataset.upper()
    assert averages.queries == scale.queries_per_setting
