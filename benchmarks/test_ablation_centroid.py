"""Ablation — SPM's sensitivity to the centroid approximation.

The paper computes the query centroid with gradient descent and notes
that any approximation keeps SPM correct (Lemma 1 holds for arbitrary
reference points) — a better centroid only tightens Heuristic 1.  This
benchmark quantifies that trade-off by running SPM with three centroid
backends: gradient descent (the paper's choice), Weiszfeld's algorithm
and the plain arithmetic mean.
"""

import pytest

from repro.datasets.workload import WorkloadSpec

from helpers import run_memory_benchmark

ALGORITHMS = ("SPM", "SPM-weiszfeld", "SPM-mean")
N_STEPS = range(3)


@pytest.mark.parametrize("n_index", N_STEPS)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_ablation_spm_centroid(benchmark, datasets, scale, n_index, algorithm):
    if n_index >= len(scale.cardinalities):
        pytest.skip("scale defines fewer cardinality steps")
    n = scale.cardinalities[n_index]
    points, tree = datasets["pp"]
    spec = WorkloadSpec(
        n=n,
        mbr_fraction=scale.fixed_mbr_fraction,
        k=scale.fixed_k,
        queries=scale.queries_per_setting,
    )
    averages = run_memory_benchmark(benchmark, tree, points, spec, algorithm)
    benchmark.extra_info["n"] = n
