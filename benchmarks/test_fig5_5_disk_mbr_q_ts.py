"""Figure 5.5 — disk-resident Q=TS over P=PP, cost vs. query MBR area (k=8).

The roles of the datasets are swapped relative to Figure 5.4: the query
set is now the (roughly 8x larger) TS-like dataset, so it splits into
many memory-sized blocks.  Paper's finding: F-MBM clearly wins, because
F-MQM must run and combine one group search per block; GCP is omitted
(as in the paper) because its cost is excessive in this configuration.
"""

import pytest

from repro.datasets.workload import scale_into_workspace

from helpers import run_disk_benchmark

ALGORITHMS = ("F-MQM", "F-MBM")
M_STEPS = range(5)


@pytest.mark.parametrize("m_index", M_STEPS)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig5_5_disk_cost_vs_mbr_area(
    benchmark, datasets, scale, m_index, algorithm
):
    if m_index >= len(scale.mbr_fractions):
        pytest.skip("scale defines fewer MBR-size steps")
    fraction = scale.mbr_fractions[m_index]
    pp_points, pp_tree = datasets["pp"]
    ts_points, _ = datasets["ts"]
    query_points = scale_into_workspace(ts_points, pp_points, fraction)
    averages = run_disk_benchmark(benchmark, pp_tree, query_points, algorithm, scale)
    benchmark.extra_info["mbr_fraction"] = fraction
    benchmark.extra_info["P"] = "PP"
    benchmark.extra_info["Q"] = "TS"
    assert averages.queries == 1
