"""Shared fixtures for the benchmark suite.

The benchmarks regenerate every figure of the paper's evaluation
(Section 5).  By default they run at the ``smoke`` scale so the whole
suite finishes in CI time; set ``REPRO_BENCH_SCALE=quick`` (or ``paper``)
to run closer to the paper's sizes.  EXPERIMENTS.md records the
shape-level comparison against the paper.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.config import get_scale
from repro.datasets.real_like import pp_like, ts_like
from repro.rtree.tree import RTree


@pytest.fixture(scope="session")
def scale():
    """Benchmark scale, selected by the REPRO_BENCH_SCALE environment variable."""
    return get_scale(os.environ.get("REPRO_BENCH_SCALE", "smoke"))


@pytest.fixture(scope="session")
def pp_points(scale):
    """The PP-like dataset (clustered 'populated places' stand-in)."""
    return pp_like(scale.pp_size)


@pytest.fixture(scope="session")
def ts_points(scale):
    """The TS-like dataset (stream-centroid stand-in, ~8x larger than PP)."""
    return ts_like(scale.ts_size)


@pytest.fixture(scope="session")
def pp_tree(pp_points, scale):
    """R*-tree over the PP-like dataset."""
    return RTree.bulk_load(pp_points, capacity=scale.node_capacity)


@pytest.fixture(scope="session")
def ts_tree(ts_points, scale):
    """R*-tree over the TS-like dataset."""
    return RTree.bulk_load(ts_points, capacity=scale.node_capacity)


@pytest.fixture(scope="session")
def datasets(pp_points, ts_points, pp_tree, ts_tree):
    """Convenience bundle mapping dataset names to (points, tree)."""
    return {
        "pp": (pp_points, pp_tree),
        "ts": (ts_points, ts_tree),
    }
