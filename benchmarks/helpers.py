"""Helpers shared by the benchmark modules.

Each benchmark measures one *setting* of one figure: a workload of query
groups (memory-resident figures 5.1-5.3) or one placement of a
disk-resident query dataset (figures 5.4-5.7), executed with a single
algorithm.  The wall-clock time is what pytest-benchmark reports; the
paper's other metric (average R-tree node accesses) is attached to
``benchmark.extra_info`` so both series of every figure come out of one
run (``pytest benchmarks/ --benchmark-only --benchmark-verbose``).
"""

from __future__ import annotations

import numpy as np

from repro.bench.runner import run_disk_setting, run_memory_setting
from repro.datasets.workload import WorkloadSpec, generate_workload


def run_memory_benchmark(benchmark, tree, data_points, spec: WorkloadSpec, algorithm: str):
    """Benchmark one memory-resident workload setting with one algorithm."""
    groups = generate_workload(data_points, spec, seed=17)

    def execute():
        return run_memory_setting(tree, groups, k=spec.k, algorithms=(algorithm,))

    result = benchmark.pedantic(execute, rounds=1, iterations=1)
    averages = result.averages[algorithm]
    benchmark.extra_info["node_accesses"] = round(averages.node_accesses, 1)
    benchmark.extra_info["cpu_time_per_query"] = averages.cpu_time
    benchmark.extra_info["queries"] = averages.queries
    assert averages.node_accesses > 0
    return averages


def run_disk_benchmark(
    benchmark,
    tree,
    query_points: np.ndarray,
    algorithm: str,
    scale,
    k: int | None = None,
):
    """Benchmark one disk-resident setting with one algorithm."""

    def execute():
        return run_disk_setting(
            tree,
            query_points,
            k=k if k is not None else scale.fixed_k,
            algorithms=(algorithm,),
            block_pages=scale.block_pages,
            query_tree_capacity=scale.node_capacity,
            gcp_max_pairs=scale.gcp_max_pairs,
        )

    result = benchmark.pedantic(execute, rounds=1, iterations=1)
    averages = result.averages[algorithm]
    benchmark.extra_info["node_accesses"] = round(averages.node_accesses, 1)
    benchmark.extra_info["page_reads"] = round(averages.page_reads, 1)
    if averages.notes:
        benchmark.extra_info["notes"] = averages.notes
    assert averages.node_accesses > 0
    return averages
