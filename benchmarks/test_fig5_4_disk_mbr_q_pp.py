"""Figure 5.4 — disk-resident Q=PP over P=TS, cost vs. query MBR area (k=8).

The query dataset (PP-like) is affinely mapped into a centred
sub-workspace of the data covering 2%-32% of its area.  Paper's finding:
GCP is the worst method and blows up (or fails to terminate) as the
query workspace grows; F-MQM wins on CPU because PP splits into only a
few memory-sized blocks, so few per-block searches need to be combined.
"""

import pytest

from repro.datasets.workload import scale_into_workspace

from helpers import run_disk_benchmark

ALGORITHMS = ("GCP", "F-MQM", "F-MBM")
M_STEPS = range(5)


@pytest.mark.parametrize("m_index", M_STEPS)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig5_4_disk_cost_vs_mbr_area(
    benchmark, datasets, scale, m_index, algorithm
):
    if m_index >= len(scale.mbr_fractions):
        pytest.skip("scale defines fewer MBR-size steps")
    fraction = scale.mbr_fractions[m_index]
    pp_points, _ = datasets["pp"]
    ts_points, ts_tree = datasets["ts"]
    query_points = scale_into_workspace(pp_points, ts_points, fraction)
    averages = run_disk_benchmark(benchmark, ts_tree, query_points, algorithm, scale)
    benchmark.extra_info["mbr_fraction"] = fraction
    benchmark.extra_info["P"] = "TS"
    benchmark.extra_info["Q"] = "PP"
    assert averages.queries == 1
