"""Figure 5.6 — disk-resident Q=PP over P=TS, cost vs. workspace overlap (k=8).

Both workspaces have equal size; the query workspace is shifted
diagonally so that its overlap with the data workspace varies from 0%
(disjoint, corner to corner) to 100% (coincident).  Paper's finding: the
cost of every algorithm grows quickly with the overlap; F-MQM wins up to
roughly 50% overlap (with few query blocks the best neighbors concentrate
near the shared corner), and GCP is far worse everywhere, eventually
failing to terminate.
"""

import pytest

from repro.datasets.workload import place_with_overlap

from helpers import run_disk_benchmark

ALGORITHMS = ("GCP", "F-MQM", "F-MBM")
OVERLAP_STEPS = range(5)


@pytest.mark.parametrize("overlap_index", OVERLAP_STEPS)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig5_6_disk_cost_vs_overlap(
    benchmark, datasets, scale, overlap_index, algorithm
):
    if overlap_index >= len(scale.overlap_fractions):
        pytest.skip("scale defines fewer overlap steps")
    overlap = scale.overlap_fractions[overlap_index]
    pp_points, _ = datasets["pp"]
    ts_points, ts_tree = datasets["ts"]
    query_points = place_with_overlap(pp_points, ts_points, overlap)
    averages = run_disk_benchmark(benchmark, ts_tree, query_points, algorithm, scale)
    benchmark.extra_info["overlap"] = overlap
    benchmark.extra_info["P"] = "TS"
    benchmark.extra_info["Q"] = "PP"
    assert averages.queries == 1
