"""Figure 5.3 — memory-resident cost vs. number of retrieved neighbors k (n=64, M=8%).

Paper's finding: k barely affects any method, because the extra neighbors
are usually found in nodes the search visits anyway; the relative
ordering (MBM best, then SPM, then MQM) is unchanged.
"""

import pytest

from repro.datasets.workload import WorkloadSpec

from helpers import run_memory_benchmark

ALGORITHMS = ("MQM", "SPM", "MBM")
K_STEPS = range(6)


@pytest.mark.parametrize("dataset", ["pp", "ts"])
@pytest.mark.parametrize("k_index", K_STEPS)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig5_3_cost_vs_k(benchmark, datasets, scale, dataset, k_index, algorithm):
    if k_index >= len(scale.k_values):
        pytest.skip("scale defines fewer k steps")
    k = scale.k_values[k_index]
    points, tree = datasets[dataset]
    spec = WorkloadSpec(
        n=scale.fixed_n,
        mbr_fraction=scale.fixed_mbr_fraction,
        k=k,
        queries=scale.queries_per_setting,
    )
    averages = run_memory_benchmark(benchmark, tree, points, spec, algorithm)
    benchmark.extra_info["k"] = k
    benchmark.extra_info["dataset"] = dataset.upper()
    assert averages.queries == scale.queries_per_setting
