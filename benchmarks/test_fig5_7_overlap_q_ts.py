"""Figure 5.7 — disk-resident Q=TS over P=PP, cost vs. workspace overlap (k=8).

Same placement as Figure 5.6 but with the large TS-like dataset as the
query set.  Paper's finding: with many query blocks F-MBM is the clear
winner at every overlap; GCP is omitted (excessive cost), as in the
paper.
"""

import pytest

from repro.datasets.workload import place_with_overlap

from helpers import run_disk_benchmark

ALGORITHMS = ("F-MQM", "F-MBM")
OVERLAP_STEPS = range(5)


@pytest.mark.parametrize("overlap_index", OVERLAP_STEPS)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig5_7_disk_cost_vs_overlap(
    benchmark, datasets, scale, overlap_index, algorithm
):
    if overlap_index >= len(scale.overlap_fractions):
        pytest.skip("scale defines fewer overlap steps")
    overlap = scale.overlap_fractions[overlap_index]
    pp_points, pp_tree = datasets["pp"]
    ts_points, _ = datasets["ts"]
    query_points = place_with_overlap(ts_points, pp_points, overlap)
    averages = run_disk_benchmark(benchmark, pp_tree, query_points, algorithm, scale)
    benchmark.extra_info["overlap"] = overlap
    benchmark.extra_info["P"] = "PP"
    benchmark.extra_info["Q"] = "TS"
    assert averages.queries == 1
