"""Smoke benchmarks guarding the mutable write path.

Selected with ``-k smoke`` like the kernel smokes: a seconds-long
subset that fails loudly if ingest regresses to the old
vstack-per-insert O(n²) behaviour or if answering from a dirty overlay
loses its near-frozen latency, without slowing the main test job down.
"""

from __future__ import annotations

import time

import numpy as np

from repro.api.spec import QuerySpec
from repro.core.engine import GNNEngine
from repro.core.store import PointStore

SEED = 20040401

#: 10k appends must stay amortised-O(1).  The old vstack path copies the
#: whole buffer per insert — quadratic, and ~50x slower at this size —
#: so comparing the second half of the run against the first half at a
#: generous factor catches the regression without trusting absolute
#: wall-clock numbers on shared CI hardware.
APPEND_COUNT = 10_000
MAX_SECOND_HALF_RATIO = 6.0

#: A dirty overlay at ~10% writes must answer within a small factor of
#: the frozen snapshot (the acceptance budget is 1.5x; 4x here leaves
#: headroom for CI noise while still catching an accidental fallback to
#: rebuild-per-query or per-query delta traversals).
MAX_OVERLAY_OVERHEAD = 4.0


def _timed_appends(store: PointStore, count: int) -> float:
    points = np.random.default_rng(SEED).uniform(0, 1000, size=(count, 2))
    started = time.perf_counter()
    for row in points:
        store.append(row)
    return time.perf_counter() - started


def test_smoke_point_store_appends_are_amortised():
    first = PointStore(dims=2)
    first_half = _timed_appends(first, APPEND_COUNT // 2)
    # Same store keeps growing: the second half starts 5k rows deep.  A
    # quadratic path makes the deeper half several times slower; the
    # amortised buffer keeps the halves comparable.
    second_half = _timed_appends(first, APPEND_COUNT // 2)
    assert len(first) == APPEND_COUNT
    assert second_half <= MAX_SECOND_HALF_RATIO * max(first_half, 1e-4), (
        f"second 5k appends took {second_half:.4f}s vs {first_half:.4f}s — "
        "ingest is no longer amortised O(1)"
    )


def test_smoke_engine_ingest_stays_linear():
    # Per-insert cost on the engine is dominated by the object R-tree
    # (milliseconds of Python), so the guard is relative, not absolute:
    # the deeper half of the run must not cost multiple times the
    # shallow half, which is what any per-insert full-dataset copy or
    # per-insert snapshot rebuild produces.
    rng = np.random.default_rng(SEED + 1)
    engine = GNNEngine(rng.uniform(0, 1000, size=(500, 2)), capacity=16)
    engine.snapshot()  # writes land in the overlay, never invalidating it

    def _timed(count: int) -> float:
        rows = rng.uniform(0, 1000, size=(count, 2))
        started = time.perf_counter()
        for row in rows:
            engine.insert(row)
        return time.perf_counter() - started

    first_half = _timed(600)
    second_half = _timed(600)
    assert len(engine) == 1700
    assert engine.dirty  # still the original snapshot + a fat overlay
    assert second_half <= MAX_SECOND_HALF_RATIO * max(first_half, 1e-3), (
        f"second 600 inserts took {second_half:.2f}s vs {first_half:.2f}s — "
        "engine ingest is no longer near-linear"
    )


def test_smoke_dirty_overlay_latency_stays_near_frozen():
    rng = np.random.default_rng(SEED + 2)
    data = rng.uniform(0, 1000, size=(1200, 2))
    dirty = GNNEngine.from_index(GNNEngine(data, capacity=50).snapshot())
    for rid in rng.choice(1200, size=60, replace=False):
        assert dirty.delete(data[int(rid)], int(rid))
    for _ in range(60):
        dirty.insert(rng.uniform(0, 1000, size=2))
    frozen = GNNEngine.from_index(dirty.overlay.compact(capacity=50))
    specs = [
        QuerySpec(group=rng.uniform(200, 800, size=(8, 2)), k=8, algorithm=name)
        for name in ("mqm", "spm", "mbm")
        for _ in range(4)
    ]
    for spec in specs:  # warm both paths
        assert dirty.execute(spec).record_ids() == frozen.execute(spec).record_ids()

    def _total(engine) -> float:
        started = time.perf_counter()
        for spec in specs:
            engine.execute(spec)
        return time.perf_counter() - started

    dirty_total = min(_total(dirty) for _ in range(3))
    frozen_total = min(_total(frozen) for _ in range(3))
    assert dirty_total <= MAX_OVERLAY_OVERHEAD * frozen_total, (
        f"dirty overlay {dirty_total * 1e3:.1f}ms vs frozen "
        f"{frozen_total * 1e3:.1f}ms — overlay overhead regressed"
    )
