"""Figure 5.2 — memory-resident cost vs. size M of the query MBR (n=64, k=8).

Paper's finding: every method degrades as the query MBR grows (MQM's
threshold rises, the pruning bounds of Heuristics 1-3 loosen), and the
ordering MBM < SPM < MQM holds throughout.
"""

import pytest

from repro.datasets.workload import WorkloadSpec

from helpers import run_memory_benchmark

ALGORITHMS = ("MQM", "SPM", "MBM")
M_STEPS = range(5)


@pytest.mark.parametrize("dataset", ["pp", "ts"])
@pytest.mark.parametrize("m_index", M_STEPS)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig5_2_cost_vs_mbr_size(benchmark, datasets, scale, dataset, m_index, algorithm):
    if m_index >= len(scale.mbr_fractions):
        pytest.skip("scale defines fewer MBR-size steps")
    fraction = scale.mbr_fractions[m_index]
    points, tree = datasets[dataset]
    spec = WorkloadSpec(
        n=scale.fixed_n,
        mbr_fraction=fraction,
        k=scale.fixed_k,
        queries=scale.queries_per_setting,
    )
    averages = run_memory_benchmark(benchmark, tree, points, spec, algorithm)
    benchmark.extra_info["mbr_fraction"] = fraction
    benchmark.extra_info["dataset"] = dataset.upper()
    assert averages.queries == scale.queries_per_setting
