"""Smoke benchmarks guarding the vectorised kernel layer.

Selected with ``-k smoke`` (the CI job runs exactly that): a
seconds-long subset that fails loudly if the kernel layer regresses to
per-point Python-loop speed or drifts from the scalar arithmetic,
without slowing the main test job down.
"""

from __future__ import annotations

import time

import numpy as np

from repro.datasets.workload import WorkloadSpec, generate_workload
from repro.geometry import kernels
from repro.geometry.distance import group_distance
from repro.bench.runner import run_memory_setting

#: The vectorised kernel is ~50-100x faster than the scalar loop on this
#: shape; 3x leaves a huge margin against CI noise while still catching
#: any fallback to per-point evaluation.
MIN_SPEEDUP = 3.0


def _best_of(repeats, fn):
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def test_smoke_kernel_beats_scalar_loop(benchmark):
    """One kernel call over a leaf-sized array must beat the scalar loop."""
    rng = np.random.default_rng(123)
    candidates = rng.uniform(0, 1000, size=(2_000, 2))
    group = rng.uniform(0, 1000, size=(64, 2))
    scalar_subset = candidates[:200]

    scalar_time = _best_of(
        3, lambda: [group_distance(p, group) for p in scalar_subset]
    ) / scalar_subset.shape[0]
    kernel_time = benchmark(
        lambda: kernels.aggregate_distances(candidates, group)
    )  # pytest-benchmark returns the function result, timings go to the report
    kernel_per_point = _best_of(3, lambda: kernels.aggregate_distances(candidates, group))
    kernel_per_point /= candidates.shape[0]

    speedup = scalar_time / kernel_per_point
    benchmark.extra_info["speedup_vs_scalar"] = round(speedup, 1)
    assert speedup >= MIN_SPEEDUP, (
        f"kernel path is only {speedup:.1f}x faster than the scalar loop "
        f"(expected >= {MIN_SPEEDUP}x) — vectorisation has regressed"
    )
    # and it must still be the *same* arithmetic
    assert np.array_equal(
        kernels.aggregate_distances(scalar_subset, group),
        [group_distance(p, group) for p in scalar_subset],
    )


def test_smoke_memory_algorithms_cross_check(benchmark, datasets, scale):
    """SPM/MBM at the paper's fixed cardinality, answers cross-checked.

    ``run_memory_setting`` raises if the algorithms disagree, so this
    doubles as an end-to-end equivalence smoke test of the kernelised
    traversals at benchmark scale.
    """
    points, tree = datasets["pp"]
    spec = WorkloadSpec(
        n=64, mbr_fraction=scale.fixed_mbr_fraction, k=scale.fixed_k, queries=2
    )
    groups = generate_workload(points, spec, seed=17)

    result = benchmark.pedantic(
        lambda: run_memory_setting(tree, groups, k=spec.k, algorithms=("SPM", "MBM")),
        rounds=1,
        iterations=1,
    )
    for name, averages in result.averages.items():
        assert averages.node_accesses > 0, name
        benchmark.extra_info[f"{name}_node_accesses"] = round(averages.node_accesses, 1)
        benchmark.extra_info[f"{name}_cpu_per_query"] = averages.cpu_time
