"""Smoke benchmarks guarding the vectorised kernel layer.

Selected with ``-k smoke`` (the CI job runs exactly that): a
seconds-long subset that fails loudly if the kernel layer regresses to
per-point Python-loop speed or drifts from the scalar arithmetic,
without slowing the main test job down.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.mbm import mbm
from repro.core.mqm import mqm
from repro.core.spm import spm
from repro.core.types import GroupQuery
from repro.datasets.workload import WorkloadSpec, generate_workload
from repro.geometry import kernels
from repro.geometry.distance import group_distance
from repro.bench.runner import run_memory_setting
from repro.rtree.flat import FlatRTree
from repro.rtree.traversal import incremental_nearest
from repro.rtree.tree import RTree

#: The vectorised kernel is ~50-100x faster than the scalar loop on this
#: shape; 3x leaves a huge margin against CI noise while still catching
#: any fallback to per-point evaluation.
MIN_SPEEDUP = 3.0

#: Floor on incremental-stream throughput (neighbors/second).  With
#: plain-tuple heap items the object-tree stream sustains several
#: hundred thousand per second; a regression back to per-item object
#: wrappers (or strings in the heap) cuts that by an order of
#: magnitude, while CI noise does not get near a 10x swing.
MIN_STREAM_THROUGHPUT = 30_000.0

#: Floor on the flat snapshot's advantage for SPM/MBM in the fig-5.1
#: smoke setting.  BENCH_quick.json records the measured ratio (>= 2x
#: on the reference machine); 1.5x keeps a wide margin against CI noise
#: while still failing loudly if the flat hot path regresses to
#: object-tree speed.
MIN_FLAT_SPEEDUP = 1.5


def _best_of(repeats, fn):
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def test_smoke_kernel_beats_scalar_loop(benchmark):
    """One kernel call over a leaf-sized array must beat the scalar loop."""
    rng = np.random.default_rng(123)
    candidates = rng.uniform(0, 1000, size=(2_000, 2))
    group = rng.uniform(0, 1000, size=(64, 2))
    scalar_subset = candidates[:200]

    scalar_time = _best_of(
        3, lambda: [group_distance(p, group) for p in scalar_subset]
    ) / scalar_subset.shape[0]
    kernel_time = benchmark(
        lambda: kernels.aggregate_distances(candidates, group)
    )  # pytest-benchmark returns the function result, timings go to the report
    kernel_per_point = _best_of(3, lambda: kernels.aggregate_distances(candidates, group))
    kernel_per_point /= candidates.shape[0]

    speedup = scalar_time / kernel_per_point
    benchmark.extra_info["speedup_vs_scalar"] = round(speedup, 1)
    assert speedup >= MIN_SPEEDUP, (
        f"kernel path is only {speedup:.1f}x faster than the scalar loop "
        f"(expected >= {MIN_SPEEDUP}x) — vectorisation has regressed"
    )
    # and it must still be the *same* arithmetic
    assert np.array_equal(
        kernels.aggregate_distances(scalar_subset, group),
        [group_distance(p, group) for p in scalar_subset],
    )


def test_smoke_traversal_stream_tuples(benchmark):
    """Profile-guard for the plain-tuple heap items in the traversals.

    Consuming a full incremental stream is pure heap-and-yield work, so
    its throughput directly measures the per-item cost of the heap
    entries.  Both the object tree and the flat snapshot must clear the
    floor, and both must emit the identical stream.
    """
    rng = np.random.default_rng(321)
    points = rng.uniform(0, 1000, size=(10_000, 2))
    tree = RTree.bulk_load(points, capacity=50)
    flat = FlatRTree.from_tree(tree)
    query = [500.0, 500.0]

    def consume(index):
        count = 0
        for _ in incremental_nearest(index, query):
            count += 1
        return count

    consume(tree)  # warm-up
    benchmark(lambda: consume(flat))
    for label, index in (("object", tree), ("flat", flat)):
        started = time.perf_counter()
        count = consume(index)
        elapsed = time.perf_counter() - started
        throughput = count / elapsed
        benchmark.extra_info[f"{label}_neighbors_per_second"] = round(throughput)
        assert throughput >= MIN_STREAM_THROUGHPUT, (
            f"{label} incremental stream emits only {throughput:,.0f} neighbors/s "
            f"(expected >= {MIN_STREAM_THROUGHPUT:,.0f}) — heap items have regressed"
        )
    object_ids = [n.record_id for n in incremental_nearest(tree, query)]
    flat_ids = [n.record_id for n in incremental_nearest(flat, query)]
    assert object_ids == flat_ids


def test_smoke_flat_snapshot_speedup(benchmark, datasets, scale):
    """Flat MQM/SPM/MBM must stay well ahead of the object tree (fig-5.1, n=64).

    The answers and counters must also match exactly — a fast wrong
    answer is a bug, not a speedup.  The measured ratios are recorded in
    ``benchmark.extra_info`` (and, on the reference machine, in
    ``BENCH_quick.json`` / the README performance table).  MQM is
    guarded here like the single-traversal algorithms: its multi-stream
    flat engine replaced the per-query-point generator streams, and a
    regression back to object-tree speed must fail loudly (the 0.95x
    regression that motivated the engine shipped silently because only
    SPM/MBM were guarded).
    """
    points, tree = datasets["pp"]
    flat = FlatRTree.from_tree(tree)
    spec = WorkloadSpec(n=64, mbr_fraction=scale.fixed_mbr_fraction, k=scale.fixed_k, queries=2)
    groups = generate_workload(points, spec, seed=17)

    def run(algorithm, index):
        for group in groups:
            algorithm(index, GroupQuery(group, k=spec.k))

    def measure(algorithm, index):
        run(algorithm, index)  # warm-up
        return _best_of(3, lambda: run(algorithm, index))

    benchmark.pedantic(lambda: run(mbm, flat), rounds=1, iterations=1)
    for name, algorithm in (("MQM", mqm), ("SPM", spm), ("MBM", mbm)):
        for group in groups:
            object_result = algorithm(tree, GroupQuery(group, k=spec.k))
            flat_result = algorithm(flat, GroupQuery(group, k=spec.k))
            assert [n.as_tuple() for n in flat_result.neighbors] == [
                n.as_tuple() for n in object_result.neighbors
            ], name
            assert (
                flat_result.cost.node_accesses,
                flat_result.cost.distance_computations,
            ) == (
                object_result.cost.node_accesses,
                object_result.cost.distance_computations,
            ), name
        speedup = measure(algorithm, tree) / measure(algorithm, flat)
        benchmark.extra_info[f"{name}_flat_speedup"] = round(speedup, 2)
        assert speedup >= MIN_FLAT_SPEEDUP, (
            f"flat {name} is only {speedup:.2f}x faster than the object tree "
            f"(expected >= {MIN_FLAT_SPEEDUP}x) — the flat hot path has regressed"
        )


def test_smoke_memory_algorithms_cross_check(benchmark, datasets, scale):
    """SPM/MBM at the paper's fixed cardinality, answers cross-checked.

    ``run_memory_setting`` raises if the algorithms disagree, so this
    doubles as an end-to-end equivalence smoke test of the kernelised
    traversals at benchmark scale.
    """
    points, tree = datasets["pp"]
    spec = WorkloadSpec(
        n=64, mbr_fraction=scale.fixed_mbr_fraction, k=scale.fixed_k, queries=2
    )
    groups = generate_workload(points, spec, seed=17)

    result = benchmark.pedantic(
        lambda: run_memory_setting(tree, groups, k=spec.k, algorithms=("SPM", "MBM")),
        rounds=1,
        iterations=1,
    )
    for name, averages in result.averages.items():
        assert averages.node_accesses > 0, name
        benchmark.extra_info[f"{name}_node_accesses"] = round(averages.node_accesses, 1)
        benchmark.extra_info[f"{name}_cpu_per_query"] = averages.cpu_time
