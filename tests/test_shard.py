"""Tests for the sharding subsystem: partitioner, wire, node, coordinator.

The integration tests run a real federation — shard nodes listening on
localhost TCP sockets, each wrapping a forked worker pool over its own
mmap snapshot — and pin the subsystem's core contract: federated
answers are bit-identical to a single-index ``engine.execute`` over the
same dataset, federation-level pruning contacts exactly the shards the
manifest bounds justify, and failures degrade the way the coordinator
promises (timeout -> retry -> error or degraded result).
"""

import asyncio
import socket
import threading

import numpy as np
import pytest

from repro import GNNEngine, QuerySpec
from repro.geometry.distance import group_distance
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    pack_frame,
    read_frame,
    unpack_frame,
)
from repro.shard import (
    ShardCoordinator,
    ShardManifest,
    ShardNode,
    ShardNodeProcess,
    ShardQueryError,
    ShardUnavailableError,
    ShardedEngine,
    partition_dataset,
    partition_points,
)
from repro.shard.partition import SAMPLE_SIZE, sample_rows
from repro.shard.wire import ShardPing, ShardPong, ShardQuery, ShardReply

SHARD_COUNTS = (1, 2, 4)


def as_tuples(result):
    return [neighbor.as_tuple() for neighbor in result.neighbors]


@pytest.fixture(scope="module")
def shard_points():
    generator = np.random.default_rng(1789)
    clusters = generator.uniform(100, 900, size=(6, 2))
    assignments = generator.integers(0, 6, size=600)
    noise = generator.normal(scale=60.0, size=(600, 2))
    return np.clip(clusters[assignments] + noise, 0, 1000)


@pytest.fixture(scope="module")
def reference_engine(shard_points):
    return GNNEngine(shard_points, capacity=16)


@pytest.fixture(scope="module")
def federations(shard_points, tmp_path_factory):
    """One live federation per shard count: ``{K: (manifest, nodes, engine)}``."""
    built = {}
    for count in SHARD_COUNTS:
        directory = tmp_path_factory.mktemp(f"shards-{count}")
        manifest = partition_dataset(shard_points, count, directory, capacity=16)
        nodes = [
            ShardNode(shard.shard_id, directory / shard.path, workers=1)
            for shard in manifest.shards
        ]
        addresses = [node.start() for node in nodes]
        engine = ShardedEngine.connect(manifest, addresses, timeout_s=30.0)
        built[count] = (manifest, nodes, engine)
    yield built
    for _, nodes, engine in built.values():
        engine.close()
        for node in nodes:
            node.close()


# ----------------------------------------------------------------------
# partitioner + manifest (pure unit tests)
# ----------------------------------------------------------------------
class TestPartitioner:
    def test_chunks_are_balanced_and_cover_every_row(self, shard_points):
        assignments, _ = partition_points(shard_points, 4)
        sizes = [len(chunk) for chunk in assignments]
        assert sum(sizes) == len(shard_points)
        assert max(sizes) - min(sizes) <= 1
        covered = np.sort(np.concatenate(assignments))
        assert np.array_equal(covered, np.arange(len(shard_points)))

    def test_hilbert_ranges_are_disjoint_and_ordered(self, shard_points, tmp_path):
        manifest = partition_dataset(shard_points, 4, tmp_path / "m", capacity=16)
        ranges = [(s.hilbert_low, s.hilbert_high) for s in manifest.shards]
        for (_, high), (low, _) in zip(ranges, ranges[1:]):
            assert high <= low

    def test_snapshots_keep_global_record_ids(self, shard_points, tmp_path):
        from repro.rtree.flat import FlatRTree

        directory = tmp_path / "ids"
        manifest = partition_dataset(shard_points, 3, directory, capacity=16)
        seen = []
        for shard, path in zip(manifest.shards, manifest.shard_paths(directory)):
            tree = FlatRTree.load(path)
            assert tree.generation == manifest.generation
            leaves = tree.record_ids[tree.record_ids >= 0]
            assert len(leaves) == shard.count
            seen.append(np.sort(leaves))
            # Every stored point is the original dataset's row.
            order = np.argsort(tree.record_ids)
            mask = tree.record_ids[order] >= 0
            assert np.array_equal(
                tree.points[order][mask], shard_points[tree.record_ids[order][mask]]
            )
        assert np.array_equal(np.sort(np.concatenate(seen)), np.arange(600))

    def test_root_mbrs_bound_their_points(self, shard_points, tmp_path):
        manifest = partition_dataset(shard_points, 4, tmp_path / "mbr", capacity=16)
        assignments, _ = partition_points(shard_points, 4)
        for shard, rows in zip(manifest.shards, assignments):
            chunk = shard_points[rows]
            assert np.all(chunk >= np.asarray(shard.root_low) - 1e-9)
            assert np.all(chunk <= np.asarray(shard.root_high) + 1e-9)

    def test_group_mindist_bounds_are_true_lower_bounds(self, shard_points, tmp_path, rng):
        manifest = partition_dataset(shard_points, 4, tmp_path / "lb", capacity=16)
        assignments, _ = partition_points(shard_points, 4)
        group = rng.uniform(0, 1000, size=(6, 2))
        for aggregate in ("sum", "max", "min"):
            bounds = manifest.group_mindist_bounds(group, aggregate=aggregate)
            for bound, rows in zip(bounds, assignments):
                actual = min(
                    group_distance(point, group, aggregate=aggregate)
                    for point in shard_points[rows]
                )
                assert bound <= actual + 1e-9

    def test_more_shards_than_points_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            partition_points(np.zeros((3, 2)), 5)

    def test_manifest_roundtrips_through_json(self, shard_points, tmp_path):
        directory = tmp_path / "roundtrip"
        manifest = partition_dataset(shard_points, 2, directory, capacity=16)
        reloaded = ShardManifest.load(directory)
        assert reloaded == manifest
        assert ShardManifest.load(directory / "manifest.json") == manifest

    def test_manifest_rejects_unknown_version(self, shard_points, tmp_path):
        directory = tmp_path / "versioned"
        manifest = partition_dataset(shard_points, 2, directory, capacity=16)
        document = manifest.as_dict()
        document["version"] = 99
        with pytest.raises(ValueError, match="version 99"):
            ShardManifest.load(document)

    def test_sample_rows_is_deterministic_and_spans_the_run(self):
        rows = np.arange(100, 400)
        picked = sample_rows(rows)
        assert np.array_equal(picked, sample_rows(rows))
        assert len(picked) <= SAMPLE_SIZE
        assert picked[0] == rows[0] and picked[-1] == rows[-1]
        # Short runs are passed through whole.
        assert np.array_equal(sample_rows(rows[:5]), rows[:5])

    def test_manifest_samples_are_real_records(self, shard_points, tmp_path):
        directory = tmp_path / "samples"
        manifest = partition_dataset(shard_points, 3, directory, capacity=16)
        assignments, _ = partition_points(shard_points, 3)
        for shard, rows in zip(manifest.shards, assignments):
            assert 0 < len(shard.sample) <= SAMPLE_SIZE
            chunk = {tuple(point) for point in shard_points[rows]}
            for point in shard.sample:
                assert tuple(point) in chunk
        # The sample survives the JSON roundtrip verbatim.
        assert ShardManifest.load(directory).shards[0].sample == (
            manifest.shards[0].sample
        )

    def test_sample_kth_distance_upper_bounds_the_true_kth(
        self, shard_points, tmp_path, rng
    ):
        manifest = partition_dataset(shard_points, 4, tmp_path / "tau", capacity=16)
        for aggregate in ("sum", "max", "min"):
            for k in (1, 4, 8):
                group = rng.uniform(0, 1000, size=(5, 2))
                true_kth = sorted(
                    group_distance(point, group, aggregate=aggregate)
                    for point in shard_points
                )[k - 1]
                # Union of all shards' samples, and each single shard's
                # sample, are real records: both must upper-bound the
                # federation's k-th answer distance.
                assert manifest.sample_kth_distance(group, k, aggregate=aggregate) >= (
                    true_kth - 1e-9
                )
                for shard in manifest.shards:
                    tau = manifest.sample_kth_distance(
                        group, k, aggregate=aggregate, shard_id=shard.shard_id
                    )
                    assert tau >= true_kth - 1e-9

    def test_sample_kth_distance_is_inf_when_sample_too_small(self):
        # A hand-built manifest row with a one-point sample: k beyond the
        # sample size must yield inf (pilot fallback), k within it a
        # finite bound.
        from repro.shard.manifest import ShardInfo

        shard = ShardInfo(
            shard_id=0, path="s.npz", count=3,
            root_low=(0.0, 0.0), root_high=(1.0, 1.0),
            hilbert_low=0, hilbert_high=5,
            sample=((0.5, 0.5),),
        )
        manifest = ShardManifest(
            dims=2, size=3, capacity=16, generation=0, shards=(shard,)
        )
        assert manifest.sample_kth_distance(np.zeros((2, 2)), k=2) == float("inf")
        assert manifest.sample_kth_distance(np.zeros((2, 2)), k=1) < float("inf")

    def test_manifest_validates_shape(self):
        from repro.shard.manifest import ShardInfo

        shard = ShardInfo(
            shard_id=0, path="s.npz", count=10,
            root_low=(0.0, 0.0), root_high=(1.0, 1.0),
            hilbert_low=0, hilbert_high=5,
        )
        with pytest.raises(ValueError, match="at least one shard"):
            ShardManifest(dims=2, size=0, capacity=16, generation=0, shards=())
        with pytest.raises(ValueError, match="sum"):
            ShardManifest(dims=2, size=11, capacity=16, generation=0, shards=(shard,))


# ----------------------------------------------------------------------
# frame codec + wire messages (pure unit tests)
# ----------------------------------------------------------------------
class TestWireFraming:
    def test_messages_roundtrip(self):
        for message in (
            ShardPing(request_id=3),
            ShardPong(request_id=3, shard_id=1, generation=0, size=150, dims=2),
            ShardQuery(request_id=9, payload={"k": 4}),
            ShardReply(request_id=9, error="nope", overloaded=True),
        ):
            assert unpack_frame(pack_frame(message)) == message

    def test_truncated_frames_rejected(self):
        frame = pack_frame(ShardPing(request_id=1))
        with pytest.raises(ValueError, match="truncated"):
            unpack_frame(frame[:2])
        with pytest.raises(ValueError, match="length prefix"):
            unpack_frame(frame[:-1])

    def test_oversized_length_prefix_rejected(self):
        bogus = (MAX_FRAME_BYTES + 1).to_bytes(4, "big") + b"x"
        with pytest.raises(ValueError, match="cap"):
            unpack_frame(bogus)

    def test_read_frame_clean_eof_returns_none(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(pack_frame(ShardPing(request_id=7)))
            reader.feed_eof()
            assert await read_frame(reader) == ShardPing(request_id=7)
            assert await read_frame(reader) is None

        asyncio.run(scenario())

    def test_read_frame_mid_frame_eof_raises(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(pack_frame(ShardPing(request_id=7))[:-2])
            reader.feed_eof()
            with pytest.raises(ConnectionError, match="mid-frame"):
                await read_frame(reader)

        asyncio.run(scenario())


# ----------------------------------------------------------------------
# federated conformance over real loopback sockets
# ----------------------------------------------------------------------
class TestFederatedConformance:
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    @pytest.mark.parametrize("aggregate", ("sum", "max", "min"))
    @pytest.mark.parametrize("k", (1, 4, 8))
    def test_matrix_matches_single_index(
        self, federations, reference_engine, shards, aggregate, k
    ):
        """The conformance matrix: K x aggregate x k, every cell
        bit-identical to a single-index execute over the same data."""
        rng = np.random.default_rng(10_000 * shards + 100 * k + len(aggregate))
        _, _, engine = federations[shards]
        for _ in range(3):
            center = rng.uniform(100, 900, size=2)
            group = rng.uniform(center - 120, center + 120, size=(5, 2))
            spec = QuerySpec(group=group, k=k, aggregate=aggregate, index="sharded")
            federated = engine.execute(spec)
            expected = reference_engine.execute(
                QuerySpec(group=group, k=k, aggregate=aggregate)
            )
            assert as_tuples(federated) == as_tuples(expected)
            assert federated.cost.distance_computations > 0

    def test_single_shard_counters_match_single_index(
        self, federations, reference_engine, rng
    ):
        """K=1 is the clean counter baseline: one shard holds the whole
        dataset, so the merged counters equal the single-index cost."""
        _, _, engine = federations[1]
        group = rng.uniform(200, 800, size=(6, 2))
        spec = QuerySpec(group=group, k=4, index="sharded")
        federated = engine.execute(spec)
        expected = reference_engine.execute(QuerySpec(group=group, k=4))
        assert as_tuples(federated) == as_tuples(expected)
        assert (
            federated.cost.distance_computations
            == expected.cost.distance_computations
        )
        assert federated.cost.node_accesses == expected.cost.node_accesses

    def test_merged_counters_are_the_sum_over_contacted_shards(
        self, shard_points, reference_engine, tmp_path, rng
    ):
        """The coordinator's counter aggregation equals what the shard
        nodes themselves metered (fresh nodes, so totals start at 0)."""
        directory = tmp_path / "counted"
        manifest = partition_dataset(shard_points, 3, directory, capacity=16)
        nodes = [
            ShardNode(s.shard_id, directory / s.path, workers=1)
            for s in manifest.shards
        ]
        try:
            addresses = [node.start() for node in nodes]
            with ShardedEngine.connect(manifest, addresses, timeout_s=30.0) as engine:
                total = 0
                for _ in range(5):
                    group = rng.uniform(0, 1000, size=(4, 2))
                    result = engine.execute(
                        QuerySpec(group=group, k=4, index="sharded")
                    )
                    total += result.cost.distance_computations
                metered = sum(
                    node.stats()["total"]["distance_computations"] for node in nodes
                )
                assert total == metered
                assert (
                    engine.stats()["coordinator"]["cost"]["distance_computations"]
                    == total
                )
        finally:
            for node in nodes:
                node.close()

    def test_execute_many_pipelines_and_matches(
        self, federations, reference_engine, rng
    ):
        _, _, engine = federations[4]
        specs = [
            QuerySpec(group=rng.uniform(0, 1000, size=(4, 2)), k=3, index="sharded")
            for _ in range(16)
        ]
        results = engine.execute_many(specs)
        for spec, federated in zip(specs, results):
            expected = reference_engine.execute(spec.replace(index="auto"))
            assert as_tuples(federated) == as_tuples(expected)

    def test_trace_attaches_the_client_side_plan(self, federations, rng):
        _, _, engine = federations[2]
        spec = QuerySpec(
            group=rng.uniform(300, 700, size=(4, 2)), k=2, index="sharded", trace=True
        )
        result = engine.execute(spec)
        assert result.plan is not None
        assert result.plan.algorithm.name == "mbm"


# ----------------------------------------------------------------------
# federation-level pruning (pinned contact counts on a crafted layout)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def corner_federation(tmp_path_factory):
    """Four 100-point clusters in the workspace corners, one per shard.

    Hilbert-contiguous partitioning puts each cluster in its own shard,
    so the shard root MBRs are four well-separated boxes — the layout
    where pruning behaviour is exactly predictable.
    """
    generator = np.random.default_rng(42)
    corners = np.array([[50.0, 50.0], [50.0, 950.0], [950.0, 50.0], [950.0, 950.0]])
    points = np.vstack(
        [
            np.clip(corner + generator.normal(scale=20.0, size=(100, 2)), 0, 1000)
            for corner in corners
        ]
    )
    directory = tmp_path_factory.mktemp("corners")
    manifest = partition_dataset(points, 4, directory, capacity=16)
    nodes = [
        ShardNode(s.shard_id, directory / s.path, workers=1) for s in manifest.shards
    ]
    addresses = [node.start() for node in nodes]
    coordinator = ShardCoordinator(manifest, addresses, timeout_s=30.0)
    yield points, manifest, coordinator
    coordinator.close()
    for node in nodes:
        node.close()


class TestFederationPruning:
    def test_each_cluster_is_one_shard(self, corner_federation):
        _, manifest, _ = corner_federation
        assert [shard.count for shard in manifest.shards] == [100, 100, 100, 100]
        for shard in manifest.shards:
            extents = np.asarray(shard.root_high) - np.asarray(shard.root_low)
            assert np.all(extents < 300.0)  # a cluster, not the workspace

    def test_query_inside_one_cluster_contacts_exactly_one_shard(
        self, corner_federation
    ):
        _, _, coordinator = corner_federation
        generator = np.random.default_rng(3)
        group = generator.uniform(30, 70, size=(4, 2))  # deep inside (50, 50)
        result = coordinator.execute(QuerySpec(group=group, k=4, index="sharded"))
        assert len(result.shards_contacted) == 1
        assert len(result.shards_pruned) == 3
        assert sorted(result.shards_contacted + result.shards_pruned) == [0, 1, 2, 3]

    def test_query_spanning_two_clusters_contacts_exactly_two_shards(
        self, corner_federation
    ):
        _, _, coordinator = corner_federation
        # One query point in each of two opposite clusters: both of their
        # shards have bound 0 and must be contacted; with k=1 the two
        # remaining (far) clusters can never beat the in-cluster answer.
        group = np.array([[50.0, 50.0], [950.0, 950.0]])
        result = coordinator.execute(QuerySpec(group=group, k=1, index="sharded"))
        assert len(result.shards_contacted) == 2
        assert len(result.shards_pruned) == 2

    def test_workspace_wide_k_contacts_all_shards(self, corner_federation):
        _, _, coordinator = corner_federation
        # k larger than any single shard's useful contribution with a
        # group covering every corner: nothing is prunable.
        group = np.array(
            [[50.0, 50.0], [50.0, 950.0], [950.0, 50.0], [950.0, 950.0]]
        )
        result = coordinator.execute(QuerySpec(group=group, k=8, index="sharded"))
        assert result.shards_contacted == [0, 1, 2, 3]
        assert result.shards_pruned == []

    def test_pruned_answers_still_match_single_index(self, corner_federation):
        points, _, coordinator = corner_federation
        reference = GNNEngine(points, capacity=16)
        generator = np.random.default_rng(8)
        for _ in range(5):
            corner = generator.choice([50.0, 950.0], size=2)
            group = generator.uniform(corner - 30, corner + 30, size=(3, 2))
            federated = coordinator.execute(
                QuerySpec(group=group, k=6, index="sharded")
            )
            expected = reference.execute(QuerySpec(group=group, k=6))
            assert as_tuples(federated) == as_tuples(expected)

    def test_coordinator_stats_account_every_shard(self, corner_federation):
        _, _, coordinator = corner_federation
        stats = coordinator.stats()
        assert stats["queries"] >= 1
        assert (
            stats["shards_contacted"] + stats["shards_pruned"]
            == 4 * stats["queries"]
        )


# ----------------------------------------------------------------------
# failure semantics: timeout -> retry -> degraded
# ----------------------------------------------------------------------
class TestFailureSemantics:
    @pytest.fixture()
    def small_federation(self, tmp_path):
        generator = np.random.default_rng(5)
        points = generator.uniform(0, 1000, size=(200, 2))
        manifest = partition_dataset(points, 2, tmp_path / "fed", capacity=16)
        nodes = [
            ShardNode(s.shard_id, tmp_path / "fed" / s.path, workers=1)
            for s in manifest.shards
        ]
        addresses = [node.start() for node in nodes]
        yield points, manifest, nodes, addresses
        for node in nodes:
            node.close()

    def test_dead_shard_raises_by_default(self, small_federation, rng):
        _, manifest, nodes, addresses = small_federation
        nodes[0].close()
        nodes[1].close()
        with ShardCoordinator(
            manifest, addresses, timeout_s=2.0, retries=1
        ) as coordinator:
            with pytest.raises(ShardUnavailableError, match="unreachable after 2"):
                coordinator.execute(
                    QuerySpec(group=rng.uniform(0, 1000, size=(8, 2)), k=4)
                )
            assert coordinator.stats()["retries"] >= 1

    def test_degraded_mode_answers_from_surviving_shards(self, small_federation, rng):
        points, manifest, nodes, addresses = small_federation
        nodes[0].close()
        group = rng.uniform(0, 1000, size=(8, 2))
        with ShardCoordinator(
            manifest, addresses, timeout_s=2.0, retries=0, allow_degraded=True
        ) as coordinator:
            result = coordinator.execute(QuerySpec(group=group, k=4))
            assert result.degraded is True
            assert result.failed_shards == [0]
            assert result.shards_contacted == [1]
            assert coordinator.stats()["degraded_queries"] == 1
        # The survivors' answer is the single-index answer restricted to
        # the reachable shard's records.
        survivor_rows = np.sort(
            np.concatenate([partition_points(points, 2)[0][1]])
        )
        reference = GNNEngine(points[survivor_rows], capacity=16)
        expected = reference.execute(QuerySpec(group=group, k=4))
        assert [n.distance for n in result.neighbors] == pytest.approx(
            [n.distance for n in expected.neighbors]
        )

    def test_healthy_queries_are_never_degraded(self, small_federation, rng):
        _, manifest, _, addresses = small_federation
        with ShardCoordinator(
            manifest, addresses, timeout_s=30.0, allow_degraded=True
        ) as coordinator:
            result = coordinator.execute(
                QuerySpec(group=rng.uniform(0, 1000, size=(6, 2)), k=2)
            )
            assert result.degraded is False
            assert result.failed_shards == []

    def test_coordinator_reconnects_after_node_restart(self, small_federation, rng):
        _, manifest, nodes, addresses = small_federation
        group = rng.uniform(0, 1000, size=(6, 2))
        with ShardCoordinator(
            manifest, addresses, timeout_s=2.0, retries=2, allow_degraded=True
        ) as coordinator:
            before = coordinator.execute(QuerySpec(group=group, k=4))
            assert before.degraded is False
            # Bounce node 0 onto the same port: the next query must
            # reconnect transparently (at worst burning one retry).
            host, port = addresses[0]
            nodes[0].close()
            nodes[0] = ShardNode(
                manifest.shards[0].shard_id,
                nodes[0].snapshot_path,
                host=host,
                port=port,
                workers=1,
            )
            nodes[0].start()
            after = coordinator.execute(QuerySpec(group=group, k=4))
            assert after.degraded is False
            assert as_tuples(after) == as_tuples(before)

    def test_semantic_errors_do_not_degrade(self, small_federation, rng):
        """A spec the shard rejects is a query error even under
        allow_degraded — not a liveness problem.  Disk-resident specs
        are the driver: shard nodes hold only flat snapshots, never the
        object R-tree the disk algorithms stream against."""
        _, manifest, _, addresses = small_federation
        with ShardCoordinator(
            manifest, addresses, timeout_s=30.0, allow_degraded=True
        ) as coordinator:
            with pytest.raises(ShardQueryError, match="disk-resident"):
                coordinator.execute(
                    QuerySpec(
                        group=rng.uniform(0, 1000, size=(3, 2)),
                        k=1,
                        residency="disk",
                        algorithm="fmqm",
                    )
                )

    def test_brute_force_runs_federated_over_snapshot_ids(
        self, small_federation, rng
    ):
        """Brute force scans each shard snapshot in record-id order, so
        the federated answer matches a single-index scan exactly even
        though shards carry global (gappy) record ids."""
        points, manifest, _, addresses = small_federation
        group = rng.uniform(0, 1000, size=(3, 2))
        spec = QuerySpec(group=group, k=4, algorithm="brute-force")
        reference = GNNEngine(points, capacity=16).execute(spec)
        with ShardCoordinator(manifest, addresses, timeout_s=30.0) as coordinator:
            result = coordinator.execute(spec)
            assert as_tuples(result) == as_tuples(reference)

    def test_mismatched_dimensionality_fails_at_submit(self, small_federation, rng):
        _, manifest, _, addresses = small_federation
        with ShardCoordinator(manifest, addresses) as coordinator:
            with pytest.raises(ValueError, match="dimensionality"):
                coordinator.submit(QuerySpec(group=rng.uniform(0, 1, size=(3, 4))))

    def test_mismatched_shard_identity_refused(self, small_federation, rng):
        """Swapping two node addresses is caught by the ping handshake."""
        _, manifest, _, addresses = small_federation
        swapped = [addresses[1], addresses[0]]
        with ShardCoordinator(
            manifest, swapped, timeout_s=2.0, retries=0
        ) as coordinator:
            with pytest.raises(ShardUnavailableError, match="miswired"):
                coordinator.execute(
                    QuerySpec(group=rng.uniform(0, 1000, size=(4, 2)), k=1)
                )

    def test_non_listening_address_fails_fast(self, tmp_path, rng):
        generator = np.random.default_rng(6)
        points = generator.uniform(0, 1000, size=(50, 2))
        manifest = partition_dataset(points, 1, tmp_path / "dead", capacity=16)
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()  # nothing listens here any more
        with ShardCoordinator(
            manifest, [("127.0.0.1", port)], timeout_s=2.0, retries=0
        ) as coordinator:
            with pytest.raises(ShardUnavailableError):
                coordinator.execute(
                    QuerySpec(group=rng.uniform(0, 1000, size=(3, 2)), k=1)
                )

    def test_address_count_must_match_manifest(self, small_federation):
        _, manifest, _, addresses = small_federation
        with pytest.raises(ValueError, match="2 shards but 1 addresses"):
            ShardCoordinator(manifest, addresses[:1])


# ----------------------------------------------------------------------
# process-isolated nodes (the deployment launcher)
# ----------------------------------------------------------------------
class TestShardNodeProcess:
    def test_process_nodes_serve_conformant_answers(
        self, shard_points, reference_engine, tmp_path, rng
    ):
        directory = tmp_path / "proc"
        manifest = partition_dataset(shard_points, 2, directory, capacity=16)
        specs = [
            QuerySpec(group=rng.uniform(0, 1000, size=(4, 2)), k=3) for _ in range(4)
        ]
        nodes = [
            ShardNodeProcess(shard.shard_id, directory / shard.path, workers=1)
            for shard in manifest.shards
        ]
        try:
            addresses = [node.start() for node in nodes]
            assert all(host == "127.0.0.1" for host, _ in addresses)
            with ShardedEngine.connect(manifest, addresses, timeout_s=30.0) as engine:
                for spec in specs:
                    assert as_tuples(engine.execute(spec)) == as_tuples(
                        reference_engine.execute(spec)
                    )
        finally:
            for node in nodes:
                node.close()
        # close() is idempotent and the child is really gone.
        for node in nodes:
            node.close()
            assert "closed" in repr(node)

    def test_start_reports_child_failure(self, tmp_path):
        node = ShardNodeProcess(0, tmp_path / "missing.npz", workers=1)
        with pytest.raises(RuntimeError, match="failed to start"):
            node.start()
        node.close()


# ----------------------------------------------------------------------
# planner routing + engine facade
# ----------------------------------------------------------------------
class TestShardedPlanning:
    def test_single_index_engine_rejects_sharded_at_plan_time(self, engine, rng):
        spec = QuerySpec(group=rng.uniform(0, 1000, size=(4, 2)), index="sharded")
        with pytest.raises(ValueError, match="coordinator-backed") as excinfo:
            engine.explain(spec)
        message = str(excinfo.value)
        assert "'auto'" in message and "'flat'" in message and "'object'" in message
        assert "ShardedEngine" in message

    def test_sharded_engine_accepts_sharded_specs(self, federations, rng):
        _, _, engine = federations[2]
        plan = engine.explain(
            QuerySpec(group=rng.uniform(0, 1000, size=(4, 2)), index="sharded")
        )
        assert plan.use_flat

    def test_sharded_engine_rejects_unservable_specs_client_side(
        self, federations, rng
    ):
        _, _, engine = federations[2]
        with pytest.raises(ValueError, match="index='object'"):
            engine.execute(
                QuerySpec(group=rng.uniform(0, 1000, size=(3, 2)), index="object")
            )

    def test_submit_after_close_raises(self, shard_points, tmp_path, rng):
        directory = tmp_path / "closed"
        manifest = partition_dataset(shard_points, 1, directory, capacity=16)
        node = ShardNode(0, directory / manifest.shards[0].path, workers=1)
        address = node.start()
        try:
            engine = ShardedEngine.connect(manifest, [address])
            engine.close()
            engine.close()  # idempotent
            with pytest.raises(RuntimeError, match="closed"):
                engine.submit(
                    QuerySpec(group=rng.uniform(0, 1000, size=(3, 2)), k=1)
                )
        finally:
            node.close()

    def test_node_close_is_idempotent_and_concurrent_safe(
        self, shard_points, tmp_path
    ):
        directory = tmp_path / "nodeclose"
        manifest = partition_dataset(shard_points, 1, directory, capacity=16)
        node = ShardNode(0, directory / manifest.shards[0].path, workers=1)
        node.start()
        threads = [threading.Thread(target=node.close) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        node.close()  # and once more, after the dust settled
        assert not any(thread.is_alive() for thread in threads)
