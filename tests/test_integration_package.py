"""Integration tests: public API surface, instrumentation, example scripts."""

import ast
import importlib
import pathlib

import numpy as np
import pytest

import repro
from repro.core.instrumentation import CostTracker
from repro.rtree.tree import RTree

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


class TestPublicAPI:
    def test_version_is_exposed(self):
        assert repro.__version__ == "2.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists missing name {name}"

    def test_end_to_end_quickstart_snippet(self):
        # The snippet from the package docstring / README must work verbatim.
        data = np.random.default_rng(0).uniform(0, 100, size=(2_000, 2))
        engine = repro.GNNEngine(data)
        result = engine.query([[10, 10], [20, 35], [40, 15]], k=3)
        assert len(result.neighbors) == 3
        assert result.cost.node_accesses > 0

    def test_submodules_importable(self):
        for module in (
            "repro.geometry",
            "repro.rtree",
            "repro.storage",
            "repro.core",
            "repro.datasets",
            "repro.bench",
        ):
            importlib.import_module(module)


class TestCostTracker:
    def test_tracker_reports_deltas_not_totals(self):
        points = np.random.default_rng(1).uniform(0, 100, size=(300, 2))
        tree = RTree.bulk_load(points, capacity=8)
        # Pre-charge some accesses so a delta-based tracker and a total-based
        # one would disagree.
        from repro.rtree.traversal import best_first_nearest

        best_first_nearest(tree, [0.0, 0.0], k=5)
        pre_existing = tree.stats.node_accesses
        assert pre_existing > 0

        tracker = CostTracker("test", trees=[tree])
        best_first_nearest(tree, [50.0, 50.0], k=5)
        cost = tracker.finish()
        assert 0 < cost.node_accesses < pre_existing + tree.stats.node_accesses
        assert cost.cpu_time > 0

    def test_extra_distance_computations_are_added(self):
        tracker = CostTracker("test")
        tracker.charge_distance_computations(42)
        assert tracker.finish().distance_computations == 42

    def test_io_counters_are_tracked(self):
        from repro.storage.counters import IOCounters

        io = IOCounters()
        tracker = CostTracker("test", io_counters=[io])
        io.record_block_read(pages_in_block=3)
        cost = tracker.finish()
        assert cost.block_reads == 1
        assert cost.page_reads == 3


class TestExamples:
    """The example scripts must stay runnable; they are parsed and their
    structure checked here, and the quickstart is executed end to end."""

    def test_examples_directory_has_at_least_three_scripts(self):
        scripts = sorted(EXAMPLES_DIR.glob("*.py"))
        assert len(scripts) >= 3

    @pytest.mark.parametrize(
        "script",
        sorted(p.name for p in EXAMPLES_DIR.glob("*.py")),
    )
    def test_example_parses_and_defines_main(self, script):
        source = (EXAMPLES_DIR / script).read_text(encoding="utf-8")
        module = ast.parse(source)
        function_names = {
            node.name for node in ast.walk(module) if isinstance(node, ast.FunctionDef)
        }
        assert "main" in function_names, f"{script} must define a main() function"
        docstring = ast.get_docstring(module)
        assert docstring, f"{script} must start with a module docstring"

    def test_quickstart_example_runs(self, capsys, monkeypatch):
        import importlib.util

        spec = importlib.util.spec_from_file_location(
            "quickstart_example", EXAMPLES_DIR / "quickstart.py"
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        module.main()
        output = capsys.readouterr().out
        assert "Top 5 meeting restaurants" in output
        assert "MBM" in output
