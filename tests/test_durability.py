"""Durability conformance: WAL, atomic publication, crash recovery.

The contract under test is the write-ahead discipline end to end:

* every acknowledged ``insert``/``delete`` is on disk (per the fsync
  policy) *before* any in-memory structure reflects it;
* snapshot generations and manifests are published via temp file +
  fsync + atomic rename, so a crash at any instant leaves at least one
  complete generation on disk;
* ``GNNEngine.recover`` rebuilds the exact pre-crash merged view —
  record ids *and* distances bit-identical — from the newest complete
  generation plus a replay of the log tail, for a crash at **every**
  WAL record boundary and for a torn final record.

Crashes are injected through :mod:`repro.testing.faults` (simulated
in-process as :class:`InjectedCrash` so the test can observe the disk
state "the death" left behind), and the crash-point sweep additionally
reconstructs log prefixes byte-by-byte so no boundary is skipped.
"""

import json
import os
import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.spec import QuerySpec
from repro.core.engine import GNNEngine
from repro.rtree.flat import FlatRTree
from repro.serve.compaction import CompactingWriter
from repro.storage.atomicio import atomic_output, write_json_atomic
from repro.storage.generations import GenerationStore, snapshot_name
from repro.storage.wal import (
    FSYNC_POLICIES,
    WalCorruptionError,
    WalRecord,
    WriteAheadLog,
    _HEADER,
    _MAGIC,
    _VERSION,
)
from repro.testing.faults import FaultPlan, InjectedCrash, active

SEED = 20040301

ALGORITHMS = ("mqm", "spm", "mbm", "best-first", "brute-force")


@pytest.fixture()
def rng():
    return np.random.default_rng(SEED)


@pytest.fixture()
def dataset(rng):
    return rng.uniform(0, 1000, size=(60, 2))


def _reference_engine(live):
    """An engine rebuilt from scratch over ``{record_id: point}``."""
    ids = sorted(live)
    points = np.array([live[i] for i in ids], dtype=np.float64)
    return GNNEngine.from_index(
        FlatRTree.bulk_load(points, capacity=8, record_ids=np.array(ids))
    )


def _assert_identical(result, reference, label):
    assert result.record_ids() == reference.record_ids(), label
    assert np.array_equal(result.distances(), reference.distances()), label


def _wal_header(base_generation):
    return _HEADER.pack(_MAGIC, _VERSION, int(base_generation))


# ----------------------------------------------------------------------
# atomic file output
# ----------------------------------------------------------------------
class TestAtomicIO:
    def test_success_replaces_and_leaves_no_temp(self, tmp_path):
        target = tmp_path / "out.bin"
        target.write_bytes(b"old")
        with atomic_output(target, fsync=True) as handle:
            handle.write(b"new contents")
        assert target.read_bytes() == b"new contents"
        assert list(tmp_path.glob("*.tmp")) == []

    def test_exception_preserves_target_and_cleans_temp(self, tmp_path):
        target = tmp_path / "out.bin"
        target.write_bytes(b"old")
        with pytest.raises(RuntimeError, match="mid-write"):
            with atomic_output(target) as handle:
                handle.write(b"half of the new")
                raise RuntimeError("mid-write")
        assert target.read_bytes() == b"old"
        assert list(tmp_path.glob("*.tmp")) == []

    def test_crash_at_rename_point_never_tears_the_target(self, tmp_path):
        target = tmp_path / "out.bin"
        target.write_bytes(b"previous generation")
        with active(FaultPlan().crash("snapshot.rename")):
            with pytest.raises(InjectedCrash):
                with atomic_output(target, fault_point="snapshot.rename") as handle:
                    handle.write(b"next generation")
        # The crash fired after the temp was complete but before the
        # rename: the published name still holds the old bytes intact.
        assert target.read_bytes() == b"previous generation"

    def test_write_json_atomic_round_trips_sorted(self, tmp_path):
        path = tmp_path / "doc.json"
        write_json_atomic(path, {"b": 2, "a": [1, 2]}, fsync=True)
        text = path.read_text()
        assert json.loads(text) == {"a": [1, 2], "b": 2}
        assert text.index('"a"') < text.index('"b"')  # stable, diffable
        assert text.endswith("\n")


# ----------------------------------------------------------------------
# WAL format and scan
# ----------------------------------------------------------------------
class TestWriteAheadLog:
    def test_append_scan_round_trip(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path, fsync="off", base_generation=3) as wal:
            wal.append("insert", 7, (1.5, -2.5))
            wal.append("delete", 7, (1.5, -2.5))
            wal.append("insert", 8, (0.0, 9.0, 4.0))  # dims live per record
        scan = WriteAheadLog.scan(path)
        assert scan.base_generation == 3
        assert not scan.torn
        assert scan.records == (
            WalRecord("insert", 7, (1.5, -2.5)),
            WalRecord("delete", 7, (1.5, -2.5)),
            WalRecord("insert", 8, (0.0, 9.0, 4.0)),
        )
        assert scan.valid_bytes == os.path.getsize(path)

    @pytest.mark.parametrize("policy", FSYNC_POLICIES)
    def test_fsync_policies_accepted(self, tmp_path, policy):
        with WriteAheadLog(tmp_path / "wal.log", fsync=policy) as wal:
            wal.append("insert", 1, (0.0, 0.0))
        assert len(WriteAheadLog.replay(tmp_path / "wal.log")) == 1

    def test_unknown_fsync_policy_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="fsync policy"):
            WriteAheadLog(tmp_path / "wal.log", fsync="sometimes")

    def test_scan_stops_at_torn_tail(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path, fsync="off") as wal:
            wal.append("insert", 1, (1.0, 1.0))
            wal.append("insert", 2, (2.0, 2.0))
        whole = path.read_bytes()
        boundary = len(_wal_header(0)) + len(WalRecord("insert", 1, (1.0, 1.0)).encode())
        path.write_bytes(whole[: boundary + 5])  # tear record 2 mid-frame
        scan = WriteAheadLog.scan(path)
        assert scan.torn
        assert [r.record_id for r in scan.records] == [1]
        assert scan.valid_bytes == boundary

    def test_scan_stops_at_corrupt_crc(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path, fsync="off") as wal:
            wal.append("insert", 1, (1.0, 1.0))
            wal.append("insert", 2, (2.0, 2.0))
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF  # flip a byte inside record 2's payload
        path.write_bytes(bytes(blob))
        scan = WriteAheadLog.scan(path)
        assert scan.torn
        assert [r.record_id for r in scan.records] == [1]

    def test_reopen_truncates_torn_tail_then_appends_cleanly(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path, fsync="off", base_generation=2) as wal:
            wal.append("insert", 1, (1.0, 1.0))
        with open(path, "ab") as handle:
            handle.write(b"\x99" * 7)  # a torn frame a crash left behind
        with WriteAheadLog(path, fsync="off") as wal:
            assert wal.base_generation == 2  # adopted, not re-stamped
            wal.append("insert", 2, (2.0, 2.0))
        scan = WriteAheadLog.scan(path)
        assert not scan.torn
        assert [r.record_id for r in scan.records] == [1, 2]

    def test_missing_or_bad_header_is_corruption(self, tmp_path):
        short = tmp_path / "short.log"
        short.write_bytes(b"RW")
        with pytest.raises(WalCorruptionError, match="missing WAL header"):
            WriteAheadLog.scan(short)
        bad = tmp_path / "bad.log"
        bad.write_bytes(struct.pack("<4sHq", b"NOPE", 1, 0))
        with pytest.raises(WalCorruptionError, match="bad WAL magic"):
            WriteAheadLog.scan(bad)

    def test_reset_stamps_new_generation_atomically(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path, fsync="off", base_generation=0)
        wal.append("insert", 1, (1.0, 1.0))
        wal.reset(5)
        assert wal.base_generation == 5
        wal.append("insert", 2, (2.0, 2.0))
        wal.close()
        scan = WriteAheadLog.scan(path)
        assert scan.base_generation == 5
        assert [r.record_id for r in scan.records] == [2]
        assert list(tmp_path.glob("*.tmp")) == []

    def test_crash_arm_keeps_the_whole_record(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path, fsync="off")
        with active(FaultPlan().crash("wal.append", at=2)):
            wal.append("insert", 1, (1.0, 1.0))
            with pytest.raises(InjectedCrash):
                wal.append("insert", 2, (2.0, 2.0))
        scan = WriteAheadLog.scan(path)
        # A boundary crash: the dying write itself is complete on disk.
        assert not scan.torn
        assert [r.record_id for r in scan.records] == [1, 2]

    def test_torn_arm_leaves_a_recoverable_prefix(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path, fsync="off")
        with active(FaultPlan().torn("wal.append", at=2, keep_bytes=9)):
            wal.append("insert", 1, (1.0, 1.0))
            with pytest.raises(InjectedCrash):
                wal.append("insert", 2, (2.0, 2.0))
        scan = WriteAheadLog.scan(path)
        assert scan.torn
        assert [r.record_id for r in scan.records] == [1]
        # Recovery-side reopen discards exactly the torn bytes.
        WriteAheadLog(path, fsync="off").close()
        assert os.path.getsize(path) == scan.valid_bytes

    def test_torn_lengths_are_seeded_deterministic(self, tmp_path):
        def torn_size(name, seed):
            path = tmp_path / name
            wal = WriteAheadLog(path, fsync="off")
            with active(FaultPlan(seed=seed).torn("wal.append")):
                with pytest.raises(InjectedCrash):
                    wal.append("insert", 1, (1.0, 2.0))
            return os.path.getsize(path)

        assert torn_size("a.log", seed=11) == torn_size("b.log", seed=11)


# ----------------------------------------------------------------------
# generation store
# ----------------------------------------------------------------------
class TestGenerationStore:
    def _flat(self, dataset, generation=0):
        flat = FlatRTree.bulk_load(dataset, capacity=8)
        flat.generation = generation
        return flat

    def test_publish_then_latest_round_trip(self, tmp_path, dataset):
        store = GenerationStore(tmp_path)
        store.publish(self._flat(dataset, generation=4))
        assert (tmp_path / snapshot_name(4)).exists()
        assert store.manifest_generation() == 4
        loaded = store.latest()
        assert loaded.generation == 4 and loaded.size == len(dataset)

    def test_gc_keeps_only_the_newest_generations(self, tmp_path, dataset):
        store = GenerationStore(tmp_path, keep=1)
        for generation in range(3):
            store.publish(self._flat(dataset, generation=generation))
        names = sorted(p.name for p in tmp_path.glob("snapshot-gen*.npz"))
        assert names == [snapshot_name(2)]

    def test_latest_on_empty_directory_is_none(self, tmp_path):
        assert GenerationStore(tmp_path / "fresh").latest() is None

    def test_latest_skips_corrupt_newest_snapshot(self, tmp_path, dataset):
        store = GenerationStore(tmp_path, keep=4)
        store.publish(self._flat(dataset, generation=1))
        (tmp_path / snapshot_name(2)).write_bytes(b"not a real npz")
        loaded = store.latest()
        assert loaded.generation == 1  # the torn gen-2 file is skipped

    def test_crash_before_manifest_prefers_newer_complete_snapshot(
        self, tmp_path, dataset
    ):
        store = GenerationStore(tmp_path, keep=4)
        store.publish(self._flat(dataset, generation=1))
        with active(FaultPlan().crash("manifest.write")):
            with pytest.raises(InjectedCrash):
                store.publish(self._flat(dataset, generation=2))
        # Snapshot 2 renamed durably; the manifest still points at 1.
        assert (tmp_path / snapshot_name(2)).exists()
        assert store.manifest_generation() == 1
        # The manifest is a hint: recovery adopts the newer complete file.
        assert store.latest().generation == 2

    def test_crash_at_snapshot_rename_keeps_previous_generation(
        self, tmp_path, dataset
    ):
        store = GenerationStore(tmp_path, keep=4)
        store.publish(self._flat(dataset, generation=1))
        with active(FaultPlan().crash("snapshot.rename")):
            with pytest.raises(InjectedCrash):
                store.publish(self._flat(dataset, generation=2))
        assert not (tmp_path / snapshot_name(2)).exists()
        assert store.manifest_generation() == 1
        assert store.latest().generation == 1


# ----------------------------------------------------------------------
# engine recovery
# ----------------------------------------------------------------------
def _seed_generation(directory, dataset, generation=0):
    """Publish ``dataset`` as the directory's first durable generation."""
    store = GenerationStore(directory)
    flat = FlatRTree.bulk_load(dataset, capacity=8)
    flat.generation = generation
    store.publish(flat)
    return store


class TestEngineRecovery:
    def test_recover_without_a_generation_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="no complete snapshot"):
            GNNEngine.recover(tmp_path)

    def test_recover_replays_the_log_tail(self, tmp_path, dataset, rng):
        store = _seed_generation(tmp_path, dataset)
        engine = GNNEngine.recover(tmp_path, fsync="off")
        live = {i: dataset[i] for i in range(len(dataset))}
        for i in range(8):
            point = rng.uniform(0, 1000, size=2)
            rid = engine.insert(point)
            live[rid] = point
        for rid in (3, 9):
            assert engine.delete(dataset[rid], rid)
            del live[rid]
        engine.wal.close()  # "crash": the overlay is gone with the process

        recovered = GNNEngine.recover(tmp_path, fsync="off")
        reference = _reference_engine(live)
        group = rng.uniform(200, 800, size=(3, 2))
        for name in ALGORITHMS:
            spec = QuerySpec(group=group, k=7, algorithm=name)
            _assert_identical(recovered.execute(spec), reference.execute(spec), name)
        assert store.manifest_generation() == 0
        recovered.wal.close()

    def test_stale_wal_is_discarded_not_replayed_twice(self, tmp_path, dataset):
        _seed_generation(tmp_path, dataset)
        wal_path = tmp_path / "wal.log"
        engine = GNNEngine.recover(tmp_path, fsync="off")
        engine.insert([1.0, 2.0], record_id=600)
        engine.wal.close()
        # Fold the log into generation 1 but "crash" before the reset:
        # the WAL's base_generation (0) is now older than the snapshot.
        flat = engine.compact()
        GenerationStore(tmp_path).publish(flat)
        assert WriteAheadLog.scan(wal_path).base_generation == 0

        recovered = GNNEngine.recover(tmp_path, fsync="off")
        assert recovered.flat.generation == 1
        spec = QuerySpec(group=[[1.0, 2.0]], k=1, algorithm="brute-force")
        # Replaying the stale log would be harmless here but is the wrong
        # contract; what must hold is that 600 exists exactly once.
        assert recovered.execute(spec).record_ids() == [600]
        # recover() re-stamps the log so new appends base on generation 1.
        assert recovered.wal.base_generation == 1
        recovered.wal.close()

    def test_wal_newer_than_any_snapshot_refuses_silent_data_loss(
        self, tmp_path, dataset
    ):
        _seed_generation(tmp_path, dataset, generation=0)
        wal = WriteAheadLog(tmp_path / "wal.log", fsync="off", base_generation=7)
        wal.append("insert", 900, (1.0, 1.0))
        wal.close()
        with pytest.raises(RuntimeError, match="newer than"):
            GNNEngine.recover(tmp_path)


# ----------------------------------------------------------------------
# the crash-point sweep (the PR's acceptance property)
# ----------------------------------------------------------------------
def _run_crash_sweep(directory, dataset, operations, *, torn_tail_bytes=9):
    """Crash at every WAL record boundary (and a torn tail) and verify.

    ``operations`` is a list of ``("insert"|"delete", record_id, point)``
    applied on top of ``dataset`` (published as generation 0).  For every
    prefix length ``r`` the on-disk state a boundary crash would leave —
    header plus the first ``r`` records, optionally plus a torn fragment
    of record ``r+1`` — is materialised byte-for-byte, recovered, and
    the merged view compared bit-identically against a from-scratch
    rebuild of the expected live set.
    """
    store = _seed_generation(directory, dataset)
    encoded = [WalRecord(op, rid, tuple(point)).encode() for op, rid, point in operations]
    header = _wal_header(0)
    group = np.array([[250.0, 250.0], [750.0, 750.0]])
    spec = QuerySpec(group=group, k=5, algorithm="best-first")
    brute = QuerySpec(group=group, k=5, algorithm="brute-force")

    for r in range(len(operations) + 1):
        for torn in (False, True):
            if torn and r == len(operations):
                continue  # no next record to tear
            blob = header + b"".join(encoded[:r])
            if torn:
                blob += encoded[r][:torn_tail_bytes]
            store.wal_path.write_bytes(blob)

            live = {i: dataset[i] for i in range(len(dataset))}
            for op, rid, point in operations[:r]:
                if op == "insert":
                    live[rid] = np.asarray(point, dtype=np.float64)
                else:
                    live.pop(rid, None)

            recovered = GNNEngine.recover(directory, fsync="off")
            reference = _reference_engine(live)
            label = f"crash after record {r} (torn={torn})"
            _assert_identical(recovered.execute(spec), reference.execute(spec), label)
            _assert_identical(recovered.execute(brute), reference.execute(brute), label)
            recovered.wal.close()


class TestCrashPointSweep:
    def test_fixed_schedule_every_boundary(self, tmp_path, dataset):
        operations = [
            ("insert", 60, (110.0, 120.0)),
            ("insert", 61, (890.0, 880.0)),
            ("delete", 5, tuple(dataset[5])),
            ("insert", 62, (240.0, 260.0)),
            ("delete", 61, (890.0, 880.0)),  # delete an uncompacted insert
            ("delete", 17, tuple(dataset[17])),
            ("insert", 63, (505.0, 495.0)),
            ("delete", 63, (505.0, 495.0)),
            ("insert", 64, (333.0, 667.0)),
            ("delete", 42, tuple(dataset[42])),
            ("insert", 65, (760.0, 240.0)),
            ("delete", 999, (1.0, 1.0)),  # a logged miss replays as a no-op
        ]
        _run_crash_sweep(tmp_path, dataset, operations)

    @settings(max_examples=12, deadline=None)
    @given(
        moves=st.lists(
            st.tuples(st.booleans(), st.integers(0, 10**6)), min_size=1, max_size=6
        ),
        torn_tail_bytes=st.integers(2, 30),
    )
    def test_random_schedules_every_boundary(
        self, tmp_path_factory, moves, torn_tail_bytes
    ):
        directory = tmp_path_factory.mktemp("sweep")
        dataset = np.random.default_rng(SEED).uniform(0, 1000, size=(25, 2))
        live_ids = list(range(len(dataset)))
        next_id = len(dataset)
        operations = []
        for is_insert, slot in moves:
            if is_insert or len(live_ids) <= 5:
                point = (float(slot % 997), float((slot * 7) % 991))
                operations.append(("insert", next_id, point))
                live_ids.append(next_id)
                next_id += 1
            else:
                victim = live_ids.pop(slot % len(live_ids))
                point = (
                    tuple(dataset[victim])
                    if victim < len(dataset)
                    else next(
                        op[2] for op in reversed(operations) if op[1] == victim
                    )
                )
                operations.append(("delete", victim, point))
        _run_crash_sweep(
            directory, dataset, operations, torn_tail_bytes=torn_tail_bytes
        )


# ----------------------------------------------------------------------
# crash-safe compaction (CompactingWriter + GenerationStore + WAL)
# ----------------------------------------------------------------------
class TestCompactionCrashSafety:
    def _recovered_writer(self, directory, dataset):
        _seed_generation(directory, dataset)
        engine = GNNEngine.recover(directory, fsync="off")
        store = GenerationStore(directory, keep=4)
        writer = CompactingWriter(
            engine, dirty_ratio_trigger=None, store=store
        )
        return engine, store, writer

    def _mutate(self, writer, dataset):
        live = {i: dataset[i] for i in range(len(dataset))}
        for i in range(6):
            point = np.array([50.0 + 100.0 * i, 500.0])
            rid = writer.insert(point)
            live[rid] = point
        assert writer.delete(dataset[2], 2)
        del live[2]
        return live

    def test_durable_publish_then_wal_truncation(self, tmp_path, dataset):
        engine, store, writer = self._recovered_writer(tmp_path, dataset)
        self._mutate(writer, dataset)
        assert len(WriteAheadLog.scan(store.wal_path).records) == 7
        flat = writer.compact_now()
        assert flat.generation == 1
        assert store.manifest_generation() == 1
        scan = WriteAheadLog.scan(store.wal_path)
        assert scan.base_generation == 1 and scan.records == ()
        engine.wal.close()

    def test_crash_before_snapshot_rename_loses_nothing(self, tmp_path, dataset):
        engine, store, writer = self._recovered_writer(tmp_path, dataset)
        live = self._mutate(writer, dataset)
        with active(FaultPlan().crash("snapshot.rename")):
            with pytest.raises(InjectedCrash):
                writer.compact_now()
        engine.wal.close()
        # Generation 1 never appeared; the full WAL still bases on 0.
        assert store.latest().generation == 0
        scan = WriteAheadLog.scan(store.wal_path)
        assert scan.base_generation == 0 and len(scan.records) == 7
        self._assert_view(tmp_path, live)

    def test_crash_before_manifest_write_loses_nothing(self, tmp_path, dataset):
        engine, store, writer = self._recovered_writer(tmp_path, dataset)
        live = self._mutate(writer, dataset)
        with active(FaultPlan().crash("manifest.write")):
            with pytest.raises(InjectedCrash):
                writer.compact_now()
        engine.wal.close()
        # The gen-1 snapshot is complete but unreferenced, and the WAL
        # (base 0) was *not* truncated — recovery may take either path
        # (newer snapshot, or old snapshot + replay); both yield the
        # same view, which is the invariant that matters.
        assert (tmp_path / snapshot_name(1)).exists()
        assert store.manifest_generation() == 0
        assert WriteAheadLog.scan(store.wal_path).base_generation == 0
        self._assert_view(tmp_path, live)

    def _assert_view(self, directory, live):
        recovered = GNNEngine.recover(directory, fsync="off")
        reference = _reference_engine(live)
        group = np.array([[300.0, 500.0], [600.0, 500.0]])
        for name in ("best-first", "brute-force"):
            spec = QuerySpec(group=group, k=6, algorithm=name)
            _assert_identical(recovered.execute(spec), reference.execute(spec), name)
        recovered.wal.close()
