"""Tests for repro.geometry.point."""

import numpy as np
import pytest

from repro.geometry.point import GeometryError, as_point, as_points, point_equal


class TestAsPoint:
    def test_list_is_converted_to_float_array(self):
        point = as_point([1, 2])
        assert point.dtype == np.float64
        assert point.tolist() == [1.0, 2.0]

    def test_tuple_and_array_inputs_are_equivalent(self):
        assert np.array_equal(as_point((3.5, -1.0)), as_point(np.array([3.5, -1.0])))

    def test_dimensionality_is_enforced_when_requested(self):
        with pytest.raises(GeometryError):
            as_point([1.0, 2.0, 3.0], dims=2)

    def test_matching_dims_accepted(self):
        assert as_point([1.0, 2.0], dims=2).shape == (2,)

    def test_two_dimensional_input_is_rejected(self):
        with pytest.raises(GeometryError):
            as_point([[1.0, 2.0]])

    def test_empty_input_is_rejected(self):
        with pytest.raises(GeometryError):
            as_point([])

    def test_nan_coordinates_are_rejected(self):
        with pytest.raises(GeometryError):
            as_point([1.0, float("nan")])

    def test_infinite_coordinates_are_rejected(self):
        with pytest.raises(GeometryError):
            as_point([float("inf"), 0.0])


class TestAsPoints:
    def test_single_point_is_promoted_to_one_row(self):
        points = as_points([1.0, 2.0])
        assert points.shape == (1, 2)

    def test_list_of_points_keeps_shape(self):
        points = as_points([[1, 2], [3, 4], [5, 6]])
        assert points.shape == (3, 2)
        assert points.dtype == np.float64

    def test_empty_collection_is_rejected(self):
        with pytest.raises(GeometryError):
            as_points(np.empty((0, 2)))

    def test_zero_dimensional_points_are_rejected(self):
        with pytest.raises(GeometryError):
            as_points(np.empty((3, 0)))

    def test_dims_mismatch_is_rejected(self):
        with pytest.raises(GeometryError):
            as_points([[1, 2, 3]], dims=2)

    def test_three_dimensional_array_is_rejected(self):
        with pytest.raises(GeometryError):
            as_points(np.zeros((2, 2, 2)))

    def test_nan_rejected(self):
        with pytest.raises(GeometryError):
            as_points([[1.0, np.nan]])


class TestPointEqual:
    def test_identical_points_are_equal(self):
        assert point_equal([1.0, 2.0], [1.0, 2.0])

    def test_points_within_tolerance_are_equal(self):
        assert point_equal([1.0, 2.0], [1.0 + 1e-13, 2.0])

    def test_points_outside_tolerance_differ(self):
        assert not point_equal([1.0, 2.0], [1.1, 2.0])

    def test_dimension_mismatch_is_not_equal(self):
        assert not point_equal([1.0, 2.0], [1.0, 2.0, 3.0])
