"""Tests for repro.rtree.tree: construction, insertion, deletion, range search."""

import numpy as np
import pytest

from repro.geometry.mbr import MBR
from repro.rtree.rstar import choose_subtree, reinsert_candidates
from repro.rtree.entry import ChildEntry, LeafEntry
from repro.rtree.node import Node
from repro.rtree.tree import RTree
from repro.storage.buffer import LRUBuffer


class TestConstructionValidation:
    def test_capacity_must_be_at_least_four(self):
        with pytest.raises(ValueError):
            RTree(capacity=3)

    def test_min_fill_ratio_must_be_reasonable(self):
        with pytest.raises(ValueError):
            RTree(min_fill_ratio=0.9)

    def test_unknown_split_rejected(self):
        with pytest.raises(ValueError):
            RTree(split="linear")

    def test_unknown_bulk_method_rejected(self):
        with pytest.raises(ValueError):
            RTree.bulk_load(np.zeros((4, 2)), method="tgs")

    def test_empty_tree_properties(self):
        tree = RTree()
        assert len(tree) == 0
        assert tree.root_mbr() is None
        assert tree.range_search(MBR([0, 0], [1, 1])) == []


class TestBulkLoad:
    @pytest.mark.parametrize("method", ["str", "hilbert"])
    def test_bulk_load_indexes_every_point(self, method):
        points = np.random.default_rng(0).uniform(0, 100, size=(500, 2))
        tree = RTree.bulk_load(points, capacity=10, method=method)
        assert len(tree) == 500
        stored = sorted(record_id for record_id, _ in tree.all_points())
        assert stored == list(range(500))
        tree.validate()

    @pytest.mark.parametrize("method", ["str", "hilbert"])
    def test_bulk_load_respects_capacity(self, method):
        points = np.random.default_rng(1).uniform(0, 100, size=(300, 2))
        tree = RTree.bulk_load(points, capacity=8, method=method)
        for node in tree.iter_nodes():
            assert len(node.entries) <= 8

    def test_bulk_load_builds_balanced_tree(self):
        points = np.random.default_rng(2).uniform(0, 100, size=(1000, 2))
        tree = RTree.bulk_load(points, capacity=10)
        depths = set()

        def walk(node, depth):
            if node.is_leaf:
                depths.add(depth)
                return
            for child in node.children():
                walk(child, depth + 1)

        walk(tree.root, 0)
        assert len(depths) == 1

    def test_single_point_bulk_load(self):
        tree = RTree.bulk_load(np.array([[1.0, 2.0]]), capacity=8)
        assert len(tree) == 1
        assert tree.root.is_leaf


class TestInsertion:
    def test_inserting_points_keeps_invariants(self):
        rng = np.random.default_rng(3)
        tree = RTree(capacity=8)
        points = rng.uniform(0, 100, size=(300, 2))
        for point in points:
            tree.insert(point)
        assert len(tree) == 300
        tree.validate()

    def test_insert_returns_sequential_record_ids(self):
        tree = RTree(capacity=8)
        ids = [tree.insert([float(i), float(i)]) for i in range(10)]
        assert ids == list(range(10))

    def test_insert_with_explicit_record_id(self):
        tree = RTree(capacity=8)
        assert tree.insert([1.0, 1.0], record_id=42) == 42

    def test_insert_grows_tree_height(self):
        tree = RTree(capacity=4)
        rng = np.random.default_rng(4)
        for point in rng.uniform(0, 100, size=(100, 2)):
            tree.insert(point)
        assert tree.height >= 3
        tree.validate()

    def test_inserted_points_are_all_retrievable(self):
        tree = RTree(capacity=6)
        rng = np.random.default_rng(5)
        points = rng.uniform(0, 50, size=(120, 2))
        for point in points:
            tree.insert(point)
        found = tree.range_search(MBR([0.0, 0.0], [50.0, 50.0]))
        assert len(found) == 120

    def test_duplicate_points_are_allowed(self):
        tree = RTree(capacity=5)
        for _ in range(30):
            tree.insert([7.0, 7.0])
        assert len(tree) == 30
        tree.validate()

    def test_insert_after_bulk_load(self):
        points = np.random.default_rng(6).uniform(0, 10, size=(100, 2))
        tree = RTree.bulk_load(points, capacity=8)
        tree.insert([5.0, 5.0], record_id=1000)
        assert len(tree) == 101
        ids = {record_id for record_id, _ in tree.all_points()}
        assert 1000 in ids

    def test_dimension_mismatch_rejected(self):
        tree = RTree(dims=2)
        with pytest.raises(Exception):
            tree.insert([1.0, 2.0, 3.0])


class TestDeletion:
    def test_delete_removes_point(self):
        tree = RTree(capacity=6)
        rng = np.random.default_rng(7)
        points = rng.uniform(0, 100, size=(80, 2))
        for point in points:
            tree.insert(point)
        assert tree.delete(points[10], 10)
        assert len(tree) == 79
        remaining = {record_id for record_id, _ in tree.all_points()}
        assert 10 not in remaining
        tree.validate()

    def test_delete_missing_point_returns_false(self):
        tree = RTree(capacity=6)
        tree.insert([1.0, 1.0])
        assert not tree.delete([2.0, 2.0], 99)
        assert len(tree) == 1

    def test_delete_many_keeps_invariants(self):
        tree = RTree(capacity=6)
        rng = np.random.default_rng(8)
        points = rng.uniform(0, 100, size=(200, 2))
        for point in points:
            tree.insert(point)
        for record_id in range(0, 150):
            assert tree.delete(points[record_id], record_id)
        assert len(tree) == 50
        tree.validate()
        remaining = sorted(record_id for record_id, _ in tree.all_points())
        assert remaining == list(range(150, 200))

    def test_delete_everything_leaves_empty_tree(self):
        tree = RTree(capacity=5)
        points = np.random.default_rng(9).uniform(0, 10, size=(40, 2))
        for point in points:
            tree.insert(point)
        for record_id, point in enumerate(points):
            assert tree.delete(point, record_id)
        assert len(tree) == 0
        assert list(tree.all_points()) == []


class TestRangeSearch:
    def test_range_search_matches_linear_scan(self):
        rng = np.random.default_rng(10)
        points = rng.uniform(0, 100, size=(400, 2))
        tree = RTree.bulk_load(points, capacity=10)
        region = MBR([20.0, 30.0], [60.0, 70.0])
        found = {entry.record_id for entry in tree.range_search(region)}
        expected = {
            i for i, p in enumerate(points) if region.contains_point(p)
        }
        assert found == expected

    def test_range_search_counts_node_accesses(self):
        points = np.random.default_rng(11).uniform(0, 100, size=(400, 2))
        tree = RTree.bulk_load(points, capacity=10)
        tree.reset_stats()
        tree.range_search(MBR([0.0, 0.0], [100.0, 100.0]))
        assert tree.stats.node_accesses == tree.node_count()

    def test_selective_range_search_touches_few_nodes(self):
        points = np.random.default_rng(12).uniform(0, 100, size=(2000, 2))
        tree = RTree.bulk_load(points, capacity=20)
        tree.reset_stats()
        tree.range_search(MBR([50.0, 50.0], [51.0, 51.0]))
        assert tree.stats.node_accesses < tree.node_count() / 4


class TestBufferIntegration:
    def test_buffer_hits_reduce_page_faults(self):
        points = np.random.default_rng(13).uniform(0, 100, size=(500, 2))
        buffer = LRUBuffer(capacity=10_000)
        tree = RTree.bulk_load(points, capacity=10, buffer=buffer)
        region = MBR([0.0, 0.0], [100.0, 100.0])
        tree.range_search(region)
        first_faults = tree.stats.page_faults
        tree.range_search(region)
        assert tree.stats.page_faults == first_faults  # second pass fully buffered
        assert tree.stats.node_accesses == 2 * first_faults


class TestChooseSubtreeAndReinsert:
    def test_choose_subtree_prefers_containing_child(self):
        left = Node(0, [LeafEntry([0.0, 0.0], 0), LeafEntry([1.0, 1.0], 1)])
        right = Node(0, [LeafEntry([10.0, 10.0], 2), LeafEntry([11.0, 11.0], 3)])
        parent = Node(
            1,
            [
                ChildEntry(left.compute_mbr(), left),
                ChildEntry(right.compute_mbr(), right),
            ],
        )
        target = MBR.from_point([0.5, 0.5])
        assert choose_subtree(parent, target).child is left

    def test_choose_subtree_on_empty_node_rejected(self):
        with pytest.raises(ValueError):
            choose_subtree(Node(1), MBR.from_point([0.0, 0.0]))

    def test_reinsert_candidates_removes_farthest_entries(self):
        entries = [LeafEntry([float(i), 0.0], i) for i in range(10)]
        node = Node(0, entries)
        kept, removed = reinsert_candidates(node, node.compute_mbr(), count=3)
        assert len(kept) == 7
        assert len(removed) == 3
        # The removed entries are those farthest from the node centre (4.5).
        removed_ids = {entry.record_id for entry in removed}
        assert removed_ids == {0, 1, 9} or removed_ids == {0, 8, 9}
