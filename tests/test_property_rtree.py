"""Property-based tests for the R-tree: structural invariants and search exactness."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.mbr import MBR
from repro.rtree.traversal import best_first_nearest, incremental_nearest
from repro.rtree.tree import RTree

coordinate = st.floats(min_value=0.0, max_value=1000.0, allow_nan=False, width=32)
point_list = st.lists(
    st.tuples(coordinate, coordinate), min_size=1, max_size=120
).map(lambda rows: np.array(rows, dtype=np.float64))


class TestStructuralInvariants:
    @given(points=point_list)
    @settings(max_examples=60, deadline=None)
    def test_bulk_loaded_tree_is_valid_and_complete(self, points):
        tree = RTree.bulk_load(points, capacity=8)
        tree.validate()
        stored = sorted(record_id for record_id, _ in tree.all_points())
        assert stored == list(range(len(points)))

    @given(points=point_list)
    @settings(max_examples=40, deadline=None)
    def test_incrementally_built_tree_is_valid(self, points):
        tree = RTree(capacity=6)
        for point in points:
            tree.insert(point)
        tree.validate()
        assert len(tree) == len(points)

    @given(points=point_list, data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_tree_remains_valid_after_random_deletions(self, points, data):
        tree = RTree(capacity=6)
        for point in points:
            tree.insert(point)
        count = len(points)
        delete_count = data.draw(st.integers(min_value=0, max_value=count))
        victims = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=count - 1),
                min_size=delete_count,
                max_size=delete_count,
                unique=True,
            )
        )
        for record_id in victims:
            assert tree.delete(points[record_id], record_id)
        assert len(tree) == count - len(victims)
        tree.validate()


class TestSearchExactness:
    @given(points=point_list, query=st.tuples(coordinate, coordinate))
    @settings(max_examples=60, deadline=None)
    def test_best_first_nn_matches_linear_scan(self, points, query):
        tree = RTree.bulk_load(points, capacity=8)
        query = np.array(query, dtype=np.float64)
        result = best_first_nearest(tree, query, k=1)[0]
        expected = np.min(np.linalg.norm(points - query, axis=1))
        assert result.distance == np.float64(expected) or abs(result.distance - expected) < 1e-6

    @given(points=point_list, query=st.tuples(coordinate, coordinate))
    @settings(max_examples=40, deadline=None)
    def test_incremental_stream_is_sorted_permutation(self, points, query):
        tree = RTree.bulk_load(points, capacity=8)
        stream = list(incremental_nearest(tree, np.array(query, dtype=np.float64)))
        distances = [n.distance for n in stream]
        assert distances == sorted(distances)
        assert sorted(n.record_id for n in stream) == list(range(len(points)))

    @given(
        points=point_list,
        low=st.tuples(coordinate, coordinate),
        high=st.tuples(coordinate, coordinate),
    )
    @settings(max_examples=60, deadline=None)
    def test_range_search_matches_linear_scan(self, points, low, high):
        region = MBR(np.minimum(low, high), np.maximum(low, high))
        tree = RTree.bulk_load(points, capacity=8)
        found = {entry.record_id for entry in tree.range_search(region)}
        expected = {i for i, p in enumerate(points) if region.contains_point(p)}
        assert found == expected
