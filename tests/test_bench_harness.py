"""Tests for the experiment harness: config, runner, experiments, report, CLI."""

import numpy as np
import pytest

from repro.bench.config import BenchScale, available_scales, get_scale
from repro.bench.experiments import EXPERIMENTS, run_experiment
from repro.bench.report import format_table, results_to_markdown
from repro.bench.runner import run_disk_setting, run_memory_setting
from repro.datasets.synthetic import uniform_points
from repro.rtree.tree import RTree


#: A deliberately tiny scale so harness tests run in a few seconds.
TINY = BenchScale(
    name="tiny",
    pp_size=400,
    ts_size=1_200,
    queries_per_setting=1,
    cardinalities=(4, 16),
    mbr_fractions=(0.04, 0.16),
    k_values=(1, 4),
    overlap_fractions=(0.0, 1.0),
    node_capacity=16,
    block_pages=4,
    gcp_max_pairs=20_000,
    fixed_k=4,
    fixed_n=8,
    fixed_mbr_fraction=0.08,
)


class TestConfig:
    def test_known_scales_exist(self):
        assert {"smoke", "quick", "paper"} <= set(available_scales())

    def test_get_scale_returns_named_scale(self):
        assert get_scale("smoke").name == "smoke"

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            get_scale("enormous")

    def test_paper_scale_matches_paper_cardinalities(self):
        paper = get_scale("paper")
        assert paper.pp_size == 24_493
        assert paper.ts_size == 194_971
        assert paper.queries_per_setting == 100
        assert paper.node_capacity == 50


class TestRunner:
    @pytest.fixture(scope="class")
    def tree_and_data(self):
        data = uniform_points(600, seed=2)
        return RTree.bulk_load(data, capacity=16), data

    def test_memory_setting_averages_all_algorithms(self, tree_and_data):
        tree, data = tree_and_data
        rng = np.random.default_rng(0)
        groups = [rng.uniform(2000, 4000, size=(8, 2)) for _ in range(3)]
        result = run_memory_setting(tree, groups, k=2, setting={"n": 8})
        assert set(result.averages) == {"MQM", "SPM", "MBM"}
        for averages in result.averages.values():
            assert averages.queries == 3
            assert averages.node_accesses > 0
            assert averages.cpu_time > 0

    def test_memory_setting_supports_ablation_algorithms(self, tree_and_data):
        tree, _ = tree_and_data
        rng = np.random.default_rng(1)
        groups = [rng.uniform(2000, 4000, size=(6, 2))]
        result = run_memory_setting(
            tree, groups, k=1, algorithms=("MBM", "MBM-H2", "SPM-mean")
        )
        assert set(result.averages) == {"MBM", "MBM-H2", "SPM-mean"}

    def test_memory_setting_unknown_algorithm_rejected(self, tree_and_data):
        tree, _ = tree_and_data
        with pytest.raises(ValueError):
            run_memory_setting(tree, [np.zeros((2, 2))], k=1, algorithms=("MBM", "XYZ"))

    def test_disk_setting_runs_all_algorithms(self, tree_and_data):
        tree, data = tree_and_data
        rng = np.random.default_rng(2)
        # Keep the query workspace small relative to the data workspace so
        # GCP terminates quickly (the favourable case of Figure 4.3a).
        center = data.mean(axis=0)
        queries = rng.uniform(center - 300, center + 300, size=(120, 2))
        result = run_disk_setting(
            tree,
            queries,
            k=2,
            block_pages=2,
            points_per_page=32,
            query_tree_capacity=16,
            gcp_max_pairs=30_000,
        )
        assert set(result.averages) == {"GCP", "F-MQM", "F-MBM"}
        assert result.averages["F-MBM"].page_reads > 0

    def test_disk_setting_unknown_algorithm_rejected(self, tree_and_data):
        tree, _ = tree_and_data
        with pytest.raises(ValueError):
            run_disk_setting(tree, np.zeros((4, 2)) + 1.0, k=1, algorithms=("SORT-MERGE",))


class TestExperiments:
    def test_registry_covers_every_figure(self):
        expected = {
            "fig5_1_pp",
            "fig5_1_ts",
            "fig5_2_pp",
            "fig5_2_ts",
            "fig5_3_pp",
            "fig5_3_ts",
            "fig5_4",
            "fig5_5",
            "fig5_6",
            "fig5_7",
            "ablation_heuristics",
            "ablation_centroid",
        }
        assert expected <= set(EXPERIMENTS)

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ValueError):
            run_experiment("fig9_9", TINY)

    def test_memory_figure_produces_expected_rows(self):
        result = run_experiment("fig5_1_pp", TINY)
        assert result.x_label == "n"
        assert set(result.algorithms()) == {"MQM", "SPM", "MBM"}
        # one row per (x value, algorithm)
        assert len(result.rows) == len(TINY.cardinalities) * 3
        assert all(row["node_accesses"] > 0 for row in result.rows)

    def test_memory_figure_series_extraction(self):
        result = run_experiment("fig5_3_pp", TINY)
        series = result.series("MBM", metric="node_accesses")
        assert [x for x, _ in series] == list(TINY.k_values)

    def test_disk_figure_produces_expected_rows(self):
        result = run_experiment("fig5_5", TINY)
        assert set(result.algorithms()) == {"F-MQM", "F-MBM"}
        assert len(result.rows) == len(TINY.mbr_fractions) * 2

    def test_ablation_heuristics_rows(self):
        result = run_experiment("ablation_heuristics", TINY)
        assert set(result.algorithms()) == {"MBM", "MBM-H2", "SPM"}

    def test_scale_can_be_given_by_name(self):
        # 'smoke' is heavier than TINY, so only check the lookup wiring by
        # inspecting the registry entry rather than executing it here.
        assert callable(EXPERIMENTS["fig5_2_ts"])


class TestReport:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("fig5_1_pp", TINY)

    def test_format_table_contains_all_algorithms(self, result):
        text = format_table(result)
        for algorithm in ("MQM", "SPM", "MBM"):
            assert algorithm in text
        assert "node_accesses" in text

    def test_markdown_has_table_syntax(self, result):
        markdown = results_to_markdown(result)
        assert markdown.count("|") > 10
        assert markdown.startswith("### fig5_1_pp")


class TestCommandLine:
    def test_list_option(self, capsys):
        from repro.bench.__main__ import main

        assert main(["--list"]) == 0
        output = capsys.readouterr().out
        assert "fig5_4" in output

    def test_unknown_experiment_returns_error_code(self, capsys):
        from repro.bench.__main__ import main

        assert main(["fig5_99"]) == 2

    def test_no_arguments_lists_experiments(self, capsys):
        from repro.bench.__main__ import main

        assert main([]) == 0
        assert "fig5_1_pp" in capsys.readouterr().out

    def test_single_experiment_run_writes_markdown(self, capsys, tmp_path):
        # Uses the smoke scale (the smallest registered one); the PP memory
        # figure finishes in well under a second at that size.
        from repro.bench.__main__ import main

        markdown_path = tmp_path / "results.md"
        assert main(["fig5_1_pp", "--scale", "smoke", "--markdown", str(markdown_path)]) == 0
        output = capsys.readouterr().out
        assert "fig5_1_pp" in output and "MBM" in output
        content = markdown_path.read_text(encoding="utf-8")
        assert content.startswith("### fig5_1_pp")
        assert "| node_accesses |" in content or "node_accesses" in content


class TestBaselineCompare:
    """The --compare regression gate over baseline documents."""

    @staticmethod
    def _document(mqm=3.0, mbm=2.9, batch=4.5, serving=2.6, schema=3):
        return {
            "schema": schema,
            "memory_fig5_1": {
                "algorithms": {
                    "MQM": {"flat_speedup": mqm},
                    "MBM": {"flat_speedup": mbm},
                }
            },
            "batch_flat": {"batch_speedup": batch},
            "serving": {"throughput_speedup_4w_vs_1w": serving},
        }

    def test_collect_speedups_flattens_every_ratio(self):
        from repro.bench.baseline import collect_speedups

        speedups = collect_speedups(self._document())
        assert speedups == {
            "flat_speedup/MBM": 2.9,
            "flat_speedup/MQM": 3.0,
            "batch_speedup": 4.5,
            "serving_speedup": 2.6,
        }

    def test_identical_documents_pass(self):
        from repro.bench.baseline import compare_baseline

        document = self._document()
        assert compare_baseline(document, document) == []

    def test_small_noise_within_floor_passes(self):
        from repro.bench.baseline import compare_baseline

        reference = self._document(mqm=3.0)
        current = self._document(mqm=2.75)  # above the 0.9 floor of 2.7
        assert compare_baseline(current, reference) == []

    def test_regression_below_floor_fails_with_named_ratio(self):
        from repro.bench.baseline import compare_baseline

        reference = self._document(mqm=3.0, batch=4.5)
        current = self._document(mqm=1.1, batch=1.0)
        failures = compare_baseline(current, reference)
        assert len(failures) == 2
        assert any("flat_speedup/MQM" in failure for failure in failures)
        assert any("batch_speedup" in failure for failure in failures)

    def test_missing_section_fails(self):
        from repro.bench.baseline import compare_baseline

        reference = self._document()
        current = self._document()
        del current["batch_flat"]
        failures = compare_baseline(current, reference)
        assert failures == ["batch_speedup: missing from the current measurement"]

    def test_serving_regression_is_gated(self):
        from repro.bench.baseline import compare_baseline

        reference = self._document(serving=2.6)
        current = self._document(serving=1.2)
        failures = compare_baseline(current, reference)
        assert any("serving_speedup" in failure for failure in failures)

    def test_older_schema_baseline_warns_but_does_not_fail(self):
        """--compare against a schema-2 baseline (no serving section)
        must tolerate the missing sections: warn, don't crash or fail."""
        from repro.bench.baseline import baseline_warnings, compare_baseline

        reference = self._document(schema=2)
        del reference["serving"]
        current = self._document()
        assert compare_baseline(current, reference) == []
        warnings = baseline_warnings(current, reference)
        assert any("schema" in warning for warning in warnings)
        assert any("serving_speedup" in warning for warning in warnings)

    def test_same_schema_no_warnings(self):
        from repro.bench.baseline import baseline_warnings

        document = self._document()
        assert baseline_warnings(document, document) == []

    def test_cli_compare_requires_quick(self, capsys):
        from repro.bench.__main__ import main

        assert main(["--compare", "whatever.json"]) == 2
        assert "--compare requires --quick" in capsys.readouterr().err


class TestBaselineWrite:
    """Atomic persistence of BENCH_quick.json."""

    def test_write_json_atomic_roundtrips(self, tmp_path):
        import json

        from repro.bench.baseline import write_json_atomic

        path = tmp_path / "baseline.json"
        write_json_atomic(str(path), {"schema": 3, "value": 1.5})
        assert json.loads(path.read_text(encoding="utf-8")) == {"schema": 3, "value": 1.5}

    def test_interrupted_write_never_truncates_existing_file(self, tmp_path):
        """A failure mid-write must leave the previous complete file (and
        no temp litter) behind — never a truncated baseline."""
        import json

        from repro.bench.baseline import write_json_atomic

        path = tmp_path / "baseline.json"
        write_json_atomic(str(path), {"schema": 3, "generation": 1})
        with pytest.raises(TypeError):
            write_json_atomic(str(path), {"bad": object()})  # not JSON-serialisable
        assert json.loads(path.read_text(encoding="utf-8")) == {
            "schema": 3,
            "generation": 1,
        }
        assert list(tmp_path.iterdir()) == [path]
