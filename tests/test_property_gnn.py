"""Property-based tests for the GNN algorithms.

The central invariant of the whole reproduction: every algorithm of the
paper returns exactly the same k distances as the brute-force scan, for
arbitrary data points, query groups and k.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aggregates import aggregate_gnn
from repro.core.bruteforce import brute_force_gnn
from repro.core.fmbm import fmbm
from repro.core.fmqm import fmqm
from repro.core.gcp import gcp
from repro.core.mbm import mbm
from repro.core.mqm import mqm
from repro.core.spm import spm
from repro.core.types import GroupQuery
from repro.rtree.tree import RTree
from repro.storage.pointfile import PointFile

coordinate = st.floats(min_value=0.0, max_value=1000.0, allow_nan=False, width=32)


def array_strategy(min_count, max_count):
    return st.lists(
        st.tuples(coordinate, coordinate), min_size=min_count, max_size=max_count
    ).map(lambda rows: np.array(rows, dtype=np.float64))


class TestMemoryAlgorithmsMatchBruteForce:
    @given(
        data=array_strategy(1, 80),
        group=array_strategy(1, 10),
        k=st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=50, deadline=None)
    def test_mqm_spm_mbm_agree_with_bruteforce(self, data, group, k):
        tree = RTree.bulk_load(data, capacity=8)
        expected = brute_force_gnn(data, GroupQuery(group, k=k)).distances()
        for algorithm in (mqm, spm, mbm):
            result = algorithm(tree, GroupQuery(group, k=k))
            assert result.distances() == pytest.approx(expected), algorithm.__name__

    @given(
        data=array_strategy(1, 60),
        group=array_strategy(1, 8),
        k=st.integers(min_value=1, max_value=3),
        aggregate=st.sampled_from(["sum", "max", "min"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_aggregate_best_first_matches_bruteforce(self, data, group, k, aggregate):
        tree = RTree.bulk_load(data, capacity=8)
        query = GroupQuery(group, k=k, aggregate=aggregate)
        expected = brute_force_gnn(data, GroupQuery(group, k=k, aggregate=aggregate))
        assert aggregate_gnn(tree, query).distances() == pytest.approx(expected.distances())


class TestDiskAlgorithmsMatchBruteForce:
    @given(
        data=array_strategy(2, 60),
        queries=array_strategy(2, 40),
        k=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=25, deadline=None)
    def test_fmqm_and_fmbm_agree_with_bruteforce(self, data, queries, k):
        tree = RTree.bulk_load(data, capacity=8)
        expected = brute_force_gnn(data, GroupQuery(queries, k=k)).distances()
        for algorithm in (fmqm, fmbm):
            query_file = PointFile(queries, points_per_page=4, block_pages=2)
            result = algorithm(tree, query_file, k=k)
            assert result.distances() == pytest.approx(expected), algorithm.__name__

    @given(
        data=array_strategy(2, 40),
        queries=array_strategy(2, 25),
        k=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=20, deadline=None)
    def test_gcp_agrees_with_bruteforce(self, data, queries, k):
        data_tree = RTree.bulk_load(data, capacity=8)
        query_tree = RTree.bulk_load(queries, capacity=8)
        expected = brute_force_gnn(data, GroupQuery(queries, k=k)).distances()
        result = gcp(data_tree, query_tree, k=k)
        assert result.distances() == pytest.approx(expected)
