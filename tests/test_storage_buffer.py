"""Tests for repro.storage.buffer."""

import pytest

from repro.storage.buffer import LRUBuffer


class TestLRUBuffer:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            LRUBuffer(0)

    def test_first_access_is_a_miss(self):
        buffer = LRUBuffer(4)
        assert buffer.access(1) is False
        assert buffer.misses == 1

    def test_repeated_access_is_a_hit(self):
        buffer = LRUBuffer(4)
        buffer.access(1)
        assert buffer.access(1) is True
        assert buffer.hits == 1

    def test_eviction_removes_least_recently_used(self):
        buffer = LRUBuffer(2)
        buffer.access(1)
        buffer.access(2)
        buffer.access(1)  # 1 becomes most recent
        buffer.access(3)  # evicts 2
        assert 2 not in buffer
        assert 1 in buffer
        assert 3 in buffer

    def test_len_never_exceeds_capacity(self):
        buffer = LRUBuffer(3)
        for page in range(10):
            buffer.access(page)
        assert len(buffer) == 3

    def test_hit_ratio(self):
        buffer = LRUBuffer(4)
        buffer.access(1)
        buffer.access(1)
        buffer.access(1)
        buffer.access(2)
        assert buffer.hit_ratio() == pytest.approx(0.5)

    def test_hit_ratio_of_untouched_buffer_is_zero(self):
        assert LRUBuffer(4).hit_ratio() == 0.0

    def test_clear_resets_contents_and_counters(self):
        buffer = LRUBuffer(4)
        buffer.access(1)
        buffer.access(1)
        buffer.clear()
        assert len(buffer) == 0
        assert buffer.hits == 0
        assert buffer.misses == 0

    def test_repr_mentions_capacity(self):
        assert "capacity=4" in repr(LRUBuffer(4))


class TestOverCapacityAccounting:
    """Regression tests for the over-capacity eviction edge.

    When the buffer is over capacity mid-sequence (a shrink while pages
    are resident, or a pathological single-page buffer), an access must
    never evict the page it just touched — the hit/miss sequence would
    otherwise report a fault for a page the buffer claims to have
    loaded.  The sequences below are pinned exactly.
    """

    def test_just_inserted_page_survives_single_page_buffer(self):
        buffer = LRUBuffer(1)
        sequence = [buffer.access(page) for page in (7, 8, 7, 7)]
        assert sequence == [False, False, False, True]
        assert 7 in buffer and len(buffer) == 1

    def test_shrink_mid_sequence_pins_hit_miss_sequence(self):
        buffer = LRUBuffer(4)
        for page in (1, 2, 3, 4):
            buffer.access(page)
        buffer.resize(2)  # evicts 1 and 2, keeps the MRU pages 3 and 4
        assert len(buffer) == 2
        sequence = [buffer.access(page) for page in (4, 3, 2, 2, 1)]
        assert sequence == [True, True, False, True, False]
        assert buffer.hits == 3 and buffer.misses == 6

    def test_direct_capacity_shrink_self_heals_without_evicting_touched_page(self):
        buffer = LRUBuffer(4)
        for page in (1, 2, 3, 4):
            buffer.access(page)
        # A caller assigning the attribute directly (no resize) leaves the
        # buffer over capacity; the next access must trim only strictly
        # older pages and never the page just touched.
        buffer.capacity = 1
        assert buffer.access(1) is True  # 1 is resident: a hit, and it stays
        assert 1 in buffer and len(buffer) == 1
        assert buffer.access(9) is False  # miss loads 9, evicting 1
        assert 9 in buffer and 1 not in buffer and len(buffer) == 1

    def test_hit_while_over_capacity_keeps_touched_page(self):
        buffer = LRUBuffer(3)
        for page in (1, 2, 3):
            buffer.access(page)
        buffer.capacity = 1
        assert buffer.access(2) is True  # resident page; still a hit
        assert 2 in buffer and len(buffer) == 1

    def test_resize_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            LRUBuffer(4).resize(0)

    def test_resize_grow_keeps_pages(self):
        buffer = LRUBuffer(2)
        buffer.access(1)
        buffer.access(2)
        buffer.resize(4)
        for page in (3, 4):
            buffer.access(page)
        assert [buffer.access(page) for page in (1, 2, 3, 4)] == [True] * 4
