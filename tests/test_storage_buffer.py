"""Tests for repro.storage.buffer."""

import pytest

from repro.storage.buffer import LRUBuffer


class TestLRUBuffer:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            LRUBuffer(0)

    def test_first_access_is_a_miss(self):
        buffer = LRUBuffer(4)
        assert buffer.access(1) is False
        assert buffer.misses == 1

    def test_repeated_access_is_a_hit(self):
        buffer = LRUBuffer(4)
        buffer.access(1)
        assert buffer.access(1) is True
        assert buffer.hits == 1

    def test_eviction_removes_least_recently_used(self):
        buffer = LRUBuffer(2)
        buffer.access(1)
        buffer.access(2)
        buffer.access(1)  # 1 becomes most recent
        buffer.access(3)  # evicts 2
        assert 2 not in buffer
        assert 1 in buffer
        assert 3 in buffer

    def test_len_never_exceeds_capacity(self):
        buffer = LRUBuffer(3)
        for page in range(10):
            buffer.access(page)
        assert len(buffer) == 3

    def test_hit_ratio(self):
        buffer = LRUBuffer(4)
        buffer.access(1)
        buffer.access(1)
        buffer.access(1)
        buffer.access(2)
        assert buffer.hit_ratio() == pytest.approx(0.5)

    def test_hit_ratio_of_untouched_buffer_is_zero(self):
        assert LRUBuffer(4).hit_ratio() == 0.0

    def test_clear_resets_contents_and_counters(self):
        buffer = LRUBuffer(4)
        buffer.access(1)
        buffer.access(1)
        buffer.clear()
        assert len(buffer) == 0
        assert buffer.hits == 0
        assert buffer.misses == 0

    def test_repr_mentions_capacity(self):
        assert "capacity=4" in repr(LRUBuffer(4))
