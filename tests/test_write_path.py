"""The mutable write path: PointStore, DeltaOverlay, engine mutations,
overlay execution, compaction, and the serving/sharding write APIs.

Three historical engine bugs are pinned here as regression tests:

* calling ``tree.delete`` directly (the only delete path that existed)
  left ``engine.points`` and the cached flat snapshot stale, so
  snapshot-routed queries kept returning deleted records —
  ``engine.delete`` now updates every view together;
* ``engine.insert`` used to assign ``record_id = len(self.points)``,
  which collides with a live record after any deletion — ids now come
  from a monotonic never-reused counter;
* ``engine.insert`` used to ``np.vstack`` the whole dataset per call
  (O(n²) ingest) — :class:`PointStore` appends into an amortised
  doubling buffer.

The overlay invariant checked throughout: queries over a dirty
(base + delta − tombstones) view are bit-identical — record ids *and*
distances — to a from-scratch rebuild over the live dataset.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.spec import QuerySpec
from repro.core.bruteforce import brute_force_gnn
from repro.core.engine import GNNEngine
from repro.core.store import PointStore
from repro.core.types import GroupQuery
from repro.rtree.flat import FlatRTree
from repro.rtree.overlay import DeltaOverlay

SEED = 20040301


@pytest.fixture()
def rng():
    return np.random.default_rng(SEED)


@pytest.fixture()
def dataset(rng):
    return rng.uniform(0, 1000, size=(400, 2))


ALGORITHMS = ("mqm", "spm", "mbm", "best-first", "brute-force")


def _rebuilt_reference(engine, capacity=16):
    """An engine over the live dataset, rebuilt from scratch with ids kept."""
    points, ids = engine.overlay.live_points()
    return GNNEngine.from_index(
        FlatRTree.bulk_load(points, capacity=capacity, record_ids=ids)
    )


def _assert_identical(result, reference, label):
    assert result.record_ids() == reference.record_ids(), label
    assert np.array_equal(result.distances(), reference.distances()), label


# ----------------------------------------------------------------------
# PointStore
# ----------------------------------------------------------------------
class TestPointStore:
    def test_append_and_live_points_identity_fast_path(self, dataset):
        store = PointStore(dataset)
        points, ids = store.live_points()
        assert ids is None  # row index == record id, nothing materialised
        assert np.array_equal(points, dataset)
        assert len(store) == 400

    def test_delete_breaks_identity_and_maps_ids(self, dataset):
        store = PointStore(dataset)
        assert store.delete(5)
        assert not store.delete(5)  # double delete is a no-op
        points, ids = store.live_points()
        assert ids is not None
        assert 5 not in set(ids.tolist())
        assert points.shape[0] == 399
        row = list(ids).index(6)
        assert np.array_equal(points[row], dataset[6])

    def test_next_record_id_is_monotonic_across_deletes(self, dataset):
        store = PointStore(dataset)
        assert store.next_record_id == 400
        store.delete(399)
        # The old rule (len(points)) would re-issue 399 here.
        assert store.next_record_id == 400
        assigned = store.append([1.0, 2.0])
        assert assigned == 400
        store.delete(400)
        assert store.append([3.0, 4.0]) == 401

    def test_append_is_amortised_not_per_call_copy(self):
        store = PointStore(dims=2)
        buffers = set()
        for i in range(100):
            store.append([float(i), float(i)])
            buffers.add(id(store._data))
        # A per-append vstack would allocate 100 buffers; doubling from
        # 16 rows needs only a handful of growth steps.
        assert len(buffers) <= 5
        points, ids = store.live_points()
        assert ids is None and points.shape == (100, 2)

    def test_explicit_record_ids_round_trip(self):
        store = PointStore(
            np.array([[0.0, 0.0], [1.0, 1.0]]), record_ids=np.array([7, 9])
        )
        points, ids = store.live_points()
        assert ids.tolist() == [7, 9]
        assert store.next_record_id == 10


# ----------------------------------------------------------------------
# DeltaOverlay
# ----------------------------------------------------------------------
class TestDeltaOverlay:
    @pytest.fixture()
    def base(self, dataset):
        return FlatRTree.bulk_load(dataset, capacity=16)

    def test_shape_and_dirty_accounting(self, base, dataset):
        overlay = DeltaOverlay(base)
        assert not overlay.dirty and overlay.dirty_ratio == 0.0
        overlay.insert([1.0, 1.0], 400)
        assert overlay.delete(dataset[3], 3)
        assert overlay.dirty
        assert overlay.write_count == 2
        assert len(overlay) == 400  # 400 − 1 + 1
        assert overlay.dirty_ratio == pytest.approx(2 / 400)
        assert overlay.next_record_id == 401

    def test_duplicate_live_id_rejected(self, base):
        overlay = DeltaOverlay(base)
        with pytest.raises(ValueError, match="already live"):
            overlay.insert([1.0, 1.0], 3)  # base-resident
        overlay.insert([1.0, 1.0], 400)
        with pytest.raises(ValueError, match="already live"):
            overlay.insert([2.0, 2.0], 400)  # delta-resident

    def test_delete_semantics(self, base, dataset):
        overlay = DeltaOverlay(base)
        overlay.insert([5.0, 5.0], 400)
        # delta-resident: removed physically, no tombstone
        assert overlay.delete([5.0, 5.0], 400)
        assert len(overlay.delta) == 0 and not overlay.tombstones
        # base-resident: tombstoned, base untouched
        assert overlay.delete(dataset[10], 10)
        assert overlay.tombstones == {10}
        assert base.size == 400
        # wrong coordinates never delete
        assert not overlay.delete(dataset[11] + 1.0, 11)
        # unknown / already-dead ids report False
        assert not overlay.delete(dataset[10], 10)
        assert not overlay.delete([0.0, 0.0], 999)

    def test_live_points_are_id_ordered_and_exact(self, base, dataset):
        overlay = DeltaOverlay(base)
        overlay.delete(dataset[0], 0)
        overlay.insert([9.0, 9.0], 401)
        overlay.insert([8.0, 8.0], 400)
        points, ids = overlay.live_points()
        assert ids.tolist() == list(range(1, 402))
        assert np.array_equal(points[-2], [8.0, 8.0])
        assert np.array_equal(points[-1], [9.0, 9.0])

    def test_group_nn_stream_merges_and_skips_tombstones(self, base, dataset, rng):
        overlay = DeltaOverlay(base)
        for rid in range(0, 40, 2):
            overlay.delete(dataset[rid], rid)
        for i in range(10):
            overlay.insert(rng.uniform(0, 1000, size=2), 400 + i)
        query = GroupQuery(rng.uniform(200, 800, size=(3, 2)), k=15)
        points, ids = overlay.live_points()
        expected = brute_force_gnn(points, query, record_ids=ids)
        got = []
        for neighbor in overlay.group_nn_stream(query):
            got.append((neighbor.record_id, neighbor.distance))
            if len(got) == 15:
                break
        assert [rid for rid, _ in got] == expected.record_ids()
        assert [d for _, d in got] == expected.distances()

    def test_compact_is_structurally_identical_to_rebuild(self, base, dataset):
        overlay = DeltaOverlay(base)
        overlay.delete(dataset[7], 7)
        overlay.insert([123.0, 456.0], 400)
        compacted = overlay.compact()
        points, ids = overlay.live_points()
        rebuilt = FlatRTree.bulk_load(points, capacity=base.capacity, record_ids=ids)
        assert compacted.generation == base.generation + 1
        assert np.array_equal(compacted.points, rebuilt.points)
        assert np.array_equal(compacted.record_ids, rebuilt.record_ids)
        # compaction leaves the overlay itself untouched
        assert overlay.dirty and len(overlay.delta) == 1

    def test_delta_points_cache_invalidation(self, base):
        overlay = DeltaOverlay(base)
        overlay.insert([1.0, 1.0], 400)
        points, ids = overlay.delta_points()
        assert ids.tolist() == [400]
        overlay.insert([2.0, 2.0], 401)
        points, ids = overlay.delta_points()
        assert ids.tolist() == [400, 401]
        overlay.delete([1.0, 1.0], 400)
        points, ids = overlay.delta_points()
        assert ids.tolist() == [401]


# ----------------------------------------------------------------------
# the three pinned engine bugs
# ----------------------------------------------------------------------
class TestEngineMutationBugfixes:
    def test_direct_tree_delete_left_snapshot_stale(self, dataset, rng):
        """The pre-fix wrong answer: ``tree.delete`` alone is not a delete.

        With a flat snapshot materialised, bypassing ``engine.delete``
        demonstrably serves the deleted record from snapshot-routed
        queries — exactly the bug; ``engine.delete`` keeps every view
        consistent.
        """
        group = np.vstack([dataset[42] + 0.5, dataset[42] - 0.5])
        spec = QuerySpec(group=group, k=1)

        buggy = GNNEngine(dataset, capacity=16)
        buggy.execute(spec)  # materialises the snapshot
        assert buggy.tree.delete(dataset[42], 42)  # the old "delete"
        stale = buggy.execute(spec)
        assert stale.record_ids() == [42]  # wrong: still served

        fixed = GNNEngine(dataset, capacity=16)
        fixed.execute(spec)
        assert fixed.delete(dataset[42], 42)
        fresh = fixed.execute(spec)
        assert fresh.record_ids() != [42]
        assert 42 not in {int(i) for i in fixed._store.live_points()[1].tolist()}

    def test_insert_after_delete_never_reuses_a_live_id(self, dataset):
        """The id-collision bug: ``len(self.points)`` is not an id."""
        engine = GNNEngine(dataset, capacity=16)
        assert engine.delete(dataset[0], 0)
        # Old rule: len(points) == 399 — a *live* record's id.
        assigned = engine.insert([111.0, 222.0])
        assert assigned == 400
        live_ids = {int(i) for i, _ in engine.tree.all_points()}
        assert assigned in live_ids and 0 not in live_ids
        spec = QuerySpec(group=[[111.0, 222.0]], k=1, algorithm="brute-force")
        assert engine.execute(spec).record_ids() == [assigned]

    def test_engine_delete_unknown_record_returns_false(self, dataset):
        engine = GNNEngine(dataset, capacity=16)
        assert not engine.delete(dataset[3] + 123.0, 3)  # wrong coordinates
        assert not engine.delete(dataset[3], 999)  # wrong id
        assert len(engine) == 400


# ----------------------------------------------------------------------
# overlay execution: bit-identity and routing
# ----------------------------------------------------------------------
class TestOverlayExecution:
    def _mutate(self, engine, dataset, rng, deletes=30, inserts=30):
        for rid in rng.choice(len(dataset), size=deletes, replace=False):
            assert engine.delete(dataset[rid], int(rid))
        for _ in range(inserts):
            engine.insert(rng.uniform(0, 1000, size=2))

    def test_tree_backed_dirty_engine_matches_rebuild(self, dataset, rng):
        engine = GNNEngine(dataset, capacity=16)
        group = rng.uniform(200, 800, size=(3, 2))
        engine.execute(QuerySpec(group=group, k=2))  # build the snapshot
        self._mutate(engine, dataset, rng)
        assert engine.dirty
        reference = _rebuilt_reference(engine)
        for name in ALGORITHMS:
            spec = QuerySpec(group=group, k=7, algorithm=name)
            _assert_identical(engine.execute(spec), reference.execute(spec), name)

    def test_snapshot_only_dirty_engine_matches_rebuild(self, dataset, rng, tmp_path):
        path = tmp_path / "base.npz"
        GNNEngine(dataset, capacity=16).snapshot().save(path)
        engine = GNNEngine.from_index(FlatRTree.load(path, mmap_mode="r"))
        self._mutate(engine, dataset, rng)
        group = rng.uniform(200, 800, size=(3, 2))
        reference = _rebuilt_reference(engine)
        for name in ALGORITHMS:
            spec = QuerySpec(group=group, k=7, algorithm=name)
            result = engine.execute(spec)
            _assert_identical(result, reference.execute(spec), name)
            assert result.cost.algorithm.endswith("+overlay"), name

    def test_overlay_counters_are_deterministic(self, dataset, rng):
        engine = GNNEngine(dataset, capacity=16)
        group = rng.uniform(200, 800, size=(4, 2))
        engine.execute(QuerySpec(group=group, k=2))
        self._mutate(engine, dataset, rng, deletes=20, inserts=20)
        spec = QuerySpec(group=group, k=5, algorithm="mbm")
        first = engine.execute(spec).cost
        second = engine.execute(spec).cost
        assert first.node_accesses == second.node_accesses
        assert first.distance_computations == second.distance_computations
        assert first.algorithm.endswith("+overlay")

    def test_object_index_bypasses_the_overlay(self, dataset, rng):
        engine = GNNEngine(dataset, capacity=16)
        group = rng.uniform(200, 800, size=(3, 2))
        engine.execute(QuerySpec(group=group, k=2))
        self._mutate(engine, dataset, rng, deletes=10, inserts=10)
        result = engine.execute(QuerySpec(group=group, k=5, index="object"))
        # The object tree is mutated in place — already current, no
        # overlay label, and the same answers as the merged view.
        assert not result.cost.algorithm.endswith("+overlay")
        merged = engine.execute(QuerySpec(group=group, k=5))
        assert result.record_ids() == merged.record_ids()

    def test_excluded_records_are_not_charged_distance_computations(self, dataset, rng):
        from repro.core.mbm import mbm

        flat = FlatRTree.bulk_load(dataset, capacity=16)
        group = rng.uniform(200, 800, size=(3, 2))
        query = GroupQuery(group, k=5)
        clean = mbm(flat, query)
        excluded = {n.record_id for n in clean.neighbors[:2]}
        shifted = mbm(flat, query, exclude=excluded)
        assert len(shifted.neighbors) == 5
        assert not excluded & {n.record_id for n in shifted.neighbors}
        # The excluded records shift the ranking down by exactly two slots.
        assert shifted.record_ids()[:3] == clean.record_ids()[2:5]

    def test_batch_over_dirty_overlay_matches_per_spec(self, dataset, rng):
        engine = GNNEngine(dataset, capacity=16)
        engine.execute(QuerySpec(group=[[500.0, 500.0]], k=1))
        self._mutate(engine, dataset, rng, deletes=15, inserts=15)
        specs = [
            QuerySpec(group=rng.uniform(200, 800, size=(4, 2)), k=3)
            for _ in range(12)
        ]
        batch = engine.execute_many(specs)
        for spec, outcome in zip(specs, batch):
            _assert_identical(outcome, engine.execute(spec), "batch-vs-solo")

    def test_compaction_clears_overlay_and_preserves_answers(self, dataset, rng):
        engine = GNNEngine(dataset, capacity=16)
        group = rng.uniform(200, 800, size=(3, 2))
        engine.execute(QuerySpec(group=group, k=2))
        self._mutate(engine, dataset, rng)
        before = {
            name: engine.execute(QuerySpec(group=group, k=7, algorithm=name))
            for name in ALGORITHMS
        }
        base_generation = engine.flat.generation
        compacted = engine.compact()
        assert not engine.dirty
        assert compacted.generation == base_generation + 1
        for name, result in before.items():
            after = engine.execute(QuerySpec(group=group, k=7, algorithm=name))
            _assert_identical(after, result, f"{name} post-compaction")
            assert not after.cost.algorithm.endswith("+overlay")

    def test_compaction_round_trips_through_disk(self, dataset, rng, tmp_path):
        engine = GNNEngine(dataset, capacity=16)
        group = rng.uniform(200, 800, size=(3, 2))
        engine.execute(QuerySpec(group=group, k=2))
        self._mutate(engine, dataset, rng)
        expected = engine.execute(QuerySpec(group=group, k=7))
        path = tmp_path / "gen1.npz"
        engine.compact().save(path)
        reloaded = GNNEngine.from_index(FlatRTree.load(path, mmap_mode="r"))
        assert reloaded.flat.generation == 1
        _assert_identical(
            reloaded.execute(QuerySpec(group=group, k=7)), expected, "reloaded"
        )


# ----------------------------------------------------------------------
# Hypothesis: random mutation schedules
# ----------------------------------------------------------------------
coordinate = st.floats(min_value=0.0, max_value=1000.0, allow_nan=False, width=32)
point_strategy = st.tuples(coordinate, coordinate)


class TestMutationScheduleProperty:
    @given(
        initial=st.lists(point_strategy, min_size=5, max_size=40),
        schedule=st.lists(
            st.tuples(st.sampled_from(["insert", "delete"]), point_strategy, st.integers(0, 10_000)),
            min_size=1,
            max_size=25,
        ),
        k=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=40, deadline=None)
    def test_any_schedule_keeps_overlay_exact(self, initial, schedule, k):
        data = np.array(initial, dtype=np.float64)
        engine = GNNEngine(data, capacity=8)
        engine.execute(QuerySpec(group=[[500.0, 500.0]], k=1))  # build base
        live = {i: data[i] for i in range(len(data))}
        for action, point, selector in schedule:
            if action == "insert":
                rid = engine.insert(point)
                assert rid not in live
                live[rid] = np.asarray(point, dtype=np.float64)
            elif live:
                rid = sorted(live)[selector % len(live)]
                assert engine.delete(live[rid], rid)
                del live[rid]
        if not live:
            return
        # The invariant under test: the dirty merged view is a correct
        # top-k over the independently tracked live dataset for every
        # algorithm, and — whenever no two live points tie at *exactly*
        # the same float64 aggregate distance — bit-identical to a
        # from-scratch rebuild.  (Under exact ties the tie order is a
        # traversal artifact with or without an overlay, so only the
        # distance multiset is pinned there.)
        ids = np.array(sorted(live), dtype=np.int64)
        points = np.vstack([live[i] for i in ids])
        group = np.array([[250.0, 250.0], [750.0, 750.0]])
        query = GroupQuery(group, k=k)
        all_distances = query.distances_to(points)
        expected = np.sort(all_distances)[:k]
        distance_of = {int(i): float(d) for i, d in zip(ids, all_distances)}
        tie_free = len(np.unique(all_distances)) == len(all_distances)
        rebuilt = GNNEngine.from_index(
            FlatRTree.bulk_load(points, capacity=8, record_ids=ids)
        )
        for name in ALGORITHMS:
            spec = QuerySpec(group=group, k=k, algorithm=name)
            result = engine.execute(spec)
            # correct top-k: the k smallest distances, each id reported
            # with its true distance
            assert np.allclose(result.distances(), expected, rtol=1e-9), name
            for rid, dist in zip(result.record_ids(), result.distances()):
                assert rid in distance_of, name
                assert np.isclose(dist, distance_of[rid], rtol=1e-9), name
            if tie_free:
                reference = rebuilt.execute(spec)
                assert result.record_ids() == reference.record_ids(), name
                assert np.array_equal(result.distances(), reference.distances()), name


# ----------------------------------------------------------------------
# served write path: CompactingWriter + hot-swap
# ----------------------------------------------------------------------
class TestServedWritePath:
    def test_compacting_writer_trigger_logic(self, dataset, tmp_path):
        from repro.serve.compaction import CompactingWriter

        path = tmp_path / "base.npz"
        GNNEngine(dataset, capacity=16).snapshot().save(path)
        engine = GNNEngine.from_index(FlatRTree.load(path, mmap_mode="r"))
        writer = CompactingWriter(engine, dirty_ratio_trigger=0.005, min_writes=3)
        assert writer.compact_now() is None  # clean engine: nothing to fold
        writer.insert([1.0, 2.0])
        assert not writer.should_compact  # below min_writes
        writer.insert([3.0, 4.0])
        writer.insert([5.0, 6.0])
        assert writer.should_compact
        flat = writer.maybe_compact()
        assert flat is not None and flat.generation == 1
        assert writer.compactions == 1 and not engine.dirty

    def test_server_absorbs_compaction_swap_mid_trace(self, dataset, tmp_path):
        """Acceptance: zero failed requests across a mid-trace hot-swap."""
        from repro.serve import CompactingWriter, GNNServer

        rng = np.random.default_rng(SEED + 3)
        with GNNServer.from_points(dataset, tmp_path, capacity=16, workers=2) as server:
            engine = GNNEngine.from_index(
                FlatRTree.load(server.snapshot_path, mmap_mode="r")
            )
            writer = CompactingWriter(
                engine, server, dirty_ratio_trigger=0.02, min_writes=4
            )
            handle = server.handle()
            futures = []
            for i in range(60):
                futures.append(
                    handle.submit(QuerySpec(group=rng.uniform(0, 1000, size=(3, 2)), k=4))
                )
                if i % 5 == 0:
                    writer.delete(dataset[i], i)
                    writer.insert(rng.uniform(0, 1000, size=2))
                writer.maybe_compact()
            failures = 0
            for future in futures:
                try:
                    future.result(timeout=60)
                except Exception:
                    failures += 1
            assert failures == 0
            assert writer.compactions >= 1
            assert server.epoch >= writer.compactions
            # Post-swap answers match the local merged view exactly.
            spec = QuerySpec(group=rng.uniform(0, 1000, size=(3, 2)), k=4)
            _assert_identical(
                handle.run(spec, timeout=60), engine.execute(spec), "served-post-swap"
            )


# ----------------------------------------------------------------------
# sharded write path: ShardWriter
# ----------------------------------------------------------------------
class TestShardedWritePath:
    @pytest.fixture()
    def partitioned(self, dataset, tmp_path):
        from repro.shard import partition_dataset

        manifest = partition_dataset(dataset, shards=3, directory=tmp_path, capacity=16)
        return tmp_path, manifest

    def test_global_id_allocation_and_routing(self, partitioned, dataset, rng):
        from repro.shard import ShardWriter

        directory, manifest = partitioned
        writer = ShardWriter(directory)
        assert writer.next_record_id == len(dataset)
        seen = []
        for _ in range(10):
            shard_id, record_id = writer.insert(rng.uniform(0, 1000, size=2))
            assert 0 <= shard_id < manifest.shard_count
            seen.append(record_id)
        assert seen == list(range(400, 410))  # global, monotonic, gap-free

    def test_delete_probes_past_routing_ties(self, partitioned, dataset):
        from repro.shard import ShardWriter

        writer = ShardWriter(partitioned[0])
        for rid in range(0, 30, 3):
            assert writer.delete(dataset[rid], rid) is not None
        assert writer.delete(dataset[0], 0) is None  # already dead
        assert writer.delete(dataset[1] + 500.0, 1) is None  # wrong point

    def test_compaction_updates_manifest_and_preserves_answers(
        self, partitioned, dataset, rng
    ):
        from repro.shard import ShardManifest, ShardWriter

        directory, manifest = partitioned
        writer = ShardWriter(directory)
        deleted = list(range(0, 40, 2))
        for rid in deleted:
            assert writer.delete(dataset[rid], rid) is not None
        inserted = {}
        for _ in range(20):
            point = rng.uniform(0, 1000, size=2)
            _, rid = writer.insert(point)
            inserted[rid] = point
        updated = writer.compact()
        assert updated.generation == manifest.generation + 1
        assert updated.size == 400
        # The on-disk manifest is the updated one, and every snapshot it
        # names exists (manifest-written-last discipline).
        reloaded = ShardManifest.load(directory)
        assert reloaded.generation == updated.generation
        for shard in reloaded.shards:
            assert (directory / shard.path).exists()
        # Federated view == single rebuilt index over the live records.
        live = {i: dataset[i] for i in range(400) if i not in set(deleted)}
        live.update(inserted)
        ids = np.array(sorted(live), dtype=np.int64)
        points = np.vstack([live[i] for i in ids])
        reference = GNNEngine.from_index(
            FlatRTree.bulk_load(points, capacity=16, record_ids=ids)
        )
        group = rng.uniform(0, 1000, size=(3, 2))
        expected = reference.execute(QuerySpec(group=group, k=6))
        merged = []
        for shard in reloaded.shards:
            shard_engine = GNNEngine.from_index(
                FlatRTree.load(directory / shard.path, mmap_mode="r")
            )
            result = shard_engine.execute(QuerySpec(group=group, k=6))
            merged.extend((n.distance, n.record_id) for n in result.neighbors)
        merged.sort()
        assert [rid for _, rid in merged[:6]] == expected.record_ids()

    def test_compacting_an_empty_shard_is_refused(self, dataset, tmp_path):
        from repro.shard import ShardWriter, partition_dataset

        partition_dataset(dataset[:9], shards=3, directory=tmp_path, capacity=16)
        writer = ShardWriter(tmp_path)
        # Drain one shard completely.
        target = writer.manifest.shards[0]
        flat = FlatRTree.load(tmp_path / target.path)
        for row in range(flat.size):
            rid = int(np.asarray(flat.record_ids)[row])
            assert writer.delete(np.asarray(flat.points[row]), rid) is not None
        with pytest.raises(ValueError, match="empty"):
            writer.compact()

    def test_node_swap_snapshot_follows_compaction(self, partitioned, dataset, rng):
        from repro.shard import ShardNode, ShardWriter

        directory, manifest = partitioned
        writer = ShardWriter(directory)
        shard0 = manifest.shards[0]
        with ShardNode(0, directory / shard0.path, workers=1) as node:
            flat = FlatRTree.load(directory / shard0.path)
            rid = int(np.asarray(flat.record_ids)[0])
            assert writer.engine(0).delete(np.asarray(flat.points[0]), rid)
            updated = writer.compact()
            epoch = node.swap_snapshot(directory / updated.shards[0].path)
            assert epoch >= 1
            assert node.generation == updated.generation
            assert node.size == updated.shards[0].count
