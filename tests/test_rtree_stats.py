"""Tests for repro.rtree.stats."""

from repro.rtree.stats import TreeStats


class TestTreeStats:
    def test_record_node_access_counts_leaves_separately(self):
        stats = TreeStats()
        stats.record_node_access(is_leaf=True)
        stats.record_node_access(is_leaf=False)
        assert stats.node_accesses == 2
        assert stats.leaf_accesses == 1

    def test_buffer_hits_do_not_count_as_page_faults(self):
        stats = TreeStats()
        stats.record_node_access(is_leaf=False, buffer_hit=True)
        stats.record_node_access(is_leaf=False, buffer_hit=False)
        assert stats.node_accesses == 2
        assert stats.page_faults == 1

    def test_distance_computations_accumulate(self):
        stats = TreeStats()
        stats.record_distance_computations(5)
        stats.record_distance_computations()
        assert stats.distance_computations == 6

    def test_snapshot_returns_plain_dict(self):
        stats = TreeStats()
        stats.record_node_access(is_leaf=True)
        snapshot = stats.snapshot()
        assert snapshot["node_accesses"] == 1
        assert set(snapshot) == {
            "node_accesses",
            "leaf_accesses",
            "page_faults",
            "distance_computations",
        }

    def test_reset_zeroes_everything(self):
        stats = TreeStats()
        stats.record_node_access(is_leaf=True)
        stats.record_distance_computations(3)
        stats.reset()
        assert stats.snapshot() == {
            "node_accesses": 0,
            "leaf_accesses": 0,
            "page_faults": 0,
            "distance_computations": 0,
        }

    def test_merge_accumulates_counters(self):
        first = TreeStats()
        first.record_node_access(is_leaf=True)
        second = TreeStats()
        second.record_node_access(is_leaf=False)
        second.record_distance_computations(2)
        first.merge(second)
        assert first.node_accesses == 2
        assert first.distance_computations == 2

    def test_add_returns_new_object(self):
        first = TreeStats(node_accesses=1)
        second = TreeStats(node_accesses=2)
        combined = first + second
        assert combined.node_accesses == 3
        assert first.node_accesses == 1
        assert second.node_accesses == 2
