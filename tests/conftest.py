"""Shared fixtures for the test suite.

The fixtures build small-but-nontrivial datasets and indexes once per
session so the many correctness tests (every algorithm against brute
force, under many query shapes) stay fast.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import GNNEngine
from repro.rtree.tree import RTree


@pytest.fixture(scope="session")
def rng():
    """Deterministic random generator shared by the suite."""
    return np.random.default_rng(20040330)


@pytest.fixture(scope="session")
def small_points():
    """A small clustered dataset (600 points in [0, 1000]^2)."""
    generator = np.random.default_rng(11)
    clusters = generator.uniform(100, 900, size=(6, 2))
    assignments = generator.integers(0, 6, size=600)
    noise = generator.normal(scale=40.0, size=(600, 2))
    return np.clip(clusters[assignments] + noise, 0, 1000)


@pytest.fixture(scope="session")
def uniform_points_1k():
    """1,000 uniform points in [0, 1000]^2."""
    return np.random.default_rng(5).uniform(0, 1000, size=(1000, 2))


@pytest.fixture(scope="session")
def small_tree(small_points):
    """Bulk-loaded R-tree over the small clustered dataset."""
    return RTree.bulk_load(small_points, capacity=16)


@pytest.fixture(scope="session")
def uniform_tree(uniform_points_1k):
    """Bulk-loaded R-tree over the uniform dataset."""
    return RTree.bulk_load(uniform_points_1k, capacity=16)


@pytest.fixture(scope="session")
def engine(small_points):
    """A GNNEngine over the small clustered dataset."""
    return GNNEngine(small_points, capacity=16)


@pytest.fixture()
def query_groups(rng):
    """A list of diverse query groups used by cross-algorithm tests."""
    groups = []
    for n in (1, 2, 3, 8, 25):
        center = rng.uniform(200, 800, size=2)
        spread = rng.uniform(10, 250)
        groups.append(rng.uniform(center - spread, center + spread, size=(n, 2)))
    # A degenerate group: every query point identical.
    groups.append(np.tile(rng.uniform(0, 1000, size=2), (5, 1)))
    # A group straddling the whole workspace.
    groups.append(rng.uniform(0, 1000, size=(12, 2)))
    return groups
