"""Tests for the executor layer: execute, execute_many, shims, maintenance."""

import warnings

import numpy as np
import pytest

from repro.api import QuerySpec
from repro.core.engine import GNNEngine
from repro.rtree.flat import FlatRTree
from repro.storage.pointfile import PointFile


class TestExecute:
    def test_execute_matches_brute_force(self, engine, rng):
        group = rng.uniform(100, 900, size=(8, 2))
        reference = engine.execute(QuerySpec(group=group, k=4, algorithm="brute-force"))
        for algorithm in ("mqm", "spm", "mbm", "best-first"):
            result = engine.execute(QuerySpec(group=group, k=4, algorithm=algorithm))
            assert result.distances() == pytest.approx(reference.distances())

    def test_execute_forwards_options(self, engine, rng):
        group = rng.uniform(100, 900, size=(6, 2))
        result = engine.execute(
            QuerySpec(group=group, k=2, algorithm="spm", options={"traversal": "depth_first"})
        )
        assert "depth_first" in result.cost.algorithm

    def test_execute_disk_from_group_file(self, engine, rng):
        queries = rng.uniform(300, 700, size=(120, 2))
        file = PointFile(queries, points_per_page=20, block_pages=2)
        result = engine.execute(QuerySpec(group_file=file, k=1, algorithm="fmbm"))
        reference = engine.execute(QuerySpec(group=queries, k=1, algorithm="brute-force"))
        assert result.distances() == pytest.approx(reference.distances())

    def test_execute_disk_builds_file_from_points(self, engine, rng):
        queries = rng.uniform(300, 700, size=(150, 2))
        spec = QuerySpec(
            group=queries,
            k=3,
            residency="disk",
            options={"points_per_page": 50, "block_pages": 2},
        )
        result = engine.execute(spec)
        reference = engine.execute(QuerySpec(group=queries, k=3, algorithm="brute-force"))
        assert result.distances() == pytest.approx(reference.distances())

    def test_execute_unknown_algorithm_raises(self, engine):
        with pytest.raises(ValueError, match="unknown algorithm"):
            engine.execute(QuerySpec(group=[[0.0, 0.0]], algorithm="quantum"))


class TestExecuteMany:
    def test_batch_of_100_matches_per_query_execute(self, engine, rng):
        """Acceptance: >= 100 memory-resident groups, identical results."""
        specs = []
        for _ in range(100):
            n = int(rng.integers(2, 12))
            center = rng.uniform(100, 900, size=2)
            group = rng.uniform(center - 120, center + 120, size=(n, 2))
            specs.append(QuerySpec(group=group, k=int(rng.integers(1, 5))))
        batch = engine.execute_many(specs)
        assert len(batch) == 100
        for spec, outcome in zip(specs, batch):
            single = engine.execute(spec)
            assert outcome.record_ids() == single.record_ids()
            assert outcome.distances() == single.distances()

    def test_batch_mixes_algorithms_and_aggregates(self, engine, rng):
        group = rng.uniform(200, 800, size=(6, 2))
        specs = [
            QuerySpec(group=group, k=3),
            QuerySpec(group=group, k=3, aggregate="max"),
            QuerySpec(group=group, k=3, algorithm="mqm"),
            QuerySpec(group=group, k=3, algorithm="brute-force"),
            QuerySpec(group=group, k=3, weights=np.full(6, 2.0)),
        ]
        batch = engine.execute_many(specs)
        reference = engine.execute(specs[0])
        assert batch[0].distances() == pytest.approx(reference.distances())
        assert batch[2].distances() == pytest.approx(reference.distances())
        assert batch[3].distances() == pytest.approx(reference.distances())
        labels = [outcome.cost.algorithm for outcome in batch]
        assert labels[1].startswith("best-first")
        assert labels[3] == "brute-force"

    def test_vectorised_brute_force_batch_is_identical(self, engine, rng):
        """The shared-tensor scan must reproduce per-query answers exactly."""
        specs = []
        for _ in range(30):
            group = rng.uniform(0, 1000, size=(5, 2))
            specs.append(QuerySpec(group=group, k=4, algorithm="brute-force"))
        specs.append(QuerySpec(group=rng.uniform(0, 1000, size=(5, 2)), k=4,
                               algorithm="brute-force", aggregate="max"))
        batch = engine.execute_many(specs)
        for spec, outcome in zip(specs, batch):
            single = engine.execute(spec)
            assert outcome.record_ids() == single.record_ids()
            assert outcome.distances() == single.distances()
            assert outcome.cost.distance_computations == single.cost.distance_computations

    def test_batch_includes_disk_specs(self, engine, rng):
        queries = rng.uniform(300, 700, size=(120, 2))
        specs = [
            QuerySpec(group=rng.uniform(200, 800, size=(4, 2)), k=2),
            QuerySpec(
                group=queries,
                k=2,
                residency="disk",
                options={"points_per_page": 20, "block_pages": 2},
            ),
        ]
        batch = engine.execute_many(specs)
        assert batch[1].distances() == pytest.approx(
            engine.execute(QuerySpec(group=queries, k=2, algorithm="brute-force")).distances()
        )

    def test_empty_batch(self, engine):
        assert engine.execute_many([]) == []

    def test_traced_specs_keep_their_plan_in_batches(self, engine, rng):
        group = rng.uniform(0, 1000, size=(4, 2))
        specs = [
            QuerySpec(group=group, k=2, algorithm="brute-force", trace=True),
            QuerySpec(group=group, k=2, trace=True),
            QuerySpec(group=group, k=2),
        ]
        batch = engine.execute_many(specs)
        assert batch[0].plan is not None and batch[0].plan.algorithm.name == "brute-force"
        assert batch[1].plan is not None and batch[1].plan.algorithm.name == "mbm"
        assert batch[2].plan is None

    def test_batch_with_buffer_keeps_answers(self, small_points, rng):
        buffered = GNNEngine(small_points, capacity=8, buffer_pages=64)
        specs = [
            QuerySpec(group=rng.uniform(100, 900, size=(4, 2)), k=3) for _ in range(40)
        ]
        batch = buffered.execute_many(specs)
        for spec, outcome in zip(specs, batch):
            single = buffered.execute(spec)
            assert outcome.record_ids() == single.record_ids()


class TestSharedTraversalBatches:
    """The flat-index shared-traversal path of ``execute_many``."""

    def _specs(self, rng, count=24, n=6, k=3):
        specs = []
        for _ in range(count):
            center = rng.uniform(200, 800, size=2)
            specs.append(
                QuerySpec(group=rng.uniform(center - 100, center + 100, size=(n, 2)), k=k)
            )
        return specs

    def test_shared_batch_matches_per_query_execute(self, engine, rng):
        specs = self._specs(rng)
        batch = engine.execute_many(specs)
        for spec, outcome in zip(specs, batch):
            single = engine.execute(spec)
            assert outcome.record_ids() == single.record_ids()
            assert outcome.distances() == single.distances()
            assert outcome.cost.algorithm == "MBM-batch"

    def test_snapshot_is_built_once_per_batch(self, small_points, rng, monkeypatch):
        """Regression: one batch must trigger at most one lazy snapshot build.

        Before the executor pinned the snapshot up front, every
        flat-capable plan could independently reach the engine's lazy
        builder.  Since the delta overlay, writes never invalidate the
        snapshot at all: an insert lands in the overlay and batches keep
        the original base — zero rebuilds, ever, with answers still
        matching per-query execute.
        """
        engine = GNNEngine(small_points, capacity=16)
        builds = []
        original = FlatRTree.from_tree.__func__

        def counting(cls, tree, buffer="inherit"):
            builds.append(1)
            return original(cls, tree, buffer)

        monkeypatch.setattr(FlatRTree, "from_tree", classmethod(counting))

        specs = self._specs(rng)
        engine.execute_many(specs)
        assert len(builds) == 1
        engine.execute_many(specs)
        assert len(builds) == 1  # cached snapshot reused across batches

        engine.insert([500.0, 500.0])  # absorbed by the delta overlay
        assert engine.dirty
        batch = engine.execute_many(specs)
        assert len(builds) == 1  # no rebuild: the overlay shadows the base
        for spec, outcome in zip(specs, batch):
            single = engine.execute(spec)
            assert outcome.record_ids() == single.record_ids()
        assert len(builds) == 1  # per-query execute stays on the overlay too

    def test_insert_invalidation_never_serves_stale_batch_answers(self, rng):
        """An insert between batches must be visible to the next batch.

        The inserted point sits exactly at each group's centroid, so any
        stale pre-insert snapshot would provably return wrong answers —
        the batch path has to rebuild (or fall back), never reuse.
        """
        points = rng.uniform(0, 1000, size=(300, 2))
        engine = GNNEngine(points, capacity=16)
        center = np.array([444.0, 444.0])
        specs = [
            QuerySpec(group=rng.uniform(center - 15, center + 15, size=(4, 2)), k=1)
            for _ in range(8)
        ]
        stale = engine.execute_many(specs)  # materialises the snapshot
        assert all(outcome.record_ids() != [300] for outcome in stale)

        inserted = engine.insert(center)
        fresh = engine.execute_many(specs)
        for spec, outcome in zip(specs, fresh):
            assert outcome.record_ids() == [inserted]
            single = engine.execute(spec)
            assert outcome.record_ids() == single.record_ids()
            assert outcome.distances() == single.distances()

    def test_context_pins_the_snapshot_for_the_whole_batch(self, small_points, rng):
        """Between bucketing and execution the context's flat provider
        must be consulted exactly once — a provider whose answer changes
        mid-batch (engine-side invalidation) cannot split one batch
        across two snapshots."""
        from repro.api.executor import ExecutionContext, execute_batch

        engine = GNNEngine(small_points, capacity=16, snapshot=False)
        calls = []

        def provider():
            calls.append(1)
            return FlatRTree.from_tree(engine.tree)

        context = ExecutionContext(
            tree=engine.tree, points=engine.points, flat_provider=provider
        )
        specs = self._specs(rng, count=12)
        results = execute_batch(context, specs)
        assert len(calls) == 1
        for spec, outcome in zip(specs, results):
            assert outcome.record_ids() == engine.execute(spec).record_ids()

    def test_mixed_ks_bucket_separately_with_identical_answers(self, engine, rng):
        specs = []
        for k in (1, 4, 8, 4, 1, 8, 4, 1):
            center = rng.uniform(200, 800, size=2)
            specs.append(
                QuerySpec(group=rng.uniform(center - 80, center + 80, size=(5, 2)), k=k)
            )
        batch = engine.execute_many(specs)
        for spec, outcome in zip(specs, batch):
            single = engine.execute(spec)
            assert outcome.record_ids() == single.record_ids()
            assert outcome.distances() == single.distances()

    def test_single_flat_spec_stays_on_per_query_path(self, engine, rng):
        spec = QuerySpec(group=rng.uniform(200, 800, size=(5, 2)), k=3)
        (outcome,) = engine.execute_many([spec])
        assert outcome.cost.algorithm.startswith("MBM-best_first")
        single = engine.execute(spec)
        assert outcome.record_ids() == single.record_ids()

    def test_object_index_specs_stay_off_the_shared_path(self, engine, rng):
        group = rng.uniform(200, 800, size=(5, 2))
        specs = [QuerySpec(group=group, k=3, index="object") for _ in range(3)]
        batch = engine.execute_many(specs)
        for outcome in batch:
            assert outcome.cost.algorithm.startswith("MBM-best_first")

    def test_boundary_ties_resolve_canonically_to_smallest_ids(self):
        """Exact k-th-distance ties go to the smallest record ids.

        Four points tie at the same aggregate distance; the shared
        traversal must keep the two smallest ids, deterministically,
        and report them in (distance, record_id) order.
        """
        data = np.array(
            [[0.0, 0.0], [10.0, 0.0], [0.0, 10.0], [10.0, 10.0],
             [100.0, 100.0], [101.0, 100.0], [100.0, 101.0], [101.0, 101.0],
             [50.0, 50.0], [51.0, 50.0]]
        )
        engine = GNNEngine(data, capacity=4)
        spec = QuerySpec(group=np.array([[5.0, 5.0], [5.0, 5.0]]), k=2)
        for outcome in engine.execute_many([spec, spec]):
            assert outcome.cost.algorithm == "MBM-batch"
            assert outcome.record_ids() == [0, 1]
            assert outcome.distances()[0] == outcome.distances()[1]

    def test_leftover_singleton_chunk_stays_on_per_query_path(self, small_points, rng):
        """A bucket of max-chunk + 1 must not run a 1-member shared traversal."""
        from repro.api import executor

        engine = GNNEngine(small_points, capacity=16)
        specs = self._specs(rng, count=executor.SHARED_BUCKET_MAX_MEMBERS + 1)
        batch = engine.execute_many(specs)
        labels = [outcome.cost.algorithm for outcome in batch]
        assert labels.count("MBM-batch") == executor.SHARED_BUCKET_MAX_MEMBERS
        assert sum(label.startswith("MBM-best_first") for label in labels) == 1
        for spec, outcome in zip(specs, batch):
            assert outcome.record_ids() == engine.execute(spec).record_ids()

    def test_snapshotless_engine_still_answers_batches(self, small_points, rng):
        engine = GNNEngine(small_points, capacity=16, snapshot=False)
        specs = self._specs(rng, count=6)
        batch = engine.execute_many(specs)
        for spec, outcome in zip(specs, batch):
            single = engine.execute(spec)
            assert outcome.record_ids() == single.record_ids()
            assert outcome.cost.algorithm.startswith("MBM-best_first")


class TestDeprecatedShims:
    def test_query_warns_and_delegates(self, engine, rng):
        group = rng.uniform(200, 800, size=(5, 2))
        with pytest.warns(DeprecationWarning, match="GNNEngine.execute"):
            legacy = engine.query(group, k=2)
        modern = engine.execute(QuerySpec(group=group, k=2))
        assert legacy.record_ids() == modern.record_ids()
        assert legacy.cost.algorithm == modern.cost.algorithm

    def test_query_disk_warns_and_delegates(self, engine, rng):
        queries = rng.uniform(300, 700, size=(150, 2))
        with pytest.warns(DeprecationWarning, match="residency='disk'"):
            legacy = engine.query_disk(queries, k=2, block_pages=2)
        modern = engine.execute(
            QuerySpec(
                group=queries,
                k=2,
                residency="disk",
                options={"points_per_page": 50, "block_pages": 2},
            )
        )
        assert legacy.record_ids() == modern.record_ids()

    def test_query_disk_gcp_still_works_via_shim(self, engine, rng):
        queries = rng.uniform(300, 700, size=(60, 2))
        with pytest.warns(DeprecationWarning):
            result = engine.query_disk(queries, k=2, algorithm="gcp", query_tree_capacity=16)
        reference = engine.execute(QuerySpec(group=queries, k=2, algorithm="brute-force"))
        assert result.distances() == pytest.approx(reference.distances())


class TestMaintenance:
    def test_insert_validates_dimensionality(self, small_points):
        engine = GNNEngine(small_points[:50], capacity=8)
        with pytest.raises(ValueError, match="dimension 2"):
            engine.insert([1.0, 2.0, 3.0])
        with pytest.raises(ValueError, match="dimension 2"):
            engine.insert([[1.0, 2.0]])
        with pytest.raises(ValueError, match="finite"):
            engine.insert([1.0, float("nan")])
        # The failed inserts must not have corrupted the dataset.
        assert engine.points.shape == (50, 2)
        assert engine.insert([123.0, 456.0]) == 50
        assert len(engine) == 51

    def test_buffer_is_reachable(self, small_points):
        engine = GNNEngine(small_points[:50], capacity=8, buffer_pages=16)
        assert engine.buffer is not None
        assert GNNEngine(small_points[:50], capacity=8).buffer is None
